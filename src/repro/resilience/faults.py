"""Declarative, seeded fault plans and their runtime injector.

A :class:`FaultPlan` describes *which* faults a run should suffer —
message delays, drops, duplications, payload bit-flips, transient rank
stalls and permanent rank failures — as plain frozen dataclasses that
serialise to/from JSON (``to_dict``/``from_dict``).  Installing a plan
(:func:`fault_injection`) creates a :class:`FaultInjector` and registers
it at the :mod:`repro.mpisim.injection` hook point, where the message
engine and the BSP halo update consult it on every message.

Determinism: every verdict is derived from
``(plan.seed, src, dst, tag, sequence)`` through a dedicated
:class:`numpy.random.Generator`, so a given plan injects the *same* faults
into the same message sequence regardless of thread scheduling — chaos
runs are replayable, and a checkpoint rollback that replays messages
advances the sequence and therefore does not deterministically re-hit the
same transient fault.

Real time is only consumed in small, capped sleeps (``sleep_cap``): the
semantics of a delay are carried by the retry/timeout accounting
(``halo.retries`` / ``halo.timeouts`` metrics, ``resilience.*`` spans),
not by actually waiting out the nominal delay.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, fields, replace

import numpy as np

from repro.errors import FaultPlanError
from repro.mpisim.injection import clear_injector, install_injector

__all__ = [
    "MessageDelay",
    "MessageDrop",
    "MessageDuplicate",
    "PayloadBitFlip",
    "RankStall",
    "RankFailure",
    "FaultPlan",
    "MessageVerdict",
    "FaultInjector",
    "fault_injection",
]


def _check_probability(p: float, what: str) -> None:
    if not 0.0 <= p <= 1.0:
        raise FaultPlanError(f"{what}: probability must be in [0, 1], got {p}")


def _edge_matches(rule, src: int, dst: int) -> bool:
    return (rule.src is None or rule.src == src) and (
        rule.dst is None or rule.dst == dst
    )


@dataclass(frozen=True)
class MessageDelay:
    """Delay matching messages by ``seconds`` with ``probability``.

    A delay longer than the plan's ``message_timeout`` is indistinguishable
    from a loss to the receiver: it times the message out and triggers a
    retry (counted in ``halo.retries``).  Shorter delays are slept (capped
    at ``sleep_cap``) inside a ``resilience.delay`` span.
    ``src``/``dst`` of ``None`` match any rank.
    """

    probability: float
    seconds: float
    src: int | None = None
    dst: int | None = None

    def __post_init__(self):
        _check_probability(self.probability, "MessageDelay")
        if self.seconds < 0:
            raise FaultPlanError("MessageDelay: seconds must be >= 0")


@dataclass(frozen=True)
class MessageDrop:
    """Drop matching messages with ``probability``.

    A dropped message is retransmitted after a backoff (the reliable
    transport hiding under real MPI), so payloads are never lost — only
    time, which the retry accounting attributes.
    """

    probability: float
    src: int | None = None
    dst: int | None = None

    def __post_init__(self):
        _check_probability(self.probability, "MessageDrop")


@dataclass(frozen=True)
class MessageDuplicate:
    """Deliver matching messages twice with ``probability``.

    Only meaningful on the SPMD engine (real mailboxes); the receiver
    deduplicates by sequence number.  The BSP halo update reads values
    directly and ignores duplication verdicts.
    """

    probability: float
    src: int | None = None
    dst: int | None = None

    def __post_init__(self):
        _check_probability(self.probability, "MessageDuplicate")


@dataclass(frozen=True)
class PayloadBitFlip:
    """Flip one bit of one float64 element of matching payloads.

    ``bit`` of ``None`` picks a uniformly random bit (0–63); exponent-range
    bits typically produce divergence the solver's checkpoint-restart path
    detects and rolls back.
    """

    probability: float
    bit: int | None = None
    src: int | None = None
    dst: int | None = None

    def __post_init__(self):
        _check_probability(self.probability, "PayloadBitFlip")
        if self.bit is not None and not 0 <= self.bit <= 63:
            raise FaultPlanError("PayloadBitFlip: bit must be in [0, 63]")


@dataclass(frozen=True)
class RankStall:
    """Transient stall: ``rank`` pauses for ``seconds`` once, at its
    ``at_update``-th halo update (or first message thereafter on the SPMD
    engine).  The stall is consumed exactly once."""

    rank: int
    seconds: float
    at_update: int = 1

    def __post_init__(self):
        if self.seconds < 0:
            raise FaultPlanError("RankStall: seconds must be >= 0")
        if self.at_update < 0:
            raise FaultPlanError("RankStall: at_update must be >= 0")


@dataclass(frozen=True)
class RankFailure:
    """Permanent failure: ``rank`` dies at its ``at_update``-th halo update.

    Surfaces as :class:`~repro.errors.RankFailedError`, which degraded-mode
    recovery (:func:`repro.resilience.solve_with_failover`) turns into a
    re-partition onto the survivors.
    """

    rank: int
    at_update: int = 1

    def __post_init__(self):
        if self.at_update < 0:
            raise FaultPlanError("RankFailure: at_update must be >= 0")


_RULE_TYPES = {
    "delays": MessageDelay,
    "drops": MessageDrop,
    "duplicates": MessageDuplicate,
    "bitflips": PayloadBitFlip,
    "stalls": RankStall,
    "failures": RankFailure,
}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative menu of faults plus the recovery knobs.

    The empty plan (``FaultPlan()``) injects nothing.  Transport knobs:
    ``message_timeout`` is the simulated per-message timeout (delays beyond
    it count as losses and trigger retries), ``max_retries`` bounds the
    retry loop before a :class:`~repro.errors.CommError` timeout,
    ``backoff`` is the base retry backoff (linear per attempt) and
    ``sleep_cap`` caps every *real* sleep so chaos runs stay fast.
    """

    seed: int = 0
    delays: tuple[MessageDelay, ...] = ()
    drops: tuple[MessageDrop, ...] = ()
    duplicates: tuple[MessageDuplicate, ...] = ()
    bitflips: tuple[PayloadBitFlip, ...] = ()
    stalls: tuple[RankStall, ...] = ()
    failures: tuple[RankFailure, ...] = ()
    message_timeout: float = 0.05
    max_retries: int = 8
    backoff: float = 0.001
    sleep_cap: float = 0.005

    def __post_init__(self):
        for name, cls in _RULE_TYPES.items():
            rules = getattr(self, name)
            object.__setattr__(self, name, tuple(rules))
            for rule in getattr(self, name):
                if not isinstance(rule, cls):
                    raise FaultPlanError(
                        f"FaultPlan.{name} expects {cls.__name__} entries, "
                        f"got {type(rule).__name__}"
                    )
        if self.max_retries < 0:
            raise FaultPlanError("FaultPlan: max_retries must be >= 0")
        if self.message_timeout < 0 or self.backoff < 0 or self.sleep_cap < 0:
            raise FaultPlanError("FaultPlan: timeouts/backoff must be >= 0")

    @property
    def empty(self) -> bool:
        """True when the plan injects no faults at all."""
        return not any(getattr(self, name) for name in _RULE_TYPES)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan under a different seed."""
        return replace(self, seed=int(seed))

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        doc: dict = {
            "seed": self.seed,
            "message_timeout": self.message_timeout,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
            "sleep_cap": self.sleep_cap,
        }
        for name in _RULE_TYPES:
            rules = getattr(self, name)
            if rules:
                doc[name] = [
                    {f.name: getattr(r, f.name) for f in fields(r)} for r in rules
                ]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        if not isinstance(doc, dict):
            raise FaultPlanError("fault plan document must be a JSON object")
        kwargs: dict = {}
        for key in ("seed", "message_timeout", "max_retries", "backoff", "sleep_cap"):
            if key in doc:
                kwargs[key] = doc[key]
        for name, rule_cls in _RULE_TYPES.items():
            if name in doc:
                try:
                    kwargs[name] = tuple(rule_cls(**entry) for entry in doc[name])
                except TypeError as exc:
                    raise FaultPlanError(f"bad {name} entry: {exc}") from None
        unknown = set(doc) - set(kwargs) - {"format"}
        if unknown:
            raise FaultPlanError(f"unknown fault plan keys: {sorted(unknown)}")
        return cls(**kwargs)


@dataclass
class MessageVerdict:
    """The injector's decision for one message attempt."""

    dropped: bool = False
    duplicated: bool = False
    delay_s: float = 0.0
    #: Bit to flip in the payload (0–63), or ``None`` for no corruption.
    flip_bit: int | None = None
    #: Uniform draw in [0, 1) selecting which payload element to corrupt.
    flip_pos: float = 0.0

    @property
    def clean(self) -> bool:
        """True when the attempt is delivered untouched."""
        return (
            not self.dropped
            and not self.duplicated
            and self.delay_s == 0.0
            and self.flip_bit is None
        )


_CLEAN_VERDICT = MessageVerdict()


class FaultInjector:
    """Runtime state of an installed :class:`FaultPlan`.

    Thread-safe: per-edge message sequence numbers and per-rank update
    counters are guarded by one lock; verdicts themselves are pure
    functions of ``(seed, src, dst, tag, seq)``.  Injection counts are
    kept per fault kind (:attr:`counts`) for chaos reports.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._edge_seq: dict[tuple[int, int, int], int] = {}
        self._updates = 0
        self._rank_ops: dict[int, int] = {}
        self._consumed_stalls: set[int] = set()
        self._acknowledged: set[int] = set()
        self._dup_seq = 0
        self.counts: dict[str, int] = {
            "delays": 0, "drops": 0, "duplicates": 0, "bitflips": 0,
            "stalls": 0, "failures": 0, "retries": 0,
        }

    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        with self._lock:
            self.counts[kind] += 1

    def next_duplicate_seq(self) -> int:
        """A process-unique sequence number for a duplicated message."""
        with self._lock:
            self._dup_seq += 1
            return self._dup_seq

    def begin_update(self) -> int:
        """Advance the halo-update counter; returns the 1-based index."""
        with self._lock:
            self._updates += 1
            return self._updates

    @property
    def updates(self) -> int:
        """Halo updates seen so far."""
        return self._updates

    # ------------------------------------------------------------------
    def message_verdict(self, src: int, dst: int, tag: int = 0) -> MessageVerdict:
        """Seeded verdict for the next message attempt on ``src → dst``."""
        plan = self.plan
        if plan.empty:
            return _CLEAN_VERDICT
        key = (int(src), int(dst), int(tag))
        with self._lock:
            seq = self._edge_seq.get(key, 0)
            self._edge_seq[key] = seq + 1
        rng = np.random.default_rng(
            [plan.seed & 0x7FFFFFFF, src & 0xFFFF, dst & 0xFFFF, tag & 0xFFFF, seq]
        )
        verdict = MessageVerdict()
        for rule in plan.drops:
            if _edge_matches(rule, src, dst) and rng.random() < rule.probability:
                verdict.dropped = True
                self._count("drops")
                break
        for rule in plan.delays:
            if _edge_matches(rule, src, dst) and rng.random() < rule.probability:
                verdict.delay_s = max(verdict.delay_s, rule.seconds)
                self._count("delays")
        for rule in plan.duplicates:
            if _edge_matches(rule, src, dst) and rng.random() < rule.probability:
                verdict.duplicated = True
                self._count("duplicates")
                break
        for rule in plan.bitflips:
            if _edge_matches(rule, src, dst) and rng.random() < rule.probability:
                verdict.flip_bit = (
                    rule.bit if rule.bit is not None else int(rng.integers(0, 64))
                )
                verdict.flip_pos = float(rng.random())
                self._count("bitflips")
                break
        return verdict

    def record_retry(self) -> None:
        """Count one retry attempt (for chaos-report accounting)."""
        self._count("retries")

    # ------------------------------------------------------------------
    def consume_stall(self, rank: int) -> float:
        """Seconds ``rank`` should stall right now (0.0 almost always).

        Each :class:`RankStall` fires once, when the rank's op/update
        counter reaches ``at_update``.
        """
        if not self.plan.stalls:
            return 0.0
        with self._lock:
            ops = self._rank_ops.get(rank, 0) + 1
            self._rank_ops[rank] = ops
            total = 0.0
            for i, rule in enumerate(self.plan.stalls):
                if rule.rank == rank and i not in self._consumed_stalls and ops >= rule.at_update:
                    self._consumed_stalls.add(i)
                    total += rule.seconds
                    self.counts["stalls"] += 1
            return total

    def rank_failed(self, rank: int) -> bool:
        """Whether ``rank`` is permanently failed at the current update."""
        if not self.plan.failures:
            return False
        with self._lock:
            if rank in self._acknowledged:
                return False
            for rule in self.plan.failures:
                if rule.rank == rank and self._updates >= rule.at_update:
                    self.counts["failures"] += 1
                    return True
        return False

    def acknowledge_failure(self, rank: int) -> None:
        """Mark ``rank``'s failure as handled (degraded mode took over).

        Subsequent :meth:`rank_failed` calls return False for it, so the
        re-partitioned solve proceeds; rank ids refer to the *original*
        communicator.
        """
        with self._lock:
            self._acknowledged.add(int(rank))

    # ------------------------------------------------------------------
    def sleep(self, seconds: float) -> None:
        """Really sleep, capped at the plan's ``sleep_cap``."""
        if seconds > 0:
            time.sleep(min(seconds, self.plan.sleep_cap))

    def corrupt(self, payload, verdict: MessageVerdict):
        """Apply the verdict's bit-flip to a float64 array copy, in place.

        Non-float64-array payloads are returned untouched (the fault model
        corrupts data planes, not control messages).  Returns the payload.
        """
        if (
            verdict.flip_bit is None
            or not isinstance(payload, np.ndarray)
            or payload.dtype != np.float64
            or payload.size == 0
        ):
            return payload
        flat = np.ascontiguousarray(payload).reshape(-1)
        idx = min(int(verdict.flip_pos * flat.size), flat.size - 1)
        bits = flat.view(np.uint64)
        bits[idx] ^= np.uint64(1) << np.uint64(verdict.flip_bit)
        return flat.reshape(payload.shape)

    def __repr__(self) -> str:
        active = {k: v for k, v in self.counts.items() if v}
        return f"FaultInjector(seed={self.plan.seed}, injected={active or 'none'})"


class fault_injection:
    """Context manager installing a plan's injector for the enclosed scope.

    ::

        plan = FaultPlan(seed=7, delays=(MessageDelay(0.05, 0.08),))
        with fault_injection(plan) as injector:
            result = pcg(dA, b, precond=pre)
        print(injector.counts)

    The previous injector (normally ``None``) is restored on exit.
    Accepts a :class:`FaultPlan` or an existing :class:`FaultInjector`.
    """

    def __init__(self, plan: FaultPlan | FaultInjector):
        self.injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
        self._previous = None

    def __enter__(self) -> FaultInjector:
        self._previous = install_injector(self.injector)
        return self.injector

    def __exit__(self, *exc) -> None:
        if self._previous is None:
            clear_injector()
        else:
            install_injector(self._previous)
