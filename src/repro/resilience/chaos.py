"""Chaos harness: run the solver under seeded fault plans, report survival.

A *scenario* pairs a :class:`~repro.resilience.FaultPlan` with the
expectation it must meet.  Scenarios whose faults only cost time (delays,
drops-with-retransmit, transient stalls) must reproduce the fault-free
final residual to ``identical_rtol`` — the transport-level recovery is
supposed to be invisible to the numerics.  Scenarios that corrupt
payloads (bit-flips) or kill ranks only have to *converge*: the
checkpoint-restart and degraded-mode paths change the iteration history,
so bitwise identity is not the contract there.

:func:`run_chaos` executes a menu of scenarios against one matrix,
collecting per-scenario injector counts and the ``halo.retries`` /
``pcg.rollbacks``-style metrics into a versioned
:class:`ChaosReport` (``format: repro-chaos-report``), the artifact the
``repro chaos`` CLI subcommand prints and ``scripts/check_resilience.py``
gates on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.instrument import tracing
from repro.resilience.faults import (
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    PayloadBitFlip,
    RankFailure,
    RankStall,
    fault_injection,
)
from repro.resilience.recovery import ResilienceConfig

__all__ = [
    "CHAOS_FORMAT",
    "CHAOS_VERSION",
    "ChaosError",
    "ChaosScenario",
    "ScenarioOutcome",
    "ChaosReport",
    "standard_menu",
    "quick_menu",
    "failure_scenario",
    "run_chaos",
]

CHAOS_FORMAT = "repro-chaos-report"
CHAOS_VERSION = 1

#: Tolerance for "same final residual as the fault-free run" (relative).
IDENTICAL_RTOL = 1e-10


class ChaosError(ReproError):
    """A chaos report artifact is malformed or has the wrong format."""


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault plan plus the survival contract it must meet.

    ``expect_identical`` requires the final residual to match the clean
    run to ``identical_rtol``; otherwise convergence alone suffices.
    ``engines`` restricts the scenario to the engines where its faults
    are meaningful (duplicates need real mailboxes, so SPMD only).
    """

    name: str
    plan: FaultPlan
    description: str = ""
    expect_identical: bool = True
    engines: tuple[str, ...] = ("bsp", "spmd")


@dataclass
class ScenarioOutcome:
    """What one scenario did to one solve."""

    name: str
    description: str
    engine: str
    plan: dict
    survived: bool
    converged: bool
    expect_identical: bool
    iterations: int
    final_residual: float
    residual_rel_diff: float
    retries: int
    timeouts: int
    checkpoints: int
    rollbacks: int
    injected: dict = field(default_factory=dict)
    error: str | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "description": self.description,
            "engine": self.engine,
            "plan": self.plan,
            "survived": self.survived,
            "converged": self.converged,
            "expect_identical": self.expect_identical,
            "iterations": self.iterations,
            "final_residual": self.final_residual,
            "residual_rel_diff": self.residual_rel_diff,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "checkpoints": self.checkpoints,
            "rollbacks": self.rollbacks,
            "injected": self.injected,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ScenarioOutcome":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**doc)


@dataclass
class ChaosReport:
    """Versioned survival report of one chaos run (JSON round-trippable)."""

    meta: dict
    clean: dict
    scenarios: list[ScenarioOutcome] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        """True when every scenario met its contract."""
        return all(s.survived for s in self.scenarios)

    def to_dict(self) -> dict:
        """JSON-serialisable form (``format``/``version`` stamped)."""
        return {
            "format": CHAOS_FORMAT,
            "version": CHAOS_VERSION,
            "meta": self.meta,
            "clean": self.clean,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def save(self, path: str | Path) -> Path:
        """Write the report as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ChaosReport":
        """Read a report written by :meth:`save` (format/version checked)."""
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ChaosError(f"cannot read chaos report {path}: {exc}") from None
        if not isinstance(doc, dict) or doc.get("format") != CHAOS_FORMAT:
            raise ChaosError(
                f"{path} is not a chaos report (format "
                f"{doc.get('format') if isinstance(doc, dict) else '?'!r})"
            )
        if doc.get("version") != CHAOS_VERSION:
            raise ChaosError(
                f"{path}: unsupported chaos report version {doc.get('version')!r}"
            )
        scenarios = [ScenarioOutcome.from_dict(s) for s in doc.get("scenarios", [])]
        return cls(meta=doc.get("meta", {}), clean=doc.get("clean", {}),
                   scenarios=scenarios)

    def render(self) -> str:
        """Human-readable survival table."""
        lines = [
            f"chaos report — matrix {self.meta.get('matrix', '?')} "
            f"ranks={self.meta.get('ranks', '?')} seed={self.meta.get('seed', '?')} "
            f"engine={self.meta.get('engine', '?')}",
            f"clean run: {self.clean.get('iterations', '?')} iterations, "
            f"final residual {self.clean.get('final_residual', float('nan')):.3e}",
            "",
        ]
        header = (
            f"{'scenario':<18} {'verdict':<9} {'iters':>5} {'rel.diff':>9} "
            f"{'retries':>7} {'rollbk':>6}  injected"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for s in self.scenarios:
            verdict = "SURVIVED" if s.survived else "FAILED"
            diff = f"{s.residual_rel_diff:.1e}" if np.isfinite(s.residual_rel_diff) else "n/a"
            injected = ", ".join(f"{k}={v}" for k, v in sorted(s.injected.items()) if v)
            lines.append(
                f"{s.name:<18} {verdict:<9} {s.iterations:>5} {diff:>9} "
                f"{s.retries:>7} {s.rollbacks:>6}  {injected or '-'}"
            )
            if s.error:
                lines.append(f"{'':<18} error: {s.error}")
        lines.append("")
        lines.append(
            "verdict: ALL SURVIVED" if self.survived else "verdict: FAILURES PRESENT"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def standard_menu(ranks: int = 4) -> list[ChaosScenario]:
    """The default scenario sweep (the one the CI gate runs).

    Time-only faults (delay/drop/stall) carry ``expect_identical`` — the
    retransmitting transport must leave the numerics untouched; the
    bit-flip scenario relies on checkpoint-restart and only has to
    converge.
    """
    stall_rank = min(1, ranks - 1)
    return [
        ChaosScenario(
            "delay5",
            FaultPlan(delays=(MessageDelay(probability=0.05, seconds=0.08),)),
            description="5% of messages delayed past the timeout (retry path)",
        ),
        ChaosScenario(
            "stall",
            FaultPlan(stalls=(RankStall(rank=stall_rank, seconds=0.02, at_update=2),)),
            description="one transient rank stall at its 2nd update",
        ),
        ChaosScenario(
            "stall+delay5",
            FaultPlan(
                delays=(MessageDelay(probability=0.05, seconds=0.08),),
                stalls=(RankStall(rank=stall_rank, seconds=0.02, at_update=2),),
            ),
            description="the acceptance scenario: stall plus 5% delays",
        ),
        ChaosScenario(
            "drop10",
            FaultPlan(drops=(MessageDrop(probability=0.10),)),
            description="10% of messages dropped (retransmit path)",
        ),
        ChaosScenario(
            "duplicate10",
            FaultPlan(duplicates=(MessageDuplicate(probability=0.10),)),
            description="10% of messages duplicated (receiver dedup)",
            engines=("spmd",),
        ),
        ChaosScenario(
            "bitflip",
            FaultPlan(bitflips=(PayloadBitFlip(probability=0.002, bit=62),)),
            description="rare high-exponent bit-flips (checkpoint-restart path)",
            expect_identical=False,
        ),
    ]


def quick_menu(ranks: int = 4) -> list[ChaosScenario]:
    """A two-scenario subset for smoke runs."""
    menu = standard_menu(ranks)
    return [menu[0], menu[2]]


def failure_scenario(rank: int = 1, at_update: int = 3) -> ChaosScenario:
    """A permanent rank-failure scenario (BSP failover path only).

    Not part of :func:`standard_menu` because it re-partitions mid-run;
    ``scripts/check_resilience.py`` exercises it explicitly through
    :func:`repro.resilience.solve_with_failover`.
    """
    return ChaosScenario(
        f"failure-r{rank}",
        FaultPlan(failures=(RankFailure(rank=rank, at_update=at_update),)),
        description=f"rank {rank} dies permanently at update {at_update}",
        expect_identical=False,
        engines=("bsp",),
    )


# ----------------------------------------------------------------------
def run_chaos(
    mat,
    *,
    ranks: int = 4,
    seed: int = 0,
    rtol: float = 1e-8,
    max_iterations: int = 10_000,
    menu: list[ChaosScenario] | None = None,
    engine: str = "bsp",
    precond_builder: Callable | None = None,
    resilience: ResilienceConfig | None = None,
    identical_rtol: float = IDENTICAL_RTOL,
    matrix_label: str = "?",
) -> ChaosReport:
    """Run every scenario in ``menu`` against ``mat``; return the report.

    ``precond_builder(A_global, partition)`` builds the preconditioner
    per run (``None`` solves unpreconditioned).  ``engine`` selects the
    deterministic BSP solver (:func:`repro.core.pcg`) or the threaded
    SPMD one (:func:`repro.dist.spmd_cg`); scenarios declaring other
    engines are skipped.  The clean baseline runs first, fault-free, and
    every scenario's final residual is compared against it.
    """
    from repro.core.cg import pcg
    from repro.dist.matrix import DistMatrix
    from repro.dist.partition_map import RowPartition
    from repro.dist.spmd import spmd_cg
    from repro.dist.vector import DistVector
    from repro.matgen import paper_rhs

    if engine not in ("bsp", "spmd"):
        raise ChaosError(f"unknown engine {engine!r} (expected 'bsp' or 'spmd')")
    if menu is None:
        menu = standard_menu(ranks)
    if resilience is None:
        resilience = ResilienceConfig()

    part = RowPartition.from_matrix(mat, ranks, seed=seed)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=seed), part)
    pre = precond_builder(mat, part) if precond_builder is not None else None
    pair = (pre.g, pre.gt) if pre is not None else None

    def solve(with_resilience: bool):
        """One solve on the selected engine → (converged, iters, final_rel)."""
        if engine == "bsp":
            res = pcg(
                da, b, precond=pre, rtol=rtol, max_iterations=max_iterations,
                resilience=resilience if with_resilience else None,
            )
            return res.converged, res.iterations, res.final_residual
        x, iters = spmd_cg(
            da, b, rtol=rtol, max_iterations=max_iterations, precond_pair=pair
        )
        r = b.copy().axpy(-1.0, da.spmv(x))
        final = r.norm2()
        norm0 = b.copy().norm2()
        return final <= rtol * norm0 * 1.001, iters, final

    _, clean_iters, clean_final = solve(with_resilience=False)
    clean = {
        "iterations": clean_iters,
        "final_residual": clean_final,
        "rtol": rtol,
    }

    outcomes: list[ScenarioOutcome] = []
    for idx, sc in enumerate(menu):
        if engine not in sc.engines:
            continue
        plan = sc.plan.with_seed(seed + idx if sc.plan.seed == 0 else sc.plan.seed)
        needs_ckpt = bool(plan.bitflips)
        error = None
        converged, iters, final = False, 0, float("nan")
        with tracing() as (_, metrics):
            with fault_injection(plan) as injector:
                try:
                    converged, iters, final = solve(with_resilience=needs_ckpt)
                except ReproError as exc:
                    error = f"{type(exc).__name__}: {exc}"
            retries = int(
                metrics.sum_values("halo.retries")
                + metrics.sum_values("mpisim.retries")
            )
            timeouts = int(
                metrics.sum_values("halo.timeouts")
                + metrics.sum_values("mpisim.timeouts")
            )
            checkpoints = int(metrics.sum_values("pcg.checkpoints"))
            rollbacks = int(metrics.sum_values("pcg.rollbacks"))
        rel_diff = (
            abs(final - clean_final) / max(abs(clean_final), np.finfo(np.float64).tiny)
            if np.isfinite(final)
            else float("inf")
        )
        survived = (
            error is None
            and converged
            and (not sc.expect_identical or rel_diff <= identical_rtol)
        )
        outcomes.append(
            ScenarioOutcome(
                name=sc.name,
                description=sc.description,
                engine=engine,
                plan=plan.to_dict(),
                survived=survived,
                converged=converged,
                expect_identical=sc.expect_identical,
                iterations=iters,
                final_residual=final,
                residual_rel_diff=rel_diff,
                retries=retries,
                timeouts=timeouts,
                checkpoints=checkpoints,
                rollbacks=rollbacks,
                injected={k: v for k, v in injector.counts.items() if v},
                error=error,
            )
        )

    meta = {
        "matrix": matrix_label,
        "n": int(mat.nrows),
        "ranks": int(ranks),
        "seed": int(seed),
        "engine": engine,
        "preconditioned": pre is not None,
        "identical_rtol": identical_rtol,
        "scenarios": len(outcomes),
    }
    return ChaosReport(meta=meta, clean=clean, scenarios=outcomes)

