"""Checkpoint-restart for the Krylov solvers.

Bit-flips that slip past the transport land in the solver's recurrence,
where CG's short recurrences amplify them: the recurrence residual
diverges from the true residual and the solve stalls or explodes.  The
recovery path here is the classic lightweight in-memory scheme:

* every ``checkpoint_interval`` iterations the solver snapshots its
  recurrence state — ``(x, r, d, rz)`` plus the history lengths — via
  :class:`CheckpointManager.save`;
* a divergence trigger (:meth:`CheckpointManager.should_rollback`:
  non-finite residual, residual exploding past ``divergence_factor`` times
  the checkpointed residual, or a ``dᵀAd ≤ 0`` breakdown) restores the
  snapshot and the solver replays from it;
* replay is deterministic: the snapshot restores the exact pre-fault
  state, and the fault injector's sequence numbers have advanced, so the
  replayed iterations compute what a fault-free run would have computed —
  the final residual matches the clean run bitwise.

``pcg`` activates all of this only when given a :class:`ResilienceConfig`
(``pcg(..., resilience=ResilienceConfig())``); the default solver path
does not construct, check or import anything here, keeping the no-alloc
and bench-regression gates at zero overhead.

Emitted observability: ``pcg.checkpoints`` / ``pcg.rollbacks`` counters
and ``resilience.checkpoint`` / ``resilience.rollback`` tracer events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.instrument import get_metrics, get_tracer

__all__ = ["ResilienceConfig", "Checkpoint", "CheckpointManager"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the solver checkpoint-restart path.

    Attributes
    ----------
    checkpoint_interval:
        Iterations between snapshots (iteration 0 is always snapshotted,
        so a rollback target exists from the first iteration).
    divergence_factor:
        Roll back when the recurrence residual exceeds this factor times
        the residual at the last checkpoint.
    max_rollbacks:
        Give up (raise :class:`~repro.errors.ConvergenceError`) after this
        many rollbacks — persistent divergence is a real breakdown, not a
        transient fault.
    """

    checkpoint_interval: int = 10
    divergence_factor: float = 1e3
    max_rollbacks: int = 4


@dataclass
class Checkpoint:
    """One saved recurrence state (deep copies, detached from workspaces)."""

    iteration: int
    residual: float
    rz: float
    x_parts: list[np.ndarray]
    r_parts: list[np.ndarray]
    d_parts: list[np.ndarray]
    history_len: int
    coeff_len: int


class CheckpointManager:
    """Snapshot/rollback driver owned by one resilient solve.

    The solver calls :meth:`due`/:meth:`save` at iteration boundaries and
    :meth:`should_rollback` after each residual update;
    :meth:`rollback` hands back the :class:`Checkpoint` to restore (the
    solver copies the saved arrays back into its — possibly
    workspace-backed — vectors with :meth:`restore_into`).
    """

    def __init__(self, config: ResilienceConfig):
        self.config = config
        self.checkpoint: Checkpoint | None = None
        self.rollbacks = 0

    def due(self, iteration: int) -> bool:
        """Whether a snapshot should be taken before this iteration."""
        interval = max(self.config.checkpoint_interval, 1)
        return iteration % interval == 0

    def save(self, iteration: int, residual: float, rz: float, x, r, d) -> None:
        """Snapshot the recurrence state entering ``iteration``."""
        self.checkpoint = Checkpoint(
            iteration=iteration,
            residual=float(residual),
            rz=float(rz),
            x_parts=[a.copy() for a in x.parts],
            r_parts=[a.copy() for a in r.parts],
            d_parts=[a.copy() for a in d.parts],
            history_len=iteration + 1,
            coeff_len=iteration,
        )
        get_metrics().counter("pcg.checkpoints").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "resilience.checkpoint", index=iteration, residual=float(residual)
            )

    def should_rollback(self, residual: float) -> bool:
        """Divergence trigger: non-finite or exploded recurrence residual."""
        if self.checkpoint is None:
            return False
        if not np.isfinite(residual):
            return True
        return residual > self.config.divergence_factor * max(
            self.checkpoint.residual, np.finfo(np.float64).tiny
        )

    def rollback(self, cause: str) -> Checkpoint:
        """Account one rollback and return the checkpoint to restore.

        Raises :class:`~repro.errors.ConvergenceError` when the rollback
        budget is exhausted or no checkpoint was ever taken.
        """
        ckpt = self.checkpoint
        if ckpt is None:
            raise ConvergenceError(
                "divergence detected before any checkpoint was taken",
                0,
                float("nan"),
            )
        self.rollbacks += 1
        get_metrics().counter("pcg.rollbacks").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "resilience.rollback",
                to_iteration=ckpt.iteration,
                cause=cause,
                rollbacks=self.rollbacks,
            )
        if self.rollbacks > self.config.max_rollbacks:
            raise ConvergenceError(
                f"solver rolled back {self.rollbacks} times (cause: {cause}) — "
                "persistent divergence, not a transient fault",
                ckpt.iteration,
                ckpt.residual,
            )
        return ckpt

    @staticmethod
    def restore_into(saved_parts: list[np.ndarray], vec) -> None:
        """Copy a snapshot's arrays back into a (workspace-backed) vector."""
        for dst, src in zip(vec.parts, saved_parts):
            np.copyto(dst, src)
