"""Fault injection and recovery for the simulated-MPI solver stack.

The paper's solvers run on tens of thousands of cores, where transient
message loss, stragglers and node failures are routine; this package
makes those conditions reproducible offline and verifies that the stack
recovers from them without changing the numerics it is allowed to keep.

Four layers, smallest first:

* :mod:`~repro.resilience.faults` — declarative, seeded
  :class:`FaultPlan` (delays, drops, duplicates, bit-flips, stalls,
  permanent failures) and the :class:`FaultInjector` that the
  :mod:`repro.mpisim.injection` hook exposes to the transport;
* :mod:`~repro.resilience.recovery` — solver checkpoint-restart
  (:class:`ResilienceConfig`, activated via ``pcg(..., resilience=...)``);
* :mod:`~repro.resilience.degraded` — permanent-failure recovery by
  re-partitioning onto the survivors, audited edge-by-edge against the
  communication-invariance checker;
* :mod:`~repro.resilience.chaos` — the scenario harness behind
  ``repro chaos`` and ``scripts/check_resilience.py``, producing a
  versioned :class:`ChaosReport`.

Zero-overhead contract: with no injector installed and no
``resilience=`` config passed, none of this package is imported by the
hot paths — the transport pays one ``is not None`` test per halo update.

See ``docs/RESILIENCE.md`` for the narrative walkthrough.
"""

from repro.resilience.chaos import (
    CHAOS_FORMAT,
    CHAOS_VERSION,
    ChaosError,
    ChaosReport,
    ChaosScenario,
    ScenarioOutcome,
    failure_scenario,
    quick_menu,
    run_chaos,
    standard_menu,
)
from repro.resilience.degraded import (
    DegradedSystem,
    FailoverResult,
    degrade_system,
    degrade_vector,
    solve_with_failover,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    MessageVerdict,
    PayloadBitFlip,
    RankFailure,
    RankStall,
    fault_injection,
)
from repro.resilience.recovery import Checkpoint, CheckpointManager, ResilienceConfig

__all__ = [
    "MessageDelay",
    "MessageDrop",
    "MessageDuplicate",
    "PayloadBitFlip",
    "RankStall",
    "RankFailure",
    "FaultPlan",
    "MessageVerdict",
    "FaultInjector",
    "fault_injection",
    "ResilienceConfig",
    "Checkpoint",
    "CheckpointManager",
    "DegradedSystem",
    "FailoverResult",
    "degrade_system",
    "degrade_vector",
    "solve_with_failover",
    "CHAOS_FORMAT",
    "CHAOS_VERSION",
    "ChaosError",
    "ChaosScenario",
    "ScenarioOutcome",
    "ChaosReport",
    "standard_menu",
    "quick_menu",
    "failure_scenario",
    "run_chaos",
]
