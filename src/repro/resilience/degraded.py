"""Degraded mode: survive a permanent rank failure by re-partitioning.

When an installed :class:`~repro.resilience.RankFailure` fault fires, the
halo update raises :class:`~repro.errors.RankFailedError`.  The recovery
here re-assigns the failed rank's rows to one (or more) surviving ranks —
the *absorbers* — renumbers the survivors into a compact communicator of
``nparts − 1`` ranks, and rebuilds the distributed matrix and halo
schedule on the new partition.

The structural guarantee, checked through the existing communication-
invariance auditor (:mod:`repro.observe.audit`): halo edges between two
survivors that are **not** absorbers are byte-for-byte identical before
and after the failover — only edges touching the failed rank or an
absorber are rebuilt.  :func:`degrade_system` computes that verdict
(:attr:`DegradedSystem.audit`) and raises if it does not hold, so a bug
in the rebuild can never masquerade as a successful recovery.

:func:`solve_with_failover` packages the whole story: run PCG, catch the
failure, acknowledge it with the installed injector (rank ids refer to
the original communicator), rebuild, and re-solve on the survivors.  The
restart is cold — production systems would warm-start from a global
checkpoint; at this scale a cold restart keeps the recovery path small
and exactly as deterministic as a fresh solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dist.matrix import DistMatrix
from repro.dist.partition_map import RowPartition
from repro.dist.vector import DistVector
from repro.errors import PartitionError, RankFailedError
from repro.instrument import get_metrics, get_tracer
from repro.mpisim.injection import get_injector
from repro.observe.audit import InvarianceVerdict, compare_snapshots, schedule_snapshot

__all__ = ["DegradedSystem", "degrade_system", "degrade_vector", "solve_with_failover", "FailoverResult"]


@dataclass
class DegradedSystem:
    """Outcome of a rank-failure re-partition.

    ``rank_map`` translates surviving old rank ids to their new ids (old
    ranks above the failed one shift down by one).  ``audit`` is the
    invariance verdict over the *unaffected* edges — those between
    survivors that absorbed nothing — and is invariant by construction.
    """

    partition: RowPartition
    matrix: DistMatrix
    failed_rank: int
    absorbers: tuple[int, ...]
    rank_map: dict[int, int]
    audit: InvarianceVerdict

    @property
    def nparts(self) -> int:
        """Rank count of the degraded communicator."""
        return self.partition.nparts


def _filtered_snapshot(schedule, keep: Callable[[int, int], bool], remap=None) -> dict:
    """A schedule snapshot restricted to edges ``keep(src, dst)`` selects.

    ``remap`` translates rank ids (new → old) before filtering so degraded
    and original schedules compare in one id space.
    """
    snap = schedule_snapshot(schedule)
    out: dict = {"p2p_messages": {}, "p2p_bytes": {}, "collective_calls": {},
                 "collective_bytes": {}}
    for kind in ("p2p_messages", "p2p_bytes"):
        for (src, dst), value in snap[kind].items():
            if remap is not None:
                src, dst = remap[src], remap[dst]
            if keep(src, dst):
                out[kind][(src, dst)] = value
    return out


def degrade_system(
    mat: DistMatrix, failed_rank: int, *, absorbers: tuple[int, ...] | None = None
) -> DegradedSystem:
    """Re-partition ``mat`` after ``failed_rank`` dies; audit the rebuild.

    ``absorbers`` names the surviving (old) ranks that inherit the failed
    rank's rows, round-robin; by default the survivor owning the fewest
    rows takes all of them, which keeps the set of rebuilt halo edges
    minimal.  Raises :class:`~repro.errors.PartitionError` when the
    unaffected-edge invariance audit fails (a rebuild bug) or fewer than
    two ranks remain.
    """
    part = mat.partition
    if not 0 <= failed_rank < part.nparts:
        raise PartitionError(f"failed rank {failed_rank} out of range")
    if part.nparts < 2:
        raise PartitionError("cannot degrade a single-rank partition")
    survivors = [r for r in range(part.nparts) if r != failed_rank]
    if absorbers is None:
        absorbers = (min(survivors, key=part.size_of),)
    absorbers = tuple(int(a) for a in absorbers)
    if any(a == failed_rank or not 0 <= a < part.nparts for a in absorbers):
        raise PartitionError(f"absorbers {absorbers} must be surviving ranks")

    rank_map = {old: new for new, old in enumerate(survivors)}
    new_owner = part.owner.copy()
    failed_rows = part.global_ids[failed_rank]
    for i, g in enumerate(failed_rows):
        new_owner[g] = absorbers[i % len(absorbers)]
    new_owner = np.array([rank_map[int(r)] for r in new_owner], dtype=np.int64)
    new_part = RowPartition(new_owner, part.nparts - 1)

    with get_tracer().span("resilience.rebuild", failed_rank=failed_rank,
                           absorbers=list(absorbers)):
        new_mat = DistMatrix.from_global(mat.to_global(), new_part)

    inverse = {new: old for old, new in rank_map.items()}
    affected = set(absorbers) | {failed_rank}

    def unaffected(src: int, dst: int) -> bool:
        return src not in affected and dst not in affected

    audit = compare_snapshots(
        _filtered_snapshot(mat.schedule, unaffected),
        _filtered_snapshot(new_mat.schedule, unaffected, remap=inverse),
        base_label=f"original (rank {failed_rank} failed)",
        other_label="degraded/unaffected",
    )
    if not audit.invariant:
        raise PartitionError(
            "degraded rebuild changed halo edges it must not touch:\n" + audit.render()
        )
    metrics = get_metrics()
    metrics.counter("resilience.failovers").inc()
    metrics.gauge("resilience.degraded_ranks").set(new_part.nparts)
    return DegradedSystem(
        partition=new_part,
        matrix=new_mat,
        failed_rank=int(failed_rank),
        absorbers=absorbers,
        rank_map=rank_map,
        audit=audit,
    )


def degrade_vector(vec: DistVector, system: DegradedSystem) -> DistVector:
    """Move a distributed vector onto the degraded partition."""
    return DistVector.from_global(vec.to_global(), system.partition)


@dataclass
class FailoverResult:
    """A solve that may have survived a permanent rank failure.

    ``system`` is ``None`` when no failure occurred; otherwise the solve
    in ``result`` ran on the degraded partition it describes.
    """

    result: object
    system: DegradedSystem | None = None

    @property
    def failed_over(self) -> bool:
        """True when a rank failure was absorbed."""
        return self.system is not None


def solve_with_failover(
    mat: DistMatrix,
    b: DistVector,
    *,
    precond_builder: Callable | None = None,
    absorbers: tuple[int, ...] | None = None,
    **pcg_kwargs,
) -> FailoverResult:
    """PCG that survives one permanent rank failure by degrading.

    ``precond_builder(A_global, partition)`` constructs the preconditioner
    for a given partition (e.g. :func:`repro.core.build_fsai`); it is
    called for the initial partition and again after a failover, because a
    preconditioner's halo schedules are partition-specific.  Remaining
    keyword arguments are forwarded to :func:`repro.core.cg.pcg`.

    On :class:`~repro.errors.RankFailedError` the failure is acknowledged
    with the installed fault injector, the system is rebuilt via
    :func:`degrade_system`, and the solve restarts cold on the survivors.
    """
    from repro.core.cg import pcg

    def build(m: DistMatrix):
        if precond_builder is None:
            return None
        return precond_builder(m.to_global(), m.partition)

    try:
        return FailoverResult(pcg(mat, b, precond=build(mat), **pcg_kwargs))
    except RankFailedError as exc:
        injector = get_injector()
        if injector is not None:
            injector.acknowledge_failure(exc.rank)
        get_tracer().event("resilience.rank_failure", rank=exc.rank)
        system = degrade_system(mat, exc.rank, absorbers=absorbers)
        b2 = degrade_vector(b, system)
        result = pcg(system.matrix, b2, precond=build(system.matrix), **pcg_kwargs)
        return FailoverResult(result, system)
