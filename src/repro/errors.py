"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause without masking
unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SparseFormatError(ReproError):
    """A sparse matrix or pattern violates its structural invariants."""


class ShapeError(ReproError):
    """Operands have incompatible shapes."""


class PartitionError(ReproError):
    """A row partition or graph partition request is invalid."""


class CommError(ReproError):
    """Misuse of the simulated MPI runtime (bad rank, tag, deadlock...)."""


class RankFailedError(CommError):
    """A rank failed permanently under an installed fault plan.

    Raised by the halo-update / message-passing layers when a
    :class:`repro.resilience.RankFailure` fault activates.  Carries the
    failed rank so degraded-mode recovery
    (:func:`repro.resilience.solve_with_failover`) can re-partition its
    rows onto the survivors.

    Attributes
    ----------
    rank:
        The rank declared failed.
    """

    def __init__(self, rank: int, message: str | None = None):
        super().__init__(message or f"rank {rank} failed permanently (injected fault)")
        self.rank = int(rank)


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (bad probability, rank, schema)."""


class BackendError(ReproError):
    """An array backend cannot run the requested kernel configuration.

    Raised when a capability flag rules out the only viable code path —
    e.g. building a reduceat-based SpMV plan on a backend without
    ``ufunc.reduceat`` support (see ``docs/BACKENDS.md``).  Unavailable
    backends do **not** raise this: :func:`repro.backend.get_backend`
    falls back to NumPy with a warning instead.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance within max iterations.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Final residual 2-norm when the solver stopped.
    """

    def __init__(self, message: str, iterations: int, residual_norm: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm


class NotSPDError(ReproError):
    """The matrix is not symmetric positive definite where SPD is required."""
