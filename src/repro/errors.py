"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause without masking
unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SparseFormatError(ReproError):
    """A sparse matrix or pattern violates its structural invariants."""


class ShapeError(ReproError):
    """Operands have incompatible shapes."""


class PartitionError(ReproError):
    """A row partition or graph partition request is invalid."""


class CommError(ReproError):
    """Misuse of the simulated MPI runtime (bad rank, tag, deadlock...)."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance within max iterations.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Final residual 2-norm when the solver stopped.
    """

    def __init__(self, message: str, iterations: int, residual_norm: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm


class NotSPDError(ReproError):
    """The matrix is not symmetric positive definite where SPD is required."""
