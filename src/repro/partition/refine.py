"""Boundary refinement of bisections (Fiduccia–Mattheyses style).

Given a two-way partition, repeatedly move the boundary vertex with the best
*gain* (cut-weight reduction) to the other side, respecting a balance
constraint, and roll back to the best prefix of moves.  This is the classic
FM pass used by multilevel partitioners during uncoarsening.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.graph import Graph

__all__ = ["fm_refine", "bisection_balance"]


def bisection_balance(graph: Graph, part: np.ndarray) -> float:
    """Max side weight divided by ideal (1.0 = perfectly balanced)."""
    w0 = int(graph.vwgt[part == 0].sum())
    w1 = int(graph.vwgt[part == 1].sum())
    ideal = (w0 + w1) / 2.0
    if ideal == 0:
        return 1.0
    return max(w0, w1) / ideal


def _gains(graph: Graph, part: np.ndarray) -> np.ndarray:
    """gain[v] = external degree − internal degree (cut reduction if moved)."""
    n = graph.num_vertices
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    same = part[rows] == part[graph.adjncy]
    gain = np.zeros(n, dtype=np.int64)
    np.add.at(gain, rows, np.where(same, -graph.adjwgt, graph.adjwgt))
    return gain


def fm_refine(
    graph: Graph,
    part: np.ndarray,
    *,
    target: tuple[int, int] | None = None,
    max_imbalance: float = 1.05,
    max_passes: int = 4,
) -> np.ndarray:
    """Refine a bisection in place-semantics (returns a new array).

    Parameters
    ----------
    target:
        Desired vertex-weight per side; defaults to an even split.  Used when
        recursive bisection needs uneven halves (k not a power of two).
    max_imbalance:
        A move is admissible while both sides stay within
        ``max_imbalance × target``.
    max_passes:
        FM passes; each pass moves every vertex at most once.
    """
    part = np.asarray(part, dtype=np.int64).copy()
    total = graph.total_vertex_weight()
    if target is None:
        t0 = total // 2
        target = (t0, total - t0)
    cap = (
        max(1.0, target[0] * max_imbalance),
        max(1.0, target[1] * max_imbalance),
    )
    side_w = np.array(
        [int(graph.vwgt[part == 0].sum()), int(graph.vwgt[part == 1].sum())],
        dtype=np.int64,
    )

    for _ in range(max_passes):
        gain = _gains(graph, part)
        locked = np.zeros(graph.num_vertices, dtype=bool)
        heap: list[tuple[int, int]] = [(-g, v) for v, g in enumerate(gain)]
        heapq.heapify(heap)
        moves: list[int] = []
        cum = 0
        best_cum, best_len = 0, 0
        while heap:
            neg_g, v = heapq.heappop(heap)
            if locked[v] or -neg_g != gain[v]:
                continue  # stale heap entry
            src = int(part[v])
            dst = 1 - src
            w = int(graph.vwgt[v])
            if side_w[dst] + w > cap[dst]:
                locked[v] = True  # cannot move this pass
                continue
            # apply move
            locked[v] = True
            part[v] = dst
            side_w[src] -= w
            side_w[dst] += w
            cum += int(gain[v])
            moves.append(v)
            if cum > best_cum:
                best_cum, best_len = cum, len(moves)
            # update neighbour gains
            lo, hi = graph.xadj[v], graph.xadj[v + 1]
            for u, ew in zip(graph.adjncy[lo:hi], graph.adjwgt[lo:hi]):
                if locked[u]:
                    continue
                # v left u's side: the u–v edge flips internal<->external
                delta = -2 * int(ew) if part[u] == dst else 2 * int(ew)
                gain[u] += delta
                heapq.heappush(heap, (-int(gain[u]), int(u)))
        # roll back moves past the best prefix
        for v in moves[best_len:]:
            dst = int(part[v])
            src = 1 - dst
            w = int(graph.vwgt[v])
            part[v] = src
            side_w[dst] -= w
            side_w[src] += w
        if best_cum <= 0:
            break
    return part
