"""Geometric partitioners for structured-grid matrices.

For stencil matrices whose rows correspond to lexicographically-ordered grid
points, simple strip/block decompositions give near-optimal halos at zero
cost.  Benchmarks use these for the Poisson-family workloads; unstructured
workloads use the multilevel partitioner.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError

__all__ = ["strip_partition", "block_partition_2d", "balanced_chunks"]


def balanced_chunks(n: int, nparts: int) -> np.ndarray:
    """Sizes of ``nparts`` contiguous chunks of ``n`` items (diff ≤ 1)."""
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    if nparts > n:
        raise PartitionError(f"cannot split {n} rows into {nparts} parts")
    base, extra = divmod(n, nparts)
    return np.array([base + (1 if p < extra else 0) for p in range(nparts)], dtype=np.int64)


def strip_partition(n: int, nparts: int) -> np.ndarray:
    """Contiguous row strips: rows ``[o_p, o_{p+1})`` belong to part ``p``."""
    sizes = balanced_chunks(n, nparts)
    return np.repeat(np.arange(nparts, dtype=np.int64), sizes)


def block_partition_2d(nx: int, ny: int, px: int, py: int) -> np.ndarray:
    """Partition an ``nx × ny`` lexicographic grid into a ``px × py`` process grid.

    Row id of grid point ``(i, j)`` is ``i * ny + j`` (row-major).  Returns a
    part id per row.  Minimises halo perimeter compared to strips when the
    grid is squarish.
    """
    if px < 1 or py < 1:
        raise PartitionError("process grid dims must be >= 1")
    if px > nx or py > ny:
        raise PartitionError("more processes than grid lines along an axis")
    xsz = balanced_chunks(nx, px)
    ysz = balanced_chunks(ny, py)
    xid = np.repeat(np.arange(px, dtype=np.int64), xsz)  # grid line -> proc row
    yid = np.repeat(np.arange(py, dtype=np.int64), ysz)
    gi = np.arange(nx, dtype=np.int64)[:, None]
    gj = np.arange(ny, dtype=np.int64)[None, :]
    part2d = xid[gi] * py + yid[gj]
    return part2d.reshape(-1)
