"""Graph coarsening by heavy-edge matching (the METIS coarsening phase).

Each coarsening step computes a maximal matching preferring heavy edges,
collapses matched pairs into single coarse vertices, and rebuilds the coarse
graph with summed vertex and edge weights.
"""

from __future__ import annotations

import numpy as np

from repro.partition.graph import Graph

__all__ = ["heavy_edge_matching", "contract", "coarsen_once"]


def heavy_edge_matching(graph: Graph, rng: np.random.Generator) -> np.ndarray:
    """Return ``match`` where ``match[v]`` is v's partner (or v itself).

    Vertices are visited in random order; each unmatched vertex matches its
    unmatched neighbour connected by the heaviest edge (ties broken by lower
    vertex weight to keep coarse weights even).
    """
    n = graph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        nbrs = graph.neighbours(v)
        wgts = graph.edge_weights(v)
        best, best_w, best_vw = -1, -1, np.iinfo(np.int64).max
        for u, w in zip(nbrs, wgts):
            if match[u] != -1 or u == v:
                continue
            uvw = graph.vwgt[u]
            if w > best_w or (w == best_w and uvw < best_vw):
                best, best_w, best_vw = int(u), int(w), int(uvw)
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    return match


def contract(graph: Graph, match: np.ndarray) -> tuple[Graph, np.ndarray]:
    """Collapse matched pairs; returns ``(coarse_graph, cmap)``.

    ``cmap[v]`` is the coarse vertex holding fine vertex ``v``.
    """
    n = graph.num_vertices
    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cmap[v] != -1:
            continue
        u = match[v]
        cmap[v] = next_id
        if u != v:
            cmap[u] = next_id
        next_id += 1
    nc = next_id

    cvwgt = np.zeros(nc, dtype=np.int64)
    np.add.at(cvwgt, cmap, graph.vwgt)

    # accumulate coarse edges: (cmap[v], cmap[u], w) dropping self loops
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    cr = cmap[rows]
    cc = cmap[graph.adjncy]
    keep = cr != cc
    cr, cc, cw = cr[keep], cc[keep], graph.adjwgt[keep]
    # combine duplicates with a lexsort + segment sum
    order = np.lexsort((cc, cr))
    cr, cc, cw = cr[order], cc[order], cw[order]
    if cr.size:
        new_run = np.concatenate(([True], (cr[1:] != cr[:-1]) | (cc[1:] != cc[:-1])))
        seg = np.cumsum(new_run) - 1
        summed = np.zeros(int(seg[-1]) + 1, dtype=np.int64)
        np.add.at(summed, seg, cw)
        cr, cc, cw = cr[new_run], cc[new_run], summed
    xadj = np.zeros(nc + 1, dtype=np.int64)
    np.add.at(xadj, cr + 1, 1)
    np.cumsum(xadj, out=xadj)
    coarse = Graph(xadj, cc, cw, cvwgt, check=False)
    return coarse, cmap


def coarsen_once(
    graph: Graph, rng: np.random.Generator
) -> tuple[Graph, np.ndarray] | None:
    """One coarsening level; ``None`` when coarsening stops making progress."""
    match = heavy_edge_matching(graph, rng)
    coarse, cmap = contract(graph, match)
    # require meaningful shrinkage, otherwise stop (e.g. star graphs)
    if coarse.num_vertices > 0.95 * graph.num_vertices:
        return None
    return coarse, cmap
