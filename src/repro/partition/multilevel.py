"""Multilevel recursive-bisection graph partitioner (METIS-like).

The paper distributes matrix rows with METIS (§3).  This module provides an
offline-equivalent partitioner: multilevel bisection (heavy-edge-matching
coarsening → greedy graph-growing initial bisection → FM refinement at every
uncoarsening level) applied recursively to produce ``k`` parts with balanced
vertex weight and small edge cut.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import PartitionError
from repro.partition.coarsen import coarsen_once
from repro.partition.graph import Graph
from repro.partition.refine import fm_refine
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern

__all__ = ["bisect", "partition_graph", "partition_matrix"]

_COARSEST_SIZE = 64


def _greedy_grow_bisection(
    graph: Graph, target0: int, rng: np.random.Generator, trials: int = 4
) -> np.ndarray:
    """Grow region 0 by BFS from a random seed until it holds ``target0`` weight.

    Runs several trials and keeps the smallest edge cut.
    """
    n = graph.num_vertices
    best_part: np.ndarray | None = None
    best_cut = None
    for _ in range(max(1, trials)):
        part = np.ones(n, dtype=np.int64)
        seed = int(rng.integers(n))
        grown = 0
        queue: deque[int] = deque([seed])
        visited = np.zeros(n, dtype=bool)
        visited[seed] = True
        while queue and grown < target0:
            v = queue.popleft()
            part[v] = 0
            grown += int(graph.vwgt[v])
            for u in graph.neighbours(v):
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
        # disconnected graph: keep growing from unvisited seeds
        while grown < target0:
            rest = np.flatnonzero(part == 1)
            if rest.size == 0:
                break
            nxt = int(rest[rng.integers(rest.size)])
            part[nxt] = 0
            grown += int(graph.vwgt[nxt])
        cut = graph.edge_cut(part)
        if best_cut is None or cut < best_cut:
            best_part, best_cut = part, cut
    assert best_part is not None
    return best_part


def bisect(
    graph: Graph,
    *,
    target0: int | None = None,
    rng: np.random.Generator | None = None,
    max_imbalance: float = 1.05,
) -> np.ndarray:
    """Two-way multilevel partition; returns 0/1 labels per vertex."""
    rng = np.random.default_rng(0) if rng is None else rng
    total = graph.total_vertex_weight()
    if target0 is None:
        target0 = total // 2
    if not 0 < target0 < max(total, 1):
        raise PartitionError(f"target weight {target0} out of range (total {total})")

    # V-cycle: coarsen to a small graph
    levels: list[tuple[Graph, np.ndarray]] = []  # (fine graph, cmap fine->coarse)
    g = graph
    while g.num_vertices > _COARSEST_SIZE:
        step = coarsen_once(g, rng)
        if step is None:
            break
        coarse, cmap = step
        levels.append((g, cmap))
        g = coarse

    part = _greedy_grow_bisection(g, target0, rng)
    part = fm_refine(
        g, part, target=(target0, total - target0), max_imbalance=max_imbalance
    )

    # uncoarsen with refinement at each level
    for fine, cmap in reversed(levels):
        part = part[cmap]
        part = fm_refine(
            fine, part, target=(target0, total - target0), max_imbalance=max_imbalance
        )
    return part


def partition_graph(
    graph: Graph,
    nparts: int,
    *,
    seed: int = 0,
    max_imbalance: float = 1.05,
) -> np.ndarray:
    """Partition into ``nparts`` balanced parts by recursive bisection.

    Returns an array mapping each vertex to a part id in ``[0, nparts)``.
    Handles any ``nparts >= 1`` (non powers of two split proportionally).
    """
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    n = graph.num_vertices
    if nparts == 1:
        return np.zeros(n, dtype=np.int64)
    if nparts > n:
        raise PartitionError(f"cannot split {n} vertices into {nparts} parts")
    rng = np.random.default_rng(seed)
    part = np.zeros(n, dtype=np.int64)

    def _recurse(vertices: np.ndarray, sub: Graph, parts: int, first_id: int) -> None:
        if parts == 1:
            part[vertices] = first_id
            return
        left = parts // 2
        right = parts - left
        total = sub.total_vertex_weight()
        target0 = int(round(total * left / parts))
        target0 = min(max(target0, 1), max(total - 1, 1))
        labels = bisect(sub, target0=target0, rng=rng, max_imbalance=max_imbalance)
        side0 = np.flatnonzero(labels == 0)
        side1 = np.flatnonzero(labels == 1)
        # guard: a degenerate bisection must still make progress
        if side0.size == 0 or side1.size == 0:
            order = rng.permutation(sub.num_vertices)
            half = max(1, sub.num_vertices * left // parts)
            side0, side1 = np.sort(order[:half]), np.sort(order[half:])
        _recurse(vertices[side0], _induced(sub, side0), left, first_id)
        _recurse(vertices[side1], _induced(sub, side1), right, first_id + left)

    _recurse(np.arange(n, dtype=np.int64), graph, nparts, 0)
    return part


def _induced(graph: Graph, vertices: np.ndarray) -> Graph:
    """Induced subgraph on ``vertices`` (sorted ids)."""
    n = graph.num_vertices
    remap = np.full(n, -1, dtype=np.int64)
    remap[vertices] = np.arange(vertices.size, dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    keep = (remap[rows] != -1) & (remap[graph.adjncy] != -1)
    kr = remap[rows[keep]]
    kc = remap[graph.adjncy[keep]]
    kw = graph.adjwgt[keep]
    xadj = np.zeros(vertices.size + 1, dtype=np.int64)
    np.add.at(xadj, kr + 1, 1)
    np.cumsum(xadj, out=xadj)
    order = np.argsort(kr, kind="stable")
    return Graph(xadj, kc[order], kw[order], graph.vwgt[vertices], check=False)


def partition_matrix(
    mat: CSRMatrix,
    nparts: int,
    *,
    seed: int = 0,
    max_imbalance: float = 1.05,
    weight_by_nnz: bool = False,
) -> np.ndarray:
    """Partition the rows of a square matrix via its adjacency graph.

    ``weight_by_nnz=True`` balances stored entries (SpMV work) per part
    instead of row counts — preferable for matrices with skewed row
    densities, where row-balanced partitions are nnz-imbalanced before any
    pattern extension happens.
    """
    from repro.partition.graph import graph_from_matrix

    graph = graph_from_matrix(mat, weight_by_nnz=weight_by_nnz)
    return partition_graph(graph, nparts, seed=seed, max_imbalance=max_imbalance)
