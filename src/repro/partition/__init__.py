"""Graph partitioning substrate (the repo's METIS stand-in).

Public surface:

* :class:`Graph`, :func:`graph_from_pattern`, :func:`graph_from_matrix`
* :func:`partition_graph`, :func:`partition_matrix` — multilevel recursive
  bisection with FM refinement.
* :func:`strip_partition`, :func:`block_partition_2d` — geometric
  decompositions for structured grids.
"""

from repro.partition.geometric import (
    balanced_chunks,
    block_partition_2d,
    strip_partition,
)
from repro.partition.graph import Graph, graph_from_matrix, graph_from_pattern
from repro.partition.multilevel import bisect, partition_graph, partition_matrix

__all__ = [
    "Graph",
    "graph_from_pattern",
    "graph_from_matrix",
    "bisect",
    "partition_graph",
    "partition_matrix",
    "strip_partition",
    "block_partition_2d",
    "balanced_chunks",
]
