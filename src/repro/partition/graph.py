"""Undirected weighted graphs for matrix partitioning.

The distributed solver partitions the *adjacency graph* of the system matrix
(the paper applies METIS to it, §3).  This module defines the graph type used
by the multilevel partitioner in :mod:`repro.partition.multilevel`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern

__all__ = ["Graph", "graph_from_pattern", "graph_from_matrix"]


class Graph:
    """An undirected graph in CSR adjacency form.

    Attributes
    ----------
    xadj, adjncy:
        CSR adjacency structure: neighbours of vertex ``v`` are
        ``adjncy[xadj[v]:xadj[v+1]]``.  Each undirected edge appears twice.
    adjwgt:
        Edge weights aligned with ``adjncy``.
    vwgt:
        Vertex weights (matrix rows mapped to this vertex).
    """

    __slots__ = ("xadj", "adjncy", "adjwgt", "vwgt")

    def __init__(self, xadj, adjncy, adjwgt=None, vwgt=None, *, check: bool = True):
        self.xadj = np.asarray(xadj, dtype=np.int64)
        self.adjncy = np.asarray(adjncy, dtype=np.int64)
        n = self.xadj.size - 1
        self.adjwgt = (
            np.ones(self.adjncy.size, dtype=np.int64)
            if adjwgt is None
            else np.asarray(adjwgt, dtype=np.int64)
        )
        self.vwgt = (
            np.ones(n, dtype=np.int64) if vwgt is None else np.asarray(vwgt, dtype=np.int64)
        )
        if check:
            self._validate()

    def _validate(self) -> None:
        n = self.num_vertices
        if self.xadj[0] != 0 or np.any(np.diff(self.xadj) < 0):
            raise PartitionError("bad xadj")
        if self.adjncy.size != self.xadj[-1]:
            raise PartitionError("adjncy length mismatch")
        if self.adjwgt.size != self.adjncy.size:
            raise PartitionError("adjwgt length mismatch")
        if self.vwgt.size != n:
            raise PartitionError("vwgt length mismatch")
        if self.adjncy.size:
            if self.adjncy.min() < 0 or self.adjncy.max() >= n:
                raise PartitionError("neighbour index out of range")
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.xadj))
            if np.any(rows == self.adjncy):
                raise PartitionError("self loops are not allowed")

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.xadj.size - 1

    @property
    def num_edges(self) -> int:
        """Undirected edge count (each edge stored twice in CSR)."""
        return self.adjncy.size // 2

    def neighbours(self, v: int) -> np.ndarray:
        """Neighbour ids of vertex ``v`` (a view)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Edge weights of vertex ``v``'s adjacency (a view)."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def total_vertex_weight(self) -> int:
        """Sum of all vertex weights."""
        return int(self.vwgt.sum())

    def edge_cut(self, part: np.ndarray) -> int:
        """Total weight of edges crossing the partition ``part`` (vertex→part)."""
        part = np.asarray(part)
        rows = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.xadj)
        )
        crossing = part[rows] != part[self.adjncy]
        return int(self.adjwgt[crossing].sum()) // 2

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"


def graph_from_pattern(
    pat: SparsityPattern, *, vertex_weights: np.ndarray | None = None
) -> Graph:
    """Adjacency graph of a (square) sparsity pattern.

    The pattern is symmetrised and the diagonal dropped; every edge gets
    unit weight.  ``vertex_weights`` defaults to 1 per row; pass the per-row
    nonzero counts to balance partitions by *work* instead of row count
    (the practical choice when row densities vary, cf. the paper's §5.3.3
    imbalance discussion).
    """
    if pat.nrows != pat.ncols:
        raise PartitionError("adjacency graph needs a square pattern")
    sym = pat.symmetrized()
    rows = np.repeat(np.arange(sym.nrows, dtype=np.int64), sym.row_nnz())
    off = rows != sym.indices
    keep = np.flatnonzero(off)
    xadj = np.zeros(sym.nrows + 1, dtype=np.int64)
    np.add.at(xadj, rows[keep] + 1, 1)
    np.cumsum(xadj, out=xadj)
    return Graph(xadj, sym.indices[keep], vwgt=vertex_weights, check=False)


def graph_from_matrix(mat: CSRMatrix, *, weight_by_nnz: bool = False) -> Graph:
    """Adjacency graph of the pattern of a square matrix.

    ``weight_by_nnz=True`` weights each vertex by its row's stored entries,
    so the partitioner balances nonzeros (SpMV work) rather than rows.
    """
    weights = mat.row_nnz() if weight_by_nnz else None
    return graph_from_pattern(
        SparsityPattern.from_csr(mat), vertex_weights=weights
    )
