"""Additional Krylov solvers beyond CG.

The paper's method lives inside CG (SPD systems), but the SAI preconditioner
family it builds on is routinely used with general Krylov methods.  This
module provides a distributed BiCGSTAB so the :mod:`repro.core.spai`
baseline is actually usable end to end, plus a steepest-descent reference
used by tests as a convergence sanity check.
"""

from __future__ import annotations

import numpy as np

from repro.core.cg import (
    CGResult,
    PrecondLike,
    _FlightProbe,
    resolve_precond,
    resolve_workspace,
    supports_workspace,
)
from repro.dist.matrix import DistMatrix
from repro.dist.vector import DistVector
from repro.errors import ConvergenceError
from repro.instrument import get_metrics, get_tracer
from repro.kernels.workspace import SolverWorkspace
from repro.mpisim.tracker import CommTracker

__all__ = ["bicgstab", "steepest_descent", "pipelined_pcg"]


def _make_apply(precond_fn, ws, tracker):
    """Preconditioner application closure shared by the solvers here.

    Routes through the workspace (fused, allocation-free) when both the
    workspace and the preconditioner support it; each distinct result buffer
    is named by the caller so concurrently-live applications never alias.
    """
    fused = ws is not None and supports_workspace(precond_fn)

    def apply_m(vec: DistVector, out_name: str) -> DistVector:
        if precond_fn is None:
            if ws is not None:
                return ws.vector(out_name).copy_from(vec)
            return vec.copy()
        if fused:
            return precond_fn(vec, tracker, out=ws.vector(out_name), workspace=ws)
        return precond_fn(vec, tracker)

    return apply_m


def bicgstab(
    mat: DistMatrix,
    b: DistVector,
    *,
    precond: PrecondLike = None,
    rtol: float = 1e-8,
    max_iterations: int = 50_000,
    tracker: CommTracker | None = None,
    raise_on_fail: bool = False,
    workspace: SolverWorkspace | bool | None = None,
) -> CGResult:
    """Right-preconditioned BiCGSTAB (van der Vorst 1992).

    Solves ``A x = b`` for general (square, nonsingular) ``A``; with
    ``precond`` it iterates on ``A M y = b``, ``x = M y``, so a
    nonsymmetric SPAI ``M`` is admissible.  ``precond`` accepts a
    preconditioner object (anything with ``.apply``) or a bare callable, like
    :func:`repro.core.cg.pcg`, and the same result type is returned.
    ``workspace`` follows the :func:`repro.core.cg.pcg` contract (``False``
    for the legacy allocating path); arithmetic is identical either way.
    """
    precond_fn = resolve_precond(precond)
    ws = resolve_workspace(workspace, mat)
    apply_m = _make_apply(precond_fn, ws, tracker)

    x = DistVector.zeros(mat.partition)
    r = ws.vector("bicgstab.r").copy_from(b) if ws is not None else b.copy()
    norm0 = r.norm2(tracker)
    history = [norm0]
    if norm0 == 0.0:
        return CGResult(x, 0, True, history)
    target = rtol * norm0

    # shadow residual
    r_hat = ws.vector("bicgstab.r_hat").copy_from(r) if ws is not None else r.copy()
    rho = alpha = omega = 1.0
    v = ws.vector("bicgstab.v") if ws is not None else DistVector.zeros(mat.partition)
    p = ws.vector("bicgstab.p") if ws is not None else DistVector.zeros(mat.partition)
    if ws is not None:
        v.fill(0.0)
        p.fill(0.0)
        s = ws.vector("bicgstab.s")
    converged = False
    iterations = 0
    tracer = get_tracer()
    iter_counter = get_metrics().counter("bicgstab.iterations")
    probe = (
        _FlightProbe(tracer, "bicgstab", mat, b, norm0, tracker)
        if tracer.enabled
        else None
    )
    for _ in range(max_iterations):
        if history[-1] <= target:
            converged = True
            break
        with tracer.span("bicgstab.iteration", index=iterations):
            rho_new = r_hat.dot(r, tracker)
            if rho_new == 0.0 or not np.isfinite(rho_new):
                break  # breakdown
            if iterations == 0:
                p = p.copy_from(r) if ws is not None else r.copy()
            else:
                beta = (rho_new / rho) * (alpha / omega)
                # p = r + beta (p − ω v)
                p.axpy(-omega, v)
                p.xpay(r, beta)
            rho = rho_new
            y = apply_m(p, "bicgstab.y")
            if ws is not None:
                v = ws.spmv(mat, y, out=v, tracker=tracker)
            else:
                v = mat.spmv(y, tracker)
            denom = r_hat.dot(v, tracker)
            if denom == 0.0 or not np.isfinite(denom):
                break
            alpha = rho / denom
            if ws is not None:
                s.copy_from(r).axpy(-alpha, v)
            else:
                s = r.copy().axpy(-alpha, v)
            if s.norm2(tracker) <= target:
                x.axpy(alpha, y)
                history.append(s.norm2(tracker))
                if probe is not None:
                    probe.iteration(iterations, history[-1], x, alpha=alpha, omega=omega)
                iterations += 1
                iter_counter.inc()
                converged = True
                break
            z = apply_m(s, "bicgstab.z")
            if ws is not None:
                t = ws.spmv(mat, z, out=ws.vector("bicgstab.t"), tracker=tracker)
            else:
                t = mat.spmv(z, tracker)
            tt = t.dot(t, tracker)
            if tt == 0.0:
                break
            omega = t.dot(s, tracker) / tt
            x.axpy(alpha, y)
            x.axpy(omega, z)
            if ws is not None:
                r.copy_from(s).axpy(-omega, t)
            else:
                r = s.copy().axpy(-omega, t)
            history.append(r.norm2(tracker))
            if probe is not None:
                probe.iteration(iterations, history[-1], x, alpha=alpha, omega=omega)
            iterations += 1
            iter_counter.inc()
            if omega == 0.0:
                break

    if history[-1] <= target:
        converged = True
    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"BiCGSTAB did not converge in {iterations} iterations",
            iterations,
            history[-1],
        )
    return CGResult(x, iterations, converged, history)


def steepest_descent(
    mat: DistMatrix,
    b: DistVector,
    *,
    rtol: float = 1e-8,
    max_iterations: int = 200_000,
    tracker: CommTracker | None = None,
) -> CGResult:
    """Steepest descent on SPD systems — the slow reference baseline.

    Exists so tests can assert CG's superiority against an independent
    implementation rather than against itself.
    """
    x = DistVector.zeros(mat.partition)
    r = b.copy()
    norm0 = r.norm2(tracker)
    history = [norm0]
    if norm0 == 0.0:
        return CGResult(x, 0, True, history)
    target = rtol * norm0
    iterations = 0
    converged = False
    for _ in range(max_iterations):
        if history[-1] <= target:
            converged = True
            break
        ar = mat.spmv(r, tracker)
        rr = r.dot(r, tracker)
        rar = r.dot(ar, tracker)
        if rar <= 0:
            break
        alpha = rr / rar
        x.axpy(alpha, r)
        r.axpy(-alpha, ar)
        history.append(r.norm2(tracker))
        iterations += 1
    if history[-1] <= target:
        converged = True
    return CGResult(x, iterations, converged, history)


def pipelined_pcg(
    mat: DistMatrix,
    b: DistVector,
    *,
    precond: PrecondLike = None,
    rtol: float = 1e-8,
    max_iterations: int = 50_000,
    tracker: CommTracker | None = None,
    workspace: SolverWorkspace | bool | None = None,
    overlap: bool = False,
) -> CGResult:
    """Pipelined preconditioned CG (Ghysels & Vanroose 2014).

    Mathematically equivalent to :func:`repro.core.cg.pcg` in exact
    arithmetic, but restructured so the two dot products of an iteration are
    computed back-to-back (one allreduce phase instead of three) and the
    SpMV is issued before the reductions complete — the standard
    communication-hiding reformulation for the latency-dominated regime the
    paper's large-scale runs live in.  The price is one extra SpMV-sized
    recurrence per iteration and slightly weaker numerical stability.

    ``precond`` accepts a preconditioner object (anything with ``.apply``)
    or a bare callable, like :func:`repro.core.cg.pcg`; ``workspace`` follows
    the :func:`repro.core.cg.pcg` contract (``False`` for the legacy
    allocating path) with identical arithmetic.

    ``overlap=True`` routes every SpMV through the split-block overlapped
    product (:meth:`~repro.dist.matrix.DistMatrix.spmv` with
    ``overlap=True``): halo receives are posted before the local-block
    compute, the ordering that hides halo latency on a real transport (see
    :func:`repro.dist.spmd.spmd_pipelined_pcg` for the message-passing
    run).  Communication is byte-identical; iterates agree to roundoff
    (split rows accumulate in a different order), and the overlapped SpMV
    takes the allocating path.
    """
    precond_fn = resolve_precond(precond)
    ws = resolve_workspace(workspace, mat)
    apply_m = _make_apply(precond_fn, ws, tracker)

    def fused_dots(*pairs: tuple[DistVector, DistVector]) -> list[float]:
        """Several global dots in ONE allreduce — the pipelining payoff."""
        partials = [
            sum(float(np.dot(a, b_)) for a, b_ in zip(x_.parts, y_.parts))
            for x_, y_ in pairs
        ]
        if tracker is not None:
            tracker.record_collective("allreduce", 8 * len(pairs))
        return partials

    def spmv(vec: DistVector, out_name: str) -> DistVector:
        if overlap:
            return mat.spmv(vec, tracker, overlap=True)
        if ws is not None:
            return ws.spmv(mat, vec, out=ws.vector(out_name), tracker=tracker)
        return mat.spmv(vec, tracker)

    x = DistVector.zeros(mat.partition)
    r = ws.vector("ppcg.r").copy_from(b) if ws is not None else b.copy()
    (norm0_sq,) = fused_dots((b, b))
    norm0 = float(np.sqrt(max(norm0_sq, 0.0)))
    history = [norm0]
    if norm0 == 0.0:
        return CGResult(x, 0, True, history)
    target = rtol * norm0

    u = apply_m(r, "ppcg.u")  # u = M r
    w = spmv(u, "ppcg.w")  # w = A u
    gamma, delta = fused_dots((r, u), (w, u))
    m_w = apply_m(w, "ppcg.m_w")
    n_vec = spmv(m_w, "ppcg.n")

    if ws is not None:
        z = ws.vector("ppcg.z").copy_from(n_vec)
        q = ws.vector("ppcg.q").copy_from(m_w)
        p = ws.vector("ppcg.p").copy_from(u)
        s = ws.vector("ppcg.s").copy_from(w)
    else:
        z = n_vec.copy()
        q = m_w.copy()
        p = u.copy()
        s = w.copy()
    alpha = gamma / delta if delta != 0 else 0.0
    converged = False
    iterations = 0
    tracer = get_tracer()
    iter_counter = get_metrics().counter("pipelined_pcg.iterations")
    probe = (
        _FlightProbe(tracer, "pipelined_pcg", mat, b, norm0, tracker)
        if tracer.enabled
        else None
    )
    for _ in range(max_iterations):
        if history[-1] <= target or delta == 0 or not np.isfinite(alpha):
            break
        with tracer.span("pipelined_pcg.iteration", index=iterations):
            with tracer.span("pcg.axpy"):
                x.axpy(alpha, p)
                r.axpy(-alpha, s)
                u.axpy(-alpha, q)
                w.axpy(-alpha, z)
            # one fused reduction per iteration: ||r||^2, (r,u) and (w,u)
            with tracer.span("pcg.dot", fused=3):
                rr, gamma_new, delta = fused_dots((r, r), (r, u), (w, u))
            history.append(float(np.sqrt(max(rr, 0.0))))
            if probe is not None:
                probe.iteration(iterations, history[-1], x, alpha=alpha)
            iterations += 1
            iter_counter.inc()
            if history[-1] <= target:
                converged = True
                break
            with tracer.span("pcg.precond"):
                m_w = apply_m(w, "ppcg.m_w")
            with tracer.span("pcg.spmv"):
                n_vec = spmv(m_w, "ppcg.n")
            beta = gamma_new / gamma if gamma != 0 else 0.0
            gamma = gamma_new
            denom = delta - beta * gamma / alpha if alpha != 0 else delta
            alpha = gamma / denom if denom != 0 else 0.0
            # pipelined recurrences replace the d-vector update of standard CG
            # (in the workspace path xpay(v, beta) computes the same
            # v + beta·self update in place, bitwise identically)
            with tracer.span("pcg.axpy"):
                if ws is not None:
                    z.xpay(n_vec, beta)
                    q.xpay(m_w, beta)
                    p.xpay(u, beta)
                    s.xpay(w, beta)
                else:
                    z = n_vec.copy().axpy(beta, z)
                    q = m_w.copy().axpy(beta, q)
                    p = u.copy().axpy(beta, p)
                    s = w.copy().axpy(beta, s)

    if history[-1] <= target:
        converged = True
    return CGResult(x, iterations, converged, history)
