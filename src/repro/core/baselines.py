"""Reference preconditioners beyond the FSAI family.

The paper's background (§1) situates FSAI among alternatives such as
Block-Jacobi; these are provided both as sanity baselines for the test suite
and as additional comparators for users.  Each returns a callable with the
same signature as :meth:`repro.core.precond.Preconditioner.apply`.
"""

from __future__ import annotations

import numpy as np

from repro.dist.matrix import DistMatrix
from repro.dist.vector import DistVector
from repro.errors import NotSPDError
from repro.mpisim.tracker import CommTracker

__all__ = ["jacobi_preconditioner", "block_jacobi_preconditioner"]


def jacobi_preconditioner(mat: DistMatrix):
    """Diagonal (point-Jacobi) preconditioner ``z = D⁻¹ r``.

    Communication free: each rank scales its own entries.
    """
    inv_diags = []
    for lm in mat.locals:
        d = np.zeros(lm.n_local)
        for i in range(lm.n_local):
            cols, vals = lm.csr.row(i)
            pos = np.searchsorted(cols, i)
            if pos < cols.size and cols[pos] == i:
                d[i] = vals[pos]
        if np.any(d <= 0):
            raise NotSPDError("Jacobi preconditioner needs a positive diagonal")
        inv_diags.append(1.0 / d)

    def apply(r: DistVector, tracker: CommTracker | None = None) -> DistVector:
        """Scale each rank's residual block by its inverse diagonal."""
        return DistVector(
            r.partition, [inv_d * part for inv_d, part in zip(inv_diags, r.parts)]
        )

    return apply


def block_jacobi_preconditioner(mat: DistMatrix, *, max_block: int = 4096):
    """Block-Jacobi with one block per rank: ``z_p = (A_pp)⁻¹ r_p``.

    The local diagonal block of each rank is factorized densely (Cholesky),
    so this is only practical for modest local sizes — enforced by
    ``max_block``.  Communication free at apply time, like the real method.
    """
    factors = []
    for lm in mat.locals:
        n = lm.n_local
        if n > max_block:
            raise ValueError(
                f"rank {lm.rank}: local block {n} exceeds max_block={max_block}"
            )
        dense = np.zeros((n, n))
        for i in range(n):
            cols, vals = lm.csr.row(i)
            local = cols < n
            dense[i, cols[local]] = vals[local]
        try:
            factors.append(np.linalg.cholesky(dense))
        except np.linalg.LinAlgError as exc:
            raise NotSPDError(
                f"rank {lm.rank}: local diagonal block is not positive definite"
            ) from exc

    def apply(r: DistVector, tracker: CommTracker | None = None) -> DistVector:
        """Forward/backward-substitute each rank's block through its Cholesky factor."""
        parts = []
        for chol, part in zip(factors, r.parts):
            y = np.linalg.solve(chol, part)
            parts.append(np.linalg.solve(chol.T, y))
        return DistVector(r.partition, parts)

    return apply
