"""FSPAI: adaptive (dynamic-pattern) factorized sparse approximate inverse.

The paper's related work (§6) contrasts its *static* patterns with *dynamic*
ones "created through adaptive procedures ... usually more powerful than
static ones, however, they are difficult to parallelize and implement
efficiently, and usually are computationally costlier".  This module
implements that comparator so the trade-off is measurable: a Huckle-style
FSPAI that grows each row's pattern greedily.

Per row ``i`` (independently, like FSAI):

1. start from the diagonal pattern ``J = {i}``;
2. solve the local system for ``g_i`` on ``J``;
3. evaluate the gradient of the Kaporin functional restricted to candidate
   indices ``k < i`` adjacent to ``J`` in ``A``:  ``τ_k = (A g_i)_k``;
4. add the ``per_step`` candidates with the largest ``|τ_k|`` whose value
   passes the relative tolerance, and repeat up to ``max_steps`` times.

The result plugs into the same :class:`~repro.core.precond.Preconditioner`
machinery as FSAI, so CG, the communication tracker and the benchmarks work
unchanged — including the ablation that shows FSPAI *ignores* communication
structure: its additions freely create new halo couplings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fsai import compute_g_values
from repro.errors import ShapeError
from repro.instrument import get_metrics
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern

__all__ = ["FSPAIOptions", "fspai_pattern", "fspai_factor"]


@dataclass(frozen=True)
class FSPAIOptions:
    """Controls of the adaptive pattern search.

    Attributes
    ----------
    max_steps:
        Pattern-growth iterations per row.
    per_step:
        Candidates admitted per growth step.
    tol:
        Relative gradient threshold: a candidate is admitted only when
        ``|τ_k|`` exceeds ``tol · max_j |τ_j|`` of the current step.
    """

    max_steps: int = 3
    per_step: int = 2
    tol: float = 0.05

    def __post_init__(self):
        if self.max_steps < 0 or self.per_step < 1:
            raise ValueError("max_steps must be >= 0 and per_step >= 1")
        if not 0 <= self.tol <= 1:
            raise ValueError("tol must be in [0, 1]")


def _solve_local(mat: CSRMatrix, idx: np.ndarray) -> np.ndarray:
    """Solve ``A[J,J] y = e_last`` for one row's current pattern."""
    sub = mat.submatrix(idx, idx)
    rhs = np.zeros(idx.size)
    rhs[-1] = 1.0
    try:
        return np.linalg.solve(sub, rhs)
    except np.linalg.LinAlgError:
        shift = 1e-12 * max(1.0, float(np.abs(np.diag(sub)).max()))
        return np.linalg.solve(sub + shift * np.eye(idx.size), rhs)


def fspai_pattern(
    mat: CSRMatrix, options: FSPAIOptions = FSPAIOptions()
) -> SparsityPattern:
    """Grow a lower-triangular pattern adaptively, row by row."""
    n = mat.nrows
    if mat.nrows != mat.ncols:
        raise ShapeError("FSPAI needs a square matrix")
    at_rows: list[np.ndarray] = [mat.row(i)[0] for i in range(n)]
    metrics = get_metrics()
    steps_hist = metrics.histogram("fspai.steps_per_row") if metrics.enabled else None

    rows_out: list[np.ndarray] = []
    for i in range(n):
        pattern = np.array([i], dtype=np.int64)
        steps_taken = 0
        for _ in range(options.max_steps):
            y = _solve_local(mat, pattern)
            # candidates: strictly-lower neighbours (in A) of the current
            # pattern that are not yet included
            cand = np.unique(
                np.concatenate([at_rows[int(j)] for j in pattern])
            )
            cand = cand[(cand < i)]
            cand = np.setdiff1d(cand, pattern, assume_unique=False)
            if cand.size == 0:
                break
            # gradient of the objective at the zero-extension: (A g)_k
            sub = mat.submatrix(cand, pattern)
            tau = np.abs(sub @ y)
            if tau.size == 0 or tau.max() == 0.0:
                break
            keep = tau >= options.tol * tau.max()
            cand, tau = cand[keep], tau[keep]
            if cand.size == 0:
                break
            order = np.argsort(-tau, kind="stable")[: options.per_step]
            pattern = np.unique(np.concatenate([pattern, cand[order]]))
            steps_taken += 1
        if steps_hist is not None:
            steps_hist.observe(steps_taken)
        rows_out.append(np.sort(pattern))
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([r.size for r in rows_out])
    if metrics.enabled:
        metrics.gauge("fspai.pattern_nnz").set(int(indptr[-1]))
    return SparsityPattern(
        (n, n), indptr, np.concatenate(rows_out), check=False
    )


def fspai_factor(
    mat: CSRMatrix, options: FSPAIOptions = FSPAIOptions()
) -> CSRMatrix:
    """Adaptive-pattern factor ``G`` with ``GᵀG ≈ A⁻¹``."""
    return compute_g_values(mat, fspai_pattern(mat, options))
