"""FSAI: the Factorized Sparse Approximate Inverse preconditioner (Alg. 1).

Given an SPD matrix ``A`` and a lower-triangular pattern ``S`` (diagonal
included), FSAI computes the sparse lower-triangular ``G`` minimising
``‖I − GL‖_F`` over ``S``, where ``L`` is the (never formed) Cholesky factor
of ``A``.  Row ``i`` of ``G`` solves the small dense SPD system

    A[S_i, S_i] · y = e_m,     g_i = y / sqrt(y_m),

with ``m`` the position of the diagonal inside ``S_i`` (Kolotilina–Yeremin
1993; Chow 2001).  The scaling makes ``diag(G A Gᵀ) = 1``.

Rows are fully independent — the property that makes FSAI attractive on
parallel machines — and the setup exploits it as **batched row solves**:
rows are grouped by pattern size ``k``, each group's local Gram blocks are
gathered into one stacked ``(m, k, k)`` tensor with a single vectorised
binary search over the matrix structure (no Python-level per-row loop), and
each group is solved with one batched ``linalg.solve`` call.  All array work
runs through an :class:`repro.backend.ArrayBackend` namespace, so the same
code drives NumPy today and CuPy when a device is present
(:class:`SetupOptions` selects backend, dtype and batching).

:func:`compute_g_values_per_row` keeps the historical one-small-system-per-
row loop as a reference implementation for equivalence tests and the
``setup_batched`` microbenchmark.  The ``parallel=`` thread-pool knob is
deprecated: the batched setup replaces it (the pool measured ~0.98x — see
docs/BACKENDS.md).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.errors import NotSPDError, ShapeError
from repro.instrument import get_metrics
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import drop_small_relative
from repro.sparse.pattern import SparsityPattern, power_pattern, threshold_pattern

__all__ = [
    "FSAIOptions",
    "SetupOptions",
    "fsai_pattern",
    "compute_g_values",
    "compute_g_values_per_row",
    "fsai_factor",
]

# Tikhonov shift (relative to the submatrix diagonal) applied when a local
# system is numerically singular; mirrors production FSAI codes which guard
# against breakdowns on near-degenerate patterns.
_FALLBACK_SHIFT = 1e-12

#: Compute dtypes the setup accepts (values are stored as float64 either way).
_SETUP_DTYPES = {"float32": np.float32, "float64": np.float64}


@dataclass(frozen=True)
class FSAIOptions:
    """Configuration of the baseline FSAI setup (Alg. 1).

    Attributes
    ----------
    threshold:
        Relative drop tolerance building ``Ã`` from ``A`` (step 1).  The
        paper's evaluation uses 0 — pattern of the lower triangle of ``A``.
    level:
        Sparse level ``N``: the pattern is ``lower(pattern(Ã^N))`` (step 2).
    post_filter:
        Relative tolerance dropping small computed entries of ``G`` followed
        by a recompute on the filtered pattern (step 4).  The paper's
        baseline filters "only null entries" (0.0).
    """

    threshold: float = 0.0
    level: int = 1
    post_filter: float = 0.0

    def __post_init__(self):
        if self.threshold < 0 or self.post_filter < 0:
            raise ValueError("tolerances must be non-negative")
        if self.level < 1:
            raise ValueError("level must be >= 1")


@dataclass(frozen=True)
class SetupOptions:
    """How the FSAI values are computed — backend, precision, batching.

    Collects the runtime knobs of the setup phase (formerly the flat
    ``parallel=`` surface) into one sub-config, carried by
    :class:`repro.core.precond.PrecondOptions` as ``setup=``.

    Attributes
    ----------
    backend:
        Array namespace for the batched solves: a name accepted by
        :func:`repro.backend.get_backend` (``"numpy"``, ``"cupy"``,
        ``"auto"``) or an :class:`~repro.backend.ArrayBackend` instance.
        Unavailable accelerator backends fall back to NumPy with a single
        warning.
    dtype:
        Compute precision of the Gram gather and batched solve,
        ``"float64"`` (default) or ``"float32"``.  The returned ``G`` is
        always stored as float64 CSR; float32 trades last-bits accuracy for
        halved bandwidth during setup.
    batched:
        ``False`` routes to the per-row reference loop
        (:func:`compute_g_values_per_row`) — equivalence testing and
        benchmarking only; the batched path is strictly faster.
    """

    backend: str | ArrayBackend = "numpy"
    dtype: str = "float64"
    batched: bool = True

    def __post_init__(self):
        if isinstance(self.dtype, type) and issubclass(self.dtype, np.generic):
            object.__setattr__(self, "dtype", np.dtype(self.dtype).name)
        if self.dtype not in _SETUP_DTYPES:
            raise ValueError(
                f"dtype must be one of {sorted(_SETUP_DTYPES)}, got {self.dtype!r}"
            )
        if not isinstance(self.backend, ArrayBackend):
            get_backend(self.backend)  # validates the name eagerly

    @property
    def np_dtype(self) -> np.dtype:
        """The compute dtype as a NumPy dtype object."""
        return np.dtype(_SETUP_DTYPES[self.dtype])


def fsai_pattern(mat: CSRMatrix, options: FSAIOptions = FSAIOptions()) -> SparsityPattern:
    """Steps 1–2 of Alg. 1: the a-priori lower-triangular pattern of ``G``."""
    if mat.nrows != mat.ncols:
        raise ShapeError("FSAI needs a square matrix")
    tilde = threshold_pattern(mat, options.threshold)
    powered = power_pattern(tilde, options.level) if options.level > 1 else tilde
    return powered.lower().with_diagonal()


def _consume_parallel(parallel) -> None:
    """Validate and deprecate the legacy ``parallel=`` thread-pool knob.

    The knob predates the batched setup and measured ~0.98x (thread-pool
    overhead cancelled the GIL-released LAPACK calls).  It now warns and
    routes to the batched implementation; worker counts are still validated
    so old misuse keeps raising :class:`ValueError`.
    """
    if parallel is None or parallel is False:
        return
    if parallel is not True:
        workers = int(parallel)
        if workers < 1:
            raise ValueError(
                f"parallel must be a positive worker count, got {parallel}"
            )
    warnings.warn(
        "parallel= is deprecated and ignored: FSAI setup is vectorised into "
        "batched group solves (pass setup=SetupOptions(...) to configure "
        "backend/dtype instead)",
        DeprecationWarning,
        stacklevel=3,
    )


def _check_pattern(mat: CSRMatrix, pattern: SparsityPattern) -> np.ndarray:
    """Shared structural validation; returns per-row pattern sizes."""
    n = mat.nrows
    if pattern.shape != (n, n):
        raise ShapeError("pattern shape does not match the matrix")
    row_sizes = pattern.row_nnz()
    if np.any(row_sizes == 0):
        raise ShapeError("pattern must include every diagonal entry")
    # lower triangular with the diagonal last in every row
    diag_last = pattern.indices[pattern.indptr[1:] - 1]
    bad = np.flatnonzero(diag_last != np.arange(n, dtype=np.int64))
    if bad.size:
        raise ShapeError(
            f"row {int(bad[0])}: pattern is not lower triangular with diagonal"
        )
    return row_sizes


def compute_g_values(
    mat: CSRMatrix,
    pattern: SparsityPattern,
    *,
    setup: SetupOptions | None = None,
    parallel=None,
) -> CSRMatrix:
    """Step 3 of Alg. 1: fill in values of ``G`` on a lower-triangular pattern.

    ``pattern`` must be lower triangular with a full diagonal.  Rows are
    grouped by pattern size ``k``; each group's Gram blocks
    ``A[S_i, S_i]`` are gathered into one stacked ``(m, k, k)`` tensor by a
    vectorised binary search over the matrix structure and solved with a
    single batched ``linalg.solve`` call on the configured backend.
    Singular groups fall back to per-row solves with a tiny diagonal shift.

    ``setup`` selects backend/dtype/batching (:class:`SetupOptions`); the
    default computes in float64 on NumPy and matches the historical per-row
    results to LAPACK rounding (see :func:`compute_g_values_per_row`).

    .. deprecated::
        ``parallel`` (the thread-pool fan-out) is ignored: the batched
        implementation replaced it.  Passing it warns.
    """
    _consume_parallel(parallel)
    setup = setup if setup is not None else SetupOptions()
    if not setup.batched:
        return compute_g_values_per_row(mat, pattern, dtype=setup.np_dtype)
    row_sizes = _check_pattern(mat, pattern)
    n = mat.nrows
    backend = get_backend(setup.backend)
    xp = backend.xp
    dtype = setup.np_dtype

    data = np.empty(pattern.nnz, dtype=np.float64)
    # Global sorted entry keys row*ncols+col: one sorted array over which a
    # batched binary search resolves every (row, col) Gram-block lookup.
    stride = max(n, mat.ncols)
    a_rows = np.repeat(np.arange(n, dtype=np.int64), mat.row_nnz())
    keys = backend.asarray(a_rows * stride + mat.indices)
    avals = backend.asarray(mat.data, dtype=dtype)
    zero = dtype.type(0.0)

    groups = [(int(k), np.flatnonzero(row_sizes == k)) for k in np.unique(row_sizes)]
    for k, rows in groups:
        m = rows.size
        # stacked pattern indices of the group: (m, k), diagonal last
        pos = pattern.indptr[rows][:, None] + np.arange(k, dtype=np.int64)
        idx = pattern.indices[pos]
        # gather the Gram blocks in one shot: query keys (m, k*k) against
        # the global sorted keys, zero where the entry is structurally absent
        queries = backend.asarray(
            (idx[:, :, None] * stride + idx[:, None, :]).reshape(m, k * k)
        )
        loc = xp.searchsorted(keys, queries)
        loc = xp.minimum(loc, keys.size - 1) if keys.size else loc
        subs = xp.where(keys[loc] == queries, avals[loc], zero)
        subs = subs.reshape(m, k, k)
        rhs = xp.zeros((m, k), dtype=dtype)
        rhs[:, k - 1] = 1.0
        try:
            ys = xp.linalg.solve(subs, rhs[:, :, None])[:, :, 0]
            if not bool(xp.all(xp.isfinite(ys))) or bool(xp.any(ys[:, k - 1] <= 0)):
                raise np.linalg.LinAlgError
        except np.linalg.LinAlgError:
            ys = _solve_rows_guarded(
                backend.from_device(subs).astype(np.float64, copy=False)
            )
            ys = backend.asarray(ys, dtype=dtype)
        ys = ys / xp.sqrt(ys[:, k - 1])[:, None]
        data[pos] = backend.from_device(ys)

    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("fsai.batched_groups").inc(len(groups))
        metrics.counter("fsai.batched_rows").inc(n)
        metrics.gauge("fsai.batched_max_block").set(
            max((k for k, _ in groups), default=0)
        )
    return CSRMatrix(
        (n, n), pattern.indptr.copy(), pattern.indices.copy(), data, check=False
    )


def compute_g_values_per_row(
    mat: CSRMatrix,
    pattern: SparsityPattern,
    *,
    dtype: np.dtype | type = np.float64,
) -> CSRMatrix:
    """Reference implementation of step 3: one dense solve per row.

    The historical (seed) setup path, kept verbatim as the baseline the
    batched implementation is equivalence-tested and benchmarked against
    (``setup_batched`` in ``BENCH_kernels.json``).  Produces the same ``G``
    structure as :func:`compute_g_values`; values agree to LAPACK rounding
    (within 1e-12 on well-conditioned fp64 inputs).
    """
    row_sizes = _check_pattern(mat, pattern)
    n = mat.nrows
    dtype = np.dtype(dtype)
    data = np.empty(pattern.nnz, dtype=np.float64)
    rhs_cache: dict[int, np.ndarray] = {}
    for i in range(n):
        lo, hi = int(pattern.indptr[i]), int(pattern.indptr[i + 1])
        idx = pattern.indices[lo:hi]
        k = int(row_sizes[i])
        sub = mat.submatrix(idx, idx).astype(dtype, copy=False)
        rhs = rhs_cache.get(k)
        if rhs is None:
            rhs = np.zeros(k, dtype=dtype)
            rhs[k - 1] = 1.0
            rhs_cache[k] = rhs
        try:
            y = np.linalg.solve(sub, rhs)
            if not np.all(np.isfinite(y)) or y[k - 1] <= 0:
                raise np.linalg.LinAlgError
        except np.linalg.LinAlgError:
            y = _solve_rows_guarded(
                sub.astype(np.float64, copy=False)[None, :, :]
            )[0].astype(dtype)
        data[lo:hi] = y / np.sqrt(y[k - 1])
    return CSRMatrix(
        (n, n), pattern.indptr.copy(), pattern.indices.copy(), data, check=False
    )


def _solve_rows_guarded(subs: np.ndarray) -> np.ndarray:
    """Per-row fallback with escalating diagonal shifts (breakdown guard)."""
    m, k, _ = subs.shape
    out = np.empty((m, k), dtype=np.float64)
    rhs = np.zeros(k)
    rhs[k - 1] = 1.0
    for b in range(m):
        sub = subs[b]
        shift = _FALLBACK_SHIFT * max(1.0, float(np.abs(np.diag(sub)).max()))
        for attempt in range(8):
            try:
                y = np.linalg.solve(sub + np.eye(k) * shift * (10.0**attempt), rhs)
                if np.isfinite(y).all() and y[k - 1] > 0:
                    out[b] = y
                    break
            except np.linalg.LinAlgError:
                continue
        else:
            raise NotSPDError(
                "FSAI local system is not positive definite even after shifting; "
                "the input matrix is likely not SPD"
            )
    return out


def fsai_factor(
    mat: CSRMatrix,
    options: FSAIOptions = FSAIOptions(),
    *,
    setup: SetupOptions | None = None,
    parallel=None,
) -> CSRMatrix:
    """Full Alg. 1: pattern, values, optional post-filter + recompute.

    Returns the lower-triangular factor ``G`` with ``GᵀG ≈ A⁻¹``.
    ``setup`` follows the :func:`compute_g_values` contract; ``parallel``
    is deprecated and ignored (batched setup).
    """
    _consume_parallel(parallel)
    pattern = fsai_pattern(mat, options)
    g = compute_g_values(mat, pattern, setup=setup)
    if options.post_filter > 0.0:
        filtered = drop_small_relative(g, options.post_filter)
        g = compute_g_values(mat, SparsityPattern.from_csr(filtered), setup=setup)
    return g
