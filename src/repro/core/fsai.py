"""FSAI: the Factorized Sparse Approximate Inverse preconditioner (Alg. 1).

Given an SPD matrix ``A`` and a lower-triangular pattern ``S`` (diagonal
included), FSAI computes the sparse lower-triangular ``G`` minimising
``‖I − GL‖_F`` over ``S``, where ``L`` is the (never formed) Cholesky factor
of ``A``.  Row ``i`` of ``G`` solves the small dense SPD system

    A[S_i, S_i] · y = e_m,     g_i = y / sqrt(y_m),

with ``m`` the position of the diagonal inside ``S_i`` (Kolotilina–Yeremin
1993; Chow 2001).  The scaling makes ``diag(G A Gᵀ) = 1``.  Rows are fully
independent — the property that makes FSAI attractive on parallel machines —
and are solved here in dtype-batched groups (all rows with equal pattern
size share one stacked LAPACK call).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import NotSPDError, ShapeError
from repro.instrument import get_metrics
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import drop_small_relative
from repro.sparse.pattern import SparsityPattern, power_pattern, threshold_pattern

__all__ = ["FSAIOptions", "fsai_pattern", "compute_g_values", "fsai_factor"]

# Tikhonov shift (relative to the submatrix diagonal) applied when a local
# system is numerically singular; mirrors production FSAI codes which guard
# against breakdowns on near-degenerate patterns.
_FALLBACK_SHIFT = 1e-12


@dataclass(frozen=True)
class FSAIOptions:
    """Configuration of the baseline FSAI setup (Alg. 1).

    Attributes
    ----------
    threshold:
        Relative drop tolerance building ``Ã`` from ``A`` (step 1).  The
        paper's evaluation uses 0 — pattern of the lower triangle of ``A``.
    level:
        Sparse level ``N``: the pattern is ``lower(pattern(Ã^N))`` (step 2).
    post_filter:
        Relative tolerance dropping small computed entries of ``G`` followed
        by a recompute on the filtered pattern (step 4).  The paper's
        baseline filters "only null entries" (0.0).
    """

    threshold: float = 0.0
    level: int = 1
    post_filter: float = 0.0

    def __post_init__(self):
        if self.threshold < 0 or self.post_filter < 0:
            raise ValueError("tolerances must be non-negative")
        if self.level < 1:
            raise ValueError("level must be >= 1")


def fsai_pattern(mat: CSRMatrix, options: FSAIOptions = FSAIOptions()) -> SparsityPattern:
    """Steps 1–2 of Alg. 1: the a-priori lower-triangular pattern of ``G``."""
    if mat.nrows != mat.ncols:
        raise ShapeError("FSAI needs a square matrix")
    tilde = threshold_pattern(mat, options.threshold)
    powered = power_pattern(tilde, options.level) if options.level > 1 else tilde
    return powered.lower().with_diagonal()


def _resolve_workers(parallel) -> int:
    """Worker count from the ``parallel=`` knob (None/False→1, True→#cpus)."""
    if parallel is None or parallel is False:
        return 1
    if parallel is True:
        return os.cpu_count() or 1
    workers = int(parallel)
    if workers < 1:
        raise ValueError(f"parallel must be a positive worker count, got {parallel}")
    return workers


def _solve_group(
    mat: CSRMatrix, pattern: SparsityPattern, rows: np.ndarray, k: int, data: np.ndarray
) -> None:
    """Solve one batch of same-size rows; write their values into ``data``.

    Each row's entries occupy a disjoint ``data`` slice, so concurrent calls
    on disjoint row sets never race.
    """
    subs = np.empty((rows.size, k, k), dtype=np.float64)
    for b, i in enumerate(rows):
        idx = pattern.row(i)
        if idx[-1] != i:
            raise ShapeError(f"row {i}: pattern is not lower triangular with diagonal")
        subs[b] = mat.submatrix(idx, idx)
    rhs = np.zeros((rows.size, k), dtype=np.float64)
    rhs[:, k - 1] = 1.0
    try:
        ys = np.linalg.solve(subs, rhs[:, :, None])[:, :, 0]
        if not np.all(np.isfinite(ys)) or np.any(ys[:, k - 1] <= 0):
            raise np.linalg.LinAlgError
    except np.linalg.LinAlgError:
        ys = _solve_rows_guarded(subs)
    scale = 1.0 / np.sqrt(ys[:, k - 1])
    ys *= scale[:, None]
    for b, i in enumerate(rows):
        lo, hi = pattern.indptr[i], pattern.indptr[i + 1]
        data[lo:hi] = ys[b]


def compute_g_values(
    mat: CSRMatrix, pattern: SparsityPattern, *, parallel=None
) -> CSRMatrix:
    """Step 3 of Alg. 1: fill in values of ``G`` on a lower-triangular pattern.

    ``pattern`` must be lower triangular with a full diagonal.  Rows are
    grouped by pattern size and solved with one batched ``numpy.linalg.solve``
    per group; singular groups fall back to per-row solves with a tiny
    diagonal shift.

    ``parallel`` fans the row-group solves out over a thread pool (the
    batched LAPACK calls release the GIL): ``True`` uses one worker per CPU,
    an integer sets the worker count, ``None``/``False`` (default) solves
    serially.  Groups are split into per-worker chunks, so on matrices where
    the singular-group fallback triggers, the fallback may cover a different
    row subset than the serial pass — results can then differ in the last
    bits.  On well-conditioned SPD inputs serial and parallel agree exactly.
    """
    n = mat.nrows
    if pattern.shape != (n, n):
        raise ShapeError("pattern shape does not match the matrix")
    row_sizes = pattern.row_nnz()
    if np.any(row_sizes == 0):
        raise ShapeError("pattern must include every diagonal entry")

    workers = _resolve_workers(parallel)
    data = np.empty(pattern.nnz, dtype=np.float64)
    # group rows by |S_i| so each group is one stacked solve
    groups = [(int(k), np.flatnonzero(row_sizes == k)) for k in np.unique(row_sizes)]
    if workers == 1:
        for k, rows in groups:
            _solve_group(mat, pattern, rows, k, data)
    else:
        tasks: list[tuple[int, np.ndarray]] = []
        for k, rows in groups:
            chunk = max(16, -(-rows.size // workers))
            tasks.extend(
                (k, rows[off : off + chunk]) for off in range(0, rows.size, chunk)
            )
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_solve_group, mat, pattern, rows, k, data)
                for k, rows in tasks
            ]
            for future in futures:
                future.result()  # re-raise worker exceptions
        metrics = get_metrics()
        metrics.counter("fsai.parallel_tasks").inc(len(tasks))
        metrics.gauge("fsai.setup_workers").set(workers)
    return CSRMatrix(
        (n, n), pattern.indptr.copy(), pattern.indices.copy(), data, check=False
    )


def _solve_rows_guarded(subs: np.ndarray) -> np.ndarray:
    """Per-row fallback with escalating diagonal shifts (breakdown guard)."""
    m, k, _ = subs.shape
    out = np.empty((m, k), dtype=np.float64)
    rhs = np.zeros(k)
    rhs[k - 1] = 1.0
    for b in range(m):
        sub = subs[b]
        shift = _FALLBACK_SHIFT * max(1.0, float(np.abs(np.diag(sub)).max()))
        for attempt in range(8):
            try:
                y = np.linalg.solve(sub + np.eye(k) * shift * (10.0**attempt), rhs)
                if np.isfinite(y).all() and y[k - 1] > 0:
                    out[b] = y
                    break
            except np.linalg.LinAlgError:
                continue
        else:
            raise NotSPDError(
                "FSAI local system is not positive definite even after shifting; "
                "the input matrix is likely not SPD"
            )
    return out


def fsai_factor(
    mat: CSRMatrix, options: FSAIOptions = FSAIOptions(), *, parallel=None
) -> CSRMatrix:
    """Full Alg. 1: pattern, values, optional post-filter + recompute.

    Returns the lower-triangular factor ``G`` with ``GᵀG ≈ A⁻¹``.
    ``parallel`` follows the :func:`compute_g_values` contract.
    """
    pattern = fsai_pattern(mat, options)
    g = compute_g_values(mat, pattern, parallel=parallel)
    if options.post_filter > 0.0:
        filtered = drop_small_relative(g, options.post_filter)
        g = compute_g_values(mat, SparsityPattern.from_csr(filtered), parallel=parallel)
    return g
