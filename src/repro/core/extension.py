"""Cache-friendly sparse pattern extension (Alg. 3 of the paper).

Candidates for new entries in row ``i`` of ``G`` are the positions of the
SpMV multiplying vector ``x`` that share a cache line with an ``x`` operand
the row already touches — fetching them is free.  In the distributed layout
(:class:`~repro.dist.matrix.LocalMatrix`) ``x`` is ``[x_local | x_halo]``,
so a candidate position is *local* (< ``n_local``) or *halo*.

Admissibility:

* every candidate must keep ``G`` strictly lower triangular in **global**
  numbering (the diagonal is always present already);
* ``LOCAL`` mode (FSAIE, prior work applied per process): only local
  candidates are admitted;
* ``COMM`` mode (FSAIE-Comm, this paper): halo candidates are also admitted
  when they do not change the communication scheme — the column must already
  be received (true for every halo position by construction) **and** the row
  must already be sent to the candidate column's owner, so ``Gᵀ``'s exchange
  is also unchanged (Alg. 3 step 13).

The whole computation is vectorised over the rank's entries: unique
``(row, cache line)`` pairs expand to candidate positions, and membership /
triangularity / ownership checks are array operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.cachesim.lines import doubles_per_line
from repro.dist.matrix import DistMatrix, LocalMatrix

__all__ = ["ExtensionMode", "RankExtension", "extend_rank_pattern", "extend_dist_pattern"]


class ExtensionMode(Enum):
    """Which candidates an extension may admit."""

    LOCAL = "local"  # FSAIE: local columns only
    COMM = "comm"  # FSAIE-Comm: local + communication-free halo columns


@dataclass(frozen=True)
class RankExtension:
    """Additions computed for one rank, in *global* numbering."""

    rank: int
    rows: np.ndarray  # global row ids of added entries
    cols: np.ndarray  # global column ids of added entries
    n_local_added: int
    n_halo_added: int

    @property
    def n_added(self) -> int:
        """Total entries this rank adds."""
        return self.rows.size


def extend_rank_pattern(
    lm: LocalMatrix,
    owner: np.ndarray,
    line_bytes: int,
    mode: ExtensionMode,
) -> RankExtension:
    """Compute the cache-friendly extension of one rank's pattern block.

    Parameters
    ----------
    lm:
        The rank's block of the (lower-triangular) pattern of ``G``, with
        local column indexing.
    owner:
        Global row→rank owner map (used for the halo admissibility rule).
    line_bytes:
        Cache line size of the target machine (64 B or 256 B in the paper).
    mode:
        ``LOCAL`` for FSAIE, ``COMM`` for FSAIE-Comm.
    """
    dpl = doubles_per_line(line_bytes)
    n_local = lm.n_local
    n_total = n_local + lm.n_halo
    csr = lm.csr
    nnz = csr.nnz
    empty = np.empty(0, dtype=np.int64)
    if nnz == 0 or dpl == 1:
        # one value per line: no free neighbours exist
        return RankExtension(lm.rank, empty, empty, 0, 0)

    entry_rows = np.repeat(np.arange(n_local, dtype=np.int64), csr.row_nnz())
    entry_cols = csr.indices

    # unique (row, cache line) pairs — step 6 of Alg. 3 ("already considered
    # column block") collapses duplicates
    n_lines = (n_total + dpl - 1) // dpl
    pair_key = entry_rows * n_lines + entry_cols // dpl
    uniq = np.unique(pair_key)
    urow = uniq // n_lines
    uline = uniq % n_lines

    # expand each pair to the dpl candidate positions of its line (step 10)
    cand_row = np.repeat(urow, dpl)
    cand_col = (uline[:, None] * dpl + np.arange(dpl, dtype=np.int64)).ravel()
    keep = cand_col < n_total
    cand_row, cand_col = cand_row[keep], cand_col[keep]

    # global ids of candidates
    col_global = np.concatenate([lm.global_rows, lm.ext_cols])
    gcol = col_global[cand_col]
    grow = lm.global_rows[cand_row]

    # strict lower-triangularity in global numbering
    keep = gcol < grow
    cand_row, cand_col, gcol = cand_row[keep], cand_col[keep], gcol[keep]

    # drop candidates already present: keys are sorted because CSR rows are
    is_halo = cand_col >= n_local
    entry_key = entry_rows * n_total + entry_cols
    cand_key = cand_row * n_total + cand_col
    pos = np.searchsorted(entry_key, cand_key)
    pos = np.minimum(pos, entry_key.size - 1)
    present = entry_key[pos] == cand_key
    keep = ~present
    cand_row, cand_col, gcol, is_halo = (
        cand_row[keep],
        cand_col[keep],
        gcol[keep],
        is_halo[keep],
    )

    if mode is ExtensionMode.LOCAL:
        keep = ~is_halo
    else:
        # halo candidate (i, j) admissible iff row i is already sent to
        # owner(j): some existing halo entry of row i has that owner
        halo_entries = entry_cols >= n_local
        # (row, owner) keys of existing halo entries
        nparts = int(owner.max()) + 1
        existing_owner = owner[col_global[entry_cols[halo_entries]]]
        sent_key = np.unique(entry_rows[halo_entries] * nparts + existing_owner)
        cand_owner = owner[gcol]
        cand_sent_key = cand_row * nparts + cand_owner
        pos = np.searchsorted(sent_key, cand_sent_key)
        pos = np.minimum(pos, max(sent_key.size - 1, 0))
        row_sent = (
            sent_key[pos] == cand_sent_key if sent_key.size else np.zeros(cand_row.size, bool)
        )
        keep = ~is_halo | row_sent

    cand_row, cand_col, gcol, is_halo = (
        cand_row[keep],
        cand_col[keep],
        gcol[keep],
        is_halo[keep],
    )
    n_halo_added = int(np.count_nonzero(is_halo))
    return RankExtension(
        lm.rank,
        lm.global_rows[cand_row],
        gcol,
        cand_row.size - n_halo_added,
        n_halo_added,
    )


def extend_dist_pattern(
    dist_g: DistMatrix, line_bytes: int, mode: ExtensionMode
) -> list[RankExtension]:
    """Run :func:`extend_rank_pattern` on every rank of a distributed pattern."""
    owner = dist_g.partition.owner
    return [
        extend_rank_pattern(lm, owner, line_bytes, mode) for lm in dist_g.locals
    ]
