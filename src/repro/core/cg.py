"""Distributed (preconditioned) Conjugate Gradient solver (paper §2.1).

The implementation follows the textbook PCG recurrence with the three kernels
the paper identifies: SpMV, AXPY and dot products.  Preconditioning is split
— ``z = Gᵀ(G·r)`` — two SpMV products, exactly as the factorized approximate
inverse is applied in the paper.

Convergence criterion (paper §5.1): reduce the initial residual 2-norm by
``rtol`` (default 1e-8, eight orders of magnitude); initial guess zero.

The ``precond`` argument accepts either a first-class preconditioner object
(anything with an ``.apply(r, tracker)`` method, e.g.
:class:`repro.core.precond.Preconditioner`) or a bare callable
``z = M(r, tracker)``; see :func:`resolve_precond`.

When tracing is enabled (:mod:`repro.instrument`), every iteration emits a
``pcg.iteration`` span with ``pcg.spmv`` / ``pcg.precond`` / ``pcg.dot`` /
``pcg.axpy`` children, and the iteration count accumulates in the
``pcg.iterations`` counter.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.dist.matrix import DistMatrix
from repro.dist.vector import DistVector
from repro.errors import ConvergenceError
from repro.instrument import get_metrics, get_tracer
from repro.kernels.workspace import SolverWorkspace
from repro.mpisim.tracker import CommTracker

__all__ = [
    "CGResult",
    "pcg",
    "cg",
    "resolve_precond",
    "resolve_workspace",
    "supports_workspace",
]

#: A bare preconditioner callable: ``z = M(r, tracker)``.
PrecondFn = Callable[[DistVector, CommTracker | None], DistVector]

#: Anything ``precond=`` accepts: an object with ``.apply``, or a callable.
PrecondLike = Any


def resolve_precond(precond: PrecondLike) -> PrecondFn | None:
    """Normalise the ``precond=`` argument of the Krylov solvers.

    Accepts (in order of precedence):

    * ``None`` — no preconditioning;
    * an object with an ``.apply(r, tracker)`` method, such as
      :class:`repro.core.precond.Preconditioner` — the modern spelling
      ``pcg(A, b, precond=M)``;
    * a bare callable ``z = M(r, tracker)`` — the legacy spelling
      ``pcg(A, b, precond=M.apply)``, still supported.
    """
    if precond is None:
        return None
    apply = getattr(precond, "apply", None)
    if callable(apply):
        return apply
    if callable(precond):
        return precond
    raise TypeError(
        "precond must be None, a Preconditioner-like object with .apply, "
        f"or a callable; got {type(precond).__name__}"
    )


def resolve_workspace(
    workspace: SolverWorkspace | bool | None, mat: DistMatrix
) -> SolverWorkspace | None:
    """Normalise the ``workspace=`` argument of the Krylov solvers.

    ``None`` (the default) builds a fresh :class:`SolverWorkspace` for the
    solve; ``False`` forces the legacy allocating path; an existing workspace
    is reused (its plans and buffers carry over between solves).
    """
    if workspace is False:
        return None
    if workspace is None:
        return SolverWorkspace(mat)
    return workspace


def supports_workspace(apply_m: PrecondFn | None) -> bool:
    """Whether a preconditioner callable accepts ``out=`` / ``workspace=``.

    :meth:`Preconditioner.apply` does; legacy bare callables
    ``z = M(r, tracker)`` keep working through the allocating call.
    """
    if apply_m is None:
        return False
    try:
        params = inspect.signature(apply_m).parameters
    except (TypeError, ValueError):
        return False
    return "out" in params and "workspace" in params


#: Flight-recorder emission contract, parsed by :mod:`repro.observe.flight`.
#: The numbers are duplicated there on purpose: core must stay importable
#: without the observe layer, so neither package imports the other.
TRUE_RESIDUAL_INTERVAL = 25
DIVERGENCE_FACTOR = 10.0


class _FlightProbe:
    """Emission side of the solver flight recorder.

    One instance per traced solve.  Emits a ``flight.iteration`` instant
    event per iteration, an explicit true-residual drift check
    (``‖b − A·x‖₂``) every :data:`TRUE_RESIDUAL_INTERVAL` iterations, and a
    one-shot ``flight.divergence`` the first time the residual exceeds
    :data:`DIVERGENCE_FACTOR` times the initial norm.  Construct only when
    ``tracer.enabled`` is true — hot loops then pay a single
    ``probe is not None`` test per iteration when tracing is off.

    The drift check costs one extra SpMV, charged to the solve's
    :class:`CommTracker` like any other (so traced halo spans and tracker
    accounting stay equal).  It exercises the *same* halo schedule as the
    solve, so the invariance auditor's edge sets and per-update byte counts
    are unchanged by observation.
    """

    __slots__ = ("tracer", "solver", "mat", "b", "norm0", "tracker", "diverged")

    def __init__(
        self,
        tracer,
        solver: str,
        mat: DistMatrix,
        b: DistVector,
        norm0: float,
        tracker: CommTracker | None = None,
    ):
        self.tracer = tracer
        self.solver = solver
        self.mat = mat
        self.b = b
        self.norm0 = norm0
        self.tracker = tracker
        self.diverged = False

    def iteration(self, index: int, residual: float, x: DistVector, **coeffs) -> None:
        """Record iteration ``index`` ending with ``residual`` and iterate ``x``.

        ``coeffs`` carries the recurrence breakdown (``alpha=``, ``beta=`` /
        ``omega=``) and rides in the event tags.
        """
        self.tracer.event(
            "flight.iteration",
            solver=self.solver,
            index=index,
            residual=residual,
            **coeffs,
        )
        if (index + 1) % TRUE_RESIDUAL_INTERVAL == 0:
            ax = self.mat.spmv(x, self.tracker)
            true_res = self.b.copy().axpy(-1.0, ax).norm2(self.tracker)
            drift = abs(true_res - residual) / self.norm0 if self.norm0 else 0.0
            self.tracer.event(
                "flight.true_residual",
                solver=self.solver,
                index=index,
                true_residual=true_res,
                recurrence_residual=residual,
                drift=drift,
            )
        if not self.diverged and (
            not np.isfinite(residual) or residual > DIVERGENCE_FACTOR * self.norm0 > 0
        ):
            self.diverged = True
            self.tracer.event(
                "flight.divergence",
                solver=self.solver,
                index=index,
                residual=residual,
                initial=self.norm0,
            )


@dataclass
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        Solution vector (distributed).
    iterations:
        CG iterations performed.
    converged:
        Whether the residual target was met within ``max_iterations``.
    residual_norms:
        ``‖r‖₂`` at iteration 0, 1, ... (length ``iterations + 1``).
    """

    x: DistVector
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    alphas: list[float] = field(default_factory=list)
    betas: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        """Last recorded residual norm (NaN for empty runs)."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    def spectral_estimate(self):
        """Ritz estimate of the preconditioned operator's spectrum.

        See :func:`repro.analysis.convergence.estimate_spectrum`; available
        when the run performed at least one iteration.
        """
        from repro.analysis.convergence import estimate_spectrum

        return estimate_spectrum(self.alphas, self.betas[: max(len(self.alphas) - 1, 0)])


def pcg(
    mat: DistMatrix,
    b: DistVector,
    *,
    precond: PrecondLike = None,
    rtol: float = 1e-8,
    max_iterations: int = 50_000,
    tracker: CommTracker | None = None,
    raise_on_fail: bool = False,
    workspace: SolverWorkspace | bool | None = None,
    resilience=None,
) -> CGResult:
    """Preconditioned CG on a distributed SPD matrix.

    Parameters
    ----------
    precond:
        The preconditioner ``M``: an object with ``.apply(r, tracker)``
        (e.g. :class:`repro.core.precond.Preconditioner`) or a bare callable
        ``z = M(r, tracker)``.  ``None`` runs plain CG.
    tracker:
        Records halo-update and allreduce traffic of the entire solve.
    raise_on_fail:
        Raise :class:`ConvergenceError` instead of returning an unconverged
        result.
    workspace:
        A :class:`SolverWorkspace` to reuse across solves, ``None`` to build
        one for this solve (the default — hot-loop iterations then perform
        zero array allocations), or ``False`` for the legacy allocating path.
        Workspace solves replay the legacy arithmetic bitwise on the
        reduceat plan path; narrow-row (ELL-planned) operators agree to
        rounding instead — see :mod:`repro.kernels.plan`.
    resilience:
        A :class:`repro.resilience.ResilienceConfig` activates
        checkpoint-restart: the recurrence state ``(x, r, d, rz)`` is
        snapshotted every ``checkpoint_interval`` iterations, and a
        divergence trigger (non-finite/exploding residual or a
        ``dᵀAd ≤ 0`` breakdown) rolls back to the last snapshot and
        replays deterministically.  ``None`` (the default) imports and
        checks nothing — the hot loop is unchanged.
    """
    apply_m = resolve_precond(precond)
    ws = resolve_workspace(workspace, mat)
    fused = ws is not None and supports_workspace(apply_m)
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span("pcg.solve", ranks=mat.partition.nparts,
                     preconditioned=apply_m is not None):
        # x escapes in the result, so it is always freshly allocated
        x = DistVector.zeros(mat.partition)
        r = ws.vector("pcg.r").copy_from(b) if ws is not None else b.copy()
        norm0 = r.norm2(tracker)
        history = [norm0]
        if norm0 == 0.0:
            return CGResult(x, 0, True, history)
        target = rtol * norm0

        z_buf = ws.vector("pcg.z") if ws is not None else None
        ad_buf = ws.vector("pcg.ad") if ws is not None else None

        def _precond(rvec: DistVector) -> DistVector:
            if apply_m is None:
                return z_buf.copy_from(rvec) if z_buf is not None else rvec.copy()
            if fused:
                return apply_m(rvec, tracker, out=z_buf, workspace=ws)
            return apply_m(rvec, tracker)

        with tracer.span("pcg.precond"):
            z = _precond(r)
        d = ws.vector("pcg.d").copy_from(z) if ws is not None else z.copy()
        rz = r.dot(z, tracker)
        converged = False
        iterations = 0
        alphas: list[float] = []
        betas: list[float] = []
        iter_counter = metrics.counter("pcg.iterations")
        probe = (
            _FlightProbe(tracer, "pcg", mat, b, norm0, tracker)
            if tracer.enabled
            else None
        )

        ckpt = None
        if resilience is not None:
            from repro.resilience.recovery import CheckpointManager

            ckpt = CheckpointManager(resilience)

        def _try_rollback(cause: str):
            """One rollback, or ``None`` when the budget is exhausted."""
            try:
                return ckpt.rollback(cause)
            except ConvergenceError:
                if raise_on_fail:
                    raise
                return None

        def _restore(state) -> tuple[float, int]:
            """Rewind (x, r, d) and the recorded histories to ``state``."""
            ckpt.restore_into(state.x_parts, x)
            ckpt.restore_into(state.r_parts, r)
            ckpt.restore_into(state.d_parts, d)
            del history[state.history_len :]
            del alphas[state.coeff_len :]
            del betas[state.coeff_len :]
            return state.rz, state.iteration

        for _ in range(max_iterations):
            if history[-1] <= target:
                converged = True
                break
            if ckpt is not None and ckpt.due(iterations):
                ckpt.save(iterations, history[-1], rz, x, r, d)
            with tracer.span("pcg.iteration", index=iterations) as it_span:
                with tracer.span("pcg.spmv"):
                    if ws is not None:
                        ad = ws.spmv(mat, d, out=ad_buf, tracker=tracker)
                    else:
                        ad = mat.spmv(d, tracker)
                with tracer.span("pcg.dot"):
                    dad = d.dot(ad, tracker)
                if dad <= 0 or not np.isfinite(dad):
                    if ckpt is not None and ckpt.checkpoint is not None:
                        state = _try_rollback("breakdown")
                        if state is not None:
                            rz, iterations = _restore(state)
                            continue
                    it_span.set_tag("aborted", "not SPD or breakdown")
                    break  # matrix not SPD or breakdown
                alpha = rz / dad
                with tracer.span("pcg.axpy"):
                    x.axpy(alpha, d)
                    r.axpy(-alpha, ad)
                with tracer.span("pcg.dot", kind="norm"):
                    history.append(r.norm2(tracker))
                if ckpt is not None and ckpt.should_rollback(history[-1]):
                    state = _try_rollback("divergence")
                    if state is None:
                        it_span.set_tag("aborted", "rollback budget exhausted")
                        break
                    rz, iterations = _restore(state)
                    continue
                with tracer.span("pcg.precond"):
                    z = _precond(r)
                with tracer.span("pcg.dot"):
                    rz_new = r.dot(z, tracker)
                beta = rz_new / rz
                rz = rz_new
                d = _direction_update(z, beta, d)
                alphas.append(alpha)
                betas.append(beta)
                if probe is not None:
                    probe.iteration(iterations, history[-1], x, alpha=alpha, beta=beta)
                iterations += 1
                iter_counter.inc()

        if history[-1] <= target:
            converged = True
        metrics.gauge("pcg.converged").set(converged)
        metrics.gauge("pcg.final_residual").set(history[-1])
    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"CG did not converge in {iterations} iterations "
            f"(residual {history[-1]:.3e}, target {target:.3e})",
            iterations,
            history[-1],
        )
    return CGResult(x, iterations, converged, history, alphas, betas)


def _direction_update(z: DistVector, beta: float, d: DistVector) -> DistVector:
    """``d ← z + beta·d`` reusing ``d``'s storage."""
    return d.xpay(z, beta)


def cg(mat: DistMatrix, b: DistVector, precond: PrecondLike = None, **kwargs) -> CGResult:
    """CG without a preconditioner by default (wrapper around :func:`pcg`).

    ``precond`` is accepted for signature parity with :func:`pcg` — the same
    object-with-``apply``/callable contract applies.
    """
    return pcg(mat, b, precond=precond, **kwargs)
