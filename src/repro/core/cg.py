"""Distributed (preconditioned) Conjugate Gradient solver (paper §2.1).

The implementation follows the textbook PCG recurrence with the three kernels
the paper identifies: SpMV, AXPY and dot products.  Preconditioning is split
— ``z = Gᵀ(G·r)`` — two SpMV products, exactly as the factorized approximate
inverse is applied in the paper.

Convergence criterion (paper §5.1): reduce the initial residual 2-norm by
``rtol`` (default 1e-8, eight orders of magnitude); initial guess zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dist.matrix import DistMatrix
from repro.dist.vector import DistVector
from repro.errors import ConvergenceError
from repro.mpisim.tracker import CommTracker

__all__ = ["CGResult", "pcg", "cg"]

Precond = Callable[[DistVector, CommTracker | None], DistVector]


@dataclass
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        Solution vector (distributed).
    iterations:
        CG iterations performed.
    converged:
        Whether the residual target was met within ``max_iterations``.
    residual_norms:
        ``‖r‖₂`` at iteration 0, 1, ... (length ``iterations + 1``).
    """

    x: DistVector
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    alphas: list[float] = field(default_factory=list)
    betas: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        """Last recorded residual norm (NaN for empty runs)."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    def spectral_estimate(self):
        """Ritz estimate of the preconditioned operator's spectrum.

        See :func:`repro.analysis.convergence.estimate_spectrum`; available
        when the run performed at least one iteration.
        """
        from repro.analysis.convergence import estimate_spectrum

        return estimate_spectrum(self.alphas, self.betas[: max(len(self.alphas) - 1, 0)])


def pcg(
    mat: DistMatrix,
    b: DistVector,
    *,
    precond: Precond | None = None,
    rtol: float = 1e-8,
    max_iterations: int = 50_000,
    tracker: CommTracker | None = None,
    raise_on_fail: bool = False,
) -> CGResult:
    """Preconditioned CG on a distributed SPD matrix.

    Parameters
    ----------
    precond:
        Callable applying the preconditioner, ``z = M·r`` (e.g.
        :meth:`repro.core.precond.Preconditioner.apply`).  ``None`` runs
        plain CG.
    tracker:
        Records halo-update and allreduce traffic of the entire solve.
    raise_on_fail:
        Raise :class:`ConvergenceError` instead of returning an unconverged
        result.
    """
    x = DistVector.zeros(mat.partition)
    r = b.copy()  # x0 = 0 so r0 = b
    norm0 = r.norm2(tracker)
    history = [norm0]
    if norm0 == 0.0:
        return CGResult(x, 0, True, history)
    target = rtol * norm0

    z = precond(r, tracker) if precond is not None else r.copy()
    d = z.copy()
    rz = r.dot(z, tracker)
    converged = False
    iterations = 0
    alphas: list[float] = []
    betas: list[float] = []
    for _ in range(max_iterations):
        if history[-1] <= target:
            converged = True
            break
        ad = mat.spmv(d, tracker)
        dad = d.dot(ad, tracker)
        if dad <= 0 or not np.isfinite(dad):
            break  # matrix not SPD or breakdown
        alpha = rz / dad
        x.axpy(alpha, d)
        r.axpy(-alpha, ad)
        history.append(r.norm2(tracker))
        z = precond(r, tracker) if precond is not None else r.copy()
        rz_new = r.dot(z, tracker)
        beta = rz_new / rz
        rz = rz_new
        d = _direction_update(z, beta, d)
        alphas.append(alpha)
        betas.append(beta)
        iterations += 1

    if history[-1] <= target:
        converged = True
    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"CG did not converge in {iterations} iterations "
            f"(residual {history[-1]:.3e}, target {target:.3e})",
            iterations,
            history[-1],
        )
    return CGResult(x, iterations, converged, history, alphas, betas)


def _direction_update(z: DistVector, beta: float, d: DistVector) -> DistVector:
    """``d ← z + beta·d`` reusing ``d``'s storage."""
    return d.xpay(z, beta)


def cg(mat: DistMatrix, b: DistVector, **kwargs) -> CGResult:
    """Unpreconditioned CG (convenience wrapper around :func:`pcg`)."""
    return pcg(mat, b, precond=None, **kwargs)
