"""The paper's contribution: FSAI, FSAIE and FSAIE-Comm preconditioned CG.

Typical use::

    from repro.core import build_fsaie_comm, pcg, PrecondOptions, FilterSpec
    from repro.dist import RowPartition, DistMatrix, DistVector

    part = RowPartition.from_matrix(A, nparts=16)
    dA = DistMatrix.from_global(A, part)
    M = build_fsaie_comm(A, part, PrecondOptions(filter=FilterSpec(0.01)))
    result = pcg(dA, DistVector.from_global(b, part), precond=M)

``precond=`` takes the preconditioner object itself (anything with an
``.apply(r, tracker)`` method) or a bare callable; see
:func:`repro.core.cg.resolve_precond`.
"""

from repro.core.adaptive import FSPAIOptions, fspai_factor, fspai_pattern
from repro.core.baselines import block_jacobi_preconditioner, jacobi_preconditioner
from repro.core.cg import CGResult, cg, pcg, resolve_precond
from repro.core.extension import (
    ExtensionMode,
    RankExtension,
    extend_dist_pattern,
    extend_rank_pattern,
)
from repro.core.filtering import (
    FilterSpec,
    compute_dynamic_filters,
    dynamic_filter_for_rank,
    entry_ratios,
    extension_entry_mask,
    imbalance_index,
    relative_load,
)
from repro.core.fsai import (
    FSAIOptions,
    SetupOptions,
    compute_g_values,
    compute_g_values_per_row,
    fsai_factor,
    fsai_pattern,
)
from repro.core.solvers import bicgstab, pipelined_pcg, steepest_descent
from repro.core.spai import spai, spai_values
from repro.core.spmd_setup import spmd_build_fsaie_comm
from repro.core.precond import (
    ExtensionWorkspace,
    Preconditioner,
    PrecondOptions,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
    check_comm_invariance,
)

__all__ = [
    "FSAIOptions",
    "SetupOptions",
    "fsai_pattern",
    "compute_g_values",
    "compute_g_values_per_row",
    "fsai_factor",
    "FSPAIOptions",
    "fspai_pattern",
    "fspai_factor",
    "spai",
    "spai_values",
    "bicgstab",
    "pipelined_pcg",
    "steepest_descent",
    "ExtensionMode",
    "RankExtension",
    "extend_rank_pattern",
    "extend_dist_pattern",
    "FilterSpec",
    "entry_ratios",
    "extension_entry_mask",
    "compute_dynamic_filters",
    "dynamic_filter_for_rank",
    "imbalance_index",
    "relative_load",
    "PrecondOptions",
    "ExtensionWorkspace",
    "Preconditioner",
    "build_fsai",
    "build_fsaie",
    "build_fsaie_comm",
    "spmd_build_fsaie_comm",
    "check_comm_invariance",
    "CGResult",
    "pcg",
    "cg",
    "resolve_precond",
    "jacobi_preconditioner",
    "block_jacobi_preconditioner",
]
