"""SPAI: the non-factorized Sparse Approximate Inverse preconditioner.

Background for the paper (§2.2 and related work): SAI/SPAI computes a single
sparse ``M ≈ A⁻¹`` by Frobenius minimisation, column by column —

    min ‖A m_j − e_j‖₂   over columns ``m_j`` supported on a fixed pattern,

each column an independent dense least-squares problem over the rows of
``A`` touched by the column's support (Grote–Huckle 1997, static-pattern
variant).  Unlike FSAI, ``M`` is not symmetric in general, so SPAI pairs
with general Krylov solvers (see :func:`repro.core.solvers.bicgstab`) rather
than CG.  It is included as the classical comparator the FSAI family is
measured against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern, power_pattern

__all__ = ["spai_values", "spai"]


def spai_values(mat: CSRMatrix, pattern: SparsityPattern) -> CSRMatrix:
    """Compute ``M`` on a fixed pattern (``pattern`` holds M's *rows*).

    ``pattern`` is the sparsity of ``M`` in row-major terms: row ``i`` of
    the pattern lists the nonzero columns of row ``i`` of ``M``.  The
    minimisation runs over columns of ``M``, i.e. rows of ``Mᵀ``, so the
    pattern is transposed internally.
    """
    n = mat.nrows
    if mat.nrows != mat.ncols:
        raise ShapeError("SPAI needs a square matrix")
    if pattern.shape != mat.shape:
        raise ShapeError("pattern shape mismatch")

    at = mat.transpose()  # row access to columns of A
    col_pattern = pattern.transpose()  # support of each column of M
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    vals_out: list[np.ndarray] = []
    for j in range(n):
        support = col_pattern.row(j)  # J: nonzero positions of column m_j
        if support.size == 0:
            continue
        # I: rows of A with a nonzero in any column of J = union of the
        # patterns of columns J = rows of Aᵀ restricted to J
        touched: list[np.ndarray] = [at.row(int(k))[0] for k in support]
        rows_i = np.unique(np.concatenate(touched))
        sub = mat.submatrix(rows_i, support)  # A(I, J), dense
        rhs = np.zeros(rows_i.size)
        pos = np.searchsorted(rows_i, j)
        if pos < rows_i.size and rows_i[pos] == j:
            rhs[pos] = 1.0
        coef, *_ = np.linalg.lstsq(sub, rhs, rcond=None)
        rows_out.append(support)
        cols_out.append(np.full(support.size, j, dtype=np.int64))
        vals_out.append(coef)
    if not rows_out:
        return CSRMatrix.zeros(mat.shape)
    return CSRMatrix.from_coo(
        mat.shape,
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(vals_out),
    )


def spai(mat: CSRMatrix, *, level: int = 1) -> CSRMatrix:
    """SPAI with the a-priori pattern of ``A^level`` (diagonal included)."""
    pattern = power_pattern(SparsityPattern.from_csr(mat), level)
    return spai_values(mat, pattern)
