"""Preconditioner construction: FSAI, FSAIE and FSAIE-Comm end to end.

This module wires the full pipelines of Algorithms 1–4:

* :func:`build_fsai` — baseline FSAI on the a-priori pattern.
* :func:`build_fsaie` — FSAI + cache-friendly extension of *local* entries
  (prior work applied per-process, the paper's FSAIE comparator).
* :func:`build_fsaie_comm` — FSAI + communication-aware extension of local
  **and** halo entries (the paper's contribution).

All three return a :class:`Preconditioner` holding the row-distributed ``G``
and ``Gᵀ`` (the preconditioning step is two SpMVs) plus the bookkeeping the
evaluation reports: %NNZ increase, per-rank filters, extension statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.extension import (
    ExtensionMode,
    RankExtension,
    extend_dist_pattern,
)
from repro.core.filtering import (
    FilterSpec,
    compute_dynamic_filters,
    entry_ratios,
    extension_entry_mask,
)
from repro.core.fsai import FSAIOptions, compute_g_values, fsai_pattern
from repro.dist.matrix import DistMatrix
from repro.dist.partition_map import RowPartition
from repro.dist.vector import DistVector
from repro.mpisim.tracker import CommTracker
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern

__all__ = [
    "PrecondOptions",
    "ExtensionWorkspace",
    "Preconditioner",
    "build_fsai",
    "build_fsaie",
    "build_fsaie_comm",
    "check_comm_invariance",
]


@dataclass(frozen=True)
class PrecondOptions:
    """Knobs of the preconditioner pipelines.

    Attributes
    ----------
    fsai:
        Baseline FSAI options (pattern level, thresholds).
    line_bytes:
        Cache line size driving the extension (64 B Skylake/Zen 2, 256 B
        A64FX).
    filter:
        Extension filtering specification (value, static/dynamic).
    """

    fsai: FSAIOptions = FSAIOptions()
    line_bytes: int = 64
    filter: FilterSpec = FilterSpec()


@dataclass
class Preconditioner:
    """A factorized approximate inverse ready to apply inside CG."""

    name: str
    g: DistMatrix
    gt: DistMatrix
    base_nnz: int
    nnz: int
    filters: np.ndarray
    extensions: list[RankExtension] = field(default_factory=list)
    ext_nnz_unfiltered: int = 0

    def apply(self, r: DistVector, tracker: CommTracker | None = None) -> DistVector:
        """Preconditioning step ``z = Gᵀ(G·r)`` — two distributed SpMVs."""
        return self.gt.spmv(self.g.spmv(r, tracker), tracker)

    # metrics the paper's tables report -------------------------------
    @property
    def nnz_increase_percent(self) -> float:
        """%NNZ — added lower-triangular entries relative to the FSAI pattern."""
        if self.base_nnz == 0:
            return 0.0
        return 100.0 * (self.nnz - self.base_nnz) / self.base_nnz

    def nnz_per_rank(self) -> np.ndarray:
        """Stored entries of ``G`` per rank (load-balance metric)."""
        return self.g.nnz_per_rank()

    def flops_per_apply(self) -> int:
        """FLOPs of one ``Gᵀ(Gx)`` application (2 per entry per product)."""
        return 2 * (self.g.nnz + self.gt.nnz)

    def __repr__(self) -> str:
        return (
            f"Preconditioner({self.name}, nnz={self.nnz}, "
            f"+{self.nnz_increase_percent:.2f}% vs FSAI)"
        )


# ----------------------------------------------------------------------
def build_fsai(
    mat: CSRMatrix,
    partition: RowPartition,
    options: PrecondOptions = PrecondOptions(),
) -> Preconditioner:
    """Baseline FSAI preconditioner (Alg. 1), distributed by rows."""
    pattern = fsai_pattern(mat, options.fsai)
    g = compute_g_values(mat, pattern)
    return _distribute("FSAI", g, partition, base_nnz=pattern.nnz,
                       filters=np.zeros(partition.nparts))


def build_fsaie(
    mat: CSRMatrix,
    partition: RowPartition,
    options: PrecondOptions = PrecondOptions(),
) -> Preconditioner:
    """FSAIE: cache-friendly extension of local entries only (Alg. 2)."""
    return _build_extended("FSAIE", mat, partition, options, ExtensionMode.LOCAL)


def build_fsaie_comm(
    mat: CSRMatrix,
    partition: RowPartition,
    options: PrecondOptions = PrecondOptions(),
) -> Preconditioner:
    """FSAIE-Comm: communication-aware local + halo extension (Alg. 3)."""
    return _build_extended("FSAIE-Comm", mat, partition, options, ExtensionMode.COMM)


class ExtensionWorkspace:
    """The filter-independent stages of FSAIE / FSAIE-Comm, precomputed once.

    Building the extension and the unfiltered factor (Alg. 2 steps 1–4)
    dominates setup cost but does not depend on the ``Filter`` value.  A
    workspace caches those stages so parameter sweeps (the paper evaluates
    4 filter values × 2 strategies per matrix) only pay the cheap
    drop-and-recompute of step 5 per configuration via :meth:`finalize`.
    """

    def __init__(
        self,
        name: str,
        mat: CSRMatrix,
        partition: RowPartition,
        mode: ExtensionMode,
        *,
        line_bytes: int = 64,
        fsai: FSAIOptions = FSAIOptions(),
    ):
        self.name = name
        self.mat = mat
        self.partition = partition
        self.mode = mode
        self.line_bytes = line_bytes
        self.base = fsai_pattern(mat, fsai)

        # distribute the *pattern* to obtain the local x-vector layout whose
        # cache lines the extension exploits (values are irrelevant here)
        dist_pattern = DistMatrix.from_global(self.base.to_csr(), partition)
        self.extensions = extend_dist_pattern(dist_pattern, line_bytes, mode)
        ext_rows = (
            np.concatenate([e.rows for e in self.extensions])
            if self.extensions
            else np.empty(0, np.int64)
        )
        ext_cols = (
            np.concatenate([e.cols for e in self.extensions])
            if self.extensions
            else np.empty(0, np.int64)
        )
        self.ext_nnz_unfiltered = int(ext_rows.size)
        s_ext = _union_with_entries(self.base, ext_rows, ext_cols)

        # Alg. 2 step 4: precalculate G on the full extended pattern
        self.g_pre = compute_g_values(mat, s_ext)
        self.ratios = entry_ratios(self.g_pre)
        self.ext_mask = extension_entry_mask(self.g_pre, self.base)
        self.entry_owner = partition.owner[
            np.repeat(np.arange(self.g_pre.nrows, dtype=np.int64), self.g_pre.row_nnz())
        ]
        self.base_counts = np.array(
            [
                int(np.count_nonzero(~self.ext_mask & (self.entry_owner == p)))
                for p in range(partition.nparts)
            ],
            dtype=np.int64,
        )
        self.ext_ratios_per_rank = [
            self.ratios[self.ext_mask & (self.entry_owner == p)]
            for p in range(partition.nparts)
        ]

    def finalize(self, filter_spec: FilterSpec) -> Preconditioner:
        """Filter extension entries and recompute ``G`` (Alg. 2 step 5)."""
        filters = compute_dynamic_filters(
            self.base_counts, self.ext_ratios_per_rank, filter_spec
        )
        drop = self.ext_mask & (self.ratios <= filters[self.entry_owner])
        filtered = self.g_pre.drop_entries(drop)
        g_final = compute_g_values(self.mat, SparsityPattern.from_csr(filtered))
        pre = _distribute(
            self.name, g_final, self.partition, base_nnz=self.base.nnz, filters=filters
        )
        pre.extensions = self.extensions
        pre.ext_nnz_unfiltered = self.ext_nnz_unfiltered
        return pre


def _build_extended(
    name: str,
    mat: CSRMatrix,
    partition: RowPartition,
    options: PrecondOptions,
    mode: ExtensionMode,
) -> Preconditioner:
    workspace = ExtensionWorkspace(
        name, mat, partition, mode, line_bytes=options.line_bytes, fsai=options.fsai
    )
    return workspace.finalize(options.filter)


def _union_with_entries(
    base: SparsityPattern, rows: np.ndarray, cols: np.ndarray
) -> SparsityPattern:
    """Union of a pattern with explicit (row, col) additions."""
    if rows.size == 0:
        return base
    extra = CSRMatrix.from_coo(base.shape, rows, cols, np.ones(rows.size))
    return base.union(SparsityPattern.from_csr(extra))


def _distribute(
    name: str,
    g: CSRMatrix,
    partition: RowPartition,
    *,
    base_nnz: int,
    filters: np.ndarray,
) -> Preconditioner:
    dist_g = DistMatrix.from_global(g, partition)
    dist_gt = DistMatrix.from_global(g.transpose(), partition)
    return Preconditioner(
        name=name,
        g=dist_g,
        gt=dist_gt,
        base_nnz=base_nnz,
        nnz=g.nnz,
        filters=np.asarray(filters, dtype=np.float64),
    )


def check_comm_invariance(base: Preconditioner, extended: Preconditioner) -> bool:
    """The paper's core guarantee: the extended preconditioner exchanges
    exactly the same halo values as the baseline, for both ``G`` and ``Gᵀ``.
    """
    return (
        extended.g.schedule == base.g.schedule
        and extended.gt.schedule == base.gt.schedule
    )
