"""Preconditioner construction: FSAI, FSAIE and FSAIE-Comm end to end.

This module wires the full pipelines of Algorithms 1–4:

* :func:`build_fsai` — baseline FSAI on the a-priori pattern.
* :func:`build_fsaie` — FSAI + cache-friendly extension of *local* entries
  (prior work applied per-process, the paper's FSAIE comparator).
* :func:`build_fsaie_comm` — FSAI + communication-aware extension of local
  **and** halo entries (the paper's contribution).

All three return a :class:`Preconditioner` holding the row-distributed ``G``
and ``Gᵀ`` (the preconditioning step is two SpMVs) plus the bookkeeping the
evaluation reports: %NNZ increase, per-rank filters, extension statistics.
A :class:`Preconditioner` plugs directly into the solvers:
``pcg(dA, b, precond=M)``.

All three builders share one options surface, :class:`PrecondOptions`, and
also accept its fields as direct keyword arguments::

    build_fsaie_comm(A, part, line_bytes=256, filter=FilterSpec(0.05))

Setup phases emit ``precond.*`` spans (pattern, extension, filtering,
factor, distribute) when tracing is enabled — see :mod:`repro.instrument`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.extension import (
    ExtensionMode,
    RankExtension,
    extend_dist_pattern,
)
from repro.core.filtering import (
    FilterSpec,
    compute_dynamic_filters,
    entry_ratios,
    extension_entry_mask,
)
from repro.core.fsai import (
    FSAIOptions,
    SetupOptions,
    _consume_parallel,
    compute_g_values,
    fsai_pattern,
)
from repro.dist.matrix import DistMatrix
from repro.dist.partition_map import RowPartition
from repro.dist.vector import DistVector
from repro.instrument import get_metrics, get_tracer
from repro.mpisim.tracker import CommTracker
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern

__all__ = [
    "PrecondOptions",
    "ExtensionWorkspace",
    "Preconditioner",
    "build_fsai",
    "build_fsaie",
    "build_fsaie_comm",
    "check_comm_invariance",
]

#: Legacy flat keywords forwarded into the ``fsai`` sub-config.
_LEGACY_FSAI_KEYS = ("threshold", "level", "post_filter")
#: Legacy flat keywords forwarded into the ``filter`` sub-config
#: (``filter_value`` was the historical spelling of ``FilterSpec.value``).
_LEGACY_FILTER_KEYS = {
    "filter_value": "value",
    "dynamic": "dynamic",
    "band": "band",
    "max_bisection": "max_bisection",
}
#: Legacy flat keywords forwarded into the ``setup`` sub-config.  ``parallel``
#: maps to no field (the thread pool is gone); it is validated, warned about
#: and dropped — the batched setup replaced it.
_LEGACY_SETUP_KEYS = {
    "backend": "backend",
    "setup_dtype": "dtype",
    "batched": "batched",
}


@dataclass(frozen=True, init=False)
class PrecondOptions:
    """Knobs of the preconditioner pipelines — the one options surface
    shared by :func:`build_fsai`, :func:`build_fsaie` and
    :func:`build_fsaie_comm`.

    Attributes
    ----------
    fsai:
        Baseline FSAI options (pattern level, thresholds); a
        :class:`repro.core.fsai.FSAIOptions` sub-config.
    line_bytes:
        Cache line size driving the extension (64 B Skylake/Zen 2, 256 B
        A64FX).
    filter:
        Extension filtering specification (value, static/dynamic); a
        :class:`repro.core.filtering.FilterSpec` sub-config.
    setup:
        Runtime of the value computation (array backend, compute dtype,
        batching); a :class:`repro.core.fsai.SetupOptions` sub-config.

    Deprecated spellings (still accepted, with a :class:`DeprecationWarning`):
    the flat FSAI keywords ``threshold`` / ``level`` / ``post_filter``
    (forwarded into ``fsai``), the flat filter keywords ``filter_value`` /
    ``dynamic`` / ``band`` / ``max_bisection`` (forwarded into ``filter``),
    the flat setup keywords ``backend`` / ``setup_dtype`` / ``batched``
    (forwarded into ``setup``), ``parallel`` (validated, then dropped — the
    batched setup replaced the thread pool), and a bare float for ``filter``
    (coerced to ``FilterSpec(value)``).
    """

    fsai: FSAIOptions = FSAIOptions()
    line_bytes: int = 64
    filter: FilterSpec = FilterSpec()
    setup: SetupOptions = SetupOptions()

    def __init__(
        self,
        fsai: FSAIOptions | None = None,
        line_bytes: int = 64,
        filter: FilterSpec | float | None = None,
        setup: SetupOptions | None = None,
        **legacy,
    ):
        fsai_kw: dict = {}
        filter_kw: dict = {}
        setup_kw: dict = {}
        for key, val in legacy.items():
            if key in _LEGACY_FSAI_KEYS:
                fsai_kw[key] = val
            elif key in _LEGACY_FILTER_KEYS:
                filter_kw[_LEGACY_FILTER_KEYS[key]] = val
            elif key in _LEGACY_SETUP_KEYS:
                setup_kw[_LEGACY_SETUP_KEYS[key]] = val
            elif key == "parallel":
                _consume_parallel(val)
            else:
                raise TypeError(
                    f"PrecondOptions got an unexpected keyword argument {key!r}"
                )
        if fsai_kw:
            warnings.warn(
                f"flat FSAI keywords {sorted(fsai_kw)} are deprecated; pass "
                "fsai=FSAIOptions(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if fsai is not None:
                raise ValueError(
                    "pass FSAI settings either via fsai= or the flat legacy "
                    "keywords, not both"
                )
            fsai = FSAIOptions(**fsai_kw)
        if filter_kw:
            warnings.warn(
                f"flat filter keywords {sorted(filter_kw)} are deprecated; "
                "pass filter=FilterSpec(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if setup_kw:
            warnings.warn(
                f"flat setup keywords {sorted(setup_kw)} are deprecated; pass "
                "setup=SetupOptions(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if setup is not None:
                raise ValueError(
                    "pass setup settings either via setup= or the flat legacy "
                    "keywords, not both"
                )
            setup = SetupOptions(**setup_kw)
        if isinstance(filter, (int, float)) and not isinstance(filter, bool):
            warnings.warn(
                "filter=<number> is deprecated; pass filter=FilterSpec(value)",
                DeprecationWarning,
                stacklevel=2,
            )
            filter = FilterSpec(float(filter), **filter_kw)
        elif filter is None:
            filter = FilterSpec(**filter_kw)
        elif filter_kw:
            raise ValueError(
                "pass filter settings either via filter= or the flat legacy "
                "keywords, not both"
            )
        object.__setattr__(self, "fsai", fsai if fsai is not None else FSAIOptions())
        object.__setattr__(self, "line_bytes", int(line_bytes))
        object.__setattr__(self, "filter", filter)
        object.__setattr__(self, "setup", setup if setup is not None else SetupOptions())


def _coerce_options(options: PrecondOptions | None, overrides: dict) -> PrecondOptions:
    """Resolve the ``(options, **overrides)`` surface of the builders."""
    if options is None:
        return PrecondOptions(**overrides)
    if overrides:
        raise TypeError(
            "pass either a PrecondOptions object or keyword overrides, not both: "
            f"{sorted(overrides)}"
        )
    return options


@dataclass
class Preconditioner:
    """A factorized approximate inverse ready to apply inside CG.

    Pass it directly to the solvers — ``pcg(dA, b, precond=M)`` — or call
    :meth:`apply` yourself.
    """

    name: str
    g: DistMatrix
    gt: DistMatrix
    base_nnz: int
    nnz: int
    filters: np.ndarray
    extensions: list[RankExtension] = field(default_factory=list)
    ext_nnz_unfiltered: int = 0

    def apply(
        self,
        r: DistVector,
        tracker: CommTracker | None = None,
        *,
        out: DistVector | None = None,
        workspace=None,
    ) -> DistVector:
        """Preconditioning step ``z = Gᵀ(G·r)`` — two distributed SpMVs.

        With a :class:`~repro.kernels.workspace.SolverWorkspace` the products
        run fused through cached kernel plans: ``G·r`` lands in one reused
        intermediate buffer, ``Gᵀ·(G·r)`` directly in ``out`` — zero
        allocations once the workspace is warm.  ``out`` (optional) receives
        the result in-place either way.
        """
        if workspace is not None:
            tmp = workspace.vector(f"precond.gy.{id(self)}")
            workspace.spmv(self.g, r, out=tmp, tracker=tracker)
            if out is None:
                out = workspace.vector(f"precond.z.{id(self)}")
            return workspace.spmv(self.gt, tmp, out=out, tracker=tracker)
        z = self.gt.spmv(self.g.spmv(r, tracker), tracker)
        if out is not None:
            return out.copy_from(z)
        return z

    # metrics the paper's tables report -------------------------------
    @property
    def nnz_increase_percent(self) -> float:
        """%NNZ — added lower-triangular entries relative to the FSAI pattern."""
        if self.base_nnz == 0:
            return 0.0
        return 100.0 * (self.nnz - self.base_nnz) / self.base_nnz

    def nnz_per_rank(self) -> np.ndarray:
        """Stored entries of ``G`` per rank (load-balance metric)."""
        return self.g.nnz_per_rank()

    def flops_per_apply(self) -> int:
        """FLOPs of one ``Gᵀ(Gx)`` application (2 per entry per product)."""
        return 2 * (self.g.nnz + self.gt.nnz)

    def __repr__(self) -> str:
        return (
            f"Preconditioner({self.name}, nnz={self.nnz}, "
            f"+{self.nnz_increase_percent:.2f}% vs FSAI)"
        )


# ----------------------------------------------------------------------
def build_fsai(
    mat: CSRMatrix,
    partition: RowPartition,
    options: PrecondOptions | None = None,
    *,
    parallel=None,
    **overrides,
) -> Preconditioner:
    """Baseline FSAI preconditioner (Alg. 1), distributed by rows.

    ``options`` may be a :class:`PrecondOptions`; alternatively pass its
    fields as keyword arguments (``build_fsai(A, part, fsai=FSAIOptions(level=2))``).
    The factor values are computed as batched row-group solves on the array
    backend selected by ``options.setup`` — see
    :func:`repro.core.fsai.compute_g_values`.  ``parallel`` (the legacy
    thread-pool knob) is deprecated and ignored.
    """
    _consume_parallel(parallel)
    options = _coerce_options(options, overrides)
    tracer = get_tracer()
    with tracer.span("precond.build", method="FSAI"):
        with tracer.span("precond.pattern"):
            pattern = fsai_pattern(mat, options.fsai)
        with tracer.span("precond.factor"):
            g = compute_g_values(mat, pattern, setup=options.setup)
        pre = _distribute("FSAI", g, partition, base_nnz=pattern.nnz,
                          filters=np.zeros(partition.nparts))
    _record_build_metrics(pre)
    return pre


def build_fsaie(
    mat: CSRMatrix,
    partition: RowPartition,
    options: PrecondOptions | None = None,
    *,
    parallel=None,
    **overrides,
) -> Preconditioner:
    """FSAIE: cache-friendly extension of local entries only (Alg. 2).

    Shares the :class:`PrecondOptions` surface (including the ``setup``
    sub-config) of :func:`build_fsai`; ``parallel`` is deprecated.
    """
    _consume_parallel(parallel)
    options = _coerce_options(options, overrides)
    return _build_extended("FSAIE", mat, partition, options, ExtensionMode.LOCAL)


def build_fsaie_comm(
    mat: CSRMatrix,
    partition: RowPartition,
    options: PrecondOptions | None = None,
    *,
    parallel=None,
    **overrides,
) -> Preconditioner:
    """FSAIE-Comm: communication-aware local + halo extension (Alg. 3).

    Shares the :class:`PrecondOptions` surface (including the ``setup``
    sub-config) of :func:`build_fsai`; ``parallel`` is deprecated.
    """
    _consume_parallel(parallel)
    options = _coerce_options(options, overrides)
    return _build_extended("FSAIE-Comm", mat, partition, options, ExtensionMode.COMM)


class ExtensionWorkspace:
    """The filter-independent stages of FSAIE / FSAIE-Comm, precomputed once.

    Building the extension and the unfiltered factor (Alg. 2 steps 1–4)
    dominates setup cost but does not depend on the ``Filter`` value.  A
    workspace caches those stages so parameter sweeps (the paper evaluates
    4 filter values × 2 strategies per matrix) only pay the cheap
    drop-and-recompute of step 5 per configuration via :meth:`finalize`.
    """

    def __init__(
        self,
        name: str,
        mat: CSRMatrix,
        partition: RowPartition,
        mode: ExtensionMode,
        *,
        line_bytes: int = 64,
        fsai: FSAIOptions = FSAIOptions(),
        setup: SetupOptions | None = None,
        parallel=None,
    ):
        _consume_parallel(parallel)
        self.name = name
        self.mat = mat
        self.partition = partition
        self.mode = mode
        self.line_bytes = line_bytes
        self.setup = setup if setup is not None else SetupOptions()
        tracer = get_tracer()
        with tracer.span("precond.workspace", method=name, mode=mode.name):
            with tracer.span("precond.pattern"):
                self.base = fsai_pattern(mat, fsai)

            # distribute the *pattern* to obtain the local x-vector layout
            # whose cache lines the extension exploits (values are irrelevant
            # here)
            with tracer.span("precond.extension", line_bytes=line_bytes):
                dist_pattern = DistMatrix.from_global(self.base.to_csr(), partition)
                self.extensions = extend_dist_pattern(dist_pattern, line_bytes, mode)
                ext_rows = (
                    np.concatenate([e.rows for e in self.extensions])
                    if self.extensions
                    else np.empty(0, np.int64)
                )
                ext_cols = (
                    np.concatenate([e.cols for e in self.extensions])
                    if self.extensions
                    else np.empty(0, np.int64)
                )
                self.ext_nnz_unfiltered = int(ext_rows.size)
                s_ext = _union_with_entries(self.base, ext_rows, ext_cols)

            # Alg. 2 step 4: precalculate G on the full extended pattern
            with tracer.span("precond.factor", stage="precalculate"):
                self.g_pre = compute_g_values(mat, s_ext, setup=self.setup)
            self.ratios = entry_ratios(self.g_pre)
            self.ext_mask = extension_entry_mask(self.g_pre, self.base)
            self.entry_owner = partition.owner[
                np.repeat(np.arange(self.g_pre.nrows, dtype=np.int64), self.g_pre.row_nnz())
            ]
            self.base_counts = np.array(
                [
                    int(np.count_nonzero(~self.ext_mask & (self.entry_owner == p)))
                    for p in range(partition.nparts)
                ],
                dtype=np.int64,
            )
            self.ext_ratios_per_rank = [
                self.ratios[self.ext_mask & (self.entry_owner == p)]
                for p in range(partition.nparts)
            ]

    def finalize(self, filter_spec: FilterSpec) -> Preconditioner:
        """Filter extension entries and recompute ``G`` (Alg. 2 step 5)."""
        tracer = get_tracer()
        with tracer.span("precond.build", method=self.name):
            with tracer.span("precond.filtering", dynamic=filter_spec.dynamic,
                             value=filter_spec.value):
                filters = compute_dynamic_filters(
                    self.base_counts, self.ext_ratios_per_rank, filter_spec
                )
                drop = self.ext_mask & (self.ratios <= filters[self.entry_owner])
                filtered = self.g_pre.drop_entries(drop)
            with tracer.span("precond.factor", stage="recompute"):
                g_final = compute_g_values(
                    self.mat, SparsityPattern.from_csr(filtered), setup=self.setup
                )
            pre = _distribute(
                self.name, g_final, self.partition, base_nnz=self.base.nnz,
                filters=filters,
            )
            pre.extensions = self.extensions
            pre.ext_nnz_unfiltered = self.ext_nnz_unfiltered
        _record_build_metrics(pre)
        return pre


def _build_extended(
    name: str,
    mat: CSRMatrix,
    partition: RowPartition,
    options: PrecondOptions,
    mode: ExtensionMode,
) -> Preconditioner:
    workspace = ExtensionWorkspace(
        name, mat, partition, mode, line_bytes=options.line_bytes, fsai=options.fsai,
        setup=options.setup,
    )
    return workspace.finalize(options.filter)


def _record_build_metrics(pre: Preconditioner) -> None:
    """Publish the build outcome the evaluation tables report."""
    metrics = get_metrics()
    if not metrics.enabled:
        return
    metrics.gauge("precond.nnz", method=pre.name).set(pre.nnz)
    metrics.gauge("precond.nnz_increase_percent", method=pre.name).set(
        pre.nnz_increase_percent
    )
    for rank, nnz in enumerate(pre.nnz_per_rank()):
        metrics.gauge("precond.nnz_rank", method=pre.name, rank=rank).set(int(nnz))


def _union_with_entries(
    base: SparsityPattern, rows: np.ndarray, cols: np.ndarray
) -> SparsityPattern:
    """Union of a pattern with explicit (row, col) additions."""
    if rows.size == 0:
        return base
    extra = CSRMatrix.from_coo(base.shape, rows, cols, np.ones(rows.size))
    return base.union(SparsityPattern.from_csr(extra))


def _distribute(
    name: str,
    g: CSRMatrix,
    partition: RowPartition,
    *,
    base_nnz: int,
    filters: np.ndarray,
) -> Preconditioner:
    with get_tracer().span("precond.distribute"):
        dist_g = DistMatrix.from_global(g, partition)
        dist_gt = DistMatrix.from_global(g.transpose(), partition)
        return Preconditioner(
            name=name,
            g=dist_g,
            gt=dist_gt,
            base_nnz=base_nnz,
            nnz=g.nnz,
            filters=np.asarray(filters, dtype=np.float64),
        )


def check_comm_invariance(base: Preconditioner, extended: Preconditioner) -> bool:
    """The paper's core guarantee: the extended preconditioner exchanges
    exactly the same halo values as the baseline, for both ``G`` and ``Gᵀ``.
    """
    return (
        extended.g.schedule == base.g.schedule
        and extended.gt.schedule == base.gt.schedule
    )
