"""Static and dynamic filtering of pattern-extension entries (§4, Alg. 4).

After the extended factor ``G_ext`` is precalculated (Alg. 2 step 4), small
*extension* entries are filtered out; base-pattern entries are never dropped.
The magnitude test is scale independent (relative to the diagonal, as in
Chow 2001):   drop (i, j)  iff  |g_ij| ≤ filter · sqrt(|g_ii · g_jj|).

*Static* filtering applies one ``Filter`` value on every rank.  *Dynamic*
filtering (this paper's §4) raises the filter on overloaded ranks by
bisection until each rank's stored-entry count is within a tolerance band of
the global average, removing the inter-process imbalance the per-rank
extensions can introduce.

Note on Alg. 4 as printed: its loop guard reads ``while imb > 1.05 AND
imb < 0.95`` which is vacuously false; the surrounding text makes the intent
clear — iterate while the rank's load is *outside* the tolerated band.  We
implement that reading, with an iteration cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.instrument import get_metrics
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern

__all__ = [
    "FilterSpec",
    "entry_ratios",
    "extension_entry_mask",
    "static_filter_counts",
    "dynamic_filter_for_rank",
    "compute_dynamic_filters",
    "imbalance_index",
    "relative_load",
]


@dataclass(frozen=True)
class FilterSpec:
    """How extension entries are filtered.

    Attributes
    ----------
    value:
        The ``Filter`` drop tolerance (the paper sweeps 0.01/0.05/0.1/0.2).
    dynamic:
        Apply Alg. 4's per-rank adjustment on top of ``value``.
    band:
        Tolerated relative-load band around 1.0 (paper: 0.95–1.05).
    max_bisection:
        Iteration cap of the bisection (paper: "setting a maximum amount of
        iterations").
    """

    value: float = 0.01
    dynamic: bool = True
    band: tuple[float, float] = (0.95, 1.05)
    max_bisection: int = 30

    def __post_init__(self):
        if self.value < 0:
            raise ValueError("Filter value must be non-negative")
        lo, hi = self.band
        if not (0 < lo <= 1 <= hi):
            raise ValueError("band must bracket 1.0")


def entry_ratios(g: CSRMatrix) -> np.ndarray:
    """Scale-independent magnitude ``|g_ij| / sqrt(|g_ii·g_jj|)`` per entry.

    An entry is dropped by filter ``f`` iff its ratio is ``<= f``.
    """
    if g.nrows != g.ncols:
        raise ShapeError("entry_ratios expects a square factor")
    diag = np.abs(g.diagonal())
    diag[diag == 0.0] = 1.0
    rows = np.repeat(np.arange(g.nrows, dtype=np.int64), g.row_nnz())
    scale = np.sqrt(diag[rows] * diag[g.indices])
    return np.abs(g.data) / scale


def extension_entry_mask(g: CSRMatrix, base: SparsityPattern) -> np.ndarray:
    """Boolean mask over ``g``'s entries: True where the entry is *extension*
    (absent from the base pattern) and therefore filterable."""
    if g.shape != base.shape:
        raise ShapeError("factor and base pattern shapes differ")
    mask = np.empty(g.nnz, dtype=bool)
    for i in range(g.nrows):
        lo, hi = g.indptr[i], g.indptr[i + 1]
        base_row = base.row(i)
        cols = g.indices[lo:hi]
        pos = np.searchsorted(base_row, cols)
        pos = np.minimum(pos, max(base_row.size - 1, 0))
        in_base = base_row[pos] == cols if base_row.size else np.zeros(cols.size, bool)
        mask[lo:hi] = ~in_base
    return mask


def _count_kept(base_count: int, ext_ratios: np.ndarray, filt: float) -> int:
    """Entries a rank keeps under ``filt``: base plus surviving extension."""
    return base_count + int(np.count_nonzero(ext_ratios > filt))


def static_filter_counts(
    base_counts: np.ndarray, ext_ratios_per_rank: list[np.ndarray], filt: float
) -> np.ndarray:
    """Per-rank kept-entry counts under one global filter value."""
    return np.array(
        [
            _count_kept(int(b), r, filt)
            for b, r in zip(base_counts, ext_ratios_per_rank)
        ],
        dtype=np.int64,
    )


def dynamic_filter_for_rank(
    base_count: int,
    ext_ratios: np.ndarray,
    initial_filter: float,
    average_count: float,
    *,
    band: tuple[float, float] = (0.95, 1.05),
    max_bisection: int = 30,
    monitor=None,
) -> float:
    """Alg. 4 for one rank: adjust the filter until load enters the band.

    ``average_count`` is the global mean kept-entry count computed once with
    the initial filter (the single ``MPI_Allreduce`` of the algorithm).  Only
    overloaded ranks (load above the band) adjust; the filter never drops
    below ``initial_filter`` because base entries dominate underloaded ranks
    and cannot be recovered by filtering.

    ``monitor``, when given, is called as ``monitor(step, filter, load)`` at
    the initial evaluation (``step=0``) and after every bisection step — the
    load-balance monitor (:mod:`repro.observe.balance`) records these as the
    rank's bisection trajectory.
    """
    lo_band, hi_band = band
    if average_count <= 0:
        return initial_filter
    imb = _count_kept(base_count, ext_ratios, initial_filter) / average_count
    if monitor is not None:
        monitor(0, initial_filter, imb)
    if imb <= hi_band:
        return initial_filter
    prev_filter = initial_filter
    new_filter = initial_filter
    for step in range(1, max_bisection + 1):
        if imb > 1.0:
            prev_filter = new_filter
            new_filter = new_filter * 2 if new_filter > 0 else 1e-8
        else:
            new_filter = (new_filter + prev_filter) / 2.0
        imb = _count_kept(base_count, ext_ratios, new_filter) / average_count
        if monitor is not None:
            monitor(step, new_filter, imb)
        if lo_band <= imb <= hi_band:
            break
        # all extension entries filtered and still overloaded: nothing more
        # filtering can do, the base pattern itself is imbalanced
        if imb > hi_band and np.all(ext_ratios <= new_filter):
            break
    return new_filter


def compute_dynamic_filters(
    base_counts: np.ndarray,
    ext_ratios_per_rank: list[np.ndarray],
    spec: FilterSpec,
) -> np.ndarray:
    """Per-rank filter values; static specs return the uniform value.

    When metrics are enabled (:func:`repro.instrument.get_metrics`), each
    rank's bisection is recorded for the load-balance monitor: a
    ``filter.bisection.load`` histogram (the load at every step, initial
    evaluation included), a ``filter.bisection.steps`` counter, and final
    ``filter.value`` / ``filter.load`` gauges — all tagged ``rank=r``.
    """
    nparts = len(ext_ratios_per_rank)
    if not spec.dynamic or nparts == 1:
        return np.full(nparts, spec.value, dtype=np.float64)
    counts = static_filter_counts(base_counts, ext_ratios_per_rank, spec.value)
    average = float(counts.mean())
    metrics = get_metrics()
    filters = np.empty(nparts, dtype=np.float64)
    for rank, (b, r) in enumerate(zip(base_counts, ext_ratios_per_rank)):
        if metrics.enabled:
            load_hist = metrics.histogram("filter.bisection.load", rank=rank)
            step_counter = metrics.counter("filter.bisection.steps", rank=rank)

            def monitor(step, filt, load, _hist=load_hist, _steps=step_counter):
                _hist.observe(load)
                if step > 0:
                    _steps.inc()
        else:
            monitor = None
        filters[rank] = dynamic_filter_for_rank(
            int(b),
            r,
            spec.value,
            average,
            band=spec.band,
            max_bisection=spec.max_bisection,
            monitor=monitor,
        )
        if metrics.enabled and average > 0:
            metrics.gauge("filter.value", rank=rank).set(float(filters[rank]))
            metrics.gauge("filter.load", rank=rank).set(
                _count_kept(int(b), r, float(filters[rank])) / average
            )
    return filters


# ----------------------------------------------------------------------
# load-balance metrics (§5.3.3)
# ----------------------------------------------------------------------
def imbalance_index(nnz_per_rank: np.ndarray) -> float:
    """Average over maximum entries per rank; 1.0 means perfectly balanced."""
    arr = np.asarray(nnz_per_rank, dtype=np.float64)
    if arr.size == 0 or arr.max() == 0:
        return 1.0
    return float(arr.mean() / arr.max())


def relative_load(nnz_per_rank: np.ndarray) -> np.ndarray:
    """Per-rank entries divided by the average (Alg. 4's ``imb``)."""
    arr = np.asarray(nnz_per_rank, dtype=np.float64)
    mean = arr.mean() if arr.size else 0.0
    if mean == 0:
        return np.ones_like(arr)
    return arr / mean
