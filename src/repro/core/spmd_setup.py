"""Distributed (SPMD) preconditioner setup on the mpisim runtime.

Everywhere else the preconditioners are *built* by the driver (each rank's
extension computed in a loop, the factor solved globally) — numerically
identical to the paper's algorithm but bulk-synchronous.  This module
executes the genuine distributed setup of Algorithms 2–4 on the
message-passing runtime, the way the paper's MPI code runs it:

1. each rank holds only its own rows of ``A`` (plus the pattern block);
2. the per-row Frobenius systems ``A[S_i, S_i] y = e`` need off-rank rows of
   ``A`` — ranks exchange exactly the rows their patterns reference
   (a gather along the pattern's column footprint);
3. the cache-friendly extension (Alg. 3) is embarrassingly local;
4. the dynamic filter (Alg. 4) computes the global average entry count with
   one real ``allreduce``, then bisects locally;
5. the final factor rows are computed rank-locally.

Tests assert the result is bit-identical to the driver-side
:func:`repro.core.precond.build_fsaie_comm`.
"""

from __future__ import annotations

import numpy as np

from repro.core.extension import ExtensionMode, extend_rank_pattern
from repro.core.filtering import FilterSpec, dynamic_filter_for_rank
from repro.core.fsai import fsai_pattern
from repro.core.precond import Preconditioner, _distribute
from repro.dist.matrix import DistMatrix
from repro.instrument import get_tracer
from repro.dist.partition_map import RowPartition
from repro.mpisim import SUM, Comm, CommTracker, run_spmd
from repro.sparse.csr import CSRMatrix

__all__ = ["spmd_build_fsaie_comm"]

_TAG_ROWREQ = 8_100
_TAG_ROWDATA = 8_101


def _gather_foreign_rows(
    comm: Comm,
    partition: RowPartition,
    local_a: CSRMatrix,
    my_rows: np.ndarray,
    needed: np.ndarray,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Fetch the off-rank rows of ``A`` listed in ``needed``.

    Every rank sends each owner the list of global rows it wants, then
    receives ``(cols, vals)`` per row.  Returns ``{global_row: (cols, vals)}``
    including the locally owned rows.
    """
    p = comm.rank
    owner = partition.owner
    local_index = partition.local_index

    rows_by_owner: dict[int, np.ndarray] = {}
    for q in range(comm.size):
        if q == p:
            continue
        mine = needed[owner[needed] == q]
        rows_by_owner[q] = mine
    # exchange request lists (alltoall-style with explicit messages)
    for q, want in rows_by_owner.items():
        comm.send(want, q, _TAG_ROWREQ)
    requests_for_me: dict[int, np.ndarray] = {}
    for q in range(comm.size):
        if q != p:
            requests_for_me[q] = comm.recv(q, _TAG_ROWREQ)
    # serve requests from the local block
    for q, wanted in requests_for_me.items():
        payload = []
        for g in np.asarray(wanted, dtype=np.int64):
            li = int(local_index[g])
            cols, vals = local_a.row(li)
            payload.append((int(g), cols.copy(), vals.copy()))
        comm.send(payload, q, _TAG_ROWDATA)
    # collect
    table: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for li, g in enumerate(my_rows):
        cols, vals = local_a.row(li)
        table[int(g)] = (cols, vals)
    for q in rows_by_owner:
        for g, cols, vals in comm.recv(q, _TAG_ROWDATA):
            table[g] = (cols, vals)
    return table


def _solve_rows(
    row_table: dict[int, tuple[np.ndarray, np.ndarray]],
    pattern_rows: dict[int, np.ndarray],
) -> dict[int, np.ndarray]:
    """Solve ``A[S_i, S_i] y = e_last`` per owned row from gathered A rows."""
    out: dict[int, np.ndarray] = {}
    for g, idx in pattern_rows.items():
        k = idx.size
        sub = np.zeros((k, k))
        for r, gi in enumerate(idx):
            cols, vals = row_table[int(gi)]
            pos = np.searchsorted(cols, idx)
            pos = np.minimum(pos, max(cols.size - 1, 0))
            hit = (cols[pos] == idx) if cols.size else np.zeros(k, bool)
            sub[r, hit] = vals[pos[hit]]
        rhs = np.zeros(k)
        rhs[k - 1] = 1.0
        try:
            y = np.linalg.solve(sub, rhs)
        except np.linalg.LinAlgError:
            shift = 1e-12 * max(1.0, float(np.abs(np.diag(sub)).max()))
            y = np.linalg.solve(sub + shift * np.eye(k), rhs)
        out[g] = y / np.sqrt(y[k - 1])
    return out


def spmd_build_fsaie_comm(
    mat: CSRMatrix,
    partition: RowPartition,
    *,
    line_bytes: int = 64,
    filter_spec: FilterSpec = FilterSpec(),
    tracker: CommTracker | None = None,
    timeout: float = 120.0,
) -> Preconditioner:
    """Build FSAIE-Comm entirely inside SPMD ranks (real message passing).

    The driver only distributes the input and reassembles the result; every
    algorithmic step — pattern extension, row gathering, the Alg. 4
    allreduce and bisection, the factor solves — runs rank-local on
    :mod:`repro.mpisim`.
    """
    base = fsai_pattern(mat)
    dist_a = DistMatrix.from_global(mat, partition)
    dist_pattern = DistMatrix.from_global(base.to_csr(), partition)
    owner = partition.owner

    def _rank_program(comm: Comm):
        p = comm.rank
        tracer = get_tracer()
        lm_pattern = dist_pattern.locals[p]
        lm_a = dist_a.locals[p]
        my_rows = partition.global_ids[p]

        # Alg. 3: local cache-friendly communication-aware extension
        with tracer.span("spmd.extension", rank=p):
            ext = extend_rank_pattern(lm_pattern, owner, line_bytes, ExtensionMode.COMM)

        # per-row extended patterns in global column ids
        pattern_rows: dict[int, np.ndarray] = {}
        col_global = np.concatenate([lm_pattern.global_rows, lm_pattern.ext_cols])
        for li, g in enumerate(my_rows):
            cols = col_global[lm_pattern.csr.row(li)[0]]
            pattern_rows[int(g)] = np.sort(cols)
        for gi, gj in zip(ext.rows, ext.cols):
            gi = int(gi)
            pattern_rows[gi] = np.unique(np.append(pattern_rows[gi], gj))

        # gather every A row the local systems reference
        footprint = np.unique(np.concatenate(list(pattern_rows.values())))
        foreign = footprint[owner[footprint] != p]
        with tracer.span("spmd.gather_rows", rank=p, foreign=int(foreign.size)):
            row_table = _gather_foreign_rows(
                comm, partition, _localize_a(lm_a), my_rows, foreign
            )

        # Alg. 2 step 4: precalculate the factor on the extended pattern
        with tracer.span("spmd.factor", rank=p, stage="precalculate"):
            g_rows = _solve_rows(row_table, pattern_rows)

        # the scale-independent filter compares against sqrt(g_ii * g_jj);
        # diagonal values of off-rank rows travel over the same channels
        diag = {g: vals[-1] for g, vals in g_rows.items()}
        diag.update(_exchange_diag(comm, partition, diag, foreign))
        base_count = 0
        ratios = []
        for g, vals in g_rows.items():
            idx = pattern_rows[g]
            base_row = set(col_global[lm_pattern.csr.row(int(partition.local_index[g]))[0]].tolist())
            for c, v in zip(idx, vals):
                if int(c) in base_row:
                    base_count += 1
                else:
                    scale = np.sqrt(abs(diag[g]) * abs(diag[int(c)]))
                    ratios.append(abs(v) / scale if scale > 0 else 0.0)
        ratios = np.asarray(ratios)
        my_count = base_count + int(np.count_nonzero(ratios > filter_spec.value))
        with tracer.span("spmd.filtering", rank=p, dynamic=filter_spec.dynamic):
            total = comm.allreduce(my_count, SUM)
            average = total / comm.size
            if filter_spec.dynamic:
                my_filter = dynamic_filter_for_rank(
                    base_count,
                    ratios,
                    filter_spec.value,
                    average,
                    band=filter_spec.band,
                    max_bisection=filter_spec.max_bisection,
                )
            else:
                my_filter = filter_spec.value

        # Alg. 2 step 5: filter and recompute the owned rows
        filtered_rows: dict[int, np.ndarray] = {}
        for g, vals in g_rows.items():
            idx = pattern_rows[g]
            base_row = set(col_global[lm_pattern.csr.row(int(partition.local_index[g]))[0]].tolist())
            keep = []
            for c, v in zip(idx, vals):
                if int(c) in base_row:
                    keep.append(int(c))
                else:
                    scale = np.sqrt(abs(diag[g]) * abs(diag[int(c)]))
                    if scale > 0 and abs(v) / scale > my_filter:
                        keep.append(int(c))
            filtered_rows[g] = np.asarray(sorted(keep), dtype=np.int64)
        with tracer.span("spmd.factor", rank=p, stage="recompute"):
            final_rows = _solve_rows(row_table, filtered_rows)
        return my_filter, filtered_rows, final_rows

    results = run_spmd(_rank_program, partition.nparts, tracker=tracker, timeout=timeout)

    # reassemble the global factor from the per-rank rows
    filters = np.array([r[0] for r in results])
    rows_acc, cols_acc, vals_acc = [], [], []
    for _, filtered_rows, final_rows in results:
        for g, idx in filtered_rows.items():
            rows_acc.append(np.full(idx.size, g, dtype=np.int64))
            cols_acc.append(idx)
            vals_acc.append(final_rows[g])
    g_final = CSRMatrix.from_coo(
        mat.shape,
        np.concatenate(rows_acc),
        np.concatenate(cols_acc),
        np.concatenate(vals_acc),
    )
    return _distribute(
        "FSAIE-Comm(SPMD)", g_final, partition, base_nnz=base.nnz, filters=filters
    )


_TAG_DIAGREQ = 8_102
_TAG_DIAGDATA = 8_103


def _exchange_diag(
    comm: Comm,
    partition: RowPartition,
    my_diag: dict[int, float],
    foreign: np.ndarray,
) -> dict[int, float]:
    """Fetch pre-factor diagonal values ``g_cc`` for off-rank columns."""
    p = comm.rank
    owner = partition.owner
    wanted_by_owner: dict[int, np.ndarray] = {}
    for q in range(comm.size):
        if q == p:
            continue
        wanted_by_owner[q] = foreign[owner[foreign] == q]
        comm.send(wanted_by_owner[q], q, _TAG_DIAGREQ)
    for q in range(comm.size):
        if q == p:
            continue
        wanted = comm.recv(q, _TAG_DIAGREQ)
        comm.send(
            np.array([my_diag[int(g)] for g in wanted], dtype=np.float64),
            q,
            _TAG_DIAGDATA,
        )
    out: dict[int, float] = {}
    for q, wanted in wanted_by_owner.items():
        values = comm.recv(q, _TAG_DIAGDATA)
        for g, v in zip(wanted, values):
            out[int(g)] = float(v)
    return out


def _localize_a(lm_a) -> CSRMatrix:
    """The local A block with *global* column ids (what row exchange ships)."""
    col_global = np.concatenate([lm_a.global_rows, lm_a.ext_cols])
    rows, cols, vals = lm_a.csr.to_coo()
    return CSRMatrix.from_coo(
        (lm_a.n_local, int(col_global.max()) + 1 if col_global.size else 1),
        rows,
        col_global[cols],
        vals,
    )
