"""The :class:`ArrayBackend` abstraction — one object per array namespace.

An :class:`ArrayBackend` bundles everything the hot-path layers need to stay
array-library-agnostic: the array namespace module itself (``xp``), host ↔
device movement (:meth:`to_device` / :meth:`from_device`), and capability
flags the kernel planners consult before choosing a code path (GPU backends,
for example, lack ``ufunc.reduceat`` — see ``docs/BACKENDS.md``).

Backends are plain frozen descriptors: all selection/fallback policy lives in
:func:`repro.backend.select.get_backend`.  Code that receives a backend never
imports ``numpy``/``cupy`` directly for hot-loop arrays — it goes through
``backend.xp`` so a CuPy (or future) namespace drops in without edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import ModuleType

import numpy as np

__all__ = ["ArrayBackend", "numpy_backend"]


@dataclass(frozen=True)
class ArrayBackend:
    """Array-namespace descriptor used by every hot-path layer.

    Attributes
    ----------
    name:
        Stable identifier (``"numpy"``, ``"cupy"``); tagged onto the
        ``backend.*`` instrumentation metrics.
    xp:
        The array namespace module.  Hot loops call ``backend.xp.take`` /
        ``backend.xp.multiply`` / ``backend.xp.linalg.solve`` instead of a
        hard ``numpy`` import.
    is_gpu:
        True when arrays live off-host and :meth:`from_device` implies a
        transfer.
    supports_reduceat:
        Whether ``xp.add.reduceat`` exists.  CuPy ufuncs do not implement
        ``reduceat``; :class:`repro.kernels.plan.SpMVPlan` consults this flag
        and requires the ELLPACK layout on backends without it.
    supports_batched_solve:
        Whether ``xp.linalg.solve`` accepts stacked ``(m, k, k)`` operands —
        the call the batched FSAI setup is built on.
    """

    name: str
    xp: ModuleType = field(repr=False)
    is_gpu: bool = False
    supports_reduceat: bool = True
    supports_batched_solve: bool = True

    # ------------------------------------------------------------------
    def asarray(self, arr, dtype=None):
        """``arr`` as a backend array (no copy when already resident)."""
        return self.xp.asarray(arr, dtype=dtype)

    def to_device(self, arr):
        """Move a host array onto the backend's device (no-op on NumPy)."""
        return self.xp.asarray(arr)

    def from_device(self, arr) -> np.ndarray:
        """Move a backend array back to a host :class:`numpy.ndarray`.

        NumPy arrays pass through unchanged; device backends use their
        native export (``cupy.ndarray.get``).
        """
        if isinstance(arr, np.ndarray):
            return arr
        get = getattr(arr, "get", None)
        if callable(get):
            return get()
        return np.asarray(arr)

    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on NumPy).

        Benchmarks call this around timed regions so asynchronous device
        launches do not fake speedups.
        """
        if not self.is_gpu:
            return
        cuda = getattr(self.xp, "cuda", None)
        if cuda is not None:
            cuda.get_current_stream().synchronize()

    def is_native(self, arr) -> bool:
        """Whether ``arr`` is an array of this backend's namespace."""
        return isinstance(arr, self.xp.ndarray)

    def __repr__(self) -> str:
        return f"ArrayBackend({self.name!r}, gpu={self.is_gpu})"


def numpy_backend() -> ArrayBackend:
    """The host NumPy backend — always available, every capability on."""
    return ArrayBackend(name="numpy", xp=np)
