"""Backend detection, selection and graceful fallback.

:func:`get_backend` is the single entry point the rest of the library uses::

    backend = get_backend("auto")     # CuPy with a live device, else NumPy
    backend = get_backend("cupy")     # CuPy, or NumPy with ONE warning
    backend = get_backend("numpy")    # always the host backend
    backend = get_backend(None)       # the default (numpy) backend
    backend = get_backend(existing)   # ArrayBackend instances pass through

Requesting ``"cupy"`` on a machine without CuPy (or without a visible CUDA
device) does **not** raise: it emits a single :class:`BackendFallbackWarning`
per process, bumps the ``backend.fallbacks`` counter, and returns the NumPy
backend — so one code path runs everywhere and GPU machines get the fast
namespace for free.  ``"auto"`` probes silently.

Detection follows the ``cupyx.distributed`` ``_environment`` idiom: import
inside a ``try``, then *prove* a device is usable with a trivial runtime
call before trusting the import (a CUDA-less CuPy install imports fine and
fails at first kernel launch).  Resolved backends are cached per name;
:func:`reset_backend_cache` clears the cache (tests, hot-plugged devices).
"""

from __future__ import annotations

import warnings

from repro.backend.array import ArrayBackend, numpy_backend
from repro.instrument import get_metrics

__all__ = [
    "BackendFallbackWarning",
    "available_backends",
    "get_backend",
    "reset_backend_cache",
]

#: Names :func:`get_backend` accepts (besides ``None`` and instances).
_KNOWN = ("numpy", "cupy", "auto")

_cache: dict[str, ArrayBackend] = {}
_warned: set[str] = set()


class BackendFallbackWarning(UserWarning):
    """A requested accelerator backend is unavailable; NumPy stands in."""


def _probe_cupy() -> ArrayBackend | None:
    """CuPy backend if importable *and* a CUDA device answers, else None."""
    try:
        import cupy  # noqa: PLC0415 — optional dependency, probed lazily

        if cupy.cuda.runtime.getDeviceCount() < 1:
            return None
        # prove the device actually executes before trusting the import
        cupy.asarray([0.0]).sum()
    except Exception:
        return None
    return ArrayBackend(
        name="cupy",
        xp=cupy,
        is_gpu=True,
        # CuPy ufuncs implement reduce but not reduceat; SpMV plans must use
        # the ELLPACK layout on this backend (docs/BACKENDS.md).
        supports_reduceat=False,
        supports_batched_solve=True,
    )


def _fallback(requested: str, reason: str) -> ArrayBackend:
    """NumPy stand-in for an unavailable backend: one warning per process."""
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("backend.fallbacks", requested=requested).inc()
    if requested not in _warned:
        _warned.add(requested)
        warnings.warn(
            f"backend {requested!r} is unavailable ({reason}); "
            "falling back to numpy",
            BackendFallbackWarning,
            stacklevel=3,
        )
    return _cache.setdefault("numpy", numpy_backend())


def get_backend(name: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve a backend name to an :class:`ArrayBackend` (cached).

    ``None`` and ``"numpy"`` return the host backend; ``"cupy"`` returns the
    CuPy backend or falls back to NumPy with a single
    :class:`BackendFallbackWarning`; ``"auto"`` silently prefers CuPy when a
    device is usable.  :class:`ArrayBackend` instances pass through, so APIs
    can accept either spelling.  Unknown names raise :class:`ValueError`.
    """
    if isinstance(name, ArrayBackend):
        return name
    if name is None:
        name = "numpy"
    if not isinstance(name, str):
        raise TypeError(
            f"backend must be a name or ArrayBackend, got {type(name).__name__}"
        )
    name = name.lower()
    if name not in _KNOWN:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {', '.join(_KNOWN)}"
        )
    cached = _cache.get(name)
    if cached is not None:
        return cached
    if name == "numpy":
        backend = numpy_backend()
    elif name == "cupy":
        backend = _probe_cupy()
        if backend is None:
            return _fallback("cupy", "no importable cupy with a usable device")
    else:  # auto: silent preference order cupy -> numpy
        backend = _probe_cupy() or _cache.setdefault("numpy", numpy_backend())
    _cache[name] = backend
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("backend.selected", backend=backend.name).inc()
    return backend


def available_backends() -> tuple[str, ...]:
    """Names that resolve to a native (non-fallback) backend on this host."""
    names = ["numpy"]
    if _probe_cupy() is not None:
        names.append("cupy")
    return tuple(names)


def reset_backend_cache() -> None:
    """Drop cached backends and warning dedup state (test isolation)."""
    _cache.clear()
    _warned.clear()
