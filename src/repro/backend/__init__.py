"""Multi-backend array layer — NumPy today, CuPy when a device is present.

The hot-path layers (:mod:`repro.kernels`, :mod:`repro.core.fsai`,
:mod:`repro.dist.halo`) do their array work through an
:class:`ArrayBackend` instead of a hard ``numpy`` import.  A backend bundles
the array namespace (``backend.xp``), host/device movement
(``to_device`` / ``from_device``) and capability flags
(``supports_reduceat``, ``supports_batched_solve``) that kernel planners
consult before choosing a code path.

Selection goes through :func:`get_backend`::

    from repro.backend import get_backend

    backend = get_backend("auto")          # CuPy if usable, else NumPy
    plan = SpMVPlan(mat, backend=backend)

Requesting ``"cupy"`` without CuPy installed (or without a CUDA device)
falls back to NumPy with a single :class:`BackendFallbackWarning` — every
consumer keeps working NumPy-only.  Selection outcomes are observable via
the ``backend.selected`` / ``backend.fallbacks`` metrics.

See ``docs/BACKENDS.md`` for selection rules, capability semantics and how
the batched FSAI setup exploits the namespace.
"""

from repro.backend.array import ArrayBackend, numpy_backend
from repro.backend.select import (
    BackendFallbackWarning,
    available_backends,
    get_backend,
    reset_backend_cache,
)

__all__ = [
    "ArrayBackend",
    "BackendFallbackWarning",
    "available_backends",
    "get_backend",
    "numpy_backend",
    "reset_backend_cache",
]
