"""Trace exporters: plain JSON and Chrome ``trace_event`` format.

Two output formats cover the two consumers:

* :func:`write_json_trace` / :func:`read_json_trace` — a self-describing
  JSON document (spans with tree structure plus a metrics snapshot) for
  programmatic analysis; round-trips losslessly.
* :func:`write_chrome_trace` — the ``trace_event`` JSON object format
  consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:
  spans become complete (``"ph": "X"``) events on per-thread tracks,
  instant events become ``"ph": "i"``, and the metrics snapshot rides in
  ``otherData``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.instrument.tracer import Span, Tracer

__all__ = [
    "TraceError",
    "spans_to_dicts",
    "trace_to_dict",
    "write_json_trace",
    "read_json_trace",
    "spans_from_dicts",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Format version stamped into exported documents.
TRACE_FORMAT_VERSION = 1


class TraceError(ReproError, ValueError):
    """A trace document is malformed: wrong format, newer schema, or
    physically impossible timestamps.

    Subclasses :class:`ValueError` so callers that predate the dedicated
    type keep working.
    """


def _span_stream_key(span_dict: dict) -> tuple:
    """The stream a span belongs to for monotonicity purposes.

    Spans tagged with a ``rank`` are one per-rank stream; untagged spans
    fall back to their recording thread.
    """
    rank = span_dict.get("tags", {}).get("rank")
    if rank is not None:
        return ("rank", rank)
    return ("thread", span_dict.get("thread"))


def validate_span_monotonicity(spans: list[dict], *, source: str = "trace") -> None:
    """Reject span streams whose timestamps run backwards.

    Within each per-rank (or per-thread) stream, span start times must be
    non-decreasing in document order and every span must end at or after it
    started — a clock can stall but never rewind.  Raises
    :class:`TraceError` naming the offending stream and span.
    """
    last_start: dict[tuple, float] = {}
    for d in spans:
        name = d.get("name", "?")
        start = d.get("start")
        end = d.get("end")
        if not isinstance(start, (int, float)):
            raise TraceError(f"{source}: span {name!r} has no numeric start time")
        if end is not None and end < start:
            raise TraceError(
                f"{source}: span {name!r} ends before it starts "
                f"(start={start!r}, end={end!r})"
            )
        key = _span_stream_key(d)
        prev = last_start.get(key)
        if prev is not None and start < prev:
            stream = f"rank {key[1]}" if key[0] == "rank" else f"thread {key[1]}"
            raise TraceError(
                f"{source}: span timestamps are non-monotonic within {stream}: "
                f"{name!r} starts at {start!r} after a span starting at {prev!r}"
            )
        last_start[key] = start


def spans_to_dicts(spans) -> list[dict]:
    """Serialise spans (sorted by start) to plain dictionaries."""
    return [s.to_dict() for s in sorted(spans, key=lambda s: (s.start, s.span_id))]


def trace_to_dict(tracer: Tracer, metrics=None) -> dict:
    """The JSON-document form of a tracer (and optional metrics registry)."""
    return {
        "format": "repro-trace",
        "version": TRACE_FORMAT_VERSION,
        "spans": spans_to_dicts(tracer.spans),
        "metrics": metrics.collect() if metrics is not None else [],
    }


def write_json_trace(path, tracer: Tracer, metrics=None, *, indent: int | None = None) -> Path:
    """Write the JSON trace document; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(trace_to_dict(tracer, metrics), indent=indent) + "\n")
    return path


def read_json_trace(path) -> dict:
    """Load a document written by :func:`write_json_trace` (round-trip).

    Validates the format marker, the schema version, and the physical
    plausibility of the timestamps: documents from a newer writer — or ones
    whose span timestamps run backwards within a rank — raise
    :class:`TraceError` instead of being silently misread.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != "repro-trace":
        raise TraceError(f"{path}: not a repro trace document")
    version = doc.get("version")
    if version is not None and version > TRACE_FORMAT_VERSION:
        raise TraceError(
            f"{path}: trace schema version {version} is newer than this "
            f"build's reader (version {TRACE_FORMAT_VERSION})"
        )
    spans = doc.get("spans", [])
    if not isinstance(spans, list):
        raise TraceError(f"{path}: 'spans' must be a list")
    validate_span_monotonicity(spans, source=str(path))
    return doc


def spans_from_dicts(dicts: list[dict]) -> list[Span]:
    """Rebuild :class:`Span` objects from their dictionary form."""
    out = []
    for d in dicts:
        span = Span(
            d["name"], dict(d["tags"]), d["start"], d["span_id"], d["parent_id"],
            d["thread"],
        )
        span.end = d["end"]
        out.append(span)
    return out


# ----------------------------------------------------------------------
def _json_safe(value):
    """Coerce tag values to JSON-representable types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        import numpy as np

        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (np.floating,)):
            return float(value)
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return repr(value)


def _safe_tags(tags: dict) -> dict:
    return {k: _json_safe(v) for k, v in tags.items()}


def to_chrome_trace(tracer: Tracer, metrics=None, *, process_name: str = "repro") -> dict:
    """Render the tracer's spans as a Chrome ``trace_event`` document.

    Spans become ``"ph": "X"`` complete events with microsecond timestamps
    relative to the earliest span; zero-duration spans become thread-scoped
    instant events.  Spans tagged with ``rank`` keep their thread track but
    expose the rank in ``args`` so Perfetto queries can group by it.
    """
    spans = tracer.spans
    t0 = min((s.start for s in spans), default=0.0)
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    threads = sorted({s.thread for s in spans})
    for t in threads:
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": t,
                "name": "thread_name",
                "args": {"name": "driver" if t == 0 else f"thread-{t}"},
            }
        )
    for s in spans:
        ts = (s.start - t0) * 1e6
        args = _safe_tags(s.tags)
        cat = s.name.split(".", 1)[0]
        if s.end is not None and s.end > s.start:
            events.append(
                {
                    "name": s.name,
                    "cat": cat,
                    "ph": "X",
                    "ts": ts,
                    "dur": (s.end - s.start) * 1e6,
                    "pid": 0,
                    "tid": s.thread,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": s.name,
                    "cat": cat,
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": 0,
                    "tid": s.thread,
                    "args": args,
                }
            )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-trace-chrome",
            "version": TRACE_FORMAT_VERSION,
        },
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = [
            {**m, "tags": _safe_tags(m["tags"])} for m in metrics.collect()
        ]
    return doc


def write_chrome_trace(path, tracer: Tracer, metrics=None, *, indent: int | None = None) -> Path:
    """Write a ``chrome://tracing``-loadable trace file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer, metrics), indent=indent) + "\n")
    return path
