"""Counters, gauges and histograms with per-rank tags.

The paper's evaluation reports quantities that are *not* time intervals:
CG iteration counts, per-rank stored entries (load balance), halo traffic
bytes, cache hits/misses.  A :class:`MetricsRegistry` holds one instrument
per ``(kind, name, tags)`` combination so benchmarks read those numbers
from a shared store instead of re-deriving them:

* :class:`Counter` — monotonically increasing total (``inc``),
* :class:`Gauge` — last-value-wins sample (``set``),
* :class:`Histogram` — full distribution (``observe``) with count/sum/
  min/max/percentile queries.

Like the tracer, a :class:`NullMetricsRegistry` stands in when
instrumentation is disabled; its instruments swallow every update.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "tags", "value")
    kind = "counter"

    def __init__(self, name: str, tags: dict):
        self.name = name
        self.tags = tags
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": "counter", "name": self.name, "tags": dict(self.tags),
                "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}, {self.tags}, value={self.value})"


class Gauge:
    """A sampled value; the last ``set`` wins."""

    __slots__ = ("name", "tags", "value")
    kind = "gauge"

    def __init__(self, name: str, tags: dict):
        self.name = name
        self.tags = tags
        self.value: float | None = None

    def set(self, value) -> None:
        """Record the current value."""
        self.value = value

    def to_dict(self) -> dict:
        return {"kind": "gauge", "name": self.name, "tags": dict(self.tags),
                "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}, {self.tags}, value={self.value})"


class Histogram:
    """A distribution of observed values."""

    __slots__ = ("name", "tags", "values")
    kind = "histogram"

    def __init__(self, name: str, tags: dict):
        self.name = name
        self.tags = tags
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        """Average observation (NaN when empty)."""
        return self.total / self.count if self.values else float("nan")

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100, nearest-rank; NaN when empty)."""
        if not self.values:
            return float("nan")
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict:
        return {
            "kind": "histogram",
            "name": self.name,
            "tags": dict(self.tags),
            "count": self.count,
            "sum": self.total,
            "min": min(self.values) if self.values else None,
            "max": max(self.values) if self.values else None,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, {self.tags}, count={self.count})"


def _key(kind: str, name: str, tags: dict) -> tuple:
    return (kind, name, tuple(sorted(tags.items())))


class MetricsRegistry:
    """Thread-safe store of instruments keyed by name and tags.

    ``registry.counter("halo.bytes", rank=3)`` returns the same
    :class:`Counter` on every call with identical tags (get-or-create), so
    call sites never hold instrument references across phases.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}

    def _get(self, cls, name: str, tags: dict):
        key = _key(cls.kind, name, tags)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, tags)
                self._instruments[key] = inst
            return inst

    def counter(self, name: str, **tags) -> Counter:
        """Get or create the counter with this name and tags."""
        return self._get(Counter, name, tags)

    def gauge(self, name: str, **tags) -> Gauge:
        """Get or create the gauge with this name and tags."""
        return self._get(Gauge, name, tags)

    def histogram(self, name: str, **tags) -> Histogram:
        """Get or create the histogram with this name and tags."""
        return self._get(Histogram, name, tags)

    # querying ----------------------------------------------------------
    def instruments(self) -> list:
        """Every registered instrument (stable creation order not guaranteed)."""
        with self._lock:
            return list(self._instruments.values())

    def find(self, name: str, **tags) -> list:
        """Instruments matching ``name`` whose tags include ``tags``."""
        out = []
        for inst in self.instruments():
            if inst.name != name:
                continue
            if all(inst.tags.get(k) == v for k, v in tags.items()):
                out.append(inst)
        return out

    def value(self, name: str, **tags):
        """Value of the single counter/gauge matching exactly; None if absent."""
        matches = [i for i in self.find(name, **tags) if i.tags == tags]
        if not matches:
            return None
        return matches[0].value if not isinstance(matches[0], Histogram) else matches[0].values

    def sum_values(self, name: str, **tags) -> float:
        """Sum of counter/gauge values across all tag combinations of ``name``."""
        total = 0.0
        for inst in self.find(name, **tags):
            if isinstance(inst, Histogram):
                total += inst.total
            elif inst.value is not None:
                total += inst.value
        return total

    def collect(self) -> list[dict]:
        """Serialisable snapshot of every instrument."""
        return [inst.to_dict() for inst in self.instruments()]

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self)})"


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    tags: dict = {}
    value = None

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: instruments swallow every update."""

    enabled = False

    def counter(self, name: str, **tags) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **tags) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **tags) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def instruments(self) -> list:
        return []

    def find(self, name: str, **tags) -> list:
        return []

    def value(self, name: str, **tags):
        return None

    def sum_values(self, name: str, **tags) -> float:
        return 0.0

    def collect(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullMetricsRegistry()"


#: Process-wide disabled registry (the default active registry).
NULL_METRICS = NullMetricsRegistry()
