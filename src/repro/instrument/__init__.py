"""Unified instrumentation: spans, metrics and trace exporters.

The paper's headline claims are measurements — CG iteration counts, solver
time breakdowns (SpMV vs halo exchange vs dot-product collectives), per-rank
nonzero imbalance, byte-for-byte communication invariance.  This package
gives the whole repo one event model for producing them:

* :class:`Tracer` — nested, labeled spans (``span("pcg.iteration", rank=r)``)
  with per-thread stacks, safe under the SPMD thread runtime;
* :class:`MetricsRegistry` — counters, gauges and histograms with per-rank
  tags;
* exporters — plain JSON (:func:`write_json_trace`) and Chrome
  ``trace_event`` (:func:`write_chrome_trace`, loadable in
  ``chrome://tracing`` / Perfetto);
* a zero-overhead disabled mode: the default active tracer/registry are
  no-op singletons, so instrumented hot paths cost one function call when
  tracing is off.

Typical use::

    from repro.instrument import Tracer, MetricsRegistry, tracing, write_chrome_trace

    tracer, metrics = Tracer(), MetricsRegistry()
    with tracing(tracer, metrics):
        pre = build_fsaie_comm(A, part)
        result = pcg(dA, b, precond=pre, tracker=tracker)
    write_chrome_trace("trace.json", tracer, metrics)

Library code fetches the active sinks with :func:`get_tracer` /
:func:`get_metrics`; it never holds references across calls, so enabling
tracing mid-process affects the very next operation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.instrument.export import (
    TraceError,
    read_json_trace,
    spans_from_dicts,
    spans_to_dicts,
    to_chrome_trace,
    trace_to_dict,
    validate_span_monotonicity,
    write_chrome_trace,
    write_json_trace,
)
from repro.instrument.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.instrument.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "get_tracer",
    "get_metrics",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "TraceError",
    "spans_to_dicts",
    "trace_to_dict",
    "write_json_trace",
    "read_json_trace",
    "spans_from_dicts",
    "validate_span_monotonicity",
    "to_chrome_trace",
    "write_chrome_trace",
]

_state_lock = threading.Lock()
_active_tracer: Tracer | NullTracer = NULL_TRACER
_active_metrics: MetricsRegistry | NullMetricsRegistry = NULL_METRICS


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the no-op :data:`NULL_TRACER` when disabled)."""
    return _active_tracer


def get_metrics() -> MetricsRegistry | NullMetricsRegistry:
    """The active metrics registry (:data:`NULL_METRICS` when disabled)."""
    return _active_metrics


def enable_tracing(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> tuple[Tracer, MetricsRegistry]:
    """Install (and return) an active tracer and metrics registry.

    Fresh instances are created when not supplied.  Returns the installed
    ``(tracer, metrics)`` pair.
    """
    global _active_tracer, _active_metrics
    with _state_lock:
        _active_tracer = tracer if tracer is not None else Tracer()
        _active_metrics = metrics if metrics is not None else MetricsRegistry()
        return _active_tracer, _active_metrics


def disable_tracing() -> None:
    """Restore the zero-overhead no-op tracer and registry."""
    global _active_tracer, _active_metrics
    with _state_lock:
        _active_tracer = NULL_TRACER
        _active_metrics = NULL_METRICS


@contextmanager
def tracing(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
    """Scope-limited tracing: install on entry, restore the previous pair on exit.

    Yields the installed ``(tracer, metrics)`` pair::

        with tracing() as (tracer, metrics):
            pcg(dA, b, precond=pre)
        print(tracer.total_seconds("pcg.iteration"))
    """
    global _active_tracer, _active_metrics
    with _state_lock:
        previous = (_active_tracer, _active_metrics)
        _active_tracer = tracer if tracer is not None else Tracer()
        _active_metrics = metrics if metrics is not None else MetricsRegistry()
        installed = (_active_tracer, _active_metrics)
    try:
        yield installed
    finally:
        with _state_lock:
            _active_tracer, _active_metrics = previous
