"""Nested, labeled span tracing for the solver and setup hot paths.

A :class:`Tracer` records *spans* — named intervals with tags — organised as
a tree per thread: entering ``tracer.span("pcg.iteration", rank=2)`` pushes
onto a thread-local stack, so spans opened inside it become its children.
This is the substrate the benchmarks and the ``repro trace`` CLI build on:
the paper's measurements (SpMV vs halo exchange vs dot-product collectives,
setup-phase breakdowns) all become queryable span durations instead of
ad-hoc stopwatches.

When tracing is disabled (the default) every hot path goes through
:class:`NullTracer`, whose ``span`` returns a shared no-op context manager —
no allocation, no clock reads, no locking — so instrumented code pays only a
function call when not observed.

Spans run on SPMD threads (:mod:`repro.mpisim`) as well as the driver
thread; the tracer is thread-safe and keeps one span stack per thread.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One completed (or active) traced interval.

    Attributes
    ----------
    name:
        Dotted label, e.g. ``"pcg.iteration"`` or ``"halo.exchange"``.
    tags:
        Key/value labels (``rank``, ``bytes``...) attached at creation or via
        :meth:`set_tag` while the span is active.
    start, end:
        Clock readings (seconds, from the tracer's clock).  ``end`` is None
        while the span is active; instant events have ``end == start``.
    span_id, parent_id:
        Tree structure: ``parent_id`` is None for root spans.
    thread:
        Dense per-tracer thread index (0 = first thread seen).
    """

    __slots__ = ("name", "tags", "start", "end", "span_id", "parent_id", "thread")

    def __init__(
        self,
        name: str,
        tags: dict,
        start: float,
        span_id: int,
        parent_id: int | None,
        thread: int,
    ):
        self.name = name
        self.tags = tags
        self.start = start
        self.end: float | None = None
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while still active)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_tag(self, key: str, value) -> "Span":
        """Attach/overwrite one tag; returns self for chaining."""
        self.tags[key] = value
        return self

    def to_dict(self) -> dict:
        """Plain-dict form (used by the JSON exporter)."""
        return {
            "name": self.name,
            "tags": dict(self.tags),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration={self.duration:.6f}, tags={self.tags})"


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`.

    The span is created (and the clock read) on ``__enter__`` so that
    ``s = tracer.span(...)`` may be prepared ahead of the timed region.
    """

    __slots__ = ("_tracer", "_name", "_tags", "_span")

    def __init__(self, tracer: "Tracer", name: str, tags: dict):
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._tags)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.tags.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects spans from any number of threads.

    Parameters
    ----------
    clock:
        Monotonic time source (seconds).  Injectable for deterministic
        tests; defaults to :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()
        self._next_id = 1
        self._thread_index: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _alloc(self) -> tuple[int, int]:
        """(span_id, dense thread index) under the lock."""
        ident = threading.get_ident()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            tidx = self._thread_index.setdefault(ident, len(self._thread_index))
        return span_id, tidx

    def _open(self, name: str, tags: dict) -> Span:
        span_id, tidx = self._alloc()
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(name, tags, self._clock(), span_id, parent_id, tidx)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop it from wherever it is
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------
    def span(self, name: str, **tags) -> _SpanContext:
        """Open a labeled span: ``with tracer.span("pcg.spmv", rank=p): ...``."""
        return _SpanContext(self, name, tags)

    def event(self, name: str, **tags) -> Span:
        """Record an instant (zero-duration) event at the current nesting."""
        span = self._open(name, tags)
        self._close(span)
        span.end = span.start  # instant: one clock reading, end == start
        return span

    def current(self) -> Span | None:
        """The innermost active span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # querying ----------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Completed spans, ordered by start time."""
        with self._lock:
            return sorted(self._spans, key=lambda s: (s.start, s.span_id))

    def by_name(self, name: str) -> list[Span]:
        """Completed spans with exactly this name."""
        return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span with this name."""
        return sum(s.duration for s in self.by_name(name))

    def children(self, span: Span) -> list[Span]:
        """Direct children of a span."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        """Top-level spans (no parent)."""
        return [s for s in self.spans if s.parent_id is None]

    def clear(self) -> None:
        """Drop all completed spans (active stacks are untouched)."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self)})"


class _NullSpanContext:
    """Shared do-nothing span: context manager and Span look-alike."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value) -> "_NullSpanContext":
        return self


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a constant-cost no-op."""

    enabled = False

    def span(self, name: str, **tags) -> _NullSpanContext:
        """Return the shared no-op context manager."""
        return _NULL_SPAN

    def event(self, name: str, **tags) -> None:
        """Discard the event."""
        return None

    def current(self) -> None:
        """No active span, ever."""
        return None

    @property
    def spans(self) -> list:
        return []

    def by_name(self, name: str) -> list:
        return []

    def total_seconds(self, name: str) -> float:
        return 0.0

    def roots(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"


#: Process-wide disabled tracer (the default active tracer).
NULL_TRACER = NullTracer()
