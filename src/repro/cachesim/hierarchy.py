"""Two-level cache hierarchy simulation.

The paper reports L1 misses, but the *cost* of a miss depends on where it is
served: an L1 miss hitting L2 is an order of magnitude cheaper than one
going to memory.  :class:`CacheHierarchy` replays a line-id stream through
an L1 backed by an L2 (both LRU set-associative) and reports misses at each
level, which the advanced user can feed into a refined cost model.

Default L2 geometries match the evaluated CPUs: 1 MiB/16-way (Skylake),
8 MiB/16-way shared-slice estimate (A64FX), 512 KiB/8-way (Zen 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cachesim.cache import CacheConfig, SetAssociativeCache

__all__ = ["HierarchyResult", "CacheHierarchy", "L2_SKYLAKE", "L2_A64FX", "L2_ZEN2"]

L2_SKYLAKE = CacheConfig(1024 * 1024, 64, 16)
L2_A64FX = CacheConfig(8 * 1024 * 1024, 256, 16)
L2_ZEN2 = CacheConfig(512 * 1024, 64, 8)


@dataclass(frozen=True)
class HierarchyResult:
    """Miss counts of one stream replay."""

    accesses: int
    l1_misses: int
    l2_misses: int

    @property
    def l1_hit_rate(self) -> float:
        """Fraction of accesses served by L1."""
        return 1.0 - self.l1_misses / self.accesses if self.accesses else 1.0

    @property
    def l2_hit_rate(self) -> float:
        """Hit rate of L2 among the accesses that reached it."""
        if self.l1_misses == 0:
            return 1.0
        return 1.0 - self.l2_misses / self.l1_misses


class CacheHierarchy:
    """An L1 backed by an L2; both true-LRU set-associative.

    The two levels must share a line size (refills are line-granular).
    """

    def __init__(self, l1: CacheConfig, l2: CacheConfig):
        if l1.line_bytes != l2.line_bytes:
            raise ValueError("L1 and L2 must share the cache-line size")
        if l2.size_bytes < l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1")
        self.l1 = SetAssociativeCache(l1)
        self.l2 = SetAssociativeCache(l2)

    def access(self, line_id: int) -> str:
        """Access one line; returns ``"l1"``, ``"l2"`` or ``"mem"``."""
        if self.l1.access(line_id):
            return "l1"
        # L1 miss: consult L2 (and fill it — the refill passes through L2)
        return "l2" if self.l2.access(line_id) else "mem"

    def access_stream(self, line_ids: np.ndarray) -> HierarchyResult:
        """Replay a stream; immediate same-line repeats short-circuit to L1."""
        line_ids = np.asarray(line_ids, dtype=np.int64)
        n = line_ids.size
        if n == 0:
            return HierarchyResult(0, 0, 0)
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(line_ids[1:], line_ids[:-1], out=keep[1:])
        collapsed = line_ids[keep]
        repeats_hits = int(n - collapsed.size)
        l1_before, l2_before = self.l1.misses, self.l2.misses
        for lid in collapsed.tolist():
            self.access(lid)
        self.l1.hits += repeats_hits
        return HierarchyResult(
            accesses=n,
            l1_misses=self.l1.misses - l1_before,
            l2_misses=self.l2.misses - l2_before,
        )
