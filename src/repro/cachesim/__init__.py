"""Cache simulation substrate (the repo's PAPI-counter stand-in).

* :class:`CacheConfig` — L1 geometry (size/line/associativity).
* :class:`SetAssociativeCache`, :func:`simulate_misses` — LRU simulator.
* :func:`spmv_x_misses`, :func:`precond_x_misses` — the paper's Fig. 3a/5a
  metric: misses on the SpMV multiplying vector.
* line-geometry helpers used by the pattern extensions.

Predefined L1 geometries for the three evaluated machines are exposed as
:data:`L1_SKYLAKE`, :data:`L1_A64FX` and :data:`L1_ZEN2`.
"""

from repro.cachesim.cache import (
    NO_LINE,
    CacheConfig,
    SetAssociativeCache,
    simulate_misses,
)
from repro.cachesim.hierarchy import (
    L2_A64FX,
    L2_SKYLAKE,
    L2_ZEN2,
    CacheHierarchy,
    HierarchyResult,
)
from repro.cachesim.lines import doubles_per_line, line_block, line_ids, line_of
from repro.cachesim.spmv_trace import (
    X_MISSES_GAUGE,
    entry_categories,
    precond_x_misses,
    precond_x_misses_per_rank,
    spmv_x_misses,
    x_access_lines,
)

#: Intel Xeon Platinum 8160 (Skylake): 32 KiB, 8-way, 64 B lines.
L1_SKYLAKE = CacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=8)
#: Fujitsu A64FX: 64 KiB, 4-way, 256 B lines.
L1_A64FX = CacheConfig(size_bytes=64 * 1024, line_bytes=256, associativity=4)
#: AMD EPYC 7742 (Zen 2): 32 KiB, 8-way, 64 B lines.
L1_ZEN2 = CacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=8)

__all__ = [
    "NO_LINE",
    "CacheConfig",
    "SetAssociativeCache",
    "simulate_misses",
    "CacheHierarchy",
    "HierarchyResult",
    "L2_SKYLAKE",
    "L2_A64FX",
    "L2_ZEN2",
    "doubles_per_line",
    "line_of",
    "line_block",
    "line_ids",
    "X_MISSES_GAUGE",
    "x_access_lines",
    "entry_categories",
    "spmv_x_misses",
    "precond_x_misses",
    "precond_x_misses_per_rank",
    "L1_SKYLAKE",
    "L1_A64FX",
    "L1_ZEN2",
]
