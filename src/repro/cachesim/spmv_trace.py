"""Access-stream generation for SpMV and preconditioner cache measurements.

Reproduces the measurement of Figures 3a/5a: L1 data-cache misses on accesses
to the multiplying vector ``x`` while computing the preconditioning operation
``Gᵀ(Gx)``, normalised by the number of stored entries of ``G``.

For a CSR SpMV traversed row-by-row, the ``x`` accesses are exactly
``x[indices]`` in storage order; each access touches the cache line of its
(local) column index.  Halo values live in the buffer appended after the
local section, matching the layout of :class:`repro.dist.matrix.LocalMatrix`.

The ``ledger=`` mode of :func:`precond_x_misses_per_rank` replays the same
stream with per-access attribution: every stored entry is classified against
the baseline FSAI pattern (:func:`entry_categories`) and every access lands
in a :class:`repro.observe.memtraffic.FreeRideLedger` as a free ride or a
new fill, with reuse distances — the line-level evidence behind the paper's
"extensions are nearly free" claim.
"""

from __future__ import annotations

import numpy as np

from repro.cachesim.cache import (
    NO_LINE,
    CacheConfig,
    SetAssociativeCache,
    simulate_misses,
)
from repro.cachesim.lines import line_ids
from repro.dist.matrix import DistMatrix, LocalMatrix
from repro.sparse.csr import CSRMatrix

__all__ = [
    "X_MISSES_GAUGE",
    "x_access_lines",
    "entry_categories",
    "spmv_x_misses",
    "precond_x_misses",
    "precond_x_misses_per_rank",
]

#: Rank-tagged gauge name for per-rank preconditioner ``x`` misses —
#: module-level constant like ``filter.load`` / ``halo.bytes_sent`` so every
#: emission site and every reader share one spelling.
X_MISSES_GAUGE = "cachesim.x_misses"

#: Entry-category codes emitted by :func:`entry_categories`, indexing
#: :data:`repro.observe.memtraffic.CATEGORIES`.
CATEGORY_BASE, CATEGORY_EXT_LOCAL, CATEGORY_EXT_HALO = 0, 1, 2


def x_access_lines(mat: CSRMatrix, line_bytes: int) -> np.ndarray:
    """Cache-line id stream of the ``x`` gathers of one CSR SpMV."""
    return line_ids(mat.indices, line_bytes)


def entry_categories(local: LocalMatrix, base_csr: CSRMatrix) -> np.ndarray:
    """Classify every stored entry of a local block against a baseline.

    Returns one int8 code per stored entry in storage order (aligned with
    the :func:`x_access_lines` stream): :data:`CATEGORY_BASE` when the
    entry's (global row, global column) is present in ``base_csr`` — the
    global baseline-pattern matrix — :data:`CATEGORY_EXT_LOCAL` for an
    extension entry on a locally-owned column and :data:`CATEGORY_EXT_HALO`
    for an extension entry on a halo column.
    """
    csr = local.csr
    n_local = local.n_local
    col_map = np.concatenate([local.global_rows, local.ext_cols])
    out = np.empty(csr.nnz, dtype=np.int8)
    for li in range(csr.nrows):
        lo, hi = int(csr.indptr[li]), int(csr.indptr[li + 1])
        if lo == hi:
            continue
        cols = csr.indices[lo:hi]
        g = int(local.global_rows[li])
        base_row = base_csr.indices[base_csr.indptr[g]:base_csr.indptr[g + 1]]
        cat = np.where(
            cols < n_local, CATEGORY_EXT_LOCAL, CATEGORY_EXT_HALO
        ).astype(np.int8)
        cat[np.isin(col_map[cols], base_row)] = CATEGORY_BASE
        out[lo:hi] = cat
    return out


def spmv_x_misses(mat: CSRMatrix, config: CacheConfig) -> int:
    """L1 misses on ``x`` for one SpMV with ``mat`` on a cold cache."""
    return simulate_misses(x_access_lines(mat, config.line_bytes), config)


def _replay_attributed(
    lines: np.ndarray, cats: np.ndarray, config: CacheConfig, ledger, *, rank: int
) -> int:
    """Attributed replay of one rank's stream into ``ledger``; returns the
    miss count (identical to the unattributed replay's)."""
    from repro.observe.memtraffic import CATEGORIES, RankLedger

    cache = SetAssociativeCache(config)
    rank_ledger = RankLedger(rank=rank)
    filled_by: dict[int, str] = {}
    last_seen: dict[int, int] = {}
    for i, (lid, code) in enumerate(zip(lines.tolist(), cats.tolist())):
        hit, evicted = cache.access_attributed(lid)
        if evicted != NO_LINE:
            filled_by.pop(evicted, None)
        prev = last_seen.get(lid)
        last_seen[lid] = i
        category = CATEGORIES[code]
        rank_ledger.record(
            category,
            hit,
            filled_by.get(lid),
            None if prev is None else i - prev,
        )
        if not hit:
            filled_by[lid] = category
    ledger.add_rank(rank_ledger)
    return cache.misses


def precond_x_misses_per_rank(
    g: DistMatrix, gt: DistMatrix, config: CacheConfig, *, ledger=None
) -> np.ndarray:
    """Per-rank misses on ``x`` for the operation ``Gᵀ(Gx)``.

    Both SpMVs are replayed back-to-back per rank through one cache (the
    second product reuses lines the first loaded, as on real hardware).

    With a :class:`repro.observe.memtraffic.FreeRideLedger` passed as
    ``ledger``, the replay runs attributed: each stored entry is classified
    against the ledger's ``base_g`` / ``base_gt`` global baseline patterns
    and every access is recorded as a free ride or new fill with its reuse
    distance.  Miss counts are identical either way.
    """
    from repro.instrument import get_metrics, get_tracer

    if ledger is not None:
        if getattr(ledger, "base_g", None) is None or getattr(ledger, "base_gt", None) is None:
            raise ValueError(
                "ledger mode needs ledger.base_g / ledger.base_gt baseline "
                "pattern matrices for entry classification"
            )
        ledger.nnz = int(g.nnz)
        ledger.base_nnz = int(ledger.base_g.nnz)
    tracer = get_tracer()
    metrics = get_metrics()
    nparts = g.partition.nparts
    out = np.zeros(nparts, dtype=np.int64)
    with tracer.span("cachesim.precond_x_misses", ranks=nparts):
        for p in range(nparts):
            stream = np.concatenate(
                [
                    x_access_lines(g.locals[p].csr, config.line_bytes),
                    x_access_lines(gt.locals[p].csr, config.line_bytes),
                ]
            )
            if ledger is None:
                out[p] = simulate_misses(stream, config)
            else:
                cats = np.concatenate(
                    [
                        entry_categories(g.locals[p], ledger.base_g),
                        entry_categories(gt.locals[p], ledger.base_gt),
                    ]
                )
                out[p] = _replay_attributed(stream, cats, config, ledger, rank=p)
            if metrics.enabled:
                metrics.gauge(X_MISSES_GAUGE, rank=p).set(int(out[p]))
    return out


def precond_x_misses(
    g: DistMatrix, gt: DistMatrix, config: CacheConfig
) -> tuple[float, int]:
    """Average per-rank misses and total ``G`` entries for normalisation.

    Returns ``(mean misses per rank, nnz(G))`` — Figure 3a plots
    ``mean_misses / nnz`` per matrix.
    """
    per_rank = precond_x_misses_per_rank(g, gt, config)
    return float(per_rank.mean()), g.nnz
