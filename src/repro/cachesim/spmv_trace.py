"""Access-stream generation for SpMV and preconditioner cache measurements.

Reproduces the measurement of Figures 3a/5a: L1 data-cache misses on accesses
to the multiplying vector ``x`` while computing the preconditioning operation
``Gᵀ(Gx)``, normalised by the number of stored entries of ``G``.

For a CSR SpMV traversed row-by-row, the ``x`` accesses are exactly
``x[indices]`` in storage order; each access touches the cache line of its
(local) column index.  Halo values live in the buffer appended after the
local section, matching the layout of :class:`repro.dist.matrix.LocalMatrix`.
"""

from __future__ import annotations

import numpy as np

from repro.cachesim.cache import CacheConfig, simulate_misses
from repro.cachesim.lines import line_ids
from repro.dist.matrix import DistMatrix
from repro.sparse.csr import CSRMatrix

__all__ = [
    "x_access_lines",
    "spmv_x_misses",
    "precond_x_misses",
    "precond_x_misses_per_rank",
]


def x_access_lines(mat: CSRMatrix, line_bytes: int) -> np.ndarray:
    """Cache-line id stream of the ``x`` gathers of one CSR SpMV."""
    return line_ids(mat.indices, line_bytes)


def spmv_x_misses(mat: CSRMatrix, config: CacheConfig) -> int:
    """L1 misses on ``x`` for one SpMV with ``mat`` on a cold cache."""
    return simulate_misses(x_access_lines(mat, config.line_bytes), config)


def precond_x_misses_per_rank(
    g: DistMatrix, gt: DistMatrix, config: CacheConfig
) -> np.ndarray:
    """Per-rank misses on ``x`` for the operation ``Gᵀ(Gx)``.

    Both SpMVs are replayed back-to-back per rank through one cache (the
    second product reuses lines the first loaded, as on real hardware).
    """
    from repro.instrument import get_metrics, get_tracer

    tracer = get_tracer()
    metrics = get_metrics()
    nparts = g.partition.nparts
    out = np.zeros(nparts, dtype=np.int64)
    with tracer.span("cachesim.precond_x_misses", ranks=nparts):
        for p in range(nparts):
            stream = np.concatenate(
                [
                    x_access_lines(g.locals[p].csr, config.line_bytes),
                    x_access_lines(gt.locals[p].csr, config.line_bytes),
                ]
            )
            out[p] = simulate_misses(stream, config)
            if metrics.enabled:
                metrics.gauge("cachesim.x_misses", rank=p).set(int(out[p]))
    return out


def precond_x_misses(
    g: DistMatrix, gt: DistMatrix, config: CacheConfig
) -> tuple[float, int]:
    """Average per-rank misses and total ``G`` entries for normalisation.

    Returns ``(mean misses per rank, nnz(G))`` — Figure 3a plots
    ``mean_misses / nnz`` per matrix.
    """
    per_rank = precond_x_misses_per_rank(g, gt, config)
    return float(per_rank.mean()), g.nnz
