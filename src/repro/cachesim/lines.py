"""Cache-line geometry helpers.

The pattern-extension algorithms reason about which entries of the SpMV
multiplying vector ``x`` share a cache line.  With 8-byte doubles, a line of
``line_bytes`` holds ``line_bytes // 8`` consecutive values; the vector is
assumed line-aligned at element 0 (the allocation behaviour the paper's C
implementation relies on).
"""

from __future__ import annotations

import numpy as np

__all__ = ["doubles_per_line", "line_of", "line_block", "line_ids"]

_DOUBLE_BYTES = 8


def doubles_per_line(line_bytes: int) -> int:
    """Number of float64 values per cache line (≥1)."""
    if line_bytes < _DOUBLE_BYTES or line_bytes % _DOUBLE_BYTES:
        raise ValueError(f"line_bytes must be a positive multiple of 8, got {line_bytes}")
    return line_bytes // _DOUBLE_BYTES


def line_of(col: int, line_bytes: int) -> int:
    """Cache-line id containing ``x[col]``."""
    return int(col) // doubles_per_line(line_bytes)


def line_block(col: int, line_bytes: int, n: int) -> tuple[int, int]:
    """Half-open range ``[start, end)`` of vector positions sharing the line
    of ``x[col]``, clipped to a vector of length ``n``.

    This is step 10 of Alg. 3: "compute the initial and final columns of the
    block of entries matching the cache line of x_j".
    """
    dpl = doubles_per_line(line_bytes)
    start = (int(col) // dpl) * dpl
    return start, min(start + dpl, int(n))


def line_ids(cols: np.ndarray, line_bytes: int) -> np.ndarray:
    """Vectorised :func:`line_of` for an index array."""
    return np.asarray(cols, dtype=np.int64) // doubles_per_line(line_bytes)
