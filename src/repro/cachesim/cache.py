"""Trace-driven set-associative LRU cache simulator.

Substitutes the PAPI ``L1-DCM`` hardware counters of the paper's evaluation
(Figures 3a and 5a): the same quantity — misses of the data cache on accesses
to the SpMV multiplying vector — is measured here by replaying the access
stream through a model of the target CPU's L1D.

The defaults mirror the evaluated machines: 32 KiB, 8-way, 64 B lines for
Skylake/Zen 2 and 64 KiB, 4-way, 256 B lines for A64FX.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheConfig", "SetAssociativeCache", "simulate_misses"]

#: Sentinel "no line" value used by the attribution API (line ids are
#: non-negative, so -1 can never collide with a real line).
NO_LINE = -1


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self):
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry fields must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "size_bytes must be a multiple of line_bytes * associativity"
            )

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    def scaled(self, factor: int) -> "CacheConfig":
        """Aggregate cache of ``factor`` cores (hybrid MPI+threads configs).

        The paper's §5.3.2 observation — more threads per process means more
        L1 available to the process — is modelled by scaling capacity while
        keeping line size and associativity.
        """
        return CacheConfig(self.size_bytes * factor, self.line_bytes, self.associativity)


class SetAssociativeCache:
    """An LRU set-associative cache over 64-bit word addresses.

    ``access(line_id)`` returns ``True`` on hit.  Lines are identified by
    their global line index (address // line_bytes); set selection uses the
    low bits, true-LRU replacement within the set.
    """

    __slots__ = ("config", "_tags", "_stamps", "_clock", "hits", "misses", "listener")

    def __init__(self, config: CacheConfig, *, listener=None):
        self.config = config
        ns, assoc = config.num_sets, config.associativity
        self._tags = np.full((ns, assoc), -1, dtype=np.int64)
        self._stamps = np.zeros((ns, assoc), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0
        #: Optional attribution hook: called as ``listener(line_id, hit,
        #: evicted)`` on every access, where ``evicted`` is the line id
        #: displaced by the fill (:data:`NO_LINE` on hits and on fills into
        #: empty ways).  Drives the free-ride ledger of
        #: :mod:`repro.observe.memtraffic`.
        self.listener = listener

    def access(self, line_id: int) -> bool:
        """Touch one line; returns True on hit, False on miss (with fill)."""
        return self.access_attributed(line_id)[0]

    def access_attributed(self, line_id: int) -> tuple[bool, int]:
        """Touch one line with eviction attribution.

        Returns ``(hit, evicted)`` where ``evicted`` is the line id displaced
        by the fill, or :data:`NO_LINE` on a hit or a fill into an empty way.
        Notifies :attr:`listener` when one is attached.
        """
        ns = self.config.num_sets
        s = line_id % ns
        tag = line_id // ns
        self._clock += 1
        row = self._tags[s]
        hit_ways = np.flatnonzero(row == tag)
        if hit_ways.size:
            self._stamps[s, hit_ways[0]] = self._clock
            self.hits += 1
            if self.listener is not None:
                self.listener(line_id, True, NO_LINE)
            return True, NO_LINE
        victim = int(np.argmin(self._stamps[s]))
        old_tag = int(row[victim])
        evicted = old_tag * ns + s if old_tag >= 0 else NO_LINE
        row[victim] = tag
        self._stamps[s, victim] = self._clock
        self.misses += 1
        if self.listener is not None:
            self.listener(line_id, False, evicted)
        return False, evicted

    def access_stream(self, line_ids: np.ndarray) -> int:
        """Replay a whole line-id stream; returns the number of misses.

        The loop runs per access (LRU state is inherently sequential) but
        batches the common fast path: runs of accesses to the *same* line as
        the previous access always hit and are removed vectorially first.
        With a :attr:`listener` attached, the fast path is skipped so the
        hook observes every access individually (immediate repeats are
        reported as hits with no eviction).
        """
        line_ids = np.asarray(line_ids, dtype=np.int64)
        if line_ids.size == 0:
            return 0
        before = self.misses
        if self.listener is not None:
            for lid in line_ids.tolist():
                self.access_attributed(lid)
            return self.misses - before
        # collapse immediate repeats — guaranteed hits, huge fraction of SpMV
        keep = np.empty(line_ids.size, dtype=bool)
        keep[0] = True
        np.not_equal(line_ids[1:], line_ids[:-1], out=keep[1:])
        collapsed = line_ids[keep]
        self.hits += int(line_ids.size - collapsed.size)
        for lid in collapsed.tolist():
            self.access(lid)
        return self.misses - before

    def resident_lines(self) -> np.ndarray:
        """Snapshot of the line ids currently resident (sorted, no LRU touch)."""
        ns = self.config.num_sets
        sets, ways = np.nonzero(self._tags >= 0)
        return np.sort(self._tags[sets, ways] * ns + sets)

    def is_resident(self, line_id: int) -> bool:
        """Whether a line is currently cached, without touching LRU state."""
        ns = self.config.num_sets
        return bool(np.any(self._tags[line_id % ns] == line_id // ns))

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (contents stay)."""
        self.hits = 0
        self.misses = 0


def simulate_misses(line_ids: np.ndarray, config: CacheConfig) -> int:
    """Misses of a fresh cache of ``config`` over the given line-id stream.

    With instrumentation enabled, cumulative ``cachesim.hits`` /
    ``cachesim.misses`` counters and last-run gauges are published to the
    active metrics registry (:mod:`repro.instrument`).
    """
    from repro.instrument import get_metrics

    cache = SetAssociativeCache(config)
    misses = cache.access_stream(line_ids)
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("cachesim.hits").inc(cache.hits)
        metrics.counter("cachesim.misses").inc(cache.misses)
        metrics.gauge("cachesim.hit_rate").set(
            cache.hits / max(cache.hits + cache.misses, 1)
        )
    return misses
