"""Trace-driven set-associative LRU cache simulator.

Substitutes the PAPI ``L1-DCM`` hardware counters of the paper's evaluation
(Figures 3a and 5a): the same quantity — misses of the data cache on accesses
to the SpMV multiplying vector — is measured here by replaying the access
stream through a model of the target CPU's L1D.

The defaults mirror the evaluated machines: 32 KiB, 8-way, 64 B lines for
Skylake/Zen 2 and 64 KiB, 4-way, 256 B lines for A64FX.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheConfig", "SetAssociativeCache", "simulate_misses"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self):
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry fields must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "size_bytes must be a multiple of line_bytes * associativity"
            )

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    def scaled(self, factor: int) -> "CacheConfig":
        """Aggregate cache of ``factor`` cores (hybrid MPI+threads configs).

        The paper's §5.3.2 observation — more threads per process means more
        L1 available to the process — is modelled by scaling capacity while
        keeping line size and associativity.
        """
        return CacheConfig(self.size_bytes * factor, self.line_bytes, self.associativity)


class SetAssociativeCache:
    """An LRU set-associative cache over 64-bit word addresses.

    ``access(line_id)`` returns ``True`` on hit.  Lines are identified by
    their global line index (address // line_bytes); set selection uses the
    low bits, true-LRU replacement within the set.
    """

    __slots__ = ("config", "_tags", "_stamps", "_clock", "hits", "misses")

    def __init__(self, config: CacheConfig):
        self.config = config
        ns, assoc = config.num_sets, config.associativity
        self._tags = np.full((ns, assoc), -1, dtype=np.int64)
        self._stamps = np.zeros((ns, assoc), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, line_id: int) -> bool:
        """Touch one line; returns True on hit, False on miss (with fill)."""
        ns = self.config.num_sets
        s = line_id % ns
        tag = line_id // ns
        self._clock += 1
        row = self._tags[s]
        hit_ways = np.flatnonzero(row == tag)
        if hit_ways.size:
            self._stamps[s, hit_ways[0]] = self._clock
            self.hits += 1
            return True
        victim = int(np.argmin(self._stamps[s]))
        row[victim] = tag
        self._stamps[s, victim] = self._clock
        self.misses += 1
        return False

    def access_stream(self, line_ids: np.ndarray) -> int:
        """Replay a whole line-id stream; returns the number of misses.

        The loop runs per access (LRU state is inherently sequential) but
        batches the common fast path: runs of accesses to the *same* line as
        the previous access always hit and are removed vectorially first.
        """
        line_ids = np.asarray(line_ids, dtype=np.int64)
        if line_ids.size == 0:
            return 0
        # collapse immediate repeats — guaranteed hits, huge fraction of SpMV
        keep = np.empty(line_ids.size, dtype=bool)
        keep[0] = True
        np.not_equal(line_ids[1:], line_ids[:-1], out=keep[1:])
        collapsed = line_ids[keep]
        self.hits += int(line_ids.size - collapsed.size)
        before = self.misses
        for lid in collapsed.tolist():
            self.access(lid)
        return self.misses - before

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (contents stay)."""
        self.hits = 0
        self.misses = 0


def simulate_misses(line_ids: np.ndarray, config: CacheConfig) -> int:
    """Misses of a fresh cache of ``config`` over the given line-id stream.

    With instrumentation enabled, cumulative ``cachesim.hits`` /
    ``cachesim.misses`` counters and last-run gauges are published to the
    active metrics registry (:mod:`repro.instrument`).
    """
    from repro.instrument import get_metrics

    cache = SetAssociativeCache(config)
    misses = cache.access_stream(line_ids)
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("cachesim.hits").inc(cache.hits)
        metrics.counter("cachesim.misses").inc(cache.misses)
        metrics.gauge("cachesim.hit_rate").set(
            cache.hits / max(cache.hits + cache.misses, 1)
        )
    return misses
