"""repro — reproduction of *Communication-aware Sparse Patterns for the
Factorized Approximate Inverse Preconditioner* (Laut, Casas, Borrell,
HPDC '22).

The package implements the paper's contribution (FSAIE-Comm: communication-
aware extension of FSAI sparse patterns, plus dynamic load-balancing
filtering) together with every substrate it depends on, from scratch:

* :mod:`repro.sparse`    — CSR matrices, pattern algebra, SpGEMM, .mtx I/O
* :mod:`repro.partition` — multilevel graph partitioner (METIS stand-in)
* :mod:`repro.mpisim`    — simulated MPI runtime with traffic tracking
* :mod:`repro.dist`      — row-distributed matrices/vectors + halo exchange
* :mod:`repro.cachesim`  — L1 cache simulator (PAPI-counter stand-in)
* :mod:`repro.core`      — FSAI / FSAIE / FSAIE-Comm + distributed PCG
* :mod:`repro.perfmodel` — machine models and the solver-time model
* :mod:`repro.matgen`    — synthetic workloads and the evaluation catalog
* :mod:`repro.analysis`  — metrics, tables and histograms for the benches
* :mod:`repro.instrument`— span tracing, metrics and trace exporters

Quickstart::

    import numpy as np
    from repro import (
        DistMatrix, DistVector, RowPartition,
        build_fsaie_comm, pcg, paper_rhs,
    )
    from repro.matgen import poisson3d

    A = poisson3d(20)
    part = RowPartition.from_matrix(A, nparts=8)
    dA = DistMatrix.from_global(A, part)
    M = build_fsaie_comm(A, part)
    result = pcg(dA, DistVector.from_global(paper_rhs(A), part), precond=M)
    print(result.iterations, result.converged)

Solvers accept the preconditioner object directly (``precond=M``); any
object with an ``.apply(r, tracker)`` method or a bare callable works.  To
record where time goes, wrap the run in :func:`repro.instrument.tracing` and
export with :func:`repro.instrument.write_chrome_trace` (or run
``python -m repro trace``).
"""

from repro.backend import ArrayBackend, get_backend
from repro.core import (
    CGResult,
    FilterSpec,
    FSAIOptions,
    Preconditioner,
    PrecondOptions,
    SetupOptions,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
    cg,
    check_comm_invariance,
    pcg,
)
from repro.dist import DistMatrix, DistVector, HaloSchedule, RowPartition
from repro.kernels import SolverWorkspace, SpMVPlan
from repro.errors import (
    CommError,
    ConvergenceError,
    NotSPDError,
    PartitionError,
    ReproError,
    ShapeError,
    SparseFormatError,
)
from repro.matgen import PAPER_RTOL, paper_rhs
from repro.sparse import CSRMatrix, SparsityPattern, read_matrix_market, write_matrix_market

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "FSAIOptions",
    "FilterSpec",
    "SetupOptions",
    "PrecondOptions",
    "Preconditioner",
    "build_fsai",
    "build_fsaie",
    "build_fsaie_comm",
    "check_comm_invariance",
    "CGResult",
    "pcg",
    "cg",
    # distributed
    "RowPartition",
    "DistMatrix",
    "DistVector",
    "HaloSchedule",
    # kernels
    "SpMVPlan",
    "SolverWorkspace",
    # backend
    "ArrayBackend",
    "get_backend",
    # sparse
    "CSRMatrix",
    "SparsityPattern",
    "read_matrix_market",
    "write_matrix_market",
    # workloads
    "paper_rhs",
    "PAPER_RTOL",
    # errors
    "ReproError",
    "SparseFormatError",
    "ShapeError",
    "PartitionError",
    "CommError",
    "ConvergenceError",
    "NotSPDError",
]
