"""Floating-point operation counts of the CG kernels (paper §2.1).

All counts are exact for the implemented kernels: 2 FLOPs per stored entry
for SpMV (multiply + add), 2 per element for dot products and AXPYs.
"""

from __future__ import annotations

import numpy as np

from repro.core.precond import Preconditioner
from repro.dist.matrix import DistMatrix

__all__ = [
    "spmv_flops",
    "dot_flops",
    "axpy_flops",
    "precond_flops_per_rank",
    "iteration_flops_per_rank",
]


def spmv_flops(nnz: int) -> int:
    """FLOPs of one SpMV with ``nnz`` stored entries."""
    return 2 * int(nnz)


def dot_flops(n: int) -> int:
    """FLOPs of one length-``n`` dot product."""
    return 2 * int(n)


def axpy_flops(n: int) -> int:
    """FLOPs of one length-``n`` AXPY."""
    return 2 * int(n)


def precond_flops_per_rank(precond: Preconditioner) -> np.ndarray:
    """Per-rank FLOPs of one preconditioner application ``Gᵀ(Gx)``."""
    return 2 * (precond.g.nnz_per_rank() + precond.gt.nnz_per_rank())


def iteration_flops_per_rank(
    mat: DistMatrix, precond: Preconditioner | None
) -> np.ndarray:
    """Per-rank FLOPs of one PCG iteration.

    One SpMV with ``A``, the preconditioner application (two SpMVs), three
    dot products (‖r‖², dᵀAd, rᵀz) and three vector updates (x, r, d).
    """
    sizes = mat.partition.sizes()
    flops = 2 * mat.nnz_per_rank()  # SpMV with A
    flops = flops + 6 * sizes  # three dots
    flops = flops + 6 * sizes  # three AXPY-type updates
    if precond is not None:
        flops = flops + precond_flops_per_rank(precond)
    return flops
