"""Analytic time model: counts → modeled solver time on a target machine.

The paper reports measured wall times; offline, the reproduction computes
them from first principles.  One PCG iteration decomposes into

* SpMV with ``A``         — roofline of FLOPs vs streamed bytes,
* preconditioner ``Gᵀ(Gx)`` — same, plus the *simulated* L1 misses on the
  multiplying vector (the quantity Figures 3a/5a measure) as a latency term,
* halo updates            — α–β per neighbour message, max over ranks,
* reductions              — three allreduces of ⌈log₂P⌉ rounds,
* vector updates          — streamed bytes.

Time per rank is the max over ranks of its compute plus its communication —
the bulk-synchronous bound that makes load *imbalance* (§5.3.3) directly
visible in modeled time.  ``threads_per_process`` scales per-process compute
capacity and aggregated L1, reproducing the hybrid study of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cachesim.spmv_trace import precond_x_misses_per_rank, x_access_lines
from repro.cachesim.cache import simulate_misses
from repro.core.precond import Preconditioner
from repro.dist.matrix import DistMatrix
from repro.perfmodel.machine import MachineSpec

__all__ = ["IterationCost", "CostModel", "estimate_solver_time"]

_BYTES_PER_ENTRY = 12  # 8 B value + 4 B column index (CSR streaming)
_BYTES_PER_VALUE = 8


@dataclass(frozen=True)
class IterationCost:
    """Breakdown of the modeled time of one PCG iteration (seconds)."""

    spmv_a: float
    precond: float
    halo: float
    reductions: float
    vector_ops: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.spmv_a + self.precond + self.halo + self.reductions + self.vector_ops


class CostModel:
    """Per-(matrix, preconditioner, machine) time model.

    Parameters
    ----------
    machine:
        Target system parameters.
    threads_per_process:
        Hybrid configuration: cores (OpenMP threads) per MPI process.  Scales
        per-process FLOP rate, memory bandwidth and aggregated L1 capacity.
    simulate_cache:
        Run the L1 simulator for the preconditioner's ``x`` accesses.  When
        off, misses are approximated by one per distinct touched line per
        SpMV (fast, used by large parameter sweeps).
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        threads_per_process: int = 1,
        simulate_cache: bool = True,
    ):
        if threads_per_process < 1:
            raise ValueError("threads_per_process must be >= 1")
        self.machine = machine
        self.threads = threads_per_process
        self.simulate_cache = simulate_cache
        self.process_flops = machine.core_flops * threads_per_process
        self.process_bw = machine.core_mem_bw * threads_per_process
        self.l1 = machine.l1.scaled(threads_per_process)

    # ------------------------------------------------------------------
    def _roofline(self, flops: np.ndarray, bytes_: np.ndarray) -> np.ndarray:
        """Per-rank kernel time: max of compute and memory streams."""
        return np.maximum(flops / self.process_flops, bytes_ / self.process_bw)

    def _halo_time(self, mat: DistMatrix) -> float:
        """α–β cost of one halo update; max over ranks of its receive side."""
        m = self.machine
        per_rank = np.zeros(mat.partition.nparts)
        for p, by_owner in enumerate(mat.schedule.recv_from):
            msgs = sum(1 for ids in by_owner.values() if ids.size)
            values = sum(int(ids.size) for ids in by_owner.values())
            per_rank[p] = msgs * m.net_latency + values * _BYTES_PER_VALUE / m.net_bandwidth
        return float(per_rank.max()) if per_rank.size else 0.0

    def _allreduce_time(self, nparts: int) -> float:
        rounds = int(np.ceil(np.log2(max(nparts, 2)))) if nparts > 1 else 0
        return rounds * (self.machine.net_latency + _BYTES_PER_VALUE / self.machine.net_bandwidth)

    def spmv_misses_per_rank(self, mat: DistMatrix) -> np.ndarray:
        """L1 misses on ``x`` per rank for one SpMV with ``mat``."""
        out = np.zeros(mat.partition.nparts, dtype=np.int64)
        for p, lm in enumerate(mat.locals):
            stream = x_access_lines(lm.csr, self.l1.line_bytes)
            if self.simulate_cache:
                out[p] = simulate_misses(stream, self.l1)
            else:
                out[p] = np.unique(stream).size
        return out

    # ------------------------------------------------------------------
    def iteration_cost(
        self,
        mat: DistMatrix,
        precond: Preconditioner | None,
        *,
        precond_misses: np.ndarray | None = None,
        reduction_phases: int = 3,
    ) -> IterationCost:
        """Modeled time of one PCG iteration.

        ``precond_misses`` lets callers reuse simulated miss counts across
        filter sweeps; when omitted they are computed here.
        ``reduction_phases`` is the number of allreduce synchronisations per
        iteration: 3 for textbook PCG, 1 for pipelined PCG
        (:func:`repro.core.solvers.pipelined_pcg`).
        """
        m = self.machine
        sizes = mat.partition.sizes().astype(np.float64)
        nparts = mat.partition.nparts

        # SpMV with A: stream matrix + gather x + write y
        a_nnz = mat.nnz_per_rank().astype(np.float64)
        a_bytes = a_nnz * _BYTES_PER_ENTRY + sizes * 2 * _BYTES_PER_VALUE
        a_misses = self.spmv_misses_per_rank(mat).astype(np.float64)
        spmv_a = self._roofline(2 * a_nnz, a_bytes) + a_misses * m.miss_penalty
        halo = self._halo_time(mat)

        precond_t = np.zeros(nparts)
        if precond is not None:
            g_nnz = precond.g.nnz_per_rank().astype(np.float64)
            gt_nnz = precond.gt.nnz_per_rank().astype(np.float64)
            p_bytes = (g_nnz + gt_nnz) * _BYTES_PER_ENTRY + sizes * 4 * _BYTES_PER_VALUE
            if precond_misses is None:
                if self.simulate_cache:
                    precond_misses = precond_x_misses_per_rank(
                        precond.g, precond.gt, self.l1
                    )
                else:
                    precond_misses = np.array(
                        [
                            np.unique(
                                x_access_lines(precond.g.locals[p].csr, self.l1.line_bytes)
                            ).size
                            + np.unique(
                                x_access_lines(precond.gt.locals[p].csr, self.l1.line_bytes)
                            ).size
                            for p in range(nparts)
                        ],
                        dtype=np.int64,
                    )
            precond_t = (
                self._roofline(2 * (g_nnz + gt_nnz), p_bytes)
                + precond_misses.astype(np.float64) * m.miss_penalty
            )
            halo += self._halo_time(precond.g) + self._halo_time(precond.gt)

        # three dots + three updates: ~6 streamed vectors each way
        vec_bytes = 12 * sizes * _BYTES_PER_VALUE
        vector_ops = self._roofline(12 * sizes, vec_bytes)
        reductions = reduction_phases * self._allreduce_time(nparts)

        return IterationCost(
            spmv_a=float(spmv_a.max()),
            precond=float(precond_t.max()) if precond is not None else 0.0,
            halo=halo,
            reductions=reductions,
            vector_ops=float(vector_ops.max()),
        )

    def phase_seconds(
        self,
        mat: DistMatrix,
        precond: Preconditioner | None,
        *,
        iterations: int = 1,
        precond_misses: np.ndarray | None = None,
        reduction_phases: int = 3,
    ) -> dict[str, float]:
        """Predicted per-rank seconds per phase over a whole solve.

        The prediction side of :mod:`repro.observe.conformance`: the
        per-iteration :meth:`iteration_cost` folded into the measured-phase
        taxonomy (``compute`` = SpMV-A + preconditioner + vector ops,
        ``halo``, ``reduction``) and scaled by the iteration count —
        directly comparable against
        :meth:`repro.observe.stream.ClusterTelemetry.phase_seconds`.
        """
        from repro.observe.conformance import predicted_phases

        cost = self.iteration_cost(
            mat,
            precond,
            precond_misses=precond_misses,
            reduction_phases=reduction_phases,
        )
        return predicted_phases(cost, iterations)

    def precond_x_read_bytes(self, precond: Preconditioner) -> np.ndarray:
        """Per-rank modeled ``x``-read stream bytes of one ``Gᵀ(Gx)``.

        The multiplying-vector share of the memory term in
        :meth:`iteration_cost` — one full ``x`` read per SpMV, two SpMVs —
        directly comparable against the cachesim fill traffic
        (misses × line size) in
        :class:`repro.observe.memtraffic.CacheConformance`: conforming
        cache behaviour keeps measured fills at or below this stream.
        """
        sizes = precond.g.partition.sizes().astype(np.float64)
        return sizes * 2 * _BYTES_PER_VALUE

    def precond_gflops_per_rank(
        self,
        precond: Preconditioner,
        *,
        precond_misses: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-rank GFLOP/s of the preconditioning SpMVs (Figures 3b/5b/7)."""
        m = self.machine
        sizes = precond.g.partition.sizes().astype(np.float64)
        g_nnz = precond.g.nnz_per_rank().astype(np.float64)
        gt_nnz = precond.gt.nnz_per_rank().astype(np.float64)
        flops = 2 * (g_nnz + gt_nnz)
        p_bytes = (g_nnz + gt_nnz) * _BYTES_PER_ENTRY + sizes * 4 * _BYTES_PER_VALUE
        if precond_misses is None:
            precond_misses = precond_x_misses_per_rank(precond.g, precond.gt, self.l1)
        time = (
            self._roofline(flops, p_bytes)
            + precond_misses.astype(np.float64) * m.miss_penalty
        )
        time = np.where(time > 0, time, np.inf)
        return flops / time / 1e9


def estimate_solver_time(
    iterations: int,
    mat: DistMatrix,
    precond: Preconditioner | None,
    machine: MachineSpec,
    *,
    threads_per_process: int = 1,
    simulate_cache: bool = True,
    precond_misses: np.ndarray | None = None,
) -> float:
    """Modeled time-to-solution: iterations × modeled iteration time."""
    model = CostModel(
        machine,
        threads_per_process=threads_per_process,
        simulate_cache=simulate_cache,
    )
    cost = model.iteration_cost(mat, precond, precond_misses=precond_misses)
    return iterations * cost.total
