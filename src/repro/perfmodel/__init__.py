"""Performance model: machine specs, FLOP counts and the solver-time model.

Substitutes the paper's measured wall-clock with an explicit, documented
model (see DESIGN.md §2) fed by real measured quantities — iteration counts,
per-rank nonzeros, simulated cache misses and tracked halo traffic.
"""

from repro.perfmodel.flops import (
    axpy_flops,
    dot_flops,
    iteration_flops_per_rank,
    precond_flops_per_rank,
    spmv_flops,
)
from repro.perfmodel.machine import A64FX, MACHINES, SKYLAKE, ZEN2, MachineSpec
from repro.perfmodel.model import CostModel, IterationCost, estimate_solver_time
from repro.perfmodel.sizing import SizingResult, select_rank_count

__all__ = [
    "MachineSpec",
    "SKYLAKE",
    "A64FX",
    "ZEN2",
    "MACHINES",
    "CostModel",
    "IterationCost",
    "estimate_solver_time",
    "SizingResult",
    "select_rank_count",
    "spmv_flops",
    "dot_flops",
    "axpy_flops",
    "precond_flops_per_rank",
    "iteration_flops_per_rank",
]
