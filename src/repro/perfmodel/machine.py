"""Machine models of the paper's three evaluation systems.

The paper measures wall time on MareNostrum (Intel Skylake), CTE-ARM
(Fujitsu A64FX) and Hawk (AMD Zen 2).  Offline we replace the hardware with
explicit per-machine parameters: cache geometry for the extension algorithms
and the cache simulator, core rates and memory bandwidth for the roofline
part of the model, and an α–β network for communication.

Numbers are public-spec derived (per-core effective figures for SpMV-like
streaming workloads), not calibrated to the paper's testbeds — the model is
used for *relative* comparisons between preconditioners, which is what the
reproduction validates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.cache import CacheConfig

__all__ = ["MachineSpec", "SKYLAKE", "A64FX", "ZEN2", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """Hardware parameters of one evaluation system.

    Attributes
    ----------
    name:
        Identifier used in benchmark output.
    l1:
        Per-core L1D geometry (line size drives the pattern extensions).
    core_flops:
        Effective per-core FLOP/s sustained on sparse kernels.
    core_mem_bw:
        Effective per-core main-memory bandwidth in bytes/s.
    miss_penalty:
        Seconds per L1 miss beyond the streamed traffic (latency component).
    net_latency:
        Per-message latency α in seconds.
    net_bandwidth:
        Per-link bandwidth β in bytes/s.
    cores_per_node:
        For converting core counts to node counts (Tables 1–2).
    """

    name: str
    l1: CacheConfig
    core_flops: float
    core_mem_bw: float
    miss_penalty: float
    net_latency: float
    net_bandwidth: float
    cores_per_node: int

    @property
    def cache_line_bytes(self) -> int:
        """L1 line size in bytes (the extension parameter)."""
        return self.l1.line_bytes


#: MareNostrum 4 node: 2× Intel Xeon Platinum 8160 (Skylake), 2.1 GHz.
SKYLAKE = MachineSpec(
    name="skylake",
    l1=CacheConfig(32 * 1024, 64, 8),
    core_flops=2.0e9,
    core_mem_bw=12.0e9,
    miss_penalty=20.0e-9,
    net_latency=1.5e-6,
    net_bandwidth=12.5e9,
    cores_per_node=48,
)

#: CTE-ARM node: 1× Fujitsu A64FX, 2.2 GHz, HBM2, 256 B cache lines.
A64FX = MachineSpec(
    name="a64fx",
    l1=CacheConfig(64 * 1024, 256, 4),
    core_flops=2.5e9,
    core_mem_bw=30.0e9,
    miss_penalty=26.0e-9,
    net_latency=1.7e-6,
    net_bandwidth=8.5e9,
    cores_per_node=48,
)

#: Hawk node: 2× AMD EPYC 7742 (Zen 2), 2.25 GHz.
ZEN2 = MachineSpec(
    name="zen2",
    l1=CacheConfig(32 * 1024, 64, 8),
    core_flops=2.3e9,
    core_mem_bw=10.0e9,
    miss_penalty=18.0e-9,
    net_latency=1.4e-6,
    net_bandwidth=25.0e9,
    cores_per_node=128,
)

MACHINES = {m.name: m for m in (SKYLAKE, A64FX, ZEN2)}
