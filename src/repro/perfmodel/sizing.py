"""The paper's parallel-configuration sizing rule (§5.2).

"Considering 8 threads per MPI process, we start with a workload of 256K
entries per thread (i.e. 2M per MPI process) and we keep doubling the core
count until the parallel efficiency at doubling is smaller than 75%."

Offline, parallel efficiency comes from the cost model: doubling the rank
count halves per-rank work but grows halos and synchronisation, and the rule
stops when the modeled speedup of the doubling falls below
``2 × efficiency_threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.matrix import DistMatrix
from repro.dist.partition_map import RowPartition
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.model import CostModel
from repro.sparse.csr import CSRMatrix

__all__ = ["SizingResult", "select_rank_count"]


@dataclass(frozen=True)
class SizingResult:
    """Outcome of the §5.2 doubling procedure."""

    ranks: int
    threads_per_process: int
    cores: int
    efficiencies: tuple[float, ...]  # efficiency of each accepted doubling

    @property
    def nodes(self) -> float:
        """Fractional nodes are meaningful only for reporting."""
        return self.cores


def select_rank_count(
    mat: CSRMatrix,
    machine: MachineSpec,
    *,
    threads_per_process: int = 8,
    entries_per_thread: int = 4_000,
    efficiency_threshold: float = 0.75,
    max_ranks: int = 64,
    seed: int = 0,
) -> SizingResult:
    """Apply the paper's doubling rule at reproduction scale.

    ``entries_per_thread`` defaults to the paper's 256 K scaled by the same
    ~64× factor as the catalog matrices.  Returns the selected rank count
    and the efficiency observed at each accepted doubling.
    """
    if threads_per_process < 1 or entries_per_thread < 1:
        raise ValueError("threads and workload must be positive")
    per_process = entries_per_thread * threads_per_process
    ranks = max(1, round(mat.nnz / per_process))
    ranks = min(ranks, mat.nrows, max_ranks)

    def iteration_time(p: int) -> float:
        part = RowPartition.from_matrix(mat, p, seed=seed)
        dist = DistMatrix.from_global(mat, part)
        model = CostModel(
            machine, threads_per_process=threads_per_process, simulate_cache=False
        )
        return model.iteration_cost(dist, None).total

    efficiencies: list[float] = []
    current_time = iteration_time(ranks)
    while ranks * 2 <= min(max_ranks, mat.nrows):
        doubled_time = iteration_time(ranks * 2)
        if doubled_time <= 0:
            break
        efficiency = current_time / (2.0 * doubled_time)
        if efficiency < efficiency_threshold:
            break
        efficiencies.append(efficiency)
        ranks *= 2
        current_time = doubled_time
    return SizingResult(
        ranks=ranks,
        threads_per_process=threads_per_process,
        cores=ranks * threads_per_process,
        efficiencies=tuple(efficiencies),
    )
