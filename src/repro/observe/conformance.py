"""α–β model-conformance verdicts: predicted vs measured, per rank count.

The repo's :class:`repro.perfmodel.CostModel` *predicts* per-iteration
phase costs (SpMV, preconditioner, halo, reductions); the streaming
telemetry of :mod:`repro.observe.stream` *measures* the same phases on the
simulated wire at production rank counts.  This module confronts the two
across a strong-scaled ladder and renders the confrontation as a versioned
:class:`ConformanceReport`:

* per-phase **predicted-vs-measured ratios** at each rank count of the
  ladder (compute / halo / reduction);
* **straggler-rank detection** via robust z-scores over the streamed
  per-rank wait histogram (median and percentile-estimated MAD — O(bucket)
  statistics, never an O(P) vector);
* **named divergence verdicts** — ``halo-underpredicted``,
  ``reduction-overpredicted``, ``straggler-ranks``, ... — that plug
  straight into :func:`repro.observe.explain.attribute`'s suspect list via
  :meth:`ConformanceReport.to_suspects`.

Honesty note on ratios: measured seconds come from a GIL-interleaved
simulation, so *absolute* predicted/measured ratios are machine- and
load-dependent.  The report records them; the CI gate
(``scripts/check_model_conformance.py``) therefore checks ratio **drift**
against a recorded baseline plus the structural facts that are exact —
schedule invariance with telemetry enabled, telemetry excluded from the
audit, artifact sublinearity.

The module is duck-typed over cost objects (anything with ``spmv_a`` /
``precond`` / ``halo`` / ``reductions`` / ``vector_ops`` attributes — e.g.
:class:`repro.perfmodel.model.IterationCost`) so observe keeps its layering
below :mod:`repro.perfmodel`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.observe.explain import Suspect

__all__ = [
    "CONFORMANCE_FORMAT",
    "CONFORMANCE_VERSION",
    "ConformanceError",
    "PHASES",
    "predicted_phases",
    "PhaseConformance",
    "RankCountConformance",
    "ConformanceReport",
    "conformance_samples",
]

CONFORMANCE_FORMAT = "repro-conformance"
CONFORMANCE_VERSION = 1

#: The measured/predicted phase taxonomy.  ``compute`` folds the model's
#: SpMV-A, preconditioner-apply and vector-op terms (they are one fused
#: stretch of rank-local work on the wire); ``halo`` is blocked halo-wait
#: time; ``reduction`` is allreduce time.
PHASES = ("compute", "halo", "reduction")


class ConformanceError(ReproError):
    """Malformed conformance document or inconsistent entry data."""


def predicted_phases(cost, iterations: int) -> dict[str, float]:
    """Fold a per-iteration cost object into per-phase predicted seconds.

    ``cost`` is duck-typed over the α–β model's per-iteration breakdown
    (``spmv_a`` + ``precond`` + ``vector_ops`` → compute, ``halo`` → halo,
    ``reductions`` → reduction), scaled by the iteration count — the same
    folding :meth:`repro.perfmodel.CostModel.phase_seconds` applies.
    """
    k = float(iterations)
    return {
        "compute": (float(cost.spmv_a) + float(cost.precond)
                    + float(cost.vector_ops)) * k,
        "halo": float(cost.halo) * k,
        "reduction": float(cost.reductions) * k,
    }


@dataclass
class PhaseConformance:
    """One phase's predicted-vs-measured confrontation at one rank count."""

    phase: str
    predicted_seconds: float
    measured_seconds: float

    @property
    def ratio(self) -> float:
        """measured / predicted (``inf`` when the model predicted zero for
        a phase that measurably happened; ``1.0`` when both are zero)."""
        if self.predicted_seconds > 0:
            return self.measured_seconds / self.predicted_seconds
        return float("inf") if self.measured_seconds > 0 else 1.0

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "phase": self.phase,
            "predicted_seconds": float(self.predicted_seconds),
            "measured_seconds": float(self.measured_seconds),
            "ratio": float(self.ratio),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PhaseConformance":
        return cls(
            phase=str(d["phase"]),
            predicted_seconds=float(d["predicted_seconds"]),
            measured_seconds=float(d["measured_seconds"]),
        )


@dataclass
class RankCountConformance:
    """Model conformance at one rung of the strong-scaled ladder."""

    ranks: int
    iterations: int
    phases: list = field(default_factory=list)
    stragglers: list = field(default_factory=list)
    telemetry_payload_bytes: int = 0
    sampled_ranks: int = 0
    extras: dict = field(default_factory=dict)

    @classmethod
    def from_cluster(
        cls,
        *,
        ranks: int,
        iterations: int,
        predicted: dict,
        cluster,
        z_threshold: float = 3.5,
        extras: dict | None = None,
    ) -> "RankCountConformance":
        """Build one rung from the model's predicted per-phase seconds and
        an aggregated :class:`repro.observe.stream.ClusterTelemetry`.

        The model predicts *per-rank* seconds; the cluster histograms hold
        cluster-total seconds, so measured-per-rank is the cluster sum over
        the rank count.  Stragglers come from the cluster's robust z-score
        detector over the streamed per-rank wait distribution.
        """
        totals = cluster.phase_seconds()
        nranks = max(int(ranks), 1)
        phases = [
            PhaseConformance(
                phase=name,
                predicted_seconds=float(predicted.get(name, 0.0)),
                measured_seconds=float(totals.get(name, 0.0)) / nranks,
            )
            for name in PHASES
        ]
        return cls(
            ranks=int(ranks),
            iterations=int(iterations),
            phases=phases,
            stragglers=cluster.straggler_ranks(z_threshold=z_threshold),
            telemetry_payload_bytes=int(cluster.payload_bytes()),
            sampled_ranks=len(cluster.sampled),
            extras=dict(extras or {}),
        )

    def phase(self, name: str) -> PhaseConformance | None:
        """The named phase entry, or None."""
        for p in self.phases:
            if p.phase == name:
                return p
        return None

    def ratios(self) -> dict[str, float]:
        """Phase name → measured/predicted ratio."""
        return {p.phase: p.ratio for p in self.phases}

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "ranks": self.ranks,
            "iterations": self.iterations,
            "phases": [p.to_dict() for p in self.phases],
            "stragglers": list(self.stragglers),
            "telemetry_payload_bytes": self.telemetry_payload_bytes,
            "sampled_ranks": self.sampled_ranks,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RankCountConformance":
        return cls(
            ranks=int(d["ranks"]),
            iterations=int(d.get("iterations", 0)),
            phases=[PhaseConformance.from_dict(p) for p in d.get("phases", [])],
            stragglers=list(d.get("stragglers", [])),
            telemetry_payload_bytes=int(d.get("telemetry_payload_bytes", 0)),
            sampled_ranks=int(d.get("sampled_ranks", 0)),
            extras=dict(d.get("extras", {})),
        )


@dataclass
class ConformanceReport:
    """Versioned model-conformance document over a rank-count ladder.

    ``verdicts`` names the divergences; each verdict is a plain dict with
    ``name`` / ``ranks`` / ``detail`` keys so it serialises cleanly, and
    :meth:`to_suspects` lifts them into :class:`repro.observe.explain`
    suspects (method ``rP``, name ``conformance:<verdict>``) for
    :func:`repro.observe.explain.attribute`.
    """

    entries: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    #: A phase whose measured *share* of total time differs from its
    #: predicted share by more than this is named a divergence verdict.
    #: Shares — not raw ratios — because a global scale factor between
    #: simulated seconds and modeled seconds is expected; a phase *mix*
    #: that disagrees is what indicts the model.
    share_tolerance: float = 0.25

    def verdicts(self) -> list[dict]:
        """Named divergence verdicts over every rung of the ladder."""
        out: list[dict] = []
        for entry in self.entries:
            predicted_total = sum(p.predicted_seconds for p in entry.phases)
            measured_total = sum(p.measured_seconds for p in entry.phases)
            for p in entry.phases:
                if predicted_total <= 0 or measured_total <= 0:
                    continue
                predicted_share = p.predicted_seconds / predicted_total
                measured_share = p.measured_seconds / measured_total
                drift = measured_share - predicted_share
                if drift > self.share_tolerance:
                    out.append({
                        "name": f"{p.phase}-underpredicted",
                        "ranks": entry.ranks,
                        "detail": (
                            f"{p.phase} is {measured_share:.0%} of measured "
                            f"time but only {predicted_share:.0%} of the "
                            f"model's prediction at {entry.ranks} ranks "
                            f"(ratio {p.ratio:.3g})"
                        ),
                    })
                elif drift < -self.share_tolerance:
                    out.append({
                        "name": f"{p.phase}-overpredicted",
                        "ranks": entry.ranks,
                        "detail": (
                            f"the model puts {predicted_share:.0%} of time "
                            f"in {p.phase} but only {measured_share:.0%} was "
                            f"measured at {entry.ranks} ranks "
                            f"(ratio {p.ratio:.3g})"
                        ),
                    })
            if entry.stragglers:
                worst = entry.stragglers[0]
                out.append({
                    "name": "straggler-ranks",
                    "ranks": entry.ranks,
                    "detail": (
                        f"{len(entry.stragglers)} rank(s) with robust "
                        f"z >= 3.5 at {entry.ranks} ranks; worst is rank "
                        f"{worst['rank']} at {worst['wait_seconds'] * 1e3:.2f} ms "
                        f"halo wait (z={worst['z']:.1f})"
                    ),
                })
            for flag in ("halo_invariant", "telemetry_excluded"):
                if flag in entry.extras and not entry.extras[flag]:
                    out.append({
                        "name": f"{flag.replace('_', '-')}-violated",
                        "ranks": entry.ranks,
                        "detail": (
                            f"structural fact {flag!r} failed at "
                            f"{entry.ranks} ranks"
                        ),
                    })
        return out

    def to_suspects(self) -> list[Suspect]:
        """The divergence verdicts as explainer suspects."""
        return [
            Suspect(
                name=f"conformance:{v['name']}",
                method=f"r{v['ranks']}",
                detail=v["detail"],
            )
            for v in self.verdicts()
        ]

    # rendering ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable conformance table plus verdicts."""
        lines = ["model conformance (measured / predicted per phase)"]
        if self.meta.get("matrix"):
            lines[0] += f" — {self.meta['matrix']}"
        lines.append("")
        header = (
            f"{'ranks':>6} {'iters':>6}"
            + "".join(f" {p + ' x':>12}" for p in PHASES)
            + f" {'stragglers':>11} {'payload':>9} {'sampled':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for entry in sorted(self.entries, key=lambda e: e.ranks):
            ratios = entry.ratios()
            lines.append(
                f"{entry.ranks:>6} {entry.iterations:>6}"
                + "".join(f" {ratios[p]:>12.3g}" for p in PHASES)
                + f" {len(entry.stragglers):>11}"
                + f" {entry.telemetry_payload_bytes / 1024:>8.1f}K"
                + f" {entry.sampled_ranks:>8}"
            )
        verdicts = self.verdicts()
        lines.append("")
        if verdicts:
            lines.append(f"verdicts ({len(verdicts)}):")
            for v in verdicts:
                lines.append(f"  - [{v['name']}] {v['detail']}")
        else:
            lines.append("verdicts: none — phase mix within the share band")
        return "\n".join(lines)

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-serialisable document."""
        return {
            "format": CONFORMANCE_FORMAT,
            "version": CONFORMANCE_VERSION,
            "meta": dict(self.meta),
            "share_tolerance": self.share_tolerance,
            "entries": [e.to_dict() for e in self.entries],
            "verdicts": self.verdicts(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ConformanceReport":
        if d.get("format") != CONFORMANCE_FORMAT:
            raise ConformanceError(
                f"not a conformance document (format={d.get('format')!r})"
            )
        if int(d.get("version", 0)) > CONFORMANCE_VERSION:
            raise ConformanceError(
                f"conformance document version {d.get('version')} is newer "
                f"than supported ({CONFORMANCE_VERSION})"
            )
        return cls(
            entries=[RankCountConformance.from_dict(e)
                     for e in d.get("entries", [])],
            meta=dict(d.get("meta", {})),
            share_tolerance=float(d.get("share_tolerance", 0.25)),
        )

    def save(self, path) -> Path:
        """Write the versioned document."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "ConformanceReport":
        """Read a document written by :meth:`save`."""
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise ConformanceError(f"cannot read conformance report: {exc}") from exc
        return cls.from_dict(doc)


def conformance_samples(report: ConformanceReport, *, prefix: str = "conformance") -> list[dict]:
    """The report as ``collect()``-style instruments for OpenMetrics export
    (:func:`repro.observe.prom.render_openmetrics`)."""
    samples: list[dict] = []
    for entry in sorted(report.entries, key=lambda e: e.ranks):
        tags = {"ranks": entry.ranks}
        samples.append({"kind": "gauge", "name": f"{prefix}.iterations",
                        "tags": tags, "value": entry.iterations})
        for p in entry.phases:
            ptags = {"ranks": entry.ranks, "phase": p.phase}
            samples.append({"kind": "gauge", "name": f"{prefix}.predicted_seconds",
                            "tags": ptags, "value": p.predicted_seconds})
            samples.append({"kind": "gauge", "name": f"{prefix}.measured_seconds",
                            "tags": ptags, "value": p.measured_seconds})
            samples.append({"kind": "gauge", "name": f"{prefix}.ratio",
                            "tags": ptags, "value": p.ratio})
        samples.append({"kind": "gauge", "name": f"{prefix}.stragglers",
                        "tags": tags, "value": len(entry.stragglers)})
        samples.append({"kind": "gauge", "name": f"{prefix}.payload_bytes",
                        "tags": tags, "value": entry.telemetry_payload_bytes})
    samples.append({"kind": "gauge", "name": f"{prefix}.verdicts", "tags": {},
                    "value": len(report.verdicts())})
    return samples
