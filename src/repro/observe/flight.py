"""Solver flight recorder: per-iteration events and their interpretation.

The Krylov solvers (:func:`repro.core.cg.pcg`,
:func:`repro.core.solvers.bicgstab`,
:func:`repro.core.solvers.pipelined_pcg`) emit one ``flight.iteration``
instant event per iteration when tracing is enabled — residual norm, the
``alpha``/``beta`` (or ``omega``) recurrence coefficients — plus a
``flight.true_residual`` event every :data:`TRUE_RESIDUAL_INTERVAL`
iterations comparing the recurrence residual against the explicitly computed
``‖b − A·x‖₂`` (recurrence *drift* is the classic failure mode of pipelined
CG), and a one-shot ``flight.divergence`` event the first time the residual
exceeds :data:`DIVERGENCE_FACTOR` times the initial norm.  With tracing
disabled none of this runs: the emission sites guard on ``tracer.enabled``,
so hot loops pay one attribute read.

This module is the *interpretation* side: :class:`FlightRecord` parses those
events back out of a :class:`~repro.instrument.Tracer` (or an exported trace
document) into per-iteration series with stagnation/divergence detectors and
a serialisable summary the :class:`~repro.observe.report.RunReport` embeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "TRUE_RESIDUAL_INTERVAL",
    "DIVERGENCE_FACTOR",
    "DriftCheck",
    "FlightRecord",
]

#: Iterations between explicit true-residual checks in the solvers.
TRUE_RESIDUAL_INTERVAL = 25

#: ``‖r‖ > DIVERGENCE_FACTOR · ‖r₀‖`` triggers the solvers' one-shot
#: ``flight.divergence`` event.
DIVERGENCE_FACTOR = 10.0

#: Event names of the recorder (the solver emission <-> parser contract).
ITERATION_EVENT = "flight.iteration"
TRUE_RESIDUAL_EVENT = "flight.true_residual"
DIVERGENCE_EVENT = "flight.divergence"


@dataclass(frozen=True)
class DriftCheck:
    """One explicit true-residual check.

    ``drift`` is ``|true − recurrence| / ‖r₀‖`` — how far the solver's
    recurrence residual has wandered from the residual of the actual iterate.
    """

    index: int
    true_residual: float
    recurrence_residual: float
    drift: float

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "index": self.index,
            "true_residual": self.true_residual,
            "recurrence_residual": self.recurrence_residual,
            "drift": self.drift,
        }


@dataclass
class FlightRecord:
    """Parsed per-iteration flight data of one solver run.

    Build with :meth:`from_tracer` (live :class:`~repro.instrument.Tracer`)
    or :meth:`from_spans` (span dictionaries of an exported trace document).
    """

    solver: str = ""
    indices: list[int] = field(default_factory=list)
    residuals: list[float] = field(default_factory=list)
    alphas: list[float | None] = field(default_factory=list)
    betas: list[float | None] = field(default_factory=list)
    drift_checks: list[DriftCheck] = field(default_factory=list)
    divergence_events: list[int] = field(default_factory=list)

    # construction ------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer, solver: str | None = None) -> "FlightRecord":
        """Parse the flight events recorded by a tracer.

        ``solver`` filters to one solver's events when several ran under the
        same tracer (``"pcg"``, ``"bicgstab"``, ``"pipelined_pcg"``).
        """
        spans = [
            {"name": s.name, "tags": s.tags}
            for s in tracer.spans
            if s.name.startswith("flight.")
        ]
        return cls.from_spans(spans, solver=solver)

    @classmethod
    def from_spans(cls, spans: list[dict], solver: str | None = None) -> "FlightRecord":
        """Parse flight events from span dictionaries (exported trace form)."""
        rec = cls(solver=solver or "")
        for span in spans:
            tags = span.get("tags", {})
            if solver is not None and tags.get("solver") != solver:
                continue
            name = span.get("name")
            if name == ITERATION_EVENT:
                if not rec.solver:
                    rec.solver = str(tags.get("solver", ""))
                rec.indices.append(int(tags.get("index", len(rec.indices))))
                rec.residuals.append(float(tags.get("residual", math.nan)))
                alpha = tags.get("alpha")
                beta = tags.get("beta", tags.get("omega"))
                rec.alphas.append(None if alpha is None else float(alpha))
                rec.betas.append(None if beta is None else float(beta))
            elif name == TRUE_RESIDUAL_EVENT:
                rec.drift_checks.append(
                    DriftCheck(
                        index=int(tags.get("index", -1)),
                        true_residual=float(tags.get("true_residual", math.nan)),
                        recurrence_residual=float(
                            tags.get("recurrence_residual", math.nan)
                        ),
                        drift=float(tags.get("drift", math.nan)),
                    )
                )
            elif name == DIVERGENCE_EVENT:
                rec.divergence_events.append(int(tags.get("index", -1)))
        return rec

    # queries -----------------------------------------------------------
    @property
    def iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.indices)

    @property
    def final_residual(self) -> float:
        """Residual of the last recorded iteration (NaN when empty)."""
        return self.residuals[-1] if self.residuals else math.nan

    @property
    def max_drift(self) -> float:
        """Largest recorded recurrence drift (0.0 when never checked)."""
        return max((c.drift for c in self.drift_checks), default=0.0)

    def stagnation(self, window: int = 10, min_drop: float = 0.99) -> list[int]:
        """Iterations where convergence stalled.

        Returns every iteration index at which the residual failed to drop
        below ``min_drop`` times its value ``window`` iterations earlier —
        i.e. less than ``(1 − min_drop)`` relative progress over the window.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        flagged = []
        for k in range(window, len(self.residuals)):
            prev, cur = self.residuals[k - window], self.residuals[k]
            if not (math.isfinite(prev) and math.isfinite(cur)):
                continue
            if prev > 0 and cur > min_drop * prev:
                flagged.append(self.indices[k])
        return flagged

    def divergence(self, factor: float = DIVERGENCE_FACTOR) -> list[int]:
        """Iterations whose residual exceeds ``factor`` times the first one
        (or is non-finite) — the offline form of the solvers' one-shot
        ``flight.divergence`` event."""
        if not self.residuals:
            return []
        r0 = self.residuals[0]
        return [
            self.indices[k]
            for k, r in enumerate(self.residuals)
            if not math.isfinite(r) or (r0 > 0 and r > factor * r0)
        ]

    def summary(self) -> dict:
        """Serialisable digest embedded in run reports."""
        stalls = self.stagnation()
        return {
            "solver": self.solver,
            "iterations": self.iterations,
            "final_residual": self.final_residual,
            "max_drift": self.max_drift,
            "drift_checks": [c.to_dict() for c in self.drift_checks],
            "stagnation_count": len(stalls),
            "stagnation_first": stalls[0] if stalls else None,
            "divergence_events": list(self.divergence_events),
        }

    def __repr__(self) -> str:
        return (
            f"FlightRecord(solver={self.solver!r}, iterations={self.iterations}, "
            f"drift_checks={len(self.drift_checks)})"
        )
