"""Performance attribution: explain *why* a solve behaved the way it did.

The paper's argument is a tradeoff: FSAIE buys iteration reductions with
extra nonzeros; FSAIE-Comm restricts the extras to already-touched cache
lines on already-owned ranks so the extra nonzeros are (nearly) free; and
dynamic filtering keeps the per-rank extension balanced.  This module turns
one solve per pattern into a versioned *attribution verdict* that checks
each link of that argument against the run's own numbers:

* achieved iteration count and modeled time vs the :mod:`repro.perfmodel`
  prediction, with the dominant modeled component named when they diverge;
* extra-nnz vs iteration-reduction tradeoff per pattern, relative to the
  FSAI baseline;
* cache-line reuse (``cachesim`` misses) — extension entries should not
  add misses in proportion to their nonzeros;
* named "suspects" (:class:`Suspect`) whenever a fact contradicts the
  expectation: load imbalance, ineffective extension, model divergence,
  invariance violation, non-convergence.

Layering: everything here is duck-typed over plain numbers and
already-built objects (``MethodFacts.from_objects`` reads attributes, never
types) — this module must not import :mod:`repro.core`.  Orchestration
(building preconditioners, running solves) lives in the CLI and benchmark
layers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

__all__ = [
    "EXPLAIN_FORMAT",
    "EXPLAIN_VERSION",
    "ExplainError",
    "MethodFacts",
    "Suspect",
    "AttributionVerdict",
    "attribute",
]

#: Schema identifier and version stamped into saved verdicts.
EXPLAIN_FORMAT = "repro-attribution"
EXPLAIN_VERSION = 1


class ExplainError(ReproError):
    """An attribution document is malformed or from a newer schema."""


@dataclass
class MethodFacts:
    """The observable facts of one (pattern, solve) pair.

    All fields are plain numbers/flags so facts can be built from live
    objects (:meth:`from_objects`), loaded documents, or tests without
    touching solver code.
    """

    method: str
    iterations: int
    converged: bool = True
    nnz: int = 0
    base_nnz: int = 0
    nnz_per_rank: list[int] = field(default_factory=list)
    modeled_seconds: float | None = None
    modeled_breakdown: dict = field(default_factory=dict)
    measured_seconds: float | None = None
    misses_total: float | None = None
    invariant: bool | None = None

    @classmethod
    def from_objects(
        cls,
        precond,
        result,
        *,
        cost=None,
        misses=None,
        measured_seconds: float | None = None,
        invariant: bool | None = None,
    ) -> "MethodFacts":
        """Duck-typed builder: ``precond`` needs ``name`` / ``nnz`` /
        ``base_nnz`` / ``nnz_per_rank()``; ``result`` needs ``iterations`` /
        ``converged``; ``cost`` is a per-iteration cost object (attributes
        become the modeled breakdown); ``misses`` is per-rank cache misses.
        """
        iterations = int(getattr(result, "iterations", result))
        breakdown: dict = {}
        modeled = None
        if cost is not None:
            for name in ("spmv_a", "precond", "halo", "reductions", "vector_ops"):
                value = getattr(cost, name, None)
                if value is not None:
                    breakdown[name] = float(value)
            total = getattr(cost, "total", None)
            if total is not None:
                modeled = iterations * float(total)
        return cls(
            method=str(getattr(precond, "name", precond)),
            iterations=iterations,
            converged=bool(getattr(result, "converged", True)),
            nnz=int(getattr(precond, "nnz", 0)),
            base_nnz=int(getattr(precond, "base_nnz", 0)),
            nnz_per_rank=[int(v) for v in precond.nnz_per_rank()]
            if hasattr(precond, "nnz_per_rank")
            else [],
            modeled_seconds=modeled,
            modeled_breakdown=breakdown,
            measured_seconds=measured_seconds,
            misses_total=float(sum(misses)) if misses is not None else None,
            invariant=invariant,
        )

    @property
    def extra_nnz_percent(self) -> float:
        """Pattern growth over the FSAI baseline, in percent."""
        if not self.base_nnz:
            return 0.0
        return 100.0 * (self.nnz - self.base_nnz) / self.base_nnz

    @property
    def imbalance(self) -> float:
        """max/mean of the per-rank nonzeros (1.0 = perfectly balanced)."""
        if not self.nnz_per_rank:
            return 1.0
        mean = sum(self.nnz_per_rank) / len(self.nnz_per_rank)
        return max(self.nnz_per_rank) / mean if mean else 1.0

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "method": self.method,
            "iterations": self.iterations,
            "converged": self.converged,
            "nnz": self.nnz,
            "base_nnz": self.base_nnz,
            "nnz_per_rank": list(self.nnz_per_rank),
            "extra_nnz_percent": self.extra_nnz_percent,
            "imbalance": self.imbalance,
            "modeled_seconds": self.modeled_seconds,
            "modeled_breakdown": dict(self.modeled_breakdown),
            "measured_seconds": self.measured_seconds,
            "misses_total": self.misses_total,
            "invariant": self.invariant,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MethodFacts":
        return cls(
            method=d["method"],
            iterations=int(d["iterations"]),
            converged=bool(d.get("converged", True)),
            nnz=int(d.get("nnz", 0)),
            base_nnz=int(d.get("base_nnz", 0)),
            nnz_per_rank=[int(v) for v in d.get("nnz_per_rank", [])],
            modeled_seconds=d.get("modeled_seconds"),
            modeled_breakdown=dict(d.get("modeled_breakdown", {})),
            measured_seconds=d.get("measured_seconds"),
            misses_total=d.get("misses_total"),
            invariant=d.get("invariant"),
        )


@dataclass(frozen=True)
class Suspect:
    """One named cause for a divergence between expected and achieved."""

    name: str
    method: str
    detail: str

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {"name": self.name, "method": self.method, "detail": self.detail}


@dataclass
class AttributionVerdict:
    """The versioned per-solve attribution document."""

    facts: list[MethodFacts] = field(default_factory=list)
    suspects: list[Suspect] = field(default_factory=list)
    baseline: str = "FSAI"
    meta: dict = field(default_factory=dict)

    def facts_for(self, method: str) -> MethodFacts | None:
        """Facts of one method by name (``None`` when absent)."""
        for f in self.facts:
            if f.method == method:
                return f
        return None

    def iteration_reduction_percent(self, method: str) -> float | None:
        """Iterations saved vs the baseline pattern, as a percentage."""
        base = self.facts_for(self.baseline)
        other = self.facts_for(method)
        if base is None or other is None or not base.iterations:
            return None
        return 100.0 * (base.iterations - other.iterations) / base.iterations

    @property
    def headline(self) -> str:
        """One-line summary of the verdict."""
        parts = []
        for f in self.facts:
            if f.method == self.baseline:
                parts.append(f"{f.method}: {f.iterations} iterations (baseline)")
                continue
            red = self.iteration_reduction_percent(f.method)
            if red is None:
                parts.append(f"{f.method}: {f.iterations} iterations")
            else:
                parts.append(
                    f"{f.method}: {f.iterations} iterations "
                    f"({red:+.1f}% vs {self.baseline}, "
                    f"+{f.extra_nnz_percent:.1f}% nnz)"
                )
        verdict = "clean" if not self.suspects else (
            ", ".join(sorted({s.name for s in self.suspects}))
        )
        return "; ".join(parts) + f" — suspects: {verdict}"

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "format": EXPLAIN_FORMAT,
            "version": EXPLAIN_VERSION,
            "meta": dict(self.meta),
            "baseline": self.baseline,
            "headline": self.headline,
            "facts": [f.to_dict() for f in self.facts],
            "suspects": [s.to_dict() for s in self.suspects],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "AttributionVerdict":
        if not isinstance(doc, dict):
            raise ExplainError("attribution document must be a JSON object")
        if doc.get("format") != EXPLAIN_FORMAT:
            raise ExplainError(
                f"not an attribution document (format={doc.get('format')!r})"
            )
        if doc.get("version") != EXPLAIN_VERSION:
            raise ExplainError(
                f"unsupported attribution schema version {doc.get('version')!r} "
                f"(this build reads version {EXPLAIN_VERSION})"
            )
        return cls(
            facts=[MethodFacts.from_dict(d) for d in doc.get("facts", [])],
            suspects=[
                Suspect(d["name"], d.get("method", "?"), d.get("detail", ""))
                for d in doc.get("suspects", [])
            ],
            baseline=doc.get("baseline", "FSAI"),
            meta=dict(doc.get("meta", {})),
        )

    def save(self, path, *, indent: int | None = 2) -> Path:
        """Write as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=indent) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "AttributionVerdict":
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except OSError as exc:
            raise ExplainError(f"cannot read {path}: {exc}") from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ExplainError(f"{path} is not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(doc)
        except ExplainError as exc:
            raise ExplainError(f"{path}: {exc}") from None

    # rendering ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable text rendering."""
        lines = [f"attribution verdict — {self.headline}", ""]
        for f in self.facts:
            lines.append(f"[{f.method}]")
            lines.append(
                f"  iterations        : {f.iterations} (converged={f.converged})"
            )
            if f.base_nnz:
                lines.append(
                    f"  pattern           : {f.nnz} nnz "
                    f"(+{f.extra_nnz_percent:.1f}% vs FSAI), "
                    f"imbalance {f.imbalance:.3f}"
                )
            if f.modeled_seconds is not None:
                lines.append(f"  modeled time      : {f.modeled_seconds * 1e3:.3f} ms")
            if f.modeled_breakdown:
                dominant = max(f.modeled_breakdown, key=f.modeled_breakdown.get)
                lines.append(
                    f"  dominant component: {dominant} "
                    f"({f.modeled_breakdown[dominant] * 1e6:.2f} us/iteration)"
                )
            if f.measured_seconds is not None:
                lines.append(f"  measured time     : {f.measured_seconds * 1e3:.3f} ms")
            if f.misses_total is not None:
                lines.append(f"  precond misses    : {f.misses_total:.0f} cache lines")
            if f.invariant is not None:
                lines.append(f"  comm invariant    : {f.invariant}")
        if self.suspects:
            lines.append("")
            lines.append("suspects:")
            for s in self.suspects:
                lines.append(f"  - {s.name} [{s.method}]: {s.detail}")
        else:
            lines.append("")
            lines.append("suspects: none — achieved behaviour matches the model")
        return "\n".join(lines)


def attribute(
    facts: list[MethodFacts],
    *,
    baseline: str = "FSAI",
    meta: dict | None = None,
    model_tolerance: float = 0.5,
    imbalance_band: float = 0.05,
    conformance=None,
    ledgers=None,
) -> AttributionVerdict:
    """Judge a set of per-method facts and name suspects for divergences.

    Rules (each suspect names the method and the evidence):

    * ``no-convergence`` — the solve did not converge;
    * ``model-divergence`` — measured time off the perfmodel prediction by
      more than ``model_tolerance`` (relative), naming the dominant modeled
      component as the likely misattribution;
    * ``load-imbalance`` — per-rank nonzeros outside the ±``imbalance_band``
      Alg. 4 band (max/mean above ``1 + band``);
    * ``ineffective-extension`` — a pattern added nonzeros over the baseline
      without reducing iterations;
    * ``cache-reuse-not-realized`` — an extended pattern incurs
      substantially more preconditioner misses than the baseline (extension
      entries were supposed to ride already-touched lines);
    * ``comm-invariance-violated`` — the audited halo schedule differs from
      the baseline's.

    ``conformance`` optionally takes a
    :class:`repro.observe.conformance.ConformanceReport` (duck-typed:
    anything with ``to_suspects()``); its named divergence verdicts —
    per-phase model under/over-prediction at each rank count, straggler
    ranks — are appended to the suspect list, so one ``repro explain``
    surface covers both per-solve facts and at-scale model conformance.

    ``ledgers`` optionally maps method name →
    :class:`repro.observe.memtraffic.FreeRideLedger` (duck-typed: anything
    with ``ext_accesses`` / ``free_rides`` / ``free_ride_fraction`` /
    ``line_bytes``).  With a ledger present, ``cache-reuse-not-realized``
    is judged on — and cites — actual line-level evidence: it fires when
    extension accesses were *not* majority free rides, and the miss-growth
    rule's detail quotes the ledger's counts instead of aggregate misses
    alone.
    """
    verdict = AttributionVerdict(
        facts=list(facts), baseline=baseline, meta=dict(meta or {})
    )
    base = verdict.facts_for(baseline)
    for f in verdict.facts:
        if not f.converged:
            verdict.suspects.append(
                Suspect(
                    "no-convergence", f.method,
                    f"solve stopped at {f.iterations} iterations unconverged",
                )
            )
        if (
            f.modeled_seconds is not None
            and f.measured_seconds is not None
            and f.modeled_seconds > 0
        ):
            ratio = f.measured_seconds / f.modeled_seconds
            if ratio > 1 + model_tolerance or ratio < 1 / (1 + model_tolerance):
                dominant = (
                    max(f.modeled_breakdown, key=f.modeled_breakdown.get)
                    if f.modeled_breakdown
                    else "unknown"
                )
                verdict.suspects.append(
                    Suspect(
                        "model-divergence", f.method,
                        f"measured {f.measured_seconds * 1e3:.3f} ms vs modeled "
                        f"{f.modeled_seconds * 1e3:.3f} ms (x{ratio:.2f}); "
                        f"dominant modeled component: {dominant}",
                    )
                )
        if f.imbalance > 1 + imbalance_band:
            verdict.suspects.append(
                Suspect(
                    "load-imbalance", f.method,
                    f"per-rank nnz max/mean {f.imbalance:.3f} exceeds the "
                    f"±{imbalance_band * 100:.0f}% dynamic-filter band",
                )
            )
        if f.invariant is False:
            verdict.suspects.append(
                Suspect(
                    "comm-invariance-violated", f.method,
                    "halo schedule differs from the baseline's — the pattern "
                    "added communication",
                )
            )
        if base is not None and f is not base:
            if f.nnz > base.nnz and f.iterations >= base.iterations:
                verdict.suspects.append(
                    Suspect(
                        "ineffective-extension", f.method,
                        f"+{f.extra_nnz_percent:.1f}% nnz bought no iteration "
                        f"reduction ({f.iterations} vs {base.iterations})",
                    )
                )
            ledger = (ledgers or {}).get(f.method)
            ledger_evidence = ""
            if ledger is not None and ledger.ext_accesses:
                ledger_evidence = (
                    f"; ledger: {ledger.free_rides}/{ledger.ext_accesses} "
                    f"extension x-accesses were free rides "
                    f"({ledger.free_ride_fraction:.1%}) at "
                    f"{ledger.line_bytes} B lines"
                )
            miss_growth = (
                f.misses_total is not None
                and base.misses_total is not None
                and base.misses_total > 0
                and f.misses_total > 1.10 * base.misses_total
            )
            ride_minority = (
                ledger is not None
                and ledger.ext_accesses > 0
                and ledger.free_ride_fraction < 0.5
            )
            if miss_growth:
                verdict.suspects.append(
                    Suspect(
                        "cache-reuse-not-realized", f.method,
                        f"preconditioner misses grew {f.misses_total:.0f} vs "
                        f"baseline {base.misses_total:.0f} (>10%) — extension "
                        "entries are not riding already-touched cache lines"
                        + ledger_evidence,
                    )
                )
            elif ride_minority:
                verdict.suspects.append(
                    Suspect(
                        "cache-reuse-not-realized", f.method,
                        "most extension x-accesses newly filled cache lines"
                        + ledger_evidence,
                    )
                )
    if conformance is not None:
        verdict.suspects.extend(conformance.to_suspects())
    return verdict
