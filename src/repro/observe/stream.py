"""Bounded-memory streaming telemetry for production-rank-count SPMD runs.

:class:`~repro.observe.timeline.Timeline` merges every rank's full span
stream centrally — perfect forensics at 8 ranks, hopeless at 1024 (trace
volume grows as O(ranks x iterations x edges)).  This module is the
scalable counterpart: every rank keeps a *fixed-size* telemetry summary and
the cluster-wide view is reduced **in-band** over the simulator's own
O(log P) binomial tree instead of a P-way central gather.

Per rank (:class:`RankTelemetry`):

* log-bucketed :class:`StreamingHistogram` distributions for halo-wait,
  collective-wait, compute, reduction and message-size observations —
  O(log(range)) buckets regardless of how many values stream through;
* plain counters (messages, bytes);
* full span recording only on a deterministic sampled subset of ranks
  (:func:`sampled_ranks`, the ``rank_sample=`` policy), bounded by
  ``max_spans``.

The artifact size is therefore O(sampled ranks + log-bucket count), not
O(P x spans) — sublinear in rank count versus full tracing, which
``scripts/check_model_conformance.py`` gates explicitly.

Aggregation (:func:`aggregate_telemetry`) merges :class:`ClusterTelemetry`
partials up a binomial tree on a dedicated tag while the communicator's
*telemetry channel* is active: the transport books that traffic as
``telemetry_*`` accounting in :class:`~repro.mpisim.CommTracker`, **not**
as ``p2p_*`` traffic, so :func:`repro.observe.compare_snapshots` excludes
it by construction and the solver's communication schedule stays provably
unperturbed (the paper's §4 invariance claim survives with telemetry on).

Layering: this module is import-light (stdlib + :mod:`repro.errors` only)
so the :mod:`repro.mpisim` engines can use it through the duck-typed
``telemetry=`` hook of :func:`repro.mpisim.run_spmd` without a cycle.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "TELEMETRY_TAG",
    "TelemetryError",
    "StreamingHistogram",
    "sampled_ranks",
    "classify_wait_tag",
    "RankTelemetry",
    "ClusterTelemetry",
    "TelemetryConfig",
    "aggregate_telemetry",
]

#: Message tag reserved for in-band telemetry aggregation.  Collectives use
#: the 1_000_00x range and halos 7_000; telemetry stays far above both so a
#: stray ``ANY_TAG`` receive in solver code can never match it by accident.
TELEMETRY_TAG = 9_000_000

#: Tags at or above this value belong to collective algorithms
#: (:mod:`repro.mpisim.collectives`); below it is point-to-point solver
#: traffic (halo exchanges).  Used to classify blocked-receive time.
_COLLECTIVE_TAG_FLOOR = 1_000_000


class TelemetryError(ReproError):
    """Invalid telemetry configuration or an unmergeable histogram pair."""


def classify_wait_tag(tag: int) -> str:
    """Histogram name for a blocked receive, from the message tag it
    matched on: halo-range tags are ``wait.halo``, collective-range tags
    ``wait.collective``."""
    return "wait.collective" if int(tag) >= _COLLECTIVE_TAG_FLOOR else "wait.halo"


def sampled_ranks(size: int, policy=4) -> frozenset[int]:
    """Deterministic subset of ranks that record full spans.

    Policies (all pure functions of ``(size, policy)`` — the same ladder
    always samples the same ranks):

    * ``None`` / ``0`` / ``"none"`` — sample nothing;
    * ``"all"`` — every rank;
    * an integer ``k`` — ``k`` ranks spread evenly (``(i * size) // k``);
    * ``"first:K"`` — ranks ``0..K-1``;
    * ``"stride:K"`` — every K-th rank;
    * ``"sqrt"`` — ``ceil(sqrt(size))`` ranks spread evenly.
    """
    if policy in (None, 0, "none", "0"):
        return frozenset()
    if policy == "all":
        return frozenset(range(size))
    if isinstance(policy, str):
        kind, _, arg = policy.partition(":")
        if kind == "first":
            return frozenset(range(min(int(arg or 1), size)))
        if kind == "stride":
            return frozenset(range(0, size, max(int(arg or 1), 1)))
        if kind == "sqrt":
            k = int(math.ceil(math.sqrt(size)))
        else:
            try:
                k = int(policy)
            except ValueError:
                raise TelemetryError(
                    f"unknown rank_sample policy {policy!r}; expected an int, "
                    "'none', 'all', 'sqrt', 'first:K' or 'stride:K'"
                ) from None
    else:
        k = int(policy)
    k = max(1, min(k, size))
    return frozenset((i * size) // k for i in range(k))


class StreamingHistogram:
    """A log-bucketed streaming histogram with O(log(range)) memory.

    Values land in buckets whose upper bounds are ``lo * base**i`` — the
    classic HdrHistogram/Prometheus-exponential shape — so a million
    observations cost the same few dozen integers as ten.  Two histograms
    with the same ``(lo, base)`` grid merge exactly (counts add), which is
    what lets partial histograms ride the reduction tree.

    ``to_samples`` exports the OpenMetrics histogram family (cumulative
    ``_bucket{le=...}`` plus ``_count`` / ``_sum``) and
    :meth:`from_exposition` reads it back — the pair round-trips
    byte-identically through :func:`repro.observe.prom.render_openmetrics`
    and :func:`~repro.observe.prom.parse_exposition`.
    """

    __slots__ = ("lo", "base", "count", "sum", "min", "max", "buckets")

    def __init__(self, *, lo: float = 1e-9, base: float = 2.0):
        if not lo > 0 or not base > 1.0:
            raise TelemetryError(
                f"histogram needs lo > 0 and base > 1 (got lo={lo}, base={base})"
            )
        self.lo = float(lo)
        self.base = float(base)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: Non-cumulative counts keyed by bucket upper bound.
        self.buckets: dict[float, int] = {}

    def _bound(self, value: float) -> float:
        """Upper bound of the bucket containing ``value``."""
        if value <= self.lo:
            return self.lo
        # the epsilon forgives float noise when value is an exact power
        exponent = math.ceil(math.log(value / self.lo) / math.log(self.base) - 1e-9)
        return self.lo * self.base ** exponent

    def observe(self, value) -> None:
        """Stream one observation in (O(1) time, bounded memory)."""
        v = float(value)
        self.count += 1
        self.sum += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        ub = self._bound(v)
        self.buckets[ub] = self.buckets.get(ub, 0) + 1

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other`` into this histogram (same grid required)."""
        if (other.lo, other.base) != (self.lo, self.base):
            raise TelemetryError(
                f"cannot merge histograms on different grids: "
                f"(lo={self.lo}, base={self.base}) vs "
                f"(lo={other.lo}, base={other.base})"
            )
        self.count += other.count
        self.sum += other.sum
        for bound in (other.min, other.max):
            if bound is None:
                continue
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for ub, n in other.buckets.items():
            self.buckets[ub] = self.buckets.get(ub, 0) + n
        return self

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile: the upper bound of the bucket where
        the cumulative count crosses ``q`` (an overestimate by at most one
        bucket width)."""
        if self.count == 0:
            return 0.0
        target = max(q, 0.0) / 100.0 * self.count
        cumulative = 0
        last = self.lo
        for ub in sorted(self.buckets):
            cumulative += self.buckets[ub]
            last = ub
            if cumulative >= target:
                return ub
        return last

    @property
    def mean(self) -> float:
        """Arithmetic mean of the streamed observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form (bucket bounds as repr strings)."""
        return {
            "lo": self.lo,
            "base": self.base,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {repr(ub): n for ub, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StreamingHistogram":
        hist = cls(lo=d.get("lo", 1e-9), base=d.get("base", 2.0))
        hist.count = int(d.get("count", 0))
        hist.sum = float(d.get("sum", 0.0))
        hist.min = None if d.get("min") is None else float(d["min"])
        hist.max = None if d.get("max") is None else float(d["max"])
        hist.buckets = {float(k): int(v) for k, v in d.get("buckets", {}).items()}
        return hist

    # OpenMetrics -------------------------------------------------------
    def to_samples(self, name: str, *, tags: dict | None = None) -> list[dict]:
        """One ``collect()``-style instrument dict carrying the bucket family
        (consumed by :func:`repro.observe.prom.render_openmetrics`)."""
        cumulative: dict[float, int] = {}
        running = 0
        for ub in sorted(self.buckets):
            running += self.buckets[ub]
            cumulative[ub] = running
        return [
            {
                "kind": "histogram",
                "name": name,
                "tags": dict(tags or {}),
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "buckets": cumulative,
            }
        ]

    @classmethod
    def from_exposition(
        cls,
        parsed: dict,
        name: str,
        *,
        labels: tuple = (),
        lo: float = 1e-9,
        base: float = 2.0,
    ) -> "StreamingHistogram":
        """Rebuild from :func:`repro.observe.prom.parse_exposition` output.

        ``name`` is the *sanitised* metric name (e.g. ``repro_wait_halo``);
        ``labels`` the sorted label items identifying one series.  The
        result re-exports byte-identically when the original grid matched
        ``(lo, base)``.
        """
        labels = tuple(sorted(labels))
        hist = cls(lo=lo, base=base)
        entries = []
        for labelset, value in parsed.get(f"{name}_bucket", {}).items():
            rest = dict(labelset)
            le = rest.pop("le", None)
            if le is None or tuple(sorted(rest.items())) != labels:
                continue
            if le == "+Inf":
                continue
            entries.append((float(le), value))
        entries.sort()
        previous = 0.0
        for ub, cumulative in entries:
            n = int(round(cumulative - previous))
            previous = cumulative
            if n > 0:
                hist.buckets[ub] = n
        def scalar(suffix: str):
            return parsed.get(f"{name}{suffix}", {}).get(labels)
        hist.count = int(scalar("_count") or 0)
        hist.sum = float(scalar("_sum") or 0.0)
        mn, mx = scalar("_min"), scalar("_max")
        hist.min = None if mn is None else float(mn)
        hist.max = None if mx is None else float(mx)
        return hist

    def __repr__(self) -> str:
        return (
            f"StreamingHistogram(count={self.count}, sum={self.sum:.6g}, "
            f"buckets={len(self.buckets)})"
        )


class RankTelemetry:
    """One rank's fixed-size telemetry: histograms, counters, sampled spans.

    Fed by the transport (blocked-receive time via :meth:`observe_wait`,
    message sizes via :meth:`observe_message`) and by the solver layers
    (``compute`` / ``reduction`` seconds via :meth:`observe`).  On a
    sampled rank every timed observation is additionally recorded as a
    ``(name, start, end, src)`` span, bounded by ``max_spans`` (overflow is
    counted, never grown).
    """

    __slots__ = ("rank", "sampled", "lo", "base", "max_spans", "hists",
                 "counters", "spans", "spans_dropped")

    def __init__(self, rank: int, *, sampled: bool = False, lo: float = 1e-9,
                 base: float = 2.0, max_spans: int = 256):
        self.rank = int(rank)
        self.sampled = bool(sampled)
        self.lo = float(lo)
        self.base = float(base)
        self.max_spans = int(max_spans)
        self.hists: dict[str, StreamingHistogram] = {}
        self.counters: dict[str, float] = {}
        self.spans: list[tuple[str, float, float, int | None]] = []
        self.spans_dropped = 0

    def hist(self, name: str) -> StreamingHistogram:
        """The named histogram, created on first use (shared grid)."""
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = StreamingHistogram(lo=self.lo, base=self.base)
        return h

    def observe(self, name: str, seconds, *, src: int | None = None) -> None:
        """Stream one timed observation (``compute``, ``reduction``, ...)."""
        seconds = float(seconds)
        self.hist(name).observe(seconds)
        if self.sampled:
            if len(self.spans) < self.max_spans:
                end = time.monotonic()
                self.spans.append((name, end - seconds, end, src))
            else:
                self.spans_dropped += 1

    def observe_wait(self, seconds, *, tag: int = 0, src: int | None = None) -> None:
        """Blocked-receive time, classified by the tag it matched on."""
        self.observe(classify_wait_tag(tag), seconds, src=src)

    def observe_message(self, nbytes: int) -> None:
        """One delivered wire message of ``nbytes``."""
        self.hist("message_bytes").observe(nbytes)
        self.counters["messages"] = self.counters.get("messages", 0) + 1
        self.counters["bytes"] = self.counters.get("bytes", 0) + int(nbytes)

    def total(self, name: str) -> float:
        """Sum of the named histogram's observations (0.0 when absent)."""
        h = self.hists.get(name)
        return h.sum if h is not None else 0.0

    def __repr__(self) -> str:
        return (
            f"RankTelemetry(rank={self.rank}, sampled={self.sampled}, "
            f"hists={sorted(self.hists)})"
        )


@dataclass
class ClusterTelemetry:
    """Mergeable cluster-wide aggregate of per-rank telemetry.

    The merge operator is associative and commutative, so partials combine
    identically regardless of tree shape:

    * ``hists`` — observation-level histograms merged across ranks;
    * ``rank_wait`` / ``rank_busy`` — per-*rank* distributions (each rank
      contributes exactly one observation: its halo-wait / compute total),
      the input to robust straggler detection;
    * ``top_wait`` — the ``top_k`` worst (rank, halo-wait-seconds) pairs,
      kept bounded under merge so straggler ranks stay *nameable* without
      shipping a P-length vector;
    * ``sampled`` — full span lists from the sampled ranks only.
    """

    ranks: int = 0
    hists: dict = field(default_factory=dict)
    rank_wait: StreamingHistogram = field(default_factory=StreamingHistogram)
    rank_busy: StreamingHistogram = field(default_factory=StreamingHistogram)
    top_wait: list = field(default_factory=list)
    sampled: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    top_k: int = 8

    @classmethod
    def from_rank(cls, telemetry: RankTelemetry, *, top_k: int = 8) -> "ClusterTelemetry":
        """Lift one rank's telemetry into a single-rank aggregate."""
        cluster = cls(
            ranks=1,
            hists={name: h for name, h in telemetry.hists.items()},
            rank_wait=StreamingHistogram(lo=telemetry.lo, base=telemetry.base),
            rank_busy=StreamingHistogram(lo=telemetry.lo, base=telemetry.base),
            counters=dict(telemetry.counters),
            top_k=int(top_k),
        )
        wait_total = telemetry.total("wait.halo")
        cluster.rank_wait.observe(wait_total)
        cluster.rank_busy.observe(telemetry.total("compute"))
        cluster.top_wait = [(telemetry.rank, wait_total)]
        if telemetry.sampled:
            cluster.sampled[telemetry.rank] = {
                "spans": [list(s) for s in telemetry.spans],
                "dropped": telemetry.spans_dropped,
            }
        return cluster

    def merge(self, other: "ClusterTelemetry") -> "ClusterTelemetry":
        """Fold another partial aggregate into this one."""
        self.ranks += other.ranks
        for name, h in other.hists.items():
            mine = self.hists.get(name)
            if mine is None:
                self.hists[name] = h
            else:
                mine.merge(h)
        self.rank_wait.merge(other.rank_wait)
        self.rank_busy.merge(other.rank_busy)
        merged = sorted(
            self.top_wait + other.top_wait, key=lambda rw: (-rw[1], rw[0])
        )
        self.top_wait = merged[: self.top_k]
        self.sampled.update(other.sampled)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        return self

    # analysis ----------------------------------------------------------
    def phase_seconds(self) -> dict[str, float]:
        """Cluster-total seconds per phase: compute, halo wait, reduction."""
        return {
            "compute": self.hists["compute"].sum if "compute" in self.hists else 0.0,
            "halo": self.hists["wait.halo"].sum if "wait.halo" in self.hists else 0.0,
            "reduction": self.hists["reduction"].sum if "reduction" in self.hists else 0.0,
        }

    def straggler_ranks(self, *, z_threshold: float = 3.5) -> list[dict]:
        """Straggler detection via robust z-scores over the per-rank wait
        distribution.

        The median and a percentile-estimated MAD come from the streamed
        ``rank_wait`` histogram (so the statistics cost O(buckets), not
        O(P)); candidates are the bounded ``top_wait`` list.  A rank is a
        straggler when its robust z-score ``0.6745 * (w - median) / MAD``
        clears ``z_threshold`` *and* its wait is at least twice the median
        (the guard absorbs bucket-granularity noise when all ranks share a
        bucket and the MAD estimate collapses)."""
        if self.rank_wait.count == 0:
            return []
        median = self.rank_wait.percentile(50)
        spread = self.rank_wait.percentile(75) - self.rank_wait.percentile(25)
        mad = max(spread / 1.349, 1e-12)
        out = []
        for rank, wait in self.top_wait:
            z = 0.6745 * (wait - median) / mad
            if z >= z_threshold and wait > 2.0 * median:
                out.append({"rank": int(rank), "wait_seconds": float(wait),
                            "z": float(z)})
        return out

    def payload_bytes(self) -> int:
        """Serialized size of this aggregate — the number the sublinearity
        gate compares against full-trace volume."""
        return len(json.dumps(self.to_dict(), separators=(",", ":")))

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "ranks": self.ranks,
            "top_k": self.top_k,
            "counters": dict(self.counters),
            "hists": {name: h.to_dict() for name, h in sorted(self.hists.items())},
            "rank_wait": self.rank_wait.to_dict(),
            "rank_busy": self.rank_busy.to_dict(),
            "top_wait": [[int(r), float(w)] for r, w in self.top_wait],
            "sampled": {str(r): entry for r, entry in sorted(self.sampled.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ClusterTelemetry":
        return cls(
            ranks=int(d.get("ranks", 0)),
            hists={name: StreamingHistogram.from_dict(h)
                   for name, h in d.get("hists", {}).items()},
            rank_wait=StreamingHistogram.from_dict(d.get("rank_wait", {})),
            rank_busy=StreamingHistogram.from_dict(d.get("rank_busy", {})),
            top_wait=[(int(r), float(w)) for r, w in d.get("top_wait", [])],
            sampled={int(r): entry for r, entry in d.get("sampled", {}).items()},
            counters=dict(d.get("counters", {})),
            top_k=int(d.get("top_k", 8)),
        )

    def to_prom_samples(self, *, prefix: str = "telemetry") -> list[dict]:
        """Every histogram as OpenMetrics histogram-family instruments plus
        the counters as counter samples."""
        samples: list[dict] = [
            {"kind": "gauge", "name": f"{prefix}.ranks", "tags": {},
             "value": self.ranks},
        ]
        for name, value in sorted(self.counters.items()):
            samples.append({"kind": "counter", "name": f"{prefix}.{name}",
                            "tags": {}, "value": value})
        for name in sorted(self.hists):
            samples.extend(self.hists[name].to_samples(f"{prefix}.{name}"))
        samples.extend(self.rank_wait.to_samples(f"{prefix}.rank_wait_seconds"))
        samples.extend(self.rank_busy.to_samples(f"{prefix}.rank_busy_seconds"))
        return samples


@dataclass
class TelemetryConfig:
    """Configuration + result slot for one telemetered SPMD run.

    Pass to :func:`repro.mpisim.run_spmd` (or the solver wrappers in
    :mod:`repro.dist.spmd`) as ``telemetry=``; after the run, ``result``
    holds the in-band-reduced :class:`ClusterTelemetry` from rank 0::

        cfg = TelemetryConfig(rank_sample=8)
        spmd_pipelined_pcg(da, b, ..., telemetry=cfg, engine="events")
        cfg.result.phase_seconds()       # measured per-phase totals
    """

    rank_sample: int | str | None = 4
    lo: float = 1e-9
    base: float = 2.0
    top_k: int = 8
    max_spans: int = 256
    result: ClusterTelemetry | None = field(default=None, repr=False, compare=False)
    _sampled_cache: tuple | None = field(default=None, repr=False, compare=False)

    def sampled(self, size: int) -> frozenset[int]:
        """The deterministic sampled-rank set for ``size`` ranks."""
        if self._sampled_cache is None or self._sampled_cache[0] != size:
            self._sampled_cache = (size, sampled_ranks(size, self.rank_sample))
        return self._sampled_cache[1]

    def make_rank(self, rank: int, size: int) -> RankTelemetry:
        """Build one rank's telemetry endpoint (engine hook)."""
        return RankTelemetry(
            rank,
            sampled=rank in self.sampled(size),
            lo=self.lo,
            base=self.base,
            max_spans=self.max_spans,
        )

    def collect(self, comm, telemetry: RankTelemetry) -> None:
        """Aggregate in-band after the rank function returns (engine hook).

        Best-effort: a run that already failed on another rank would leave
        this rank's tree partner dead, so aggregation errors are swallowed
        — the run's own error is what the caller must see.
        """
        try:
            aggregate = aggregate_telemetry(comm, telemetry, top_k=self.top_k)
        except ReproError:
            return
        if aggregate is not None:
            self.result = aggregate


@contextmanager
def _channel(comm):
    """The communicator's telemetry channel, tolerating bare test doubles."""
    channel = getattr(comm, "telemetry_channel", None)
    if channel is None:
        yield comm
        return
    with channel():
        yield comm


def aggregate_telemetry(comm, telemetry, *, top_k: int = 8):
    """Reduce per-rank telemetry to rank 0 over a binomial tree.

    The same O(log P) pattern as :func:`repro.mpisim.collectives.reduce`,
    but on :data:`TELEMETRY_TAG` and inside the communicator's telemetry
    channel, so every hop is booked as telemetry traffic (excluded from the
    invariance audit) rather than solver traffic.  Returns the merged
    :class:`ClusterTelemetry` on rank 0 and ``None`` elsewhere.

    ``telemetry`` may be a :class:`RankTelemetry` (lifted automatically) or
    an already-partial :class:`ClusterTelemetry`.
    """
    if isinstance(telemetry, RankTelemetry):
        accumulator = ClusterTelemetry.from_rank(telemetry, top_k=top_k)
    else:
        accumulator = telemetry
    size = getattr(comm, "size", 1)
    rank = getattr(comm, "rank", 0)
    if size <= 1:
        return accumulator
    with _channel(comm):
        mask = 1
        while mask < size:
            if rank & mask:
                comm.send(accumulator.to_dict(), rank & ~mask, TELEMETRY_TAG)
                return None
            peer = rank | mask
            if peer < size:
                partial = ClusterTelemetry.from_dict(comm.recv(peer, TELEMETRY_TAG))
                accumulator.merge(partial)
            mask <<= 1
    return accumulator
