"""Per-cache-line memory-traffic attribution: the free-ride ledger.

The paper's core mechanism (§1, Figures 3a/5a) is that FSAIE/FSAIE-Comm
extension entries are *nearly free* because their ``x``-operands live in
cache lines the baseline FSAI pattern already touched.  :mod:`repro.cachesim`
measures that only as an aggregate miss count; this module attributes it
line by line.  Replaying the ``Gᵀ(Gx)`` access stream with the simulator's
attribution hooks (:meth:`repro.cachesim.SetAssociativeCache
.access_attributed`), every access of every stored entry is classified by
*entry category* — ``base`` (in the baseline pattern), ``ext_local`` (local
extension), ``ext_halo`` (halo extension) — and every extension access
becomes either a **free ride** (hit: the line was already resident) or a
**new fill** (miss).  The products are:

* :class:`RankLedger` — one rank's category-split access/hit counters,
  fill attribution (rides on base-filled vs extension-filled lines) and
  reuse-distance :class:`~repro.observe.stream.StreamingHistogram` s;
* :class:`FreeRideLedger` — the versioned per-method document aggregating
  all ranks, with free-ride fractions split by local/halo extension and
  misses-per-nnz (the Figure 3a/5a normalisation);
* :class:`CacheConformance` — ledgers for a method ladder at one or more
  line geometries confronted with the :mod:`repro.perfmodel` memory term,
  rendered as gated **claims** (free-ride majority, 64 B → 256 B rise,
  misses-per-nnz not worse than FSAI) and named divergence **verdicts**
  that plug into :func:`repro.observe.explain.attribute` — mirroring the
  α–β conformance shape of :mod:`repro.observe.conformance`.

Layering: import-light (stdlib, :mod:`repro.errors`, sibling observe
modules).  The replay itself lives in
:func:`repro.cachesim.precond_x_misses_per_rank` (``ledger=`` mode), which
imports *this* module lazily — observe never imports cachesim or core.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.observe.explain import Suspect
from repro.observe.stream import StreamingHistogram

__all__ = [
    "MEMTRAFFIC_FORMAT",
    "MEMTRAFFIC_VERSION",
    "CACHE_CONFORMANCE_FORMAT",
    "CACHE_CONFORMANCE_VERSION",
    "CATEGORIES",
    "MemTrafficError",
    "RankLedger",
    "FreeRideLedger",
    "MethodCacheProfile",
    "CacheConformance",
    "ledger_samples",
    "cache_conformance_samples",
]

MEMTRAFFIC_FORMAT = "repro-memtraffic"
MEMTRAFFIC_VERSION = 1
CACHE_CONFORMANCE_FORMAT = "repro-cache-conformance"
CACHE_CONFORMANCE_VERSION = 1

#: Entry categories of a stored entry's ``x``-operand access, in the code
#: order used by :func:`repro.cachesim.entry_categories`: in the baseline
#: FSAI pattern / extension on a locally-owned column / extension on a halo
#: column.
CATEGORIES = ("base", "ext_local", "ext_halo")

#: The extension subset of :data:`CATEGORIES`.
EXT_CATEGORIES = ("ext_local", "ext_halo")

#: Reuse-distance histograms count accesses, so the grid starts at one
#: access of distance and grows by powers of two.
_REUSE_GRID = {"lo": 1.0, "base": 2.0}


class MemTrafficError(ReproError):
    """Malformed memory-traffic document or inconsistent ledger data."""


def _check_category(category: str) -> str:
    if category not in CATEGORIES:
        raise MemTrafficError(
            f"unknown entry category {category!r}; expected one of {CATEGORIES}"
        )
    return category


@dataclass
class RankLedger:
    """One rank's per-category cache-line attribution counters.

    Fed by the attributed replay of the rank's ``Gᵀ(Gx)`` access stream:
    :meth:`record` takes one access at a time with its entry category, the
    hit/miss outcome, the category that *filled* the line currently serving
    it, and the reuse distance (accesses since the line was last touched,
    ``None`` on first touch).
    """

    rank: int
    accesses: dict = field(default_factory=dict)
    hits: dict = field(default_factory=dict)
    #: Extension hits on lines whose current residency was caused by a
    #: baseline-pattern access — the paper's free-ride mechanism verbatim.
    rides_on_base: int = 0
    #: Extension hits on lines filled by another extension access.
    rides_on_ext: int = 0
    #: Category → reuse-distance histogram (log-bucketed, base 2).
    reuse: dict = field(default_factory=dict)

    def record(
        self,
        category: str,
        hit: bool,
        filled_by: str | None,
        reuse_distance: int | None,
    ) -> None:
        """Stream one attributed access into the ledger."""
        _check_category(category)
        self.accesses[category] = self.accesses.get(category, 0) + 1
        if hit:
            self.hits[category] = self.hits.get(category, 0) + 1
            if category in EXT_CATEGORIES:
                if filled_by in EXT_CATEGORIES:
                    self.rides_on_ext += 1
                else:
                    self.rides_on_base += 1
        if reuse_distance is not None:
            hist = self.reuse.get(category)
            if hist is None:
                hist = self.reuse[category] = StreamingHistogram(**_REUSE_GRID)
            hist.observe(reuse_distance)

    # derived -----------------------------------------------------------
    @property
    def accesses_total(self) -> int:
        """All recorded accesses, every category."""
        return sum(self.accesses.values())

    @property
    def misses_total(self) -> int:
        """All recorded misses (equals the cache's miss counter)."""
        return self.accesses_total - sum(self.hits.values())

    @property
    def ext_accesses(self) -> int:
        """Accesses of extension entries (local + halo)."""
        return sum(self.accesses.get(c, 0) for c in EXT_CATEGORIES)

    @property
    def free_rides(self) -> int:
        """Extension accesses that hit an already-resident line."""
        return sum(self.hits.get(c, 0) for c in EXT_CATEGORIES)

    def category_fraction(self, category: str) -> float:
        """Hit fraction of one category (0.0 when it had no accesses)."""
        n = self.accesses.get(_check_category(category), 0)
        return self.hits.get(category, 0) / n if n else 0.0

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "rank": self.rank,
            "accesses": {c: int(n) for c, n in sorted(self.accesses.items())},
            "hits": {c: int(n) for c, n in sorted(self.hits.items())},
            "rides_on_base": int(self.rides_on_base),
            "rides_on_ext": int(self.rides_on_ext),
            "reuse": {c: h.to_dict() for c, h in sorted(self.reuse.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RankLedger":
        return cls(
            rank=int(d["rank"]),
            accesses={str(c): int(n) for c, n in d.get("accesses", {}).items()},
            hits={str(c): int(n) for c, n in d.get("hits", {}).items()},
            rides_on_base=int(d.get("rides_on_base", 0)),
            rides_on_ext=int(d.get("rides_on_ext", 0)),
            reuse={
                str(c): StreamingHistogram.from_dict(h)
                for c, h in d.get("reuse", {}).items()
            },
        )


@dataclass
class FreeRideLedger:
    """Versioned per-method free-ride document over all ranks.

    ``base_g`` / ``base_gt`` optionally carry the *global* baseline-pattern
    CSR matrices used by the attributed replay to classify entries; they
    are working state for :func:`repro.cachesim.precond_x_misses_per_rank`
    and are **not** serialised.
    """

    method: str
    line_bytes: int
    nnz: int = 0
    base_nnz: int = 0
    ranks: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    base_g: object = field(default=None, repr=False, compare=False)
    base_gt: object = field(default=None, repr=False, compare=False)

    def add_rank(self, ledger: RankLedger) -> None:
        """Append one rank's attribution counters."""
        self.ranks.append(ledger)

    # aggregates --------------------------------------------------------
    def _sum(self, attr: str) -> int:
        return sum(getattr(r, attr) for r in self.ranks)

    @property
    def accesses_total(self) -> int:
        """All ``x`` accesses across ranks."""
        return self._sum("accesses_total")

    @property
    def misses_total(self) -> int:
        """All ``x`` misses across ranks (the Figure 3a/5a numerator)."""
        return self._sum("misses_total")

    @property
    def ext_accesses(self) -> int:
        """Extension-entry accesses across ranks."""
        return self._sum("ext_accesses")

    @property
    def free_rides(self) -> int:
        """Extension accesses served by already-resident lines."""
        return self._sum("free_rides")

    @property
    def rides_on_base(self) -> int:
        """Free rides on lines filled by baseline-pattern accesses."""
        return self._sum("rides_on_base")

    @property
    def rides_on_ext(self) -> int:
        """Free rides on lines filled by other extension accesses."""
        return self._sum("rides_on_ext")

    @property
    def free_ride_fraction(self) -> float:
        """Fraction of extension accesses that were free rides."""
        n = self.ext_accesses
        return self.free_rides / n if n else 0.0

    def _category_fraction(self, category: str) -> float:
        acc = sum(r.accesses.get(category, 0) for r in self.ranks)
        hit = sum(r.hits.get(category, 0) for r in self.ranks)
        return hit / acc if acc else 0.0

    @property
    def free_ride_fraction_local(self) -> float:
        """Free-ride fraction of the *local* extension entries."""
        return self._category_fraction("ext_local")

    @property
    def free_ride_fraction_halo(self) -> float:
        """Free-ride fraction of the *halo* extension entries."""
        return self._category_fraction("ext_halo")

    @property
    def misses_per_nnz(self) -> float:
        """Mean per-rank misses over nnz(G) — Figure 3a/5a's y-axis."""
        if not self.ranks or not self.nnz:
            return 0.0
        return self.misses_total / len(self.ranks) / self.nnz

    def reuse_histogram(self, category: str) -> StreamingHistogram:
        """Cluster-wide reuse-distance histogram of one category."""
        _check_category(category)
        merged = StreamingHistogram(**_REUSE_GRID)
        for r in self.ranks:
            hist = r.reuse.get(category)
            if hist is not None:
                merged.merge(hist)
        return merged

    def summary(self) -> dict:
        """Flat aggregate numbers (bench/report consumption)."""
        return {
            "method": self.method,
            "line_bytes": self.line_bytes,
            "nnz": self.nnz,
            "base_nnz": self.base_nnz,
            "ranks": len(self.ranks),
            "accesses": self.accesses_total,
            "misses": self.misses_total,
            "misses_per_nnz": self.misses_per_nnz,
            "ext_accesses": self.ext_accesses,
            "free_rides": self.free_rides,
            "free_ride_fraction": self.free_ride_fraction,
            "free_ride_fraction_local": self.free_ride_fraction_local,
            "free_ride_fraction_halo": self.free_ride_fraction_halo,
            "rides_on_base": self.rides_on_base,
            "rides_on_ext": self.rides_on_ext,
        }

    # rendering ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable per-rank table plus the aggregate line."""
        lines = [
            f"free-ride ledger — {self.method} @ {self.line_bytes} B lines "
            f"({self.nnz} nnz, {len(self.ranks)} rank(s))"
        ]
        header = (
            f"{'rank':>6} {'accesses':>10} {'misses':>8} {'ext':>8} "
            f"{'free':>8} {'free %':>7} {'on-base':>8} {'on-ext':>7}"
        )
        lines += ["", header, "-" * len(header)]
        for r in sorted(self.ranks, key=lambda r: r.rank):
            n = r.ext_accesses
            pct = 100.0 * r.free_rides / n if n else 0.0
            lines.append(
                f"{r.rank:>6} {r.accesses_total:>10} {r.misses_total:>8} "
                f"{n:>8} {r.free_rides:>8} {pct:>6.1f}% "
                f"{r.rides_on_base:>8} {r.rides_on_ext:>7}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'all':>6} {self.accesses_total:>10} {self.misses_total:>8} "
            f"{self.ext_accesses:>8} {self.free_rides:>8} "
            f"{100.0 * self.free_ride_fraction:>6.1f}% "
            f"{self.rides_on_base:>8} {self.rides_on_ext:>7}"
        )
        lines.append(
            f"local ext {100.0 * self.free_ride_fraction_local:.1f}% free / "
            f"halo ext {100.0 * self.free_ride_fraction_halo:.1f}% free; "
            f"misses/nnz {self.misses_per_nnz:.4f}"
        )
        return "\n".join(lines)

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-serialisable document."""
        return {
            "format": MEMTRAFFIC_FORMAT,
            "version": MEMTRAFFIC_VERSION,
            "meta": dict(self.meta),
            "summary": self.summary(),
            "ranks": [r.to_dict() for r in sorted(self.ranks, key=lambda r: r.rank)],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FreeRideLedger":
        if d.get("format") != MEMTRAFFIC_FORMAT:
            raise MemTrafficError(
                f"not a memtraffic document (format={d.get('format')!r})"
            )
        if int(d.get("version", 0)) > MEMTRAFFIC_VERSION:
            raise MemTrafficError(
                f"memtraffic document version {d.get('version')} is newer "
                f"than supported ({MEMTRAFFIC_VERSION})"
            )
        summary = d.get("summary", {})
        return cls(
            method=str(summary.get("method", "?")),
            line_bytes=int(summary.get("line_bytes", 0)),
            nnz=int(summary.get("nnz", 0)),
            base_nnz=int(summary.get("base_nnz", 0)),
            ranks=[RankLedger.from_dict(r) for r in d.get("ranks", [])],
            meta=dict(d.get("meta", {})),
        )

    def save(self, path) -> Path:
        """Write the versioned document; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "FreeRideLedger":
        """Read a document written by :meth:`save`."""
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise MemTrafficError(f"cannot read free-ride ledger: {exc}") from exc
        return cls.from_dict(doc)


@dataclass
class MethodCacheProfile:
    """One (method, line geometry) cell of a :class:`CacheConformance`."""

    method: str
    line_bytes: int
    nnz: int = 0
    base_nnz: int = 0
    misses_total: int = 0
    ranks: int = 1
    ext_accesses: int = 0
    free_rides: int = 0
    free_ride_fraction_local: float = 0.0
    free_ride_fraction_halo: float = 0.0
    rides_on_base: int = 0
    rides_on_ext: int = 0
    #: Modeled ``x``-read stream bytes of the perfmodel memory term
    #: (:meth:`repro.perfmodel.CostModel.precond_x_read_bytes`, summed over
    #: ranks); 0.0 when the model was not consulted.
    modeled_x_bytes: float = 0.0

    @classmethod
    def from_ledger(
        cls, ledger: FreeRideLedger, *, modeled_x_bytes: float = 0.0
    ) -> "MethodCacheProfile":
        """Collapse a full ledger into one conformance cell."""
        return cls(
            method=ledger.method,
            line_bytes=ledger.line_bytes,
            nnz=ledger.nnz,
            base_nnz=ledger.base_nnz,
            misses_total=ledger.misses_total,
            ranks=max(len(ledger.ranks), 1),
            ext_accesses=ledger.ext_accesses,
            free_rides=ledger.free_rides,
            free_ride_fraction_local=ledger.free_ride_fraction_local,
            free_ride_fraction_halo=ledger.free_ride_fraction_halo,
            rides_on_base=ledger.rides_on_base,
            rides_on_ext=ledger.rides_on_ext,
            modeled_x_bytes=float(modeled_x_bytes),
        )

    @property
    def free_ride_fraction(self) -> float:
        """Fraction of extension accesses that were free rides."""
        return self.free_rides / self.ext_accesses if self.ext_accesses else 0.0

    @property
    def misses_per_nnz(self) -> float:
        """Mean per-rank misses over nnz(G) — Figure 3a/5a's y-axis."""
        if not self.nnz:
            return 0.0
        return self.misses_total / self.ranks / self.nnz

    @property
    def measured_miss_bytes(self) -> float:
        """Cachesim-measured fill traffic: misses × line size."""
        return float(self.misses_total) * self.line_bytes

    @property
    def model_ratio(self) -> float:
        """measured fill bytes / modeled ``x``-read bytes (0.0 when the
        model term is absent)."""
        if self.modeled_x_bytes <= 0:
            return 0.0
        return self.measured_miss_bytes / self.modeled_x_bytes

    def to_dict(self) -> dict:
        """JSON-serialisable form (derived values included for readers)."""
        return {
            "method": self.method,
            "line_bytes": self.line_bytes,
            "nnz": self.nnz,
            "base_nnz": self.base_nnz,
            "misses_total": self.misses_total,
            "ranks": self.ranks,
            "ext_accesses": self.ext_accesses,
            "free_rides": self.free_rides,
            "free_ride_fraction": self.free_ride_fraction,
            "free_ride_fraction_local": self.free_ride_fraction_local,
            "free_ride_fraction_halo": self.free_ride_fraction_halo,
            "rides_on_base": self.rides_on_base,
            "rides_on_ext": self.rides_on_ext,
            "modeled_x_bytes": self.modeled_x_bytes,
            "measured_miss_bytes": self.measured_miss_bytes,
            "misses_per_nnz": self.misses_per_nnz,
            "model_ratio": self.model_ratio,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MethodCacheProfile":
        return cls(
            method=str(d["method"]),
            line_bytes=int(d["line_bytes"]),
            nnz=int(d.get("nnz", 0)),
            base_nnz=int(d.get("base_nnz", 0)),
            misses_total=int(d.get("misses_total", 0)),
            ranks=int(d.get("ranks", 1)),
            ext_accesses=int(d.get("ext_accesses", 0)),
            free_rides=int(d.get("free_rides", 0)),
            free_ride_fraction_local=float(d.get("free_ride_fraction_local", 0.0)),
            free_ride_fraction_halo=float(d.get("free_ride_fraction_halo", 0.0)),
            rides_on_base=int(d.get("rides_on_base", 0)),
            rides_on_ext=int(d.get("rides_on_ext", 0)),
            modeled_x_bytes=float(d.get("modeled_x_bytes", 0.0)),
        )


@dataclass
class CacheConformance:
    """Cache-conformance verdicts over a method ladder × line geometries.

    Mirrors :class:`repro.observe.conformance.ConformanceReport` for the
    memory side of the perfmodel: :meth:`claims` states the paper's three
    gated cache facts as pass/fail records, :meth:`verdicts` names every
    divergence, and :meth:`to_suspects` lifts the verdicts into
    :func:`repro.observe.explain.attribute` suspects
    (``cache:<verdict>``).
    """

    entries: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    baseline: str = "FSAI"

    #: An extended method's free-ride fraction at or above this is a
    #: "majority" (the paper's nearly-free claim).
    majority_threshold: float = 0.5
    #: Allowed relative misses-per-nnz growth of an extended method over
    #: the baseline before ``misses-per-nnz-regressed`` fires.
    miss_tolerance: float = 0.05
    #: ``memory-term-underpredicted`` fires when measured fill bytes exceed
    #: this multiple of the modeled ``x``-read bytes.
    model_tolerance: float = 1.0
    #: A free-ride fraction at or above this counts as saturated: the
    #: "larger lines ⇒ larger gains" claim cannot fail for lack of headroom
    #: when the smaller geometry already rides (essentially) every access.
    saturation_threshold: float = 0.995

    def add(self, profile: MethodCacheProfile) -> None:
        """Append one (method, line geometry) cell."""
        self.entries.append(profile)

    def add_ledger(
        self, ledger: FreeRideLedger, *, modeled_x_bytes: float = 0.0
    ) -> MethodCacheProfile:
        """Collapse and append a ledger; returns the stored profile."""
        profile = MethodCacheProfile.from_ledger(
            ledger, modeled_x_bytes=modeled_x_bytes
        )
        self.add(profile)
        return profile

    # lookup ------------------------------------------------------------
    def profile(self, method: str, line_bytes: int) -> MethodCacheProfile | None:
        """The cell of one (method, line geometry), or None."""
        for e in self.entries:
            if e.method == method and e.line_bytes == int(line_bytes):
                return e
        return None

    def methods(self) -> list[str]:
        """Method names in first-seen order."""
        out: list[str] = []
        for e in self.entries:
            if e.method not in out:
                out.append(e.method)
        return out

    def line_sizes(self) -> list[int]:
        """Distinct line geometries, ascending."""
        return sorted({e.line_bytes for e in self.entries})

    def _extended(self) -> list[MethodCacheProfile]:
        return [e for e in self.entries if e.method != self.baseline]

    # judgement ---------------------------------------------------------
    def claims(self) -> list[dict]:
        """The paper's gated cache facts as pass/fail records.

        Per extended method: ``free-ride-majority`` at each line geometry,
        ``misses-per-nnz-not-worse`` vs the baseline at the same geometry,
        and ``free-ride-rises-with-line-size`` across geometries (the A64FX
        "larger lines ⇒ larger gains" claim) when at least two geometries
        were profiled.
        """
        out: list[dict] = []
        for e in self._extended():
            if not e.ext_accesses:
                continue
            out.append({
                "claim": "free-ride-majority",
                "method": e.method,
                "line_bytes": e.line_bytes,
                "ok": e.free_ride_fraction >= self.majority_threshold,
                "detail": (
                    f"{e.free_rides}/{e.ext_accesses} extension accesses "
                    f"({e.free_ride_fraction:.1%}) rode resident lines at "
                    f"{e.line_bytes} B (threshold "
                    f"{self.majority_threshold:.0%})"
                ),
            })
            base = self.profile(self.baseline, e.line_bytes)
            if base is not None and base.misses_per_nnz > 0:
                limit = (1 + self.miss_tolerance) * base.misses_per_nnz
                out.append({
                    "claim": "misses-per-nnz-not-worse",
                    "method": e.method,
                    "line_bytes": e.line_bytes,
                    "ok": e.misses_per_nnz <= limit,
                    "detail": (
                        f"misses/nnz {e.misses_per_nnz:.4f} vs "
                        f"{self.baseline} {base.misses_per_nnz:.4f} at "
                        f"{e.line_bytes} B (allowed ≤ {limit:.4f})"
                    ),
                })
        for method in self.methods():
            if method == self.baseline:
                continue
            cells = sorted(
                (e for e in self._extended()
                 if e.method == method and e.ext_accesses),
                key=lambda e: e.line_bytes,
            )
            if len(cells) < 2:
                continue
            lo, hi = cells[0], cells[-1]
            saturated = lo.free_ride_fraction >= self.saturation_threshold
            out.append({
                "claim": "free-ride-rises-with-line-size",
                "method": method,
                "line_bytes": hi.line_bytes,
                "ok": (
                    hi.free_ride_fraction > lo.free_ride_fraction
                    or (saturated
                        and hi.free_ride_fraction >= lo.free_ride_fraction)
                ),
                "detail": (
                    f"free-ride fraction {lo.free_ride_fraction:.1%} at "
                    f"{lo.line_bytes} B → {hi.free_ride_fraction:.1%} at "
                    f"{hi.line_bytes} B"
                    + (" (saturated at the smaller geometry)" if saturated
                       else "")
                ),
            })
        return out

    #: Failed claim → verdict name.
    _CLAIM_VERDICTS = {
        "free-ride-majority": "free-ride-minority",
        "misses-per-nnz-not-worse": "misses-per-nnz-regressed",
        "free-ride-rises-with-line-size": "line-geometry-gain-missing",
    }

    def verdicts(self) -> list[dict]:
        """Named divergence verdicts: every failed claim, plus the model
        confrontation (``memory-term-underpredicted`` when cachesim fill
        traffic exceeds the perfmodel's ``x``-read term)."""
        out: list[dict] = []
        for c in self.claims():
            if not c["ok"]:
                out.append({
                    "name": self._CLAIM_VERDICTS[c["claim"]],
                    "method": c["method"],
                    "line_bytes": c["line_bytes"],
                    "detail": c["detail"],
                })
        for e in self.entries:
            if (
                e.modeled_x_bytes > 0
                and e.measured_miss_bytes > self.model_tolerance * e.modeled_x_bytes
            ):
                out.append({
                    "name": "memory-term-underpredicted",
                    "method": e.method,
                    "line_bytes": e.line_bytes,
                    "detail": (
                        f"cachesim fill traffic {e.measured_miss_bytes:.0f} B "
                        f"exceeds the modeled x-read term "
                        f"{e.modeled_x_bytes:.0f} B "
                        f"(x{e.model_ratio:.2f}, allowed "
                        f"x{self.model_tolerance:.2f}) at {e.line_bytes} B"
                    ),
                })
        return out

    def to_suspects(self) -> list[Suspect]:
        """The divergence verdicts as explainer suspects."""
        return [
            Suspect(
                name=f"cache:{v['name']}",
                method=f"{v['method']}@{v['line_bytes']}B",
                detail=v["detail"],
            )
            for v in self.verdicts()
        ]

    # rendering ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable profile table, claims and verdicts."""
        lines = ["cache conformance (cachesim vs perfmodel memory term)"]
        if self.meta.get("matrix"):
            lines[0] += f" — {self.meta['matrix']}"
        header = (
            f"{'method':<12} {'line':>5} {'nnz':>8} {'misses':>8} "
            f"{'miss/nnz':>9} {'ext':>8} {'free %':>7} {'local %':>8} "
            f"{'halo %':>7} {'model x':>8}"
        )
        lines += ["", header, "-" * len(header)]
        for e in sorted(self.entries, key=lambda e: (e.line_bytes, e.method)):
            lines.append(
                f"{e.method:<12} {e.line_bytes:>4}B {e.nnz:>8} "
                f"{e.misses_total:>8} {e.misses_per_nnz:>9.4f} "
                f"{e.ext_accesses:>8} "
                f"{100.0 * e.free_ride_fraction:>6.1f}% "
                f"{100.0 * e.free_ride_fraction_local:>7.1f}% "
                f"{100.0 * e.free_ride_fraction_halo:>6.1f}% "
                + (f"{e.model_ratio:>8.3f}" if e.modeled_x_bytes > 0
                   else f"{'-':>8}")
            )
        claims = self.claims()
        if claims:
            lines.append("")
            lines.append(f"claims ({len(claims)}):")
            for c in claims:
                mark = "OK " if c["ok"] else "FAIL"
                lines.append(
                    f"  [{mark}] {c['claim']} — {c['method']} @ "
                    f"{c['line_bytes']} B: {c['detail']}"
                )
        verdicts = self.verdicts()
        lines.append("")
        if verdicts:
            lines.append(f"verdicts ({len(verdicts)}):")
            for v in verdicts:
                lines.append(
                    f"  - [{v['name']}] {v['method']} @ {v['line_bytes']} B: "
                    f"{v['detail']}"
                )
        else:
            lines.append("verdicts: none — cache behaviour matches the paper")
        return "\n".join(lines)

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-serialisable document."""
        return {
            "format": CACHE_CONFORMANCE_FORMAT,
            "version": CACHE_CONFORMANCE_VERSION,
            "meta": dict(self.meta),
            "baseline": self.baseline,
            "majority_threshold": self.majority_threshold,
            "miss_tolerance": self.miss_tolerance,
            "model_tolerance": self.model_tolerance,
            "entries": [e.to_dict() for e in self.entries],
            "claims": self.claims(),
            "verdicts": self.verdicts(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CacheConformance":
        if d.get("format") != CACHE_CONFORMANCE_FORMAT:
            raise MemTrafficError(
                f"not a cache-conformance document (format={d.get('format')!r})"
            )
        if int(d.get("version", 0)) > CACHE_CONFORMANCE_VERSION:
            raise MemTrafficError(
                f"cache-conformance document version {d.get('version')} is "
                f"newer than supported ({CACHE_CONFORMANCE_VERSION})"
            )
        return cls(
            entries=[MethodCacheProfile.from_dict(e) for e in d.get("entries", [])],
            meta=dict(d.get("meta", {})),
            baseline=str(d.get("baseline", "FSAI")),
            majority_threshold=float(d.get("majority_threshold", 0.5)),
            miss_tolerance=float(d.get("miss_tolerance", 0.05)),
            model_tolerance=float(d.get("model_tolerance", 1.0)),
        )

    def save(self, path) -> Path:
        """Write the versioned document; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "CacheConformance":
        """Read a document written by :meth:`save`."""
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise MemTrafficError(
                f"cannot read cache-conformance report: {exc}"
            ) from exc
        return cls.from_dict(doc)


def ledger_samples(
    ledger: FreeRideLedger, *, prefix: str = "memtraffic"
) -> list[dict]:
    """A ledger as ``collect()``-style instruments for OpenMetrics export
    (:func:`repro.observe.prom.render_openmetrics`), including the
    reuse-distance histogram families per entry category."""
    tags = {"method": ledger.method, "line_bytes": ledger.line_bytes}
    samples: list[dict] = []
    summary = ledger.summary()
    for key in (
        "accesses",
        "misses",
        "misses_per_nnz",
        "ext_accesses",
        "free_rides",
        "free_ride_fraction",
        "free_ride_fraction_local",
        "free_ride_fraction_halo",
        "rides_on_base",
        "rides_on_ext",
    ):
        samples.append({
            "kind": "gauge",
            "name": f"{prefix}.{key}",
            "tags": tags,
            "value": summary[key],
        })
    for r in sorted(ledger.ranks, key=lambda r: r.rank):
        samples.append({
            "kind": "gauge",
            "name": f"{prefix}.rank_misses",
            "tags": {**tags, "rank": r.rank},
            "value": r.misses_total,
        })
    for category in CATEGORIES:
        hist = ledger.reuse_histogram(category)
        if hist.count:
            samples.extend(
                hist.to_samples(
                    f"{prefix}.reuse_distance",
                    tags={**tags, "category": category},
                )
            )
    return samples


def cache_conformance_samples(
    report: CacheConformance, *, prefix: str = "cache"
) -> list[dict]:
    """A conformance report as ``collect()``-style instruments for
    OpenMetrics export."""
    samples: list[dict] = []
    for e in sorted(report.entries, key=lambda e: (e.line_bytes, e.method)):
        tags = {"method": e.method, "line_bytes": e.line_bytes}
        for key, value in (
            ("misses", e.misses_total),
            ("misses_per_nnz", e.misses_per_nnz),
            ("ext_accesses", e.ext_accesses),
            ("free_ride_fraction", e.free_ride_fraction),
            ("model_ratio", e.model_ratio),
        ):
            samples.append({
                "kind": "gauge",
                "name": f"{prefix}.{key}",
                "tags": tags,
                "value": value,
            })
    claims = report.claims()
    samples.append({
        "kind": "gauge",
        "name": f"{prefix}.claims_failed",
        "tags": {},
        "value": sum(1 for c in claims if not c["ok"]),
    })
    samples.append({
        "kind": "gauge",
        "name": f"{prefix}.verdicts",
        "tags": {},
        "value": len(report.verdicts()),
    })
    return samples
