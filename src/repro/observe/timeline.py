"""Cross-rank timeline reconstruction and critical-path analysis.

The SPMD runtime (:func:`repro.mpisim.run_spmd` driving
:func:`repro.dist.spmd.spmd_cg`) produces one span stream per rank thread:
``spmd.compute`` / ``spmd.halo.pack`` / ``spmd.halo.wait`` /
``spmd.reduction`` phase spans from the solver, ``mpisim.wait`` blocking
spans and ``mpisim.send`` / ``mpisim.recv`` instant events from the
communicator, plus one ``spmd.rank`` root span per rank whose
``clock_offset`` tag records the rank's start relative to the
``mpisim.launch`` event.  This module merges those streams into one global
:class:`Timeline`:

* spans are *flattened* to :class:`Segment` self-time intervals (a parent's
  interval minus its children), so per-rank segments never overlap and the
  total busy time equals the sum of root-span durations exactly;
* each segment is classified as ``compute`` / ``pack`` / ``wait`` /
  ``reduction`` (see :func:`classify_segment`), decomposing every CG
  iteration the way the paper's cost model does;
* :meth:`Timeline.critical_path` runs longest-path dynamic programming over
  the dependency DAG induced by same-rank program order plus the
  ``mpisim.send`` → wait-segment edges of the halo exchanges and allreduce
  message patterns, reporting per-rank slack and the top-k critical edges;
* documents round-trip via a versioned JSON form
  (``format: "repro-timeline"``) with monotonicity validation on load.

For CI gating, wall-clock critical paths are nondeterministic; the *static*
:func:`halo_critical_path` derives the bottleneck rank and its incoming
halo edges purely from a :class:`~repro.dist.halo.HaloSchedule` — a
byte-for-byte comparable object that must be identical between FSAI and
FSAIE-Comm (the paper's invariance claim, §4), and
:func:`bsp_wait_times` converts per-rank busy work into the BSP wait times
dynamic filtering (Alg. 4) is designed to shrink.

Layering: like the rest of :mod:`repro.observe` this module reads spans and
schedules back; it never imports :mod:`repro.core`.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

__all__ = [
    "TIMELINE_FORMAT",
    "TIMELINE_VERSION",
    "TimelineError",
    "Segment",
    "CommEdge",
    "CriticalPath",
    "Timeline",
    "HaloCriticalPath",
    "halo_critical_path",
    "bsp_wait_times",
    "classify_segment",
]

#: Schema identifier and version stamped into saved timeline documents.
TIMELINE_FORMAT = "repro-timeline"
TIMELINE_VERSION = 1

#: Span names whose segments count as launch scaffolding, not busy work.
_SCAFFOLD_NAMES = frozenset({"spmd.rank"})

#: Ordered substring rules mapping span names to segment kinds.
_KIND_RULES = (
    (".wait", "wait"),
    ("resilience.stall", "wait"),
    ("resilience.delay", "wait"),
    ("resilience.backoff", "wait"),
    ("halo.pack", "pack"),
    ("halo.unpack", "pack"),
    ("halo.update", "pack"),
    ("halo.exchange", "pack"),
    ("allreduce", "reduction"),
    ("allgather", "reduction"),
    ("barrier", "reduction"),
    ("reduce", "reduction"),
    ("reduction", "reduction"),
    (".dot", "reduction"),
)


class TimelineError(ReproError):
    """A timeline cannot be reconstructed: malformed document, newer schema,
    or span streams with physically impossible (non-monotonic) timestamps."""


def classify_segment(name: str) -> str:
    """Map a span name to its phase kind: compute / pack / wait / reduction."""
    for needle, kind in _KIND_RULES:
        if needle in name:
            return kind
    return "compute"


@dataclass(frozen=True)
class Segment:
    """One rank's exclusive (self-time) interval of a single phase."""

    rank: int
    name: str
    kind: str
    start: float
    end: float
    src: int | None = None
    bytes: int = 0

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        d = {
            "rank": self.rank,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
        }
        if self.src is not None:
            d["src"] = self.src
        if self.bytes:
            d["bytes"] = self.bytes
        return d


@dataclass(frozen=True)
class CommEdge:
    """A cross-rank dependency: a message from ``src`` satisfied a wait on
    ``dst``, charging ``wait_seconds`` of blocked time to the edge."""

    src: int
    dst: int
    bytes: int
    time: float
    wait_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "src": self.src,
            "dst": self.dst,
            "bytes": self.bytes,
            "time": self.time,
            "wait_seconds": self.wait_seconds,
        }


@dataclass
class CriticalPath:
    """Longest dependency chain through the merged timeline.

    ``length`` counts each segment's contribution truncated to the part
    after its predecessor finished (a wait overlaps the send-side segment
    that releases it), so ``max per-rank busy <= length <= makespan``.
    """

    segments: list[Segment] = field(default_factory=list)
    edges: list[CommEdge] = field(default_factory=list)
    length: float = 0.0

    def top_edges(self, k: int = 5) -> list[CommEdge]:
        """The path's cross-rank hops ranked by blocked time, then bytes."""
        ranked = sorted(self.edges, key=lambda e: (-e.wait_seconds, -e.bytes))
        return ranked[:k]

    def to_dict(self, *, top_k: int = 5) -> dict:
        """JSON-serialisable form."""
        return {
            "length_seconds": self.length,
            "n_segments": len(self.segments),
            "ranks_visited": sorted({s.rank for s in self.segments}),
            "top_edges": [e.to_dict() for e in self.top_edges(top_k)],
        }


def _validate_monotonic(segments: list[Segment]) -> None:
    """Reject per-rank streams whose timestamps run backwards *in the given
    order* — used on loaded documents, whose segment order is part of the
    schema (sorted by start)."""
    last_start: dict[int, float] = {}
    for seg in segments:
        prev = last_start.get(seg.rank)
        if prev is not None and seg.start < prev:
            raise TimelineError(
                f"segment timestamps are non-monotonic within rank {seg.rank}: "
                f"{seg.name!r} starts at {seg.start!r} after {prev!r}"
            )
        last_start[seg.rank] = seg.start


def _validate_durations(segments: list[Segment]) -> None:
    for seg in segments:
        if seg.end < seg.start:
            raise TimelineError(
                f"segment {seg.name!r} on rank {seg.rank} ends before it starts"
            )


class Timeline:
    """A merged, per-rank-aligned view of one SPMD run.

    Construct via :meth:`from_tracer` (live run), :meth:`from_spans` /
    :meth:`from_trace_doc` (exported spans) or :meth:`load` (saved
    timeline).  Segments are kept sorted by start time; per-rank streams
    are validated to be monotonic on every construction path.
    """

    def __init__(
        self,
        segments,
        *,
        edges=None,
        offsets: dict[int, float] | None = None,
        meta: dict | None = None,
    ):
        self.segments: list[Segment] = sorted(
            segments, key=lambda s: (s.start, s.rank, s.end)
        )
        _validate_durations(self.segments)
        self.edges: list[CommEdge] = list(edges or [])
        self.offsets: dict[int, float] = dict(offsets or {})
        self.meta: dict = dict(meta or {})
        self._critical: CriticalPath | None = None

    # construction ------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer, *, meta: dict | None = None) -> "Timeline":
        """Build from a live :class:`~repro.instrument.Tracer`."""
        return cls.from_spans([s.to_dict() for s in tracer.spans], meta=meta)

    @classmethod
    def from_trace_doc(cls, doc: dict, *, meta: dict | None = None) -> "Timeline":
        """Build from an exported ``repro-trace`` document."""
        if doc.get("format") != "repro-trace":
            raise TimelineError("not a repro-trace document")
        return cls.from_spans(doc.get("spans", []), meta=meta)

    @classmethod
    def from_spans(
        cls, spans: list[dict], *, meta: dict | None = None, align: bool = False
    ) -> "Timeline":
        """Merge raw span dictionaries into a timeline.

        Rank attribution: a span belongs to the rank in its ``rank`` tag,
        or its nearest ancestor's, or the rank of the ``spmd.rank`` root
        span covering its interval on the same thread.  ``align=True``
        additionally subtracts each rank's recorded ``clock_offset`` —
        only meaningful when ranks genuinely run on separate clocks; the
        thread runtime shares one clock, so offsets are recorded but not
        applied by default.

        Spans tagged ``channel="telemetry"`` (in-band telemetry traffic,
        :mod:`repro.observe.stream`) are skipped: observability traffic
        must never perturb the reconstructed solver timeline.

        An empty stream, a stream of malformed spans (no ``start``), or a
        stream in which no span can be attributed to any rank raises
        :class:`TimelineError` naming the offending stream — a cross-rank
        timeline of zero ranks is always a caller error, and the earlier
        bare ``KeyError`` pointed at this module instead of the input.
        """
        spans = list(spans)
        stream = (meta or {}).get("source") or (meta or {}).get("label") or "<spans>"
        if not spans:
            raise TimelineError(
                f"span stream {stream!r} is empty: no spans to merge into a "
                "timeline (was tracing enabled for the run?)"
            )
        for i, d in enumerate(spans):
            if not isinstance(d, dict) or "start" not in d:
                raise TimelineError(
                    f"span #{i} ({(d.get('name') if isinstance(d, dict) else d)!r}) "
                    f"in stream {stream!r} has no 'start' timestamp"
                )
        by_id: dict = {}
        for d in spans:
            sid = d.get("span_id")
            if sid is not None:
                by_id[sid] = d

        # thread -> [(start, end, rank)] windows from spmd.rank root spans
        windows: dict[int, list[tuple[float, float, int]]] = {}
        offsets: dict[int, float] = {}
        for d in spans:
            if d.get("name") == "spmd.rank":
                tags = d.get("tags", {})
                rank = tags.get("rank")
                if rank is None:
                    continue
                end = d.get("end")
                windows.setdefault(d.get("thread"), []).append(
                    (d["start"], end if end is not None else float("inf"), int(rank))
                )
                if "clock_offset" in tags:
                    offsets[int(rank)] = float(tags["clock_offset"])

        def rank_of(d: dict) -> int | None:
            seen = 0
            node = d
            while node is not None and seen < 1000:
                rank = node.get("tags", {}).get("rank")
                if rank is not None:
                    return int(rank)
                node = by_id.get(node.get("parent_id"))
                seen += 1
            for lo, hi, rank in windows.get(d.get("thread"), ()):
                if lo <= d["start"] <= hi:
                    return rank
            return None

        per_rank: dict[int, list[dict]] = {}
        sends: list[CommEdge] = []
        for d in spans:
            name = d.get("name", "")
            tags = d.get("tags", {})
            if tags.get("channel") == "telemetry":
                continue  # in-band telemetry traffic is not solver activity
            if name == "mpisim.send":
                sends.append(
                    CommEdge(
                        src=int(tags.get("src", -1)),
                        dst=int(tags.get("dst", -1)),
                        bytes=int(tags.get("bytes", 0)),
                        time=d["start"],
                    )
                )
                continue
            end = d.get("end")
            if end is None or end <= d["start"]:
                continue  # instant events and unclosed spans carry no time
            if name in _SCAFFOLD_NAMES:
                continue
            rank = rank_of(d)
            if rank is None:
                continue  # driver-side span outside any rank stream
            per_rank.setdefault(rank, []).append(d)
        if not per_rank:
            names = sorted({d.get("name", "?") for d in spans})
            raise TimelineError(
                f"span stream {stream!r} has no rank-attributable spans "
                f"(saw {len(spans)} spans named {names[:8]}); a cross-rank "
                "timeline needs spans carrying a 'rank' tag or 'spmd.rank' "
                "root spans"
            )

        segments: list[Segment] = []
        for rank, ds in per_rank.items():
            shift = offsets.get(rank, 0.0) if align else 0.0
            selected_ids = {d["span_id"] for d in ds if d.get("span_id") is not None}
            children: dict = {}
            for d in ds:
                pid = d.get("parent_id")
                if pid in selected_ids:
                    children.setdefault(pid, []).append(d)
            for d in ds:
                kind = classify_segment(d["name"])
                tags = d.get("tags", {})
                src = tags.get("src")
                nbytes = int(tags.get("bytes", 0) or 0)
                # self-time: the span's interval minus its children's
                cuts = sorted(
                    (max(c["start"], d["start"]), min(c["end"], d["end"]))
                    for c in children.get(d.get("span_id"), [])
                    if c.get("end") is not None and c["end"] > c["start"]
                )
                cursor = d["start"]
                pieces: list[tuple[float, float]] = []
                for lo, hi in cuts:
                    if lo > cursor:
                        pieces.append((cursor, lo))
                    cursor = max(cursor, hi)
                if d["end"] > cursor:
                    pieces.append((cursor, d["end"]))
                for lo, hi in pieces:
                    segments.append(
                        Segment(
                            rank=rank,
                            name=d["name"],
                            kind=kind,
                            start=lo - shift,
                            end=hi - shift,
                            src=int(src) if src is not None else None,
                            bytes=nbytes,
                        )
                    )
        return cls(segments, edges=sends, offsets=offsets, meta=meta)

    # aggregate queries -------------------------------------------------
    @property
    def ranks(self) -> list[int]:
        """Sorted rank ids present in the timeline."""
        return sorted({s.rank for s in self.segments})

    @property
    def t0(self) -> float:
        """Earliest timestamp in the timeline."""
        return min((s.start for s in self.segments), default=0.0)

    @property
    def t1(self) -> float:
        """Latest timestamp in the timeline."""
        return max((s.end for s in self.segments), default=0.0)

    @property
    def makespan(self) -> float:
        """Wall-clock extent of the merged timeline (seconds)."""
        return self.t1 - self.t0

    def busy_seconds(self, rank: int | None = None):
        """Total segment time for one rank, or a per-rank mapping."""
        if rank is not None:
            return sum(s.duration for s in self.segments if s.rank == rank)
        out: dict[int, float] = {r: 0.0 for r in self.ranks}
        for s in self.segments:
            out[s.rank] += s.duration
        return out

    def kind_seconds(self, rank: int | None = None) -> dict[str, float]:
        """Busy time decomposed by phase kind (optionally for one rank)."""
        out: dict[str, float] = {}
        for s in self.segments:
            if rank is not None and s.rank != rank:
                continue
            out[s.kind] = out.get(s.kind, 0.0) + s.duration
        return out

    def wait_histogram(self) -> dict[int, float]:
        """Per-rank seconds spent in wait segments — the imbalance that
        dynamic filtering (Alg. 4) is meant to flatten."""
        out: dict[int, float] = {r: 0.0 for r in self.ranks}
        for s in self.segments:
            if s.kind == "wait":
                out[s.rank] += s.duration
        return out

    def slack_seconds(self) -> dict[int, float]:
        """Per-rank idle headroom: makespan minus the rank's busy time."""
        span = self.makespan
        return {r: span - busy for r, busy in self.busy_seconds().items()}

    # critical path -----------------------------------------------------
    def critical_path(self) -> CriticalPath:
        """Longest chain through program order plus message dependencies.

        Same-rank segments chain sequentially; a wait segment additionally
        depends on the sender-side segment that produced its matching
        ``mpisim.send``.  The result's length is therefore at least the
        maximum per-rank busy time.
        """
        if self._critical is not None:
            return self._critical
        segs = self.segments
        if not segs:
            self._critical = CriticalPath()
            return self._critical

        by_rank: dict[int, list[int]] = {}
        for i, s in enumerate(segs):
            by_rank.setdefault(s.rank, []).append(i)
        rank_starts = {
            r: [segs[i].start for i in idxs] for r, idxs in by_rank.items()
        }
        # sends grouped by (src, dst), time-sorted, for wait matching
        sends: dict[tuple[int, int], list[CommEdge]] = {}
        for e in sorted(self.edges, key=lambda e: e.time):
            sends.setdefault((e.src, e.dst), []).append(e)

        def sender_segment(src: int, t: float) -> int | None:
            """Index of the segment on ``src`` active at (or last before) t."""
            starts = rank_starts.get(src)
            if not starts:
                return None
            k = bisect_right(starts, t) - 1
            return by_rank[src][k] if k >= 0 else None

        order = sorted(range(len(segs)), key=lambda i: (segs[i].end, segs[i].start))
        dist = [0.0] * len(segs)
        parent: list[int | None] = [None] * len(segs)
        via: list[CommEdge | None] = [None] * len(segs)
        pos_in_rank = {i: k for r, idxs in by_rank.items() for k, i in enumerate(idxs)}
        done = [False] * len(segs)
        for i in order:
            seg = segs[i]
            candidates: list[tuple[int, CommEdge | None]] = []
            k = pos_in_rank[i]
            if k > 0:
                candidates.append((by_rank[seg.rank][k - 1], None))
            if seg.kind == "wait" and seg.src is not None:
                lane = sends.get((seg.src, seg.rank), [])
                times = [e.time for e in lane]
                j = bisect_right(times, seg.end) - 1
                if j >= 0:
                    edge = lane[j]
                    pred = sender_segment(seg.src, edge.time)
                    if pred is not None and pred != i:
                        candidates.append(
                            (pred, CommEdge(edge.src, edge.dst, edge.bytes,
                                            edge.time, seg.duration))
                        )
            # contribution truncated to the part after the predecessor
            # finished: chained intervals stay pairwise disjoint, so the
            # total can never exceed the makespan
            best = seg.duration
            best_parent: int | None = None
            best_edge: CommEdge | None = None
            for p, edge in candidates:
                if not done[p]:
                    continue
                cand = dist[p] + max(0.0, seg.end - max(seg.start, segs[p].end))
                if cand > best:
                    best, best_parent, best_edge = cand, p, edge
            dist[i] = best
            parent[i] = best_parent
            via[i] = best_edge
            done[i] = True

        tail = max(range(len(segs)), key=lambda i: dist[i])
        path_segments: list[Segment] = []
        path_edges: list[CommEdge] = []
        node: int | None = tail
        while node is not None:
            path_segments.append(segs[node])
            if via[node] is not None:
                path_edges.append(via[node])
            node = parent[node]
        path_segments.reverse()
        path_edges.reverse()
        self._critical = CriticalPath(path_segments, path_edges, dist[tail])
        return self._critical

    # summaries ---------------------------------------------------------
    def summary(self, *, top_k: int = 5) -> dict:
        """The aggregate view embedded in v2 run reports."""
        busy = self.busy_seconds()
        wait = self.wait_histogram()
        cp = self.critical_path()
        return {
            "ranks": len(self.ranks),
            "segments": len(self.segments),
            "makespan_seconds": self.makespan,
            "total_busy_seconds": sum(busy.values()),
            "busy_seconds": {str(r): busy[r] for r in self.ranks},
            "wait_seconds": {str(r): wait[r] for r in self.ranks},
            "slack_seconds": {
                str(r): v for r, v in sorted(self.slack_seconds().items())
            },
            "max_wait_seconds": max(wait.values(), default=0.0),
            "kind_seconds": self.kind_seconds(),
            "critical_path": cp.to_dict(top_k=top_k),
            "clock_offsets": {str(r): v for r, v in sorted(self.offsets.items())},
        }

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "format": TIMELINE_FORMAT,
            "version": TIMELINE_VERSION,
            "meta": dict(self.meta),
            "offsets": {str(r): v for r, v in sorted(self.offsets.items())},
            "segments": [s.to_dict() for s in self.segments],
            "edges": [e.to_dict() for e in self.edges],
            "summary": self.summary(),
        }

    def save(self, path, *, indent: int | None = 2) -> Path:
        """Write as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=indent) + "\n")
        return path

    @classmethod
    def from_dict(cls, doc: dict) -> "Timeline":
        """Validate and rebuild the saved document form."""
        if not isinstance(doc, dict):
            raise TimelineError("timeline document must be a JSON object")
        if doc.get("format") != TIMELINE_FORMAT:
            raise TimelineError(
                f"not a timeline document (format={doc.get('format')!r}, "
                f"expected {TIMELINE_FORMAT!r})"
            )
        version = doc.get("version")
        if version != TIMELINE_VERSION:
            raise TimelineError(
                f"unsupported timeline schema version {version!r} "
                f"(this build reads version {TIMELINE_VERSION})"
            )
        try:
            segments = [
                Segment(
                    rank=int(d["rank"]),
                    name=str(d["name"]),
                    kind=str(d.get("kind") or classify_segment(d["name"])),
                    start=float(d["start"]),
                    end=float(d["end"]),
                    src=int(d["src"]) if d.get("src") is not None else None,
                    bytes=int(d.get("bytes", 0)),
                )
                for d in doc.get("segments", [])
            ]
            edges = [
                CommEdge(
                    src=int(d["src"]),
                    dst=int(d["dst"]),
                    bytes=int(d.get("bytes", 0)),
                    time=float(d.get("time", 0.0)),
                    wait_seconds=float(d.get("wait_seconds", 0.0)),
                )
                for d in doc.get("edges", [])
            ]
            offsets = {int(r): float(v) for r, v in doc.get("offsets", {}).items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise TimelineError(f"malformed timeline document: {exc}") from exc
        _validate_durations(segments)
        _validate_monotonic(segments)  # document order is part of the schema
        return cls(segments, edges=edges, offsets=offsets, meta=doc.get("meta", {}))

    @classmethod
    def load(cls, path) -> "Timeline":
        """Load a saved timeline — or an exported ``repro-trace`` document —
        validating format, version and per-rank monotonicity."""
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except OSError as exc:
            raise TimelineError(f"cannot read {path}: {exc}") from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TimelineError(f"{path} is not valid JSON: {exc}") from exc
        if isinstance(doc, dict) and doc.get("format") == "repro-trace":
            return cls.from_trace_doc(doc, meta={"source": str(path)})
        try:
            return cls.from_dict(doc)
        except TimelineError as exc:
            raise TimelineError(f"{path}: {exc}") from None

    # rendering ---------------------------------------------------------
    def top_ranks(self, n: int | None = None) -> list[int]:
        """The ``n`` ranks with the most wait time, in rank order.

        ``None`` (or a cap at/above the rank count) returns every rank —
        the selector behind Gantt row capping at production rank counts
        (1024 rank rows are unreadable; the waitiest N are the story).
        Ties break toward the lower rank id, so the selection is
        deterministic.
        """
        ranks = self.ranks
        if n is None or n <= 0 or n >= len(ranks):
            return ranks
        wait = self.wait_histogram()
        return sorted(sorted(ranks, key=lambda r: (-wait[r], r))[:n])

    def render_gantt(self, *, width: int = 72, max_ranks: int | None = None) -> str:
        """ASCII per-rank Gantt chart: C compute, P pack, W wait, R reduction.

        ``max_ranks`` caps the chart at the top-N ranks by wait time
        (:meth:`top_ranks`) with a footer naming how many rows were
        elided — the readable form above a few dozen ranks.
        """
        if not self.segments:
            return "(empty timeline)"
        t0, t1 = self.t0, self.t1
        span = max(t1 - t0, 1e-12)
        glyph = {"compute": "C", "pack": "P", "wait": "W", "reduction": "R"}
        shown = self.top_ranks(max_ranks)
        elided = len(self.ranks) - len(shown)
        lines = [
            f"timeline: {len(self.ranks)} ranks, {len(self.segments)} segments, "
            f"makespan {span * 1e3:.3f} ms"
        ]
        busy = self.busy_seconds()
        wait = self.wait_histogram()
        by_rank: dict[int, list] = {r: [] for r in shown}
        for s in self.segments:
            if s.rank in by_rank:
                by_rank[s.rank].append(s)
        for rank in shown:
            buckets = [dict() for _ in range(width)]
            for s in by_rank[rank]:
                lo = int((s.start - t0) / span * width)
                hi = int((s.end - t0) / span * width)
                for k in range(max(lo, 0), min(hi + 1, width)):
                    b_lo = t0 + k * span / width
                    b_hi = b_lo + span / width
                    overlap = min(s.end, b_hi) - max(s.start, b_lo)
                    if overlap > 0:
                        buckets[k][s.kind] = buckets[k].get(s.kind, 0.0) + overlap
            row = "".join(
                glyph.get(max(b, key=b.get), "?") if b else "." for b in buckets
            )
            lines.append(
                f"rank {rank:>2} |{row}| busy {busy[rank] * 1e3:8.3f} ms"
                f"  wait {wait[rank] * 1e3:8.3f} ms"
            )
        if elided:
            lines.append(
                f"({elided} rank{'s' if elided != 1 else ''} elided; showing "
                f"top {len(shown)} by wait time)"
            )
        lines.append("legend: C compute  P halo-pack  W wait  R reduction  . idle")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Timeline(ranks={len(self.ranks)}, segments={len(self.segments)}, "
            f"makespan={self.makespan:.6f}s)"
        )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HaloCriticalPath:
    """The *static* halo critical path of a schedule: the rank with the most
    incoming halo bytes and its ordered incoming edges.

    Derived purely from the schedule — no clocks — so it is exactly
    comparable across preconditioners: FSAIE-Comm must yield a path
    byte-for-byte and edge-for-edge identical to FSAI's (§4).
    """

    rank: int
    edges: tuple[tuple[int, int, int], ...]  # (src, dst, bytes), src-sorted
    total_bytes: int
    messages: int

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "rank": self.rank,
            "edges": [list(e) for e in self.edges],
            "total_bytes": self.total_bytes,
            "messages": self.messages,
        }

    def render(self) -> str:
        """Human-readable text rendering."""
        hops = ", ".join(f"{s}->{d}:{b}B" for s, d, b in self.edges)
        return (
            f"halo critical path: rank {self.rank} receives {self.total_bytes} B "
            f"over {self.messages} message(s) [{hops}]"
        )


def halo_critical_path(schedule, *, value_bytes: int = 8) -> HaloCriticalPath:
    """Bottleneck rank and edge list of a :class:`HaloSchedule`.

    The critical rank is the one receiving the most halo bytes per update
    (ties break to the lowest rank); its incoming edges, source-sorted with
    exact byte counts, form the comparable path object.
    """
    nparts = len(schedule.recv_from)
    incoming = []
    for p in range(nparts):
        total = sum(
            value_bytes * int(ids.size)
            for ids in schedule.recv_from[p].values()
            if ids.size
        )
        incoming.append(total)
    bottleneck = max(range(nparts), key=lambda p: (incoming[p], -p))
    edges = tuple(
        sorted(
            (int(q), int(bottleneck), value_bytes * int(ids.size))
            for q, ids in schedule.recv_from[bottleneck].items()
            if ids.size
        )
    )
    return HaloCriticalPath(
        rank=int(bottleneck),
        edges=edges,
        total_bytes=sum(b for _, _, b in edges),
        messages=len(edges),
    )


def bsp_wait_times(busy) -> list[float]:
    """BSP wait time per rank given per-rank busy work.

    In a bulk-synchronous step every rank waits for the slowest:
    ``wait[p] = max(busy) - busy[p]``.  Feeding per-rank nonzeros (or
    modeled per-rank seconds) in shows exactly the imbalance dynamic
    filtering (Alg. 4) removes — an unfiltered extension has strictly
    larger max wait than a ±5 %-banded one.
    """
    values = [float(v) for v in busy]
    if not values:
        return []
    peak = max(values)
    return [peak - v for v in values]
