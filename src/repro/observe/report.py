"""Unified run reports: one versioned JSON artifact per run, plus a
regression comparator.

A :class:`RunReport` aggregates what the other observe pieces produce —
flight-recorder summaries, invariance verdicts, balance reports, timeline
and attribution summaries, timer and metric snapshots — into a single
document with a versioned schema (``format: "repro-run-report"``,
``version: 2``; version-1 documents still load):

* ``meta`` — free-form provenance (label, matrix, ranks, ...);
* ``sections`` — named nested dictionaries (``flight``, ``invariance``,
  ``balance``, ``bench``, ...), each the ``to_dict()``/``summary()`` of one
  observe object;
* ``metrics`` — a *flat* ``name -> number`` mapping, the comparable surface
  :meth:`RunReport.compare` diffs between two runs.

Builders exist for every producer in the repo: a live tracer/metrics pair
(:meth:`from_run`), an exported ``repro-trace`` document
(:meth:`from_trace_doc`), and a kernel-microbenchmark suite
(:meth:`from_bench`); :meth:`load` dispatches on the file's declared format
and raises :class:`ReportError` — not a traceback — on malformed or
unsupported input.  :meth:`compare` implements the CI gate used by
``scripts/check_bench_regression.py`` and the ``repro report --compare``
subcommand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.tables import format_kv, format_table
from repro.errors import ReproError
from repro.observe.flight import FlightRecord

__all__ = [
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "SUPPORTED_REPORT_VERSIONS",
    "ReportError",
    "flatten_metrics",
    "MetricDelta",
    "ReportComparison",
    "RunReport",
]

#: Schema identifier and version stamped into every saved report.
REPORT_FORMAT = "repro-run-report"
REPORT_VERSION = 2

#: The solve-farm report format (:class:`repro.serve.report.ServeReport`).
#: Duplicated literal, not an import — observe must stay below serve in the
#: layering (same contract as the flight-recorder format string).
_SERVE_REPORT_FORMAT = "repro-serve-report"

#: Older schema versions this build still reads.  v2 added the optional
#: ``timeline`` and ``attribution`` sections (plus ``timeline.*`` metrics);
#: v1 documents simply lack them, so they load unchanged.
SUPPORTED_REPORT_VERSIONS = (1, 2)


class ReportError(ReproError):
    """A run-report file is malformed, unsupported, or from a newer schema."""


def _flatten_key(name: str, tags: dict) -> str:
    if not tags:
        return name
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{name}{{{inner}}}"


def flatten_metrics(collected: list[dict]) -> dict[str, float]:
    """Flatten a :meth:`MetricsRegistry.collect` snapshot into the report's
    comparable ``name -> number`` surface.

    Counters and gauges contribute their value under
    ``name{tag=value,...}``; histograms contribute ``.count`` and ``.sum``
    sub-keys (distributions are not directly comparable).
    """
    flat: dict[str, float] = {}
    for inst in collected:
        key = _flatten_key(inst["name"], inst.get("tags", {}))
        if inst.get("kind") == "histogram":
            flat[f"{key}.count"] = float(inst.get("count", 0))
            flat[f"{key}.sum"] = float(inst.get("sum", 0.0))
        elif inst.get("value") is not None:
            try:
                flat[key] = float(inst["value"])
            except (TypeError, ValueError):
                continue
    return flat


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricDelta:
    """One metric's comparison row."""

    name: str
    base: float | None
    other: float | None
    rel_tol: float
    abs_tol: float

    @property
    def delta(self) -> float | None:
        """Signed relative change against the baseline (``None`` if undefined)."""
        if self.base is None or self.other is None:
            return None
        return self.other - self.base

    @property
    def ok(self) -> bool:
        """Whether the change is within the applied tolerance."""
        if self.base is None or self.other is None:
            return False
        return abs(self.other - self.base) <= self.abs_tol + self.rel_tol * abs(self.base)

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "base": self.base,
            "other": self.other,
            "delta": self.delta,
            "rel_tol": self.rel_tol,
            "abs_tol": self.abs_tol,
            "ok": self.ok,
        }


@dataclass
class ReportComparison:
    """Outcome of :meth:`RunReport.compare`: per-metric deltas and a verdict."""

    base_label: str
    other_label: str
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True iff every compared metric stayed within tolerance."""
        return all(d.ok for d in self.deltas)

    def regressions(self) -> list[MetricDelta]:
        """The rows that failed (out of tolerance or missing)."""
        return [d for d in self.deltas if not d.ok]

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "base": self.base_label,
            "other": self.other_label,
            "passed": self.passed,
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def render(self, *, only_failures: bool = False) -> str:
        """Human-readable text rendering."""
        rows = []
        for d in self.deltas:
            if only_failures and d.ok:
                continue
            rows.append(
                [
                    d.name,
                    "-" if d.base is None else f"{d.base:g}",
                    "-" if d.other is None else f"{d.other:g}",
                    "-" if d.delta is None else f"{d.delta:+g}",
                    f"{d.rel_tol:g}",
                    "ok" if d.ok else "FAIL",
                ]
            )
        verdict = "PASS" if self.passed else (
            f"FAIL ({len(self.regressions())} regression(s))"
        )
        title = f"report comparison: {self.base_label} vs {self.other_label} — {verdict}"
        if not rows:
            if self.deltas:
                return title + f"\n({len(self.deltas)} metric(s) within tolerance)"
            return title + "\n(no metrics compared)"
        return format_table(
            ["metric", "base", "other", "delta", "rel_tol", "status"], rows, title=title
        )

    def __repr__(self) -> str:
        return (
            f"ReportComparison({self.base_label!r} vs {self.other_label!r}, "
            f"passed={self.passed})"
        )


# ----------------------------------------------------------------------
@dataclass
class RunReport:
    """One run's observable facts, saved as a versioned JSON document."""

    meta: dict = field(default_factory=dict)
    sections: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Display label of this report."""
        return str(self.meta.get("label", "run"))

    # construction ------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        tracer=None,
        metrics=None,
        *,
        label: str = "run",
        solver: str | None = None,
        **meta,
    ) -> "RunReport":
        """Build from a live tracer / metrics registry pair.

        Adds a ``flight`` section when the tracer recorded flight events, a
        ``timers`` section with total seconds per span name, and flattens the
        metrics registry into the comparable surface.
        """
        report = cls(meta={"label": label, **meta})
        if tracer is not None and getattr(tracer, "enabled", False):
            record = FlightRecord.from_tracer(tracer, solver=solver)
            if record.iterations:
                report.sections["flight"] = record.summary()
            timers: dict[str, float] = {}
            for span in tracer.spans:
                if span.end is not None and span.end > span.start:
                    timers[span.name] = timers.get(span.name, 0.0) + (span.end - span.start)
            if timers:
                report.sections["timers"] = {
                    k: timers[k] for k in sorted(timers)
                }
        if metrics is not None and getattr(metrics, "enabled", False):
            report.metrics = flatten_metrics(metrics.collect())
        return report

    @classmethod
    def from_trace_doc(cls, doc: dict, *, label: str = "trace") -> "RunReport":
        """Build from an exported ``repro-trace`` document (see
        :func:`repro.instrument.read_json_trace`)."""
        if doc.get("format") != "repro-trace":
            raise ReportError("not a repro-trace document")
        record = FlightRecord.from_spans(doc.get("spans", []))
        report = cls(meta={"label": label, "source": "trace"})
        if record.iterations:
            report.sections["flight"] = record.summary()
        report.metrics = flatten_metrics(doc.get("metrics", []))
        return report

    @classmethod
    def from_bench(cls, doc: dict, *, label: str = "bench") -> "RunReport":
        """Build from a kernel-microbenchmark suite document
        (``BENCH_kernels.json``, see :func:`repro.kernels.run_suite`)."""
        if "summary" not in doc:
            raise ReportError("not a benchmark suite document (no 'summary')")
        report = cls(
            meta={"label": label, "source": "bench", "config": doc.get("config", {})}
        )
        report.sections["bench"] = dict(doc["summary"])
        for key, value in doc["summary"].items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                report.metrics[f"bench.{key}"] = float(value)
        pcg = doc.get("pcg", {})
        for key in ("iterations", "workspace_allocs_hot"):
            if isinstance(pcg.get(key), (int, float)):
                report.metrics[f"bench.pcg.{key}"] = float(pcg[key])
        return report

    @classmethod
    def from_solver_bench(cls, doc: dict, *, label: str = "solver-bench") -> "RunReport":
        """Build from a solve-level benchmark document (``BENCH_solver.json``,
        see :mod:`benchmarks.solver_bench`): per-pattern iteration counts and
        nnz tradeoffs become ``solver.*`` metrics."""
        if "summary" not in doc or "solver" not in doc:
            raise ReportError(
                "not a solver benchmark document (needs 'summary' and 'solver')"
            )
        report = cls(
            meta={
                "label": label,
                "source": "solver-bench",
                "config": doc.get("config", {}),
            }
        )
        report.sections["solver"] = dict(doc["solver"])
        for key, value in doc["summary"].items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                report.metrics[f"solver.{key}"] = float(value)
        return report

    @classmethod
    def from_scaling_bench(cls, doc: dict, *, label: str = "scaling-bench") -> "RunReport":
        """Build from a weak-scaling benchmark document (``BENCH_scaling.json``,
        see :mod:`benchmarks.scaling_bench`): per-scale iteration counts,
        message/byte totals and invariance flags become ``scaling.*`` metrics."""
        if "summary" not in doc or "scaling" not in doc:
            raise ReportError(
                "not a scaling benchmark document (needs 'summary' and 'scaling')"
            )
        report = cls(
            meta={
                "label": label,
                "source": "scaling-bench",
                "config": doc.get("config", {}),
            }
        )
        report.sections["scaling"] = dict(doc["scaling"])
        for key, value in doc["summary"].items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                report.metrics[f"scaling.{key}"] = float(value)
        return report

    @classmethod
    def from_conformance_bench(
        cls, doc: dict, *, label: str = "conformance-bench"
    ) -> "RunReport":
        """Build from a model-conformance benchmark document
        (``BENCH_conformance.json``, see :mod:`benchmarks.conformance_bench`):
        per-rank-count phase ratios, straggler counts, telemetry payload
        sizes and the structural invariance flags become ``conformance.*``
        metrics gated by ``check_bench_regression.py --conformance``."""
        if "summary" not in doc or "conformance" not in doc:
            raise ReportError(
                "not a conformance benchmark document "
                "(needs 'summary' and 'conformance')"
            )
        report = cls(
            meta={
                "label": label,
                "source": "conformance-bench",
                "config": doc.get("config", {}),
            }
        )
        report.sections["conformance"] = dict(doc["conformance"])
        for key, value in doc["summary"].items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                report.metrics[f"conformance.{key}"] = float(value)
        return report

    @classmethod
    def from_cache_bench(cls, doc: dict, *, label: str = "cache-bench") -> "RunReport":
        """Build from a cache free-ride benchmark document
        (``BENCH_cache.json``, see :mod:`benchmarks.cache_bench`): per-grid,
        per-method, per-line-geometry miss counts, free-ride fractions and
        claim flags become ``cache.*`` metrics gated by
        ``check_bench_regression.py --cache``."""
        if "summary" not in doc or "cache" not in doc:
            raise ReportError(
                "not a cache benchmark document (needs 'summary' and 'cache')"
            )
        report = cls(
            meta={
                "label": label,
                "source": "cache-bench",
                "config": doc.get("config", {}),
            }
        )
        report.sections["cache"] = dict(doc["cache"])
        for key, value in doc["summary"].items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                report.metrics[f"cache.{key}"] = float(value)
        return report

    @classmethod
    def from_serve_bench(cls, doc: dict, *, label: str = "serve-bench") -> "RunReport":
        """Build from a solve-farm benchmark document (``BENCH_serve.json``,
        see :mod:`benchmarks.serve_bench`): per-rung throughput, latency
        percentiles, cache hit rates, shed fractions and invariance flags
        become ``serve.*`` metrics gated by ``check_bench_regression.py
        --serve``."""
        if "summary" not in doc or "serve" not in doc:
            raise ReportError(
                "not a serve benchmark document (needs 'summary' and 'serve')"
            )
        report = cls(
            meta={
                "label": label,
                "source": "serve-bench",
                "config": doc.get("config", {}),
            }
        )
        report.sections["serve"] = dict(doc["serve"])
        for key, value in doc["summary"].items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                report.metrics[f"serve.{key}"] = float(value)
        return report

    @classmethod
    def from_serve_report(cls, doc: dict, *, label: str = "serve") -> "RunReport":
        """Build from a versioned ``repro-serve-report`` document (see
        :class:`repro.serve.report.ServeReport`; the format string is
        duplicated here because the observe layer must not import
        :mod:`repro.serve`).  Admission, per-tenant and cache accounting
        become comparable ``serve.*`` metrics."""
        if doc.get("format") != _SERVE_REPORT_FORMAT:
            raise ReportError(
                f"not a serve report (format={doc.get('format')!r}, "
                f"expected {_SERVE_REPORT_FORMAT!r})"
            )
        version = doc.get("version")
        if version not in (1,):
            raise ReportError(
                f"unsupported serve-report schema version {version!r} "
                "(this build reads version 1)"
            )
        farm = doc.get("farm", {})
        if not isinstance(farm, dict):
            raise ReportError("serve report field 'farm' must be an object")
        meta = doc.get("meta", {}) if isinstance(doc.get("meta"), dict) else {}
        report = cls(
            meta={"label": meta.get("label", label), "source": "serve-report", **meta}
        )
        admission = farm.get("admission", {})
        report.sections["serve"] = {
            "config": farm.get("config", {}),
            "admission": admission,
            "caches": farm.get("caches", {}),
            "counters": farm.get("counters", {}),
        }
        for key in ("admitted", "shed", "shed_fraction"):
            if isinstance(admission.get(key), (int, float)):
                report.metrics[f"serve.{key}"] = float(admission[key])
        for name, tstats in admission.get("tenants", {}).items():
            for key in ("admitted", "shed", "completed", "failed", "shed_fraction"):
                if isinstance(tstats.get(key), (int, float)):
                    report.metrics[f"serve.tenant.{name}.{key}"] = float(tstats[key])
        for tier, cstats in farm.get("caches", {}).items():
            for key in ("hits", "misses", "evictions", "hit_rate"):
                if isinstance(cstats.get(key), (int, float)):
                    report.metrics[f"serve.cache.{tier}.{key}"] = float(cstats[key])
        for key, value in farm.get("counters", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                report.metrics[f"serve.{key}"] = float(value)
        return report

    @classmethod
    def from_dict(cls, doc: dict) -> "RunReport":
        """Validate and load the saved document form."""
        if not isinstance(doc, dict):
            raise ReportError("run report must be a JSON object")
        fmt = doc.get("format")
        if fmt != REPORT_FORMAT:
            raise ReportError(
                f"not a run report (format={fmt!r}, expected {REPORT_FORMAT!r})"
            )
        version = doc.get("version")
        if version not in SUPPORTED_REPORT_VERSIONS:
            raise ReportError(
                f"unsupported run-report schema version {version!r} "
                f"(this build reads versions {SUPPORTED_REPORT_VERSIONS})"
            )
        for key, want in (("meta", dict), ("sections", dict), ("metrics", dict)):
            if not isinstance(doc.get(key, want()), want):
                raise ReportError(f"run report field {key!r} must be an object")
        return cls(
            meta=dict(doc.get("meta", {})),
            sections=dict(doc.get("sections", {})),
            metrics={k: v for k, v in doc.get("metrics", {}).items()},
        )

    @classmethod
    def load(cls, path) -> "RunReport":
        """Load a report — or anything convertible to one — from ``path``.

        Dispatches on the file's declared format: native run reports,
        exported ``repro-trace`` documents, and benchmark suite JSON all
        work.  Raises :class:`ReportError` with a clear message otherwise.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise ReportError(f"cannot read {path}: {exc}") from exc
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReportError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ReportError(f"{path}: expected a JSON object at top level")
        fmt = doc.get("format")
        if fmt == REPORT_FORMAT:
            try:
                return cls.from_dict(doc)
            except ReportError as exc:
                raise ReportError(f"{path}: {exc}") from None
        if fmt == _SERVE_REPORT_FORMAT:
            try:
                return cls.from_serve_report(doc, label=path.stem)
            except ReportError as exc:
                raise ReportError(f"{path}: {exc}") from None
        if fmt == "repro-trace":
            version = doc.get("version")
            if version is not None and version > 1:
                raise ReportError(
                    f"{path}: trace schema version {version} is newer than this build"
                )
            return cls.from_trace_doc(doc, label=path.stem)
        if "summary" in doc and "solver" in doc:
            return cls.from_solver_bench(doc, label=path.stem)
        if "summary" in doc and "scaling" in doc:
            return cls.from_scaling_bench(doc, label=path.stem)
        if "summary" in doc and "conformance" in doc:
            return cls.from_conformance_bench(doc, label=path.stem)
        if "summary" in doc and "cache" in doc:
            return cls.from_cache_bench(doc, label=path.stem)
        if "summary" in doc and "serve" in doc:
            return cls.from_serve_bench(doc, label=path.stem)
        if "summary" in doc and ("suite" in doc or "spmv" in doc):
            return cls.from_bench(doc, label=path.stem)
        if fmt == "repro-chaos-report":
            raise ReportError(
                f"{path} is a chaos survival report — inspect it with "
                "'repro chaos' / repro.resilience.ChaosReport.load, not "
                "'repro report'"
            )
        raise ReportError(
            f"{path}: unrecognised document (format={fmt!r}); expected a "
            f"{REPORT_FORMAT!r} report, a 'repro-trace' export, or a "
            "benchmark suite JSON"
        )

    # mutation ----------------------------------------------------------
    def add_section(self, name: str, payload) -> None:
        """Attach an observe object (anything with ``to_dict``/``summary``)
        or a plain dictionary as a named section."""
        if hasattr(payload, "to_dict"):
            payload = payload.to_dict()
        elif hasattr(payload, "summary"):
            payload = payload.summary()
        if not isinstance(payload, dict):
            raise TypeError(f"section {name!r} must be dict-like, got {type(payload)}")
        self.sections[name] = payload

    def add_metric(self, name: str, value) -> None:
        """Add one flat comparable metric."""
        self.metrics[name] = float(value)

    def attach_timeline(self, timeline) -> None:
        """Attach a :class:`~repro.observe.timeline.Timeline` (v2 section).

        Stores the aggregate summary under ``sections["timeline"]`` and the
        headline numbers as comparable ``timeline.*`` metrics.
        """
        summary = timeline.summary()
        self.sections["timeline"] = summary
        self.metrics["timeline.makespan_seconds"] = float(summary["makespan_seconds"])
        self.metrics["timeline.total_busy_seconds"] = float(
            summary["total_busy_seconds"]
        )
        self.metrics["timeline.max_wait_seconds"] = float(summary["max_wait_seconds"])
        self.metrics["timeline.critical_path_seconds"] = float(
            summary["critical_path"]["length_seconds"]
        )

    def attach_attribution(self, verdict) -> None:
        """Attach an :class:`~repro.observe.explain.AttributionVerdict`
        (v2 section) plus per-method iteration metrics."""
        doc = verdict.to_dict()
        self.sections["attribution"] = {
            "headline": doc["headline"],
            "baseline": doc["baseline"],
            "facts": doc["facts"],
            "suspects": doc["suspects"],
        }
        for f in verdict.facts:
            key = f.method.lower().replace(" ", "-")
            self.metrics[f"attribution.{key}.iterations"] = float(f.iterations)
        self.metrics["attribution.suspects"] = float(len(verdict.suspects))

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "meta": dict(self.meta),
            "sections": dict(self.sections),
            "metrics": dict(self.metrics),
        }

    def save(self, path, *, indent: int | None = 2) -> Path:
        """Write the versioned JSON document; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n")
        return path

    # comparison --------------------------------------------------------
    def compare(
        self,
        other: "RunReport",
        tolerances: dict[str, float] | None = None,
        *,
        default_rel: float = 0.0,
        default_abs: float = 0.0,
        metrics: list[str] | None = None,
    ) -> ReportComparison:
        """Diff ``other`` against this report's flat metrics.

        ``self`` is the baseline: every baseline metric must be present in
        ``other`` and within tolerance (metrics only ``other`` has are
        ignored — new instrumentation is not a regression).  ``tolerances``
        maps metric names to a relative tolerance (float) or to
        ``{"rel": x, "abs": y}``; a name matches the exact flat key first,
        then the key with its ``{tags}`` suffix stripped.  ``metrics``
        restricts the comparison to the listed baseline keys.
        """
        tolerances = tolerances or {}

        def tol_for(key: str) -> tuple[float, float]:
            bare = key.split("{", 1)[0]
            spec = tolerances.get(key, tolerances.get(bare))
            if spec is None:
                return default_rel, default_abs
            if isinstance(spec, dict):
                return float(spec.get("rel", 0.0)), float(spec.get("abs", 0.0))
            return float(spec), 0.0

        names = metrics if metrics is not None else sorted(self.metrics)
        deltas = []
        for name in names:
            if name not in self.metrics:
                raise KeyError(f"baseline report has no metric {name!r}")
            rel, abs_ = tol_for(name)
            deltas.append(
                MetricDelta(
                    name=name,
                    base=float(self.metrics[name]),
                    other=(
                        float(other.metrics[name]) if name in other.metrics else None
                    ),
                    rel_tol=rel,
                    abs_tol=abs_,
                )
            )
        return ReportComparison(
            base_label=self.label, other_label=other.label, deltas=deltas
        )

    # rendering ---------------------------------------------------------
    def _section_lines(self, render_kv) -> list[str]:
        lines: list[str] = []
        for name in sorted(self.sections):
            body = self.sections[name]
            scalars = {
                k: v
                for k, v in body.items()
                if isinstance(v, (str, int, float, bool)) or v is None
            }
            nested = {k: v for k, v in body.items() if k not in scalars}
            lines.append(render_kv(name, scalars, nested))
        return lines

    def to_text(self) -> str:
        """Aligned plain-text rendering (the ``repro report`` default)."""
        blocks = [f"run report: {self.label}"]
        meta = {k: v for k, v in self.meta.items() if k != "label"}
        if meta:
            blocks.append(format_kv({k: meta[k] for k in sorted(meta)}, title="[meta]"))

        def render_kv(name, scalars, nested):
            parts = []
            if scalars:
                parts.append(format_kv(scalars, title=f"[{name}]"))
            else:
                parts.append(f"[{name}]")
            for key in sorted(nested):
                parts.append(f"{key} : {json.dumps(nested[key], sort_keys=True)}")
            return "\n".join(parts)

        blocks.extend(self._section_lines(render_kv))
        if self.metrics:
            rows = [
                [name, f"{value:g}"] for name, value in sorted(self.metrics.items())
            ]
            blocks.append(format_table(["metric", "value"], rows, title="[metrics]"))
        return "\n\n".join(blocks) + "\n"

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        blocks = [f"# Run report — {self.label}"]
        meta = {k: v for k, v in self.meta.items() if k != "label"}
        if meta:
            rows = "\n".join(f"| {k} | {meta[k]} |" for k in sorted(meta))
            blocks.append(f"| key | value |\n| --- | --- |\n{rows}")

        def render_kv(name, scalars, nested):
            parts = [f"## {name}"]
            if scalars:
                rows = "\n".join(f"| {k} | {scalars[k]} |" for k in sorted(scalars))
                parts.append(f"| key | value |\n| --- | --- |\n{rows}")
            for key in sorted(nested):
                parts.append(
                    f"<details><summary>{key}</summary>\n\n```json\n"
                    + json.dumps(nested[key], indent=2, sort_keys=True)
                    + "\n```\n\n</details>"
                )
            return "\n\n".join(parts)

        blocks.extend(self._section_lines(render_kv))
        if self.metrics:
            rows = "\n".join(
                f"| `{name}` | {value:g} |" for name, value in sorted(self.metrics.items())
            )
            blocks.append(f"## metrics\n\n| metric | value |\n| --- | --- |\n{rows}")
        return "\n\n".join(blocks) + "\n"

    def __repr__(self) -> str:
        return (
            f"RunReport(label={self.label!r}, sections={sorted(self.sections)}, "
            f"metrics={len(self.metrics)})"
        )
