"""Observability layer: interpretation on top of :mod:`repro.instrument`.

PR 1 gave the repo raw sinks (spans, counters, trace exports); this package
turns them into artifacts that answer the paper's questions directly:

* :mod:`repro.observe.flight` — the solver flight recorder:
  :class:`FlightRecord` parses per-iteration ``flight.*`` events (residual
  norms, alpha/beta, true-residual drift checks, divergence) out of a tracer
  and runs stagnation/divergence detectors over them;
* :mod:`repro.observe.audit` — the communication-invariance auditor:
  :class:`CommAuditor` / :func:`audit_preconditioners` prove or refute, with
  the offending edges, that two preconditioners exchange identical halo
  traffic (the paper's §4 claim as an executable check);
* :mod:`repro.observe.balance` — the load-balance monitor:
  :class:`BalanceReport` tracks per-rank nonzero imbalance across dynamic
  filtering's bisection (Alg. 4's ±5 % band);
* :mod:`repro.observe.report` — :class:`RunReport`, a versioned JSON
  aggregate of all of the above with text/markdown renderers, a ``repro
  report`` CLI subcommand, and a :meth:`RunReport.compare` regression gate;
* :mod:`repro.observe.timeline` — cross-rank timeline reconstruction:
  :class:`Timeline` merges per-rank span streams from SPMD runs into
  compute/pack/wait/reduction segments with critical-path analysis;
  :func:`halo_critical_path` derives the static, byte-comparable halo
  critical path straight from a schedule;
* :mod:`repro.observe.explain` — :func:`attribute` judges per-method
  :class:`MethodFacts` into a versioned :class:`AttributionVerdict` with
  named suspects when achieved diverges from predicted;
* :mod:`repro.observe.prom` — Prometheus/OpenMetrics text exposition for
  any metrics registry and timeline aggregates
  (:func:`render_openmetrics`);
* :mod:`repro.observe.stream` — bounded-memory streaming telemetry:
  per-rank log-bucketed :class:`StreamingHistogram` s over wait / compute /
  message-size distributions, deterministic rank sampling
  (:func:`sampled_ranks`), and in-band aggregation over the simulator's own
  reduction tree (:func:`aggregate_telemetry`) on a tag the auditors
  exclude by construction;
* :mod:`repro.observe.conformance` — α–β model-conformance verdicts:
  :class:`ConformanceReport` compares :mod:`repro.perfmodel` predictions
  against streamed measurements per phase and rank count, detects
  straggler ranks via robust z-scores, and feeds named suspects into
  :func:`attribute`;
* :mod:`repro.observe.memtraffic` — per-cache-line memory-traffic
  attribution: :class:`FreeRideLedger` classifies every extension-entry
  ``x`` access of the replayed ``Gᵀ(Gx)`` stream as free ride vs new fill
  with reuse-distance histograms, and :class:`CacheConformance` gates the
  paper's cache claims (free-ride majority, larger lines ⇒ larger gains,
  misses-per-nnz not worse than FSAI) against the perfmodel memory term.

Import layering: this package sits *above* :mod:`repro.instrument` and
*below* nothing — it must never import :mod:`repro.core` (solvers emit plain
tracer events; observe only reads them back), so the core package stays
importable without the observability layer and no cycle can form.
"""

from repro.observe.memtraffic import (
    CACHE_CONFORMANCE_FORMAT,
    CACHE_CONFORMANCE_VERSION,
    CATEGORIES,
    MEMTRAFFIC_FORMAT,
    MEMTRAFFIC_VERSION,
    CacheConformance,
    FreeRideLedger,
    MemTrafficError,
    MethodCacheProfile,
    RankLedger,
    cache_conformance_samples,
    ledger_samples,
)
from repro.observe.conformance import (
    CONFORMANCE_FORMAT,
    CONFORMANCE_VERSION,
    PHASES,
    ConformanceError,
    ConformanceReport,
    PhaseConformance,
    RankCountConformance,
    conformance_samples,
    predicted_phases,
)
from repro.observe.stream import (
    TELEMETRY_TAG,
    ClusterTelemetry,
    RankTelemetry,
    StreamingHistogram,
    TelemetryConfig,
    TelemetryError,
    aggregate_telemetry,
    classify_wait_tag,
    sampled_ranks,
)
from repro.observe.audit import (
    CommAuditor,
    InvarianceVerdict,
    PrecondAudit,
    audit_preconditioners,
    audit_schedules,
    compare_snapshots,
    schedule_snapshot,
)
from repro.observe.balance import BalanceReport, balance_report
from repro.observe.explain import (
    EXPLAIN_FORMAT,
    EXPLAIN_VERSION,
    AttributionVerdict,
    ExplainError,
    MethodFacts,
    Suspect,
    attribute,
)
from repro.observe.flight import (
    DIVERGENCE_FACTOR,
    TRUE_RESIDUAL_INTERVAL,
    DriftCheck,
    FlightRecord,
)
from repro.observe.prom import (
    escape_label_value,
    parse_exposition,
    render_openmetrics,
    sanitize_metric_name,
    timeline_samples,
    write_openmetrics,
)
from repro.observe.report import (
    REPORT_FORMAT,
    REPORT_VERSION,
    MetricDelta,
    ReportComparison,
    ReportError,
    RunReport,
    flatten_metrics,
)
from repro.observe.timeline import (
    TIMELINE_FORMAT,
    TIMELINE_VERSION,
    CommEdge,
    CriticalPath,
    HaloCriticalPath,
    Segment,
    Timeline,
    TimelineError,
    bsp_wait_times,
    classify_segment,
    halo_critical_path,
)

__all__ = [
    "TRUE_RESIDUAL_INTERVAL",
    "DIVERGENCE_FACTOR",
    "DriftCheck",
    "FlightRecord",
    "InvarianceVerdict",
    "PrecondAudit",
    "CommAuditor",
    "compare_snapshots",
    "schedule_snapshot",
    "audit_schedules",
    "audit_preconditioners",
    "BalanceReport",
    "balance_report",
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "ReportError",
    "MetricDelta",
    "ReportComparison",
    "RunReport",
    "flatten_metrics",
    "TIMELINE_FORMAT",
    "TIMELINE_VERSION",
    "TimelineError",
    "Segment",
    "CommEdge",
    "CriticalPath",
    "Timeline",
    "HaloCriticalPath",
    "halo_critical_path",
    "bsp_wait_times",
    "classify_segment",
    "EXPLAIN_FORMAT",
    "EXPLAIN_VERSION",
    "ExplainError",
    "MethodFacts",
    "Suspect",
    "AttributionVerdict",
    "attribute",
    "sanitize_metric_name",
    "escape_label_value",
    "render_openmetrics",
    "write_openmetrics",
    "parse_exposition",
    "timeline_samples",
    "TELEMETRY_TAG",
    "TelemetryError",
    "StreamingHistogram",
    "sampled_ranks",
    "classify_wait_tag",
    "RankTelemetry",
    "ClusterTelemetry",
    "TelemetryConfig",
    "aggregate_telemetry",
    "CONFORMANCE_FORMAT",
    "CONFORMANCE_VERSION",
    "ConformanceError",
    "PHASES",
    "predicted_phases",
    "PhaseConformance",
    "RankCountConformance",
    "ConformanceReport",
    "conformance_samples",
    "MEMTRAFFIC_FORMAT",
    "MEMTRAFFIC_VERSION",
    "CACHE_CONFORMANCE_FORMAT",
    "CACHE_CONFORMANCE_VERSION",
    "CATEGORIES",
    "MemTrafficError",
    "RankLedger",
    "FreeRideLedger",
    "MethodCacheProfile",
    "CacheConformance",
    "ledger_samples",
    "cache_conformance_samples",
]
