"""Prometheus / OpenMetrics text exposition for metrics and timelines.

CI gates and external scrapers should consume the same numbers as
``repro report`` without parsing bespoke JSON.  This module renders any
:class:`~repro.instrument.MetricsRegistry` (or its :meth:`collect` output)
in the Prometheus text exposition format:

* metric names are sanitised (``halo.bytes_sent`` → ``repro_halo_bytes_sent``)
  and counters gain the conventional ``_total`` suffix;
* tags become labels with proper value escaping (backslash, double quote,
  newline);
* histograms expose ``_count`` / ``_sum`` (plus ``_min`` / ``_max`` gauges);
  bucketed histograms (instruments carrying a ``buckets`` mapping, e.g.
  :meth:`repro.observe.stream.StreamingHistogram.to_samples`) additionally
  expose the full cumulative ``_bucket{le="..."}`` family, round-trippable
  byte-identically through :func:`parse_exposition` and
  :meth:`~repro.observe.stream.StreamingHistogram.from_exposition`;
* :func:`timeline_samples` turns a :class:`~repro.observe.timeline.Timeline`
  into per-rank gauges (busy / wait / slack seconds, makespan, critical
  path) so timeline aggregates ride the same endpoint.

:func:`parse_exposition` is a deliberately small reader for round-trip
tests and CI assertions — it understands exactly what
:func:`render_openmetrics` writes, not the full grammar.
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = [
    "sanitize_metric_name",
    "escape_label_value",
    "render_openmetrics",
    "write_openmetrics",
    "parse_exposition",
    "timeline_samples",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, *, namespace: str = "repro") -> str:
    """A valid Prometheus metric name: namespaced, dots to underscores."""
    flat = _INVALID_CHARS.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if not _NAME_OK.match(flat):
        flat = f"_{flat}"
    return flat


def _sanitize_label(name: str) -> str:
    flat = _LABEL_INVALID.sub("_", str(name))
    if flat and flat[0].isdigit():
        flat = f"_{flat}"
    return flat or "_"


def escape_label_value(value) -> str:
    """Escape a label value per the exposition format: ``\\`` ``"`` ``\\n``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(tags: dict) -> str:
    if not tags:
        return ""
    inner = ",".join(
        f'{_sanitize_label(k)}="{escape_label_value(tags[k])}"'
        for k in sorted(tags, key=str)
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    return repr(float(value))


def render_openmetrics(source, *, namespace: str = "repro") -> str:
    """Render a metrics registry (or a ``collect()`` list) as exposition text.

    Counters are exported as ``<name>_total`` with ``# TYPE ... counter``;
    gauges as-is; histograms as ``_count`` / ``_sum`` summaries plus
    ``_min`` / ``_max`` gauges.  Ends with the OpenMetrics ``# EOF`` marker.
    """
    collected = source.collect() if hasattr(source, "collect") else list(source)
    families: dict[tuple[str, str], list[str]] = {}

    def add(kind: str, base: str, suffix: str, tags: dict, value) -> None:
        if value is None:
            return
        name = sanitize_metric_name(base, namespace=namespace) + suffix
        family = families.setdefault((name, kind), [])
        family.append(f"{name}{_labels(tags)} {_fmt(value)}")

    for inst in collected:
        kind = inst.get("kind")
        base = inst.get("name", "metric")
        tags = inst.get("tags", {})
        if kind == "counter":
            add("counter", base, "_total", tags, inst.get("value"))
        elif kind == "histogram":
            buckets = inst.get("buckets")
            if buckets:
                # cumulative bucket counts keyed by upper bound, ascending,
                # closed by the conventional +Inf bucket (== _count)
                for ub in sorted(buckets, key=float):
                    add("histogram", base, "_bucket",
                        {**tags, "le": _fmt(float(ub))}, buckets[ub])
                add("histogram", base, "_bucket", {**tags, "le": "+Inf"},
                    inst.get("count", 0))
                add("histogram", base, "_count", tags, inst.get("count", 0))
                add("histogram", base, "_sum", tags, inst.get("sum", 0.0))
            else:
                add("summary", base, "_count", tags, inst.get("count", 0))
                add("summary", base, "_sum", tags, inst.get("sum", 0.0))
            add("gauge", base, "_min", tags, inst.get("min"))
            add("gauge", base, "_max", tags, inst.get("max"))
        else:
            add("gauge", base, "", tags, inst.get("value"))

    lines: list[str] = []
    typed: set[str] = set()
    for (name, kind), samples in sorted(families.items()):
        type_name = name
        for suffix in ("_bucket", "_count", "_sum"):
            if kind in ("summary", "histogram") and type_name.endswith(suffix):
                type_name = type_name[: -len(suffix)]
        if type_name not in typed:
            lines.append(f"# TYPE {type_name} {kind}")
            typed.add(type_name)
        lines.extend(samples)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path, source, *, namespace: str = "repro") -> Path:
    """Write :func:`render_openmetrics` output; returns the path written."""
    path = Path(path)
    path.write_text(render_openmetrics(source, namespace=namespace))
    return path


def parse_exposition(text: str) -> dict[str, dict[tuple, float]]:
    """Parse exposition text back into ``{sample_name: {label_items: value}}``.

    The inverse of :func:`render_openmetrics` for round-trip testing: label
    sets become sorted ``(key, value)`` tuples with escapes undone.
    """
    out: dict[str, dict[tuple, float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$", line)
        if not match:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name, _, labelbody, value = match.groups()
        labels = []
        if labelbody:
            for part in re.findall(r'([a-zA-Z0-9_]+)="((?:[^"\\]|\\.)*)"', labelbody):
                key, escaped = part
                unescaped = (
                    escaped.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
                labels.append((key, unescaped))
        out.setdefault(name, {})[tuple(sorted(labels))] = float(value)
    return out


def timeline_samples(timeline) -> list[dict]:
    """Timeline aggregates as ``collect()``-style instruments.

    Feed the result (optionally concatenated with a registry's
    ``collect()``) to :func:`render_openmetrics` so scrapers see per-rank
    busy / wait / slack gauges next to the solver counters.
    """
    samples: list[dict] = [
        {"kind": "gauge", "name": "timeline.makespan_seconds", "tags": {},
         "value": timeline.makespan},
        {"kind": "gauge", "name": "timeline.critical_path_seconds", "tags": {},
         "value": timeline.critical_path().length},
        {"kind": "gauge", "name": "timeline.segments", "tags": {},
         "value": len(timeline.segments)},
    ]
    busy = timeline.busy_seconds()
    wait = timeline.wait_histogram()
    slack = timeline.slack_seconds()
    for rank in timeline.ranks:
        tags = {"rank": rank}
        samples.append({"kind": "gauge", "name": "timeline.busy_seconds",
                        "tags": tags, "value": busy[rank]})
        samples.append({"kind": "gauge", "name": "timeline.wait_seconds",
                        "tags": tags, "value": wait[rank]})
        samples.append({"kind": "gauge", "name": "timeline.slack_seconds",
                        "tags": tags, "value": slack[rank]})
    for kind, seconds in sorted(timeline.kind_seconds().items()):
        samples.append({"kind": "counter", "name": "timeline.phase_seconds",
                        "tags": {"phase": kind}, "value": seconds})
    return samples
