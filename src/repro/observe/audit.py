"""Communication-invariance auditor (the paper's §4 claim, executable).

FSAIE-Comm's central guarantee is that extending the preconditioner pattern
leaves the SpMV communication schedule *byte-for-byte unchanged*.  This
module turns that claim into a verdict object instead of a bare boolean:

* :class:`CommAuditor` snapshots a :class:`~repro.mpisim.tracker.CommTracker`
  per named solver phase (``auditor.phase("fsai")`` yields a fresh tracker
  and records its snapshot on exit) and compares any two phases;
* :func:`compare_snapshots` diffs two tracker snapshots edge by edge;
* :func:`audit_schedules` proves two :class:`~repro.dist.halo.HaloSchedule`
  objects move identical per-edge bytes *without running a solve* (static
  accounting: 8 bytes per halo value per update);
* :func:`audit_preconditioners` applies the schedule audit to both ``G`` and
  ``Gᵀ`` of two preconditioners — the executable form of
  :func:`repro.core.precond.check_comm_invariance`, with the offending edges
  named when it fails.

Every comparison returns an :class:`InvarianceVerdict`: either *invariant*
(identical edge sets, message counts and byte counts) or a refutation
listing exactly which edges differ and by how much.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.mpisim.tracker import CommTracker

__all__ = [
    "InvarianceVerdict",
    "PrecondAudit",
    "CommAuditor",
    "compare_snapshots",
    "schedule_snapshot",
    "audit_schedules",
    "audit_preconditioners",
]


def _edge_key(edge: tuple[int, int]) -> str:
    return f"{edge[0]}->{edge[1]}"


@dataclass
class InvarianceVerdict:
    """Outcome of one communication-invariance comparison.

    ``invariant`` is True iff both sides exchanged exactly the same directed
    edges with identical message and byte counts per edge (and, for tracker
    snapshots, identical collective accounting).  When False, the offending
    edges are itemised.
    """

    base: str
    other: str
    invariant: bool
    #: Edges present in ``base`` but absent from ``other``.
    missing_edges: list[tuple[int, int]] = field(default_factory=list)
    #: Edges present in ``other`` but absent from ``base`` — the typical
    #: refutation: a widened halo creates *new* communication.
    extra_edges: list[tuple[int, int]] = field(default_factory=list)
    #: Shared edges whose byte counts differ: edge -> (base_bytes, other_bytes).
    byte_mismatches: dict[tuple[int, int], tuple[int, int]] = field(default_factory=dict)
    #: Shared edges whose message counts differ: edge -> (base, other).
    message_mismatches: dict[tuple[int, int], tuple[int, int]] = field(default_factory=dict)
    #: Collectives whose call/byte accounting differ: name -> (base, other).
    collective_mismatches: dict[str, tuple[tuple[int, int], tuple[int, int]]] = field(
        default_factory=dict
    )
    #: Total (edges, messages, bytes) on each side, for the report footer.
    base_totals: tuple[int, int, int] = (0, 0, 0)
    other_totals: tuple[int, int, int] = (0, 0, 0)

    @property
    def violations(self) -> int:
        """Number of individual discrepancies across all categories."""
        return (
            len(self.missing_edges)
            + len(self.extra_edges)
            + len(self.byte_mismatches)
            + len(self.message_mismatches)
            + len(self.collective_mismatches)
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "base": self.base,
            "other": self.other,
            "invariant": self.invariant,
            "missing_edges": [_edge_key(e) for e in self.missing_edges],
            "extra_edges": [_edge_key(e) for e in self.extra_edges],
            "byte_mismatches": {
                _edge_key(e): list(v) for e, v in self.byte_mismatches.items()
            },
            "message_mismatches": {
                _edge_key(e): list(v) for e, v in self.message_mismatches.items()
            },
            "collective_mismatches": {
                k: [list(a), list(b)] for k, (a, b) in self.collective_mismatches.items()
            },
            "base_totals": {
                "edges": self.base_totals[0],
                "messages": self.base_totals[1],
                "bytes": self.base_totals[2],
            },
            "other_totals": {
                "edges": self.other_totals[0],
                "messages": self.other_totals[1],
                "bytes": self.other_totals[2],
            },
        }

    def render(self) -> str:
        """Human-readable verdict (one line when invariant, itemised otherwise)."""
        head = (
            f"communication invariance [{self.base} vs {self.other}]: "
            f"{'HOLDS' if self.invariant else 'VIOLATED'}"
        )
        be, bm, bb = self.base_totals
        oe, om, ob = self.other_totals
        lines = [
            head,
            f"  {self.base}: {be} edges, {bm} messages, {bb} bytes",
            f"  {self.other}: {oe} edges, {om} messages, {ob} bytes",
        ]
        if self.invariant:
            return "\n".join(lines)
        for edge in self.extra_edges:
            lines.append(f"  extra edge {_edge_key(edge)} (absent from {self.base})")
        for edge in self.missing_edges:
            lines.append(f"  missing edge {_edge_key(edge)} (absent from {self.other})")
        for edge, (a, b) in self.byte_mismatches.items():
            lines.append(f"  bytes differ on {_edge_key(edge)}: {a} vs {b}")
        for edge, (a, b) in self.message_mismatches.items():
            lines.append(f"  messages differ on {_edge_key(edge)}: {a} vs {b}")
        for name, (a, b) in self.collective_mismatches.items():
            lines.append(
                f"  collective {name!r} differs: calls/bytes {a[0]}/{a[1]} "
                f"vs {b[0]}/{b[1]}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "invariant" if self.invariant else f"{self.violations} violation(s)"
        return f"InvarianceVerdict({self.base!r} vs {self.other!r}, {state})"


def _normalise(snapshot: dict) -> dict:
    """Accept either tuple-keyed (live) or string-keyed (JSON) snapshots."""

    def fix_edges(mapping: dict) -> dict[tuple[int, int], int]:
        out: dict[tuple[int, int], int] = {}
        for key, value in mapping.items():
            if isinstance(key, str):
                src, _, dst = key.partition("->")
                key = (int(src), int(dst))
            out[(int(key[0]), int(key[1]))] = int(value)
        return out

    return {
        "p2p_messages": fix_edges(snapshot.get("p2p_messages", {})),
        "p2p_bytes": fix_edges(snapshot.get("p2p_bytes", {})),
        "collective_calls": dict(snapshot.get("collective_calls", {})),
        "collective_bytes": dict(snapshot.get("collective_bytes", {})),
    }


def _totals(snap: dict) -> tuple[int, int, int]:
    msgs = snap["p2p_messages"]
    return (
        sum(1 for v in msgs.values() if v > 0),
        sum(msgs.values()),
        sum(snap["p2p_bytes"].values()),
    )


def compare_snapshots(
    base: dict,
    other: dict,
    *,
    base_label: str = "base",
    other_label: str = "other",
    check_collectives: bool = True,
) -> InvarianceVerdict:
    """Diff two :meth:`CommTracker.snapshot` dictionaries edge by edge.

    ``check_collectives=False`` restricts the verdict to point-to-point
    traffic — the halo-exchange invariance the paper states (iteration-count
    differences legitimately change the number of allreduces).
    """
    a, b = _normalise(base), _normalise(other)
    edges_a = {e for e, n in a["p2p_messages"].items() if n > 0}
    edges_b = {e for e, n in b["p2p_messages"].items() if n > 0}
    verdict = InvarianceVerdict(
        base=base_label,
        other=other_label,
        invariant=True,
        missing_edges=sorted(edges_a - edges_b),
        extra_edges=sorted(edges_b - edges_a),
        base_totals=_totals(a),
        other_totals=_totals(b),
    )
    for edge in sorted(edges_a & edges_b):
        na, nb = a["p2p_messages"][edge], b["p2p_messages"][edge]
        if na != nb:
            verdict.message_mismatches[edge] = (na, nb)
        ba, bb = a["p2p_bytes"].get(edge, 0), b["p2p_bytes"].get(edge, 0)
        if ba != bb:
            verdict.byte_mismatches[edge] = (ba, bb)
    if check_collectives:
        for name in sorted(set(a["collective_calls"]) | set(b["collective_calls"])):
            ca = (a["collective_calls"].get(name, 0), a["collective_bytes"].get(name, 0))
            cb = (b["collective_calls"].get(name, 0), b["collective_bytes"].get(name, 0))
            if ca != cb:
                verdict.collective_mismatches[name] = (ca, cb)
    verdict.invariant = verdict.violations == 0
    return verdict


# ----------------------------------------------------------------------
def schedule_snapshot(schedule) -> dict:
    """Static tracker-style snapshot of one :class:`HaloSchedule` update.

    Exactly what a :class:`CommTracker` would record for a single
    ``schedule.update`` call: one message of ``8 · len(ids)`` bytes per
    directed (sender, receiver) pair.
    """
    messages: dict[tuple[int, int], int] = {}
    nbytes: dict[tuple[int, int], int] = {}
    for p, by_owner in enumerate(schedule.recv_from):
        for q, ids in by_owner.items():
            if ids.size == 0:
                continue
            edge = (int(q), int(p))
            messages[edge] = messages.get(edge, 0) + 1
            nbytes[edge] = nbytes.get(edge, 0) + 8 * int(ids.size)
    return {
        "p2p_messages": messages,
        "p2p_bytes": nbytes,
        "collective_calls": {},
        "collective_bytes": {},
    }


def audit_schedules(
    base, other, *, base_label: str = "base", other_label: str = "other"
) -> InvarianceVerdict:
    """Compare two halo schedules' per-edge accounting without running anything."""
    return compare_snapshots(
        schedule_snapshot(base),
        schedule_snapshot(other),
        base_label=base_label,
        other_label=other_label,
    )


@dataclass
class PrecondAudit:
    """Invariance audit of a preconditioner pair: ``G`` and ``Gᵀ`` schedules."""

    g: InvarianceVerdict
    gt: InvarianceVerdict

    @property
    def invariant(self) -> bool:
        """True iff both factor schedules are byte-for-byte identical."""
        return self.g.invariant and self.gt.invariant

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {"invariant": self.invariant, "g": self.g.to_dict(), "gt": self.gt.to_dict()}

    def render(self) -> str:
        """Human-readable text rendering."""
        return "\n".join([self.g.render(), self.gt.render()])


def audit_preconditioners(base, extended) -> PrecondAudit:
    """Audit ``extended`` against ``base``: the executable, edge-naming form
    of :func:`repro.core.precond.check_comm_invariance`.

    Accepts any pair of objects with ``.g.schedule`` / ``.gt.schedule``
    (e.g. :class:`repro.core.precond.Preconditioner`).
    """
    base_name = getattr(base, "name", "base")
    ext_name = getattr(extended, "name", "extended")
    return PrecondAudit(
        g=audit_schedules(
            base.g.schedule, extended.g.schedule,
            base_label=f"{base_name}.G", other_label=f"{ext_name}.G",
        ),
        gt=audit_schedules(
            base.gt.schedule, extended.gt.schedule,
            base_label=f"{base_name}.Gt", other_label=f"{ext_name}.Gt",
        ),
    )


# ----------------------------------------------------------------------
class CommAuditor:
    """Collects named communication snapshots and compares them.

    Typical use — prove two solves exchanged identical halo traffic::

        auditor = CommAuditor()
        with auditor.phase("fsai") as tracker:
            pcg(dA, b, precond=fsai, tracker=tracker)
        with auditor.phase("comm") as tracker:
            pcg(dA, b, precond=comm, tracker=tracker)
        verdict = auditor.verdict("fsai", "comm", check_collectives=False)
        assert verdict.invariant, verdict.render()

    Iteration counts may differ between preconditioners, so per-*update*
    comparison uses :meth:`per_update_verdict`, which divides each edge's
    accounting by the phase's halo-update count before comparing.
    """

    def __init__(self):
        self._snapshots: dict[str, dict] = {}
        self._updates: dict[str, int] = {}

    @property
    def labels(self) -> list[str]:
        """Recorded phase labels, in insertion order."""
        return list(self._snapshots)

    def record(self, label: str, tracker: CommTracker, *, updates: int | None = None) -> dict:
        """Snapshot ``tracker`` under ``label``; returns the stored snapshot."""
        snap = tracker.snapshot()
        self._snapshots[label] = snap
        if updates is not None:
            self._updates[label] = int(updates)
        return snap

    @contextmanager
    def phase(self, label: str):
        """Context manager: yields a fresh tracker, snapshots it on exit."""
        tracker = CommTracker()
        try:
            yield tracker
        finally:
            self.record(label, tracker)

    def get(self, label: str) -> dict:
        """The stored snapshot for ``label`` (KeyError when unknown)."""
        return self._snapshots[label]

    def verdict(
        self, base: str, other: str, *, check_collectives: bool = True
    ) -> InvarianceVerdict:
        """Compare two recorded phases."""
        return compare_snapshots(
            self.get(base),
            self.get(other),
            base_label=base,
            other_label=other,
            check_collectives=check_collectives,
        )

    def per_update_verdict(self, base: str, other: str) -> InvarianceVerdict:
        """Compare per-halo-update p2p accounting of two phases.

        Each phase must have been recorded with ``updates=`` (the number of
        halo updates it performed, e.g. the ``halo.updates`` metric); edge
        messages and bytes are divided by it, so solves with different
        iteration counts compare on the schedule they exercised per update.
        """
        missing = [lbl for lbl in (base, other) if lbl not in self._updates]
        if missing:
            raise ValueError(
                f"phase(s) {missing} recorded without updates=; pass the halo "
                "update count to record() to enable per-update comparison"
            )

        def scaled(label: str) -> dict:
            snap = _normalise(self.get(label))
            n = max(self._updates[label], 1)
            return {
                "p2p_messages": {e: v // n for e, v in snap["p2p_messages"].items()},
                "p2p_bytes": {e: v // n for e, v in snap["p2p_bytes"].items()},
                "collective_calls": {},
                "collective_bytes": {},
            }

        return compare_snapshots(
            scaled(base), scaled(other), base_label=f"{base}/update",
            other_label=f"{other}/update", check_collectives=False,
        )

    def __repr__(self) -> str:
        return f"CommAuditor(phases={self.labels})"
