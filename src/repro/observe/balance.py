"""Load-balance monitor for dynamic filtering (Alg. 4, ±5 % band).

Dynamic filtering's promise is numerical: after the per-rank bisection, each
rank's stored-entry count sits within the tolerated band around the global
average.  :func:`repro.core.filtering.compute_dynamic_filters` records, when
metrics are enabled, the full bisection trajectory per rank:

* ``filter.bisection.load`` (histogram, ``rank=r``) — relative load ``imb``
  observed at each bisection step, the initial evaluation included;
* ``filter.bisection.steps`` (counter, ``rank=r``) — bisection iterations;
* ``filter.value`` / ``filter.load`` (gauges, ``rank=r``) — the final
  per-rank filter and the relative load it achieves.

:class:`BalanceReport` reads those instruments (or raw per-rank counts) back
into a verdict: per-rank loads, the imbalance index, whether every rank ended
inside the band, and each rank's trajectory for plotting or rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BalanceReport", "balance_report"]

#: Metric names written by ``compute_dynamic_filters`` (emission contract).
LOAD_HISTOGRAM = "filter.bisection.load"
STEPS_COUNTER = "filter.bisection.steps"
FILTER_GAUGE = "filter.value"
LOAD_GAUGE = "filter.load"

DEFAULT_BAND = (0.95, 1.05)


@dataclass
class BalanceReport:
    """Per-rank load balance of one preconditioner build.

    ``loads`` are relative (rank entries over the global average, Alg. 4's
    ``imb``); ``trajectories`` maps rank -> the sequence of loads the
    bisection visited (empty when built from counts alone).
    """

    loads: list[float] = field(default_factory=list)
    band: tuple[float, float] = DEFAULT_BAND
    filters: list[float] | None = None
    trajectories: dict[int, list[float]] = field(default_factory=dict)
    steps: dict[int, int] = field(default_factory=dict)

    # construction ------------------------------------------------------
    @classmethod
    def from_counts(
        cls,
        nnz_per_rank,
        *,
        band: tuple[float, float] = DEFAULT_BAND,
        filters=None,
    ) -> "BalanceReport":
        """Build from per-rank stored-entry counts."""
        counts = [float(c) for c in nnz_per_rank]
        mean = sum(counts) / len(counts) if counts else 0.0
        loads = [c / mean if mean else 1.0 for c in counts]
        return cls(
            loads=loads,
            band=band,
            filters=None if filters is None else [float(f) for f in filters],
        )

    @classmethod
    def from_precond(
        cls, precond, *, band: tuple[float, float] = DEFAULT_BAND
    ) -> "BalanceReport":
        """Build from any object with ``nnz_per_rank()`` (and optionally
        ``filters``), e.g. :class:`repro.core.precond.Preconditioner`."""
        return cls.from_counts(
            precond.nnz_per_rank(), band=band, filters=getattr(precond, "filters", None)
        )

    @classmethod
    def from_metrics(
        cls, metrics, *, band: tuple[float, float] = DEFAULT_BAND
    ) -> "BalanceReport":
        """Build from the ``filter.*`` instruments a traced
        ``compute_dynamic_filters`` call recorded."""
        report = cls(band=band)
        by_rank: dict[int, float] = {}
        for gauge in metrics.find(LOAD_GAUGE):
            if "rank" in gauge.tags and gauge.value is not None:
                by_rank[int(gauge.tags["rank"])] = float(gauge.value)
        report.loads = [by_rank[r] for r in sorted(by_rank)]
        filt_by_rank: dict[int, float] = {}
        for gauge in metrics.find(FILTER_GAUGE):
            if "rank" in gauge.tags and gauge.value is not None:
                filt_by_rank[int(gauge.tags["rank"])] = float(gauge.value)
        if filt_by_rank:
            report.filters = [filt_by_rank[r] for r in sorted(filt_by_rank)]
        for hist in metrics.find(LOAD_HISTOGRAM):
            if "rank" in hist.tags:
                report.trajectories[int(hist.tags["rank"])] = list(hist.values)
        for counter in metrics.find(STEPS_COUNTER):
            if "rank" in counter.tags:
                report.steps[int(counter.tags["rank"])] = int(counter.value)
        return report

    # queries -----------------------------------------------------------
    @property
    def ranks(self) -> int:
        """Number of ranks the report covers."""
        return len(self.loads)

    @property
    def imbalance(self) -> float:
        """Max relative load over min — 1.0 is perfectly balanced."""
        if not self.loads or min(self.loads) == 0:
            return 1.0
        return max(self.loads) / min(self.loads)

    @property
    def within_band(self) -> bool:
        """True iff every rank's final load is inside the tolerated band."""
        lo, hi = self.band
        return all(lo <= load <= hi for load in self.loads)

    def offenders(self) -> list[int]:
        """Ranks whose final load falls outside the band."""
        lo, hi = self.band
        return [r for r, load in enumerate(self.loads) if not lo <= load <= hi]

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "ranks": self.ranks,
            "band": list(self.band),
            "loads": list(self.loads),
            "filters": None if self.filters is None else list(self.filters),
            "imbalance": self.imbalance,
            "within_band": self.within_band,
            "offenders": self.offenders(),
            "trajectories": {str(r): v for r, v in sorted(self.trajectories.items())},
            "steps": {str(r): v for r, v in sorted(self.steps.items())},
        }

    def render(self) -> str:
        """Human-readable text rendering."""
        lo, hi = self.band
        lines = [
            f"load balance over {self.ranks} rank(s), band [{lo:g}, {hi:g}]: "
            f"{'OK' if self.within_band else 'IMBALANCED'}"
        ]
        for rank, load in enumerate(self.loads):
            marker = "" if lo <= load <= hi else "  <-- outside band"
            filt = (
                f", filter={self.filters[rank]:.4g}"
                if self.filters is not None and rank < len(self.filters)
                else ""
            )
            steps = self.steps.get(rank)
            trail = f", {steps} bisection step(s)" if steps else ""
            lines.append(f"  rank {rank}: load {load:.4f}{filt}{trail}{marker}")
        lines.append(f"  imbalance (max/min): {self.imbalance:.4f}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"BalanceReport(ranks={self.ranks}, imbalance={self.imbalance:.4f}, "
            f"within_band={self.within_band})"
        )


def balance_report(source, *, band: tuple[float, float] = DEFAULT_BAND) -> BalanceReport:
    """Build a :class:`BalanceReport` from whatever describes the load.

    Accepts a preconditioner-like object (``nnz_per_rank()``), a metrics
    registry (``find``), or a plain sequence of per-rank entry counts.
    """
    if hasattr(source, "nnz_per_rank"):
        return BalanceReport.from_precond(source, band=band)
    if hasattr(source, "find"):
        return BalanceReport.from_metrics(source, band=band)
    return BalanceReport.from_counts(source, band=band)
