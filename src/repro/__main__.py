"""Entry point: ``python -m repro`` dispatches to the CLI."""

from repro.cli import main

raise SystemExit(main())
