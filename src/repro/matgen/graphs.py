"""Graph-based SPD matrices: circuit, electromagnetics and model-reduction
surrogates.

Circuit simulation matrices (G3_circuit) are essentially weighted graph
Laplacians with grounding resistors; electromagnetics matrices (tmt_sym,
offshore, 2cubes_sphere) combine stencil structure with longer-range
couplings; model-reduction matrices (boneS01, gyro) have moderate bandwidth
and strong diagonal blocks.  Each generator below is SPD by construction.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["circuit_laplacian", "electromagnetics_like", "banded_spd"]


def circuit_laplacian(
    n: int, *, avg_degree: float = 4.0, ground_fraction: float = 0.05, seed: int = 0
) -> CSRMatrix:
    """Weighted Laplacian of a random near-planar circuit graph.

    Nodes are connected to a few nearby neighbours (wire locality) plus rare
    long-range links; a fraction of nodes is grounded (diagonal shift), which
    makes the Laplacian strictly SPD.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    # local edges: node i to i + small offset
    offsets = rng.integers(1, 8, size=m)
    src = rng.integers(0, n, size=m)
    dst = np.minimum(src + offsets, n - 1)
    # sprinkle long-range edges (~2% of edges)
    n_long = max(m // 50, 1)
    src = np.concatenate([src, rng.integers(0, n, size=n_long)])
    dst = np.concatenate([dst, rng.integers(0, n, size=n_long)])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    w = rng.uniform(0.5, 2.0, size=src.size)

    rows = np.concatenate([src, dst, src, dst])
    cols = np.concatenate([dst, src, src, dst])
    vals = np.concatenate([-w, -w, w, w])
    # grounding: strictly positive shift on a random subset, tiny elsewhere
    grounded = rng.random(n) < ground_fraction
    shift = np.where(grounded, rng.uniform(0.5, 1.5, size=n), 1e-6)
    rows = np.concatenate([rows, np.arange(n)])
    cols = np.concatenate([cols, np.arange(n)])
    vals = np.concatenate([vals, shift])
    return CSRMatrix.from_coo((n, n), rows, cols, vals)


def electromagnetics_like(nx: int, *, coupling: float = 0.3, seed: int = 0) -> CSRMatrix:
    """3-D stencil plus skew long-range couplings (edge-element flavour).

    A 7-point diffusion core with additional diagonal-direction couplings of
    weight ``coupling``; stays SPD because the diagonal strictly dominates.
    """
    if nx < 2:
        raise ValueError("need nx >= 2")
    from repro.matgen.stencils import poisson3d

    base = poisson3d(nx)
    n = base.nrows
    gid = np.arange(n, dtype=np.int64).reshape(nx, nx, nx)
    rows, cols, vals = [base.to_coo()[0]], [base.to_coo()[1]], [base.to_coo()[2]]
    extra_diag = np.zeros(n)
    for dx, dy, dz in ((1, 1, 0), (1, 0, 1), (0, 1, 1), (1, 1, 1)):
        a = gid[: nx - dx, : nx - dy, : nx - dz].ravel()
        b = gid[dx:, dy:, dz:].ravel()
        w = np.full(a.size, -coupling)
        rows += [a, b]
        cols += [b, a]
        vals += [w, w]
        np.add.at(extra_diag, a, coupling * 1.02)
        np.add.at(extra_diag, b, coupling * 1.02)
    rows.append(np.arange(n))
    cols.append(np.arange(n))
    vals.append(extra_diag)
    return CSRMatrix.from_coo(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def banded_spd(
    n: int,
    bandwidth: int,
    *,
    decay: float = 0.6,
    dominance: float = 1.005,
    random_sign: bool = False,
    seed: int = 0,
) -> CSRMatrix:
    """Dense-banded SPD matrix (model-reduction surrogate).

    Off-diagonal magnitudes decay geometrically with distance from the
    diagonal — the character of reduced-order models such as gyro/boneS01.
    By default off-diagonals are negative (graph-Laplacian-like), which makes
    the matrix genuinely ill conditioned like the paper's model-reduction
    cases; ``random_sign=True`` yields a concentrated, well-conditioned
    spectrum instead.  Weak per-row diagonal dominance keeps it SPD.
    """
    if n < 2 or bandwidth < 1:
        raise ValueError("need n >= 2 and bandwidth >= 1")
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    diag = np.zeros(n)
    for off in range(1, bandwidth + 1):
        w = -(decay**off) * rng.uniform(0.3, 1.0, size=n - off)
        if random_sign:
            w *= rng.choice([-1.0, 1.0], size=n - off)
        a = np.arange(n - off)
        b = a + off
        rows += [a, b]
        cols += [b, a]
        vals += [w, w]
        np.add.at(diag, a, np.abs(w))
        np.add.at(diag, b, np.abs(w))
    rows.append(np.arange(n))
    cols.append(np.arange(n))
    vals.append(diag * dominance + 1e-8)
    return CSRMatrix.from_coo(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )
