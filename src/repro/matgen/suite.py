"""The evaluation matrix catalog: synthetic analogs of Tables 1 and 2.

The paper evaluates 39 SuiteSparse SPD matrices (Table 1) plus 8 very large
ones (Table 2).  Offline, each catalog entry pairs the paper's reference
numbers (solver times, iterations, %NNZ — used by EXPERIMENTS.md for
paper-vs-measured comparison) with a *generator* that builds a synthetic
matrix of the same problem class at laptop scale:

* 2D/3D problems      → stencil Laplacians / wide-stencil dense-row matrices,
* structural problems → assembled FEM elasticity and shell surrogates,
* thermal / CFD       → anisotropic and stretched-grid diffusion,
* circuit             → random circuit-graph Laplacians,
* electromagnetics    → stencil + skew couplings,
* model reduction     → dense-banded SPD,
* acoustics           → 27-point stencils with strong diagonals.

Pass ``scale`` to :meth:`MatrixCase.build` to grow a case towards paper
scale; linear dimensions scale as ``scale^(1/d)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.matgen.fem import elasticity2d, elasticity3d, shell_like
from repro.matgen.graphs import banded_spd, circuit_laplacian, electromagnetics_like
from repro.matgen.stencils import (
    anisotropic2d,
    poisson2d,
    stretched_grid_2d,
    wide_stencil_3d,
)
from repro.sparse.csr import CSRMatrix

__all__ = [
    "PaperRecord",
    "MatrixCase",
    "table1_cases",
    "table2_cases",
    "get_case",
    "default_rank_count",
]


@dataclass(frozen=True)
class PaperRecord:
    """Reference numbers from the paper's Table 1 / Table 2 row."""

    fsai_time: float
    fsai_iters: int
    fsaie_time: float
    fsaie_iters: int
    fsaie_nnz_pct: float
    comm_time: float
    comm_iters: int
    comm_nnz_pct: float
    cores: int
    nodes: int
    cores_zen2: int | None = None
    nodes_zen2: int | None = None


@dataclass(frozen=True)
class MatrixCase:
    """One evaluation matrix: paper metadata plus a synthetic generator."""

    case_id: int
    name: str
    problem_type: str
    paper_rows: int
    paper_nnz: int
    generator: Callable[[float], CSRMatrix]
    paper: PaperRecord
    large: bool = False

    def build(self, scale: float = 1.0) -> CSRMatrix:
        """Generate the synthetic analog; ``scale`` grows the problem."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.generator(scale)

    def __repr__(self) -> str:
        return f"MatrixCase({self.case_id}, {self.name!r}, {self.problem_type!r})"


def _d(base: int, scale: float, dims: int, minimum: int = 2) -> int:
    """Scale a linear dimension so total size grows ≈ linearly with scale."""
    return max(minimum, int(round(base * scale ** (1.0 / dims))))


def _shifted(mat: CSRMatrix, shift: float) -> CSRMatrix:
    """Add ``shift · max|diag|`` to the diagonal (well-conditioned classes)."""
    rows = np.arange(mat.nrows, dtype=np.int64)
    r, c, v = mat.to_coo()
    peak = float(np.abs(mat.diagonal()).max())
    return CSRMatrix.from_coo(
        mat.shape,
        np.concatenate([r, rows]),
        np.concatenate([c, rows]),
        np.concatenate([v, np.full(mat.nrows, shift * peak)]),
    )


def default_rank_count(
    nnz: int, *, target_per_rank: int = 6000, lo: int = 2, hi: int = 12
) -> int:
    """Scaled-down version of the paper's workload rule (§5.2).

    The paper starts at 2 M nonzeros per MPI process; at catalog scale the
    same proportionality gives a few thousand per rank.
    """
    return int(np.clip(round(nnz / target_per_rank), lo, hi))


# ----------------------------------------------------------------------
# Table 1 (39 matrices, Skylake reference results, dynamic Filter 0.01)
# ----------------------------------------------------------------------
def table1_cases() -> list[MatrixCase]:
    """The 39-matrix evaluation set with the paper's Skylake reference data."""
    c = []

    def add(case_id, name, ptype, rows, nnz, gen, rec):
        c.append(MatrixCase(case_id, name, ptype, rows, nnz, gen, rec))

    add(1, "PFlow_742", "2D/3D", 742793, 37138461,
        lambda s: wide_stencil_3d(_d(9, s, 3), 1),
        PaperRecord(1.43, 2775, 0.767, 1458, 17.44, 0.706, 1340, 19.30, 1152, 24, 1152, 9))
    add(2, "nd24k", "2D/3D", 72000, 28715634,
        lambda s: wide_stencil_3d(_d(7, s, 3), 2),
        PaperRecord(0.652, 553, 0.551, 490, 7.14, 0.548, 435, 14.26, 432, 9, 512, 4))
    add(3, "Fault_639", "structural", 638802, 27245944,
        lambda s: elasticity3d(_d(4, s, 3), _d(4, s, 3), _d(4, s, 3)),
        PaperRecord(1.16, 1923, 0.571, 939, 24.50, 0.528, 856, 27.69, 864, 18, 896, 7))
    add(4, "msdoor", "structural", 415863, 19173163,
        lambda s: elasticity2d(_d(26, s, 2), _d(26, s, 2)),
        PaperRecord(1.74, 3599, 1.46, 2833, 42.50, 1.39, 2748, 43.63, 576, 12, 640, 5))
    add(5, "af_shell7", "structural (subsequent)", 504855, 17579155,
        lambda s: shell_like(_d(24, s, 2), _d(24, s, 2)),
        PaperRecord(0.536, 1800, 0.487, 1541, 47.86, 0.479, 1528, 50.20, 1104, 23, 1152, 9))
    add(6, "af_shell8", "structural (subsequent)", 504855, 17579155,
        lambda s: shell_like(_d(24, s, 2), _d(24, s, 2), thickness_ratio=2e-2),
        PaperRecord(0.529, 1800, 0.479, 1541, 47.86, 0.476, 1528, 50.20, 1104, 23, 1152, 9))
    add(7, "af_shell4", "structural (subsequent)", 504855, 17562051,
        lambda s: shell_like(_d(25, s, 2), _d(23, s, 2)),
        PaperRecord(0.518, 1800, 0.481, 1542, 47.89, 0.468, 1530, 50.26, 1104, 23, 1152, 9))
    add(8, "af_shell3", "structural (subsequent)", 504855, 17562051,
        lambda s: shell_like(_d(23, s, 2), _d(25, s, 2)),
        PaperRecord(0.524, 1800, 0.522, 1542, 47.89, 0.481, 1530, 50.26, 1104, 23, 1152, 9))
    add(9, "nd12k", "2D/3D", 36000, 14220946,
        lambda s: wide_stencil_3d(_d(6, s, 3), 2),
        PaperRecord(0.491, 516, 0.430, 452, 7.19, 0.387, 403, 14.59, 240, 5, 256, 2))
    add(10, "crankseg_2", "structural", 63838, 14148858,
        lambda s: elasticity3d(_d(4, s, 3), _d(4, s, 3), _d(3, s, 3)),
        PaperRecord(0.177, 215, 0.144, 171, 17.65, 0.135, 160, 22.04, 240, 5, 256, 2))
    add(11, "bmwcra_1", "structural", 148770, 10641602,
        lambda s: elasticity3d(_d(4, s, 3), _d(3, s, 3), _d(4, s, 3), poisson=0.35),
        PaperRecord(1.09, 2325, 0.891, 1850, 36.02, 0.885, 1800, 40.16, 336, 7, 384, 3))
    add(12, "crankseg_1", "structural", 52804, 10614210,
        lambda s: elasticity3d(_d(3, s, 3), _d(4, s, 3), _d(3, s, 3)),
        PaperRecord(0.119, 216, 0.0995, 177, 14.65, 0.0911, 161, 20.05, 336, 7, 384, 3))
    add(13, "hood", "structural", 220542, 9895422,
        lambda s: shell_like(_d(22, s, 2), _d(22, s, 2), thickness_ratio=5e-3),
        PaperRecord(0.111, 397, 0.0914, 312, 43.07, 0.0927, 315, 44.76, 624, 13, 640, 5))
    add(14, "thermal2", "thermal", 1228045, 8580313,
        lambda s: anisotropic2d(_d(52, s, 2), _d(52, s, 2), 1.0, 0.2),
        PaperRecord(1.07, 2799, 0.941, 2117, 165.76, 0.960, 2113, 166.53, 528, 11, 512, 4))
    add(15, "G3_circuit", "circuit", 1585478, 7660826,
        lambda s: circuit_laplacian(_d(3600, s, 1), avg_degree=4.0, seed=15),
        PaperRecord(0.622, 1715, 0.592, 1286, 218.45, 0.552, 1283, 219.14, 480, 10, 512, 4))
    add(16, "nd6k", "2D/3D", 18000, 6897316,
        lambda s: wide_stencil_3d(_d(5, s, 3), 2),
        PaperRecord(0.479, 476, 0.419, 413, 9.84, 0.374, 364, 17.58, 96, 2, 128, 1))
    add(17, "consph", "2D/3D", 83334, 6010480,
        lambda s: wide_stencil_3d(_d(6, s, 3), 2),
        PaperRecord(0.313, 634, 0.295, 575, 37.99, 0.294, 562, 46.19, 192, 4, 128, 1))
    add(18, "boneS01", "model reduction", 127224, 5516602,
        lambda s: banded_spd(_d(1100, s, 1), 10, seed=18),
        PaperRecord(0.362, 847, 0.351, 783, 47.78, 0.351, 779, 51.92, 192, 4, 128, 1))
    add(19, "tmt_sym", "electromagnetics", 726713, 5080961,
        lambda s: electromagnetics_like(_d(11, s, 3), coupling=0.3, seed=19),
        PaperRecord(0.776, 2319, 0.693, 1888, 193.84, 0.708, 1883, 195.69, 336, 7, 256, 2))
    add(20, "ecology2", "2D/3D", 999999, 4995991,
        lambda s: poisson2d(_d(55, s, 2)),
        PaperRecord(0.989, 3428, 0.844, 2510, 276.44, 0.853, 2502, 278.05, 336, 7, 256, 2))
    add(21, "shipsec5", "structural", 179860, 4598604,
        lambda s: shell_like(_d(26, s, 2), _d(20, s, 2)),
        PaperRecord(0.473, 1618, 0.426, 1427, 25.86, 0.429, 1424, 29.05, 288, 6, 256, 2))
    add(22, "offshore", "electromagnetics", 259789, 4242673,
        lambda s: electromagnetics_like(_d(10, s, 3), coupling=0.25, seed=22),
        PaperRecord(0.396, 794, 0.336, 641, 54.06, 0.334, 635, 56.89, 144, 3, 128, 1))
    add(23, "smt", "structural", 25710, 3749582,
        lambda s: elasticity3d(_d(3, s, 3), _d(3, s, 3), _d(4, s, 3)),
        PaperRecord(0.309, 882, 0.203, 551, 24.19, 0.182, 485, 31.15, 240, 5, 256, 2))
    add(24, "parabolic_fem", "CFD", 525825, 3674625,
        lambda s: stretched_grid_2d(_d(48, s, 2), _d(48, s, 2), stretch=30.0),
        PaperRecord(0.404, 1481, 0.349, 1077, 116.57, 0.350, 1076, 116.87, 240, 5, 256, 2))
    add(25, "Dubcova3", "2D/3D", 146689, 3636643,
        lambda s: elasticity2d(_d(33, s, 2), _d(33, s, 2), poisson=0.25),
        PaperRecord(0.0385, 152, 0.0335, 120, 97.31, 0.0328, 117, 99.67, 240, 5, 256, 2))
    add(26, "shipsec1", "structural", 140874, 3568176,
        lambda s: shell_like(_d(24, s, 2), _d(18, s, 2)),
        PaperRecord(0.592, 1987, 0.568, 1874, 27.56, 0.570, 1878, 30.99, 240, 5, 256, 2))
    add(27, "nd3k", "2D/3D", 9000, 3279690,
        lambda s: wide_stencil_3d(_d(5, s, 3), 2),
        PaperRecord(0.357, 406, 0.306, 342, 11.38, 0.284, 316, 17.55, 48, 1, 128, 1))
    add(28, "cfd2", "CFD", 123440, 3085406,
        lambda s: stretched_grid_2d(_d(45, s, 2), _d(45, s, 2), stretch=100.0),
        PaperRecord(0.659, 2590, 0.522, 1847, 106.42, 0.530, 1853, 115.10, 192, 4, 256, 2))
    add(29, "nasasrb", "structural", 54870, 2677324,
        lambda s: shell_like(_d(24, s, 2), _d(24, s, 2), thickness_ratio=1e-3),
        PaperRecord(0.715, 2765, 0.703, 2653, 15.96, 0.698, 2629, 17.60, 144, 3, 128, 1))
    add(30, "oilpan", "structural", 73752, 2148558,
        lambda s: shell_like(_d(22, s, 2), _d(17, s, 2)),
        PaperRecord(0.404, 1554, 0.339, 1301, 20.65, 0.337, 1285, 22.28, 144, 3, 128, 1))
    add(31, "cfd1", "CFD", 70656, 1825580,
        lambda s: stretched_grid_2d(_d(36, s, 2), _d(36, s, 2), stretch=60.0),
        PaperRecord(0.401, 933, 0.381, 753, 101.18, 0.377, 750, 104.75, 48, 1, 128, 1))
    add(32, "qa8fm", "acoustics", 66127, 1660579,
        lambda s: _shifted(wide_stencil_3d(_d(6, s, 3), 1), 3.0),
        PaperRecord(0.00535, 13, 0.00468, 11, 27.33, 0.00476, 11, 29.27, 48, 1, 128, 1))
    add(33, "2cubes_sphere", "electromagnetics", 101492, 1647264,
        lambda s: _shifted(electromagnetics_like(_d(9, s, 3), coupling=0.15, seed=33), 4.0),
        PaperRecord(0.00601, 12, 0.00558, 11, 12.84, 0.00559, 11, 13.37, 48, 1, 128, 1))
    add(34, "thermomech_dM", "thermal", 204316, 1423116,
        lambda s: _shifted(anisotropic2d(_d(42, s, 2), _d(42, s, 2), 1.0, 0.5), 6.0),
        PaperRecord(0.00292, 9, 0.00298, 9, 6.09, 0.00298, 9, 6.21, 96, 2, 128, 1))
    add(35, "msc10848", "structural", 10848, 1229776,
        lambda s: elasticity3d(_d(3, s, 3), _d(3, s, 3), _d(3, s, 3), poisson=0.32),
        PaperRecord(0.251, 711, 0.186, 489, 27.11, 0.184, 482, 28.72, 48, 1, 128, 1))
    add(36, "Dubcova2", "2D/3D", 65025, 1030225,
        lambda s: elasticity2d(_d(28, s, 2), _d(28, s, 2), poisson=0.25),
        PaperRecord(0.0426, 155, 0.0377, 113, 158.66, 0.0376, 112, 160.15, 48, 1, 128, 1))
    add(37, "gyro_k", "model reduction (duplicate)", 17361, 1021159,
        lambda s: banded_spd(_d(700, s, 1), 14, decay=0.85, seed=37),
        PaperRecord(1.23, 4363, 0.934, 3101, 38.46, 0.927, 3116, 39.28, 48, 1, 128, 1))
    add(38, "gyro", "model reduction", 17361, 1021159,
        lambda s: banded_spd(_d(700, s, 1), 14, decay=0.85, seed=38),
        PaperRecord(1.25, 4382, 0.930, 3106, 38.46, 0.926, 3071, 39.28, 48, 1, 128, 1))
    add(39, "olafu", "structural", 16146, 1015156,
        lambda s: elasticity2d(_d(28, s, 2), _d(22, s, 2), poisson=0.4),
        PaperRecord(0.476, 1768, 0.365, 1330, 20.57, 0.364, 1324, 21.45, 48, 1, 128, 1))
    return c


# ----------------------------------------------------------------------
# Table 2 (8 large matrices, Zen 2 reference results, Filter 0.01)
# ----------------------------------------------------------------------
def table2_cases() -> list[MatrixCase]:
    """The large-scale set (paper runs these on up to 32 768 cores)."""
    cases = []

    def add(case_id, name, ptype, rows, nnz, gen, rec):
        cases.append(MatrixCase(case_id, name, ptype, rows, nnz, gen, rec, large=True))

    add(1, "Queen_4147", "2D/3D", 4147110, 316548962,
        lambda s: wide_stencil_3d(_d(9, s, 3), 2),
        PaperRecord(1.09, 5735, 0.940, 4958, 9.38, 0.900, 4755, 13.54, 32768, 256))
    add(2, "Bump_2911", "2D/3D", 2911419, 127729899,
        lambda s: wide_stencil_3d(_d(11, s, 3), 1),
        PaperRecord(0.470, 2297, 0.450, 2206, 7.35, 0.450, 2206, 9.14, 7936, 62))
    add(3, "Flan_1565", "structural", 1564794, 114165372,
        lambda s: shell_like(_d(28, s, 2), _d(28, s, 2)),
        PaperRecord(0.870, 5299, 0.790, 4751, 14.90, 0.770, 4578, 17.90, 7168, 56))
    add(4, "audikw_1", "structural", 943695, 77651847,
        lambda s: elasticity3d(_d(5, s, 3), _d(5, s, 3), _d(4, s, 3)),
        PaperRecord(0.280, 1453, 0.240, 1212, 48.20, 0.220, 1114, 62.56, 4864, 38))
    add(5, "Geo_1438", "structural", 1437960, 60236322,
        lambda s: elasticity3d(_d(5, s, 3), _d(4, s, 3), _d(4, s, 3)),
        PaperRecord(0.130, 715, 0.120, 656, 21.26, 0.120, 654, 25.07, 3712, 29))
    add(6, "Hook_1498", "structural", 1498023, 59374451,
        lambda s: elasticity3d(_d(4, s, 3), _d(5, s, 3), _d(4, s, 3), poisson=0.35),
        PaperRecord(0.400, 2186, 0.430, 1907, 51.41, 0.360, 1877, 58.64, 3712, 29))
    add(7, "bone010", "model reduction", 986703, 47851783,
        lambda s: banded_spd(_d(1400, s, 1), 12, decay=0.8, seed=7),
        PaperRecord(1.39, 7980, 1.22, 6792, 37.93, 1.21, 6688, 46.90, 2944, 23))
    add(8, "ldoor", "structural", 952203, 42493817,
        lambda s: shell_like(_d(26, s, 2), _d(26, s, 2), thickness_ratio=5e-3),
        PaperRecord(0.150, 1064, 0.140, 939, 36.37, 0.130, 860, 37.90, 2688, 21))
    return cases


def get_case(name: str, *, large: bool = False) -> MatrixCase:
    """Look up a catalog entry by matrix name."""
    for case in table2_cases() if large else table1_cases():
        if case.name == name:
            return case
    raise KeyError(f"unknown matrix case {name!r}")
