"""Structured-grid stencil matrices (finite differences).

These generate the SPD problem classes of the paper's test set that come
from PDE discretisations on grids: Poisson (2D/3D problems), anisotropic
diffusion (thermal, CFD), wide-stencil variants (the dense "nd" 2D/3D
problems and acoustics).  All matrices are symmetric positive definite by
construction (weak diagonal dominance plus Dirichlet boundaries).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "poisson2d",
    "poisson3d",
    "anisotropic2d",
    "anisotropic3d",
    "wide_stencil_3d",
    "stretched_grid_2d",
]


def _assemble(n: int, rows, cols, vals) -> CSRMatrix:
    return CSRMatrix.from_coo((n, n), rows, cols, vals)


def poisson2d(nx: int, ny: int | None = None) -> CSRMatrix:
    """5-point Laplacian on an ``nx × ny`` grid with Dirichlet boundaries."""
    ny = nx if ny is None else ny
    return anisotropic2d(nx, ny, 1.0, 1.0)


def anisotropic2d(nx: int, ny: int, eps_x: float, eps_y: float) -> CSRMatrix:
    """5-point anisotropic diffusion ``-εx ∂²/∂x² − εy ∂²/∂y²``.

    Strong anisotropy (``eps_y ≪ eps_x``) produces the slow-converging
    matrices typical of thermal and boundary-layer CFD problems.
    """
    if nx < 1 or ny < 1 or eps_x <= 0 or eps_y <= 0:
        raise ValueError("grid dims must be >= 1 and coefficients positive")
    n = nx * ny
    gid = np.arange(n, dtype=np.int64).reshape(nx, ny)
    rows, cols, vals = [], [], []
    diag = np.full((nx, ny), 2.0 * (eps_x + eps_y))
    rows.append(gid.ravel())
    cols.append(gid.ravel())
    vals.append(diag.ravel())
    # x neighbours
    rows.append(gid[:-1, :].ravel()); cols.append(gid[1:, :].ravel())
    vals.append(np.full((nx - 1) * ny, -eps_x))
    rows.append(gid[1:, :].ravel()); cols.append(gid[:-1, :].ravel())
    vals.append(np.full((nx - 1) * ny, -eps_x))
    # y neighbours
    rows.append(gid[:, :-1].ravel()); cols.append(gid[:, 1:].ravel())
    vals.append(np.full(nx * (ny - 1), -eps_y))
    rows.append(gid[:, 1:].ravel()); cols.append(gid[:, :-1].ravel())
    vals.append(np.full(nx * (ny - 1), -eps_y))
    return _assemble(
        n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """7-point Laplacian on an ``nx × ny × nz`` grid."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    return anisotropic3d(nx, ny, nz, 1.0, 1.0, 1.0)


def anisotropic3d(
    nx: int, ny: int, nz: int, ex: float, ey: float, ez: float
) -> CSRMatrix:
    """7-point anisotropic diffusion in 3D."""
    if min(nx, ny, nz) < 1 or min(ex, ey, ez) <= 0:
        raise ValueError("grid dims must be >= 1 and coefficients positive")
    n = nx * ny * nz
    gid = np.arange(n, dtype=np.int64).reshape(nx, ny, nz)
    rows, cols, vals = [], [], []
    rows.append(gid.ravel()); cols.append(gid.ravel())
    vals.append(np.full(n, 2.0 * (ex + ey + ez)))
    for axis, eps in ((0, ex), (1, ey), (2, ez)):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(None, -1)
        hi[axis] = slice(1, None)
        a = gid[tuple(lo)].ravel()
        b = gid[tuple(hi)].ravel()
        rows.append(a); cols.append(b); vals.append(np.full(a.size, -eps))
        rows.append(b); cols.append(a); vals.append(np.full(a.size, -eps))
    return _assemble(
        n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def wide_stencil_3d(
    nx: int,
    radius: int = 2,
    *,
    dominance: float = 1.002,
    jitter: float = 0.0,
    seed: int = 0,
) -> CSRMatrix:
    """Dense-row SPD matrix: all neighbours within Chebyshev ``radius``.

    Surrogate for the very dense "nd"-family 2D/3D problems (hundreds of
    nonzeros per row) and for acoustics problems.  Off-diagonal weights decay
    with distance; the diagonal dominates, keeping the matrix SPD.

    ``jitter`` multiplies each node's coupling strength by a log-uniform
    factor in ``[e^-jitter, e^jitter]``: heterogeneous coefficients, as in
    unstructured meshes (Queen_4147-class problems), which both worsens the
    conditioning and spreads the inverse-factor magnitudes the extension
    filter sees.
    """
    if nx < 1 or radius < 1:
        raise ValueError("nx and radius must be >= 1")
    if dominance <= 1.0:
        raise ValueError("dominance must exceed 1 for positive definiteness")
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    n = nx**3
    gid = np.arange(n, dtype=np.int64).reshape(nx, nx, nx)
    rng = np.random.default_rng(seed)
    # per-node coefficient field; an edge weight uses sqrt(c_i * c_j) so the
    # matrix stays symmetric
    node_coef = (
        np.exp(rng.uniform(-jitter, jitter, size=n)) if jitter > 0 else np.ones(n)
    )
    rows, cols, vals = [], [], []
    offsets = [
        (dx, dy, dz)
        for dx in range(-radius, radius + 1)
        for dy in range(-radius, radius + 1)
        for dz in range(-radius, radius + 1)
        if (dx, dy, dz) != (0, 0, 0)
    ]
    row_weight = np.zeros(n)  # per-row |off-diagonal| sum: rows on the
    # boundary have fewer neighbours, so a global weight sum would make them
    # grossly dominant and the matrix artificially well conditioned
    for dx, dy, dz in offsets:
        w = 1.0 / (dx * dx + dy * dy + dz * dz)
        src = gid[
            max(0, -dx) : nx - max(0, dx),
            max(0, -dy) : nx - max(0, dy),
            max(0, -dz) : nx - max(0, dz),
        ].ravel()
        dst = gid[
            max(0, dx) : nx + min(0, dx),
            max(0, dy) : nx + min(0, dy),
            max(0, dz) : nx + min(0, dz),
        ].ravel()
        edge_w = w * np.sqrt(node_coef[src] * node_coef[dst])
        rows.append(src)
        cols.append(dst)
        vals.append(-edge_w)
        row_weight[src] += edge_w
    rows.append(gid.ravel())
    cols.append(gid.ravel())
    vals.append(row_weight * dominance)
    return _assemble(
        n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def stretched_grid_2d(nx: int, ny: int, stretch: float = 20.0) -> CSRMatrix:
    """Diffusion on a grid geometrically stretched towards one boundary.

    Mimics CFD meshes with boundary-layer refinement: coefficient ratios vary
    smoothly across the domain, producing the wide spread of row scales seen
    in the cfd1/cfd2 matrices.
    """
    if nx < 2 or ny < 2 or stretch <= 0:
        raise ValueError("need nx, ny >= 2 and positive stretch")
    n = nx * ny
    gid = np.arange(n, dtype=np.int64).reshape(nx, ny)
    # cell spacings grow geometrically along y
    hy = stretch ** (np.arange(ny) / max(ny - 1, 1))
    hx = np.ones(nx)
    rows, cols, vals = [], [], []
    diag = np.zeros((nx, ny))
    for i in range(nx - 1):
        w = 2.0 / (hx[i] + hx[i + 1])
        a, b = gid[i, :], gid[i + 1, :]
        rows += [a, b]
        cols += [b, a]
        vals += [np.full(ny, -w), np.full(ny, -w)]
        diag[i, :] += w
        diag[i + 1, :] += w
    for j in range(ny - 1):
        w = 2.0 / (hy[j] + hy[j + 1])
        a, b = gid[:, j], gid[:, j + 1]
        rows += [a, b]
        cols += [b, a]
        vals += [np.full(nx, -w), np.full(nx, -w)]
        diag[:, j] += w
        diag[:, j + 1] += w
    diag += 1e-3  # Dirichlet-like shift keeps the operator definite
    rows.append(gid.ravel()); cols.append(gid.ravel()); vals.append(diag.ravel())
    return _assemble(
        n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )
