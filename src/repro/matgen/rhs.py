"""Right-hand-side generation following the paper's protocol (§5.1).

"For each matrix a random right-hand side is generated normalized to the
matrix max norm."  The initial guess is always zero, and convergence is a
reduction of the initial residual by eight orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import max_norm

__all__ = ["paper_rhs", "PAPER_RTOL"]

#: Eight orders of magnitude of residual reduction.
PAPER_RTOL = 1e-8


def paper_rhs(mat: CSRMatrix, seed: int = 0) -> np.ndarray:
    """Random RHS scaled so ``‖b‖∞`` equals the matrix max norm."""
    rng = np.random.default_rng(seed)
    b = rng.uniform(-1.0, 1.0, size=mat.nrows)
    peak = float(np.abs(b).max())
    if peak == 0.0:
        b[0] = 1.0
        peak = 1.0
    scale = max_norm(mat)
    if scale == 0.0:
        scale = 1.0
    return b * (scale / peak)
