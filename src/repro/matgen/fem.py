"""Finite-element stiffness matrices for the structural problem class.

The largest group of the paper's test set are *structural problems*
(Fault_639, msdoor, af_shell, hood, bmwcra_1, shipsec, ldoor, ...): vector
elasticity discretisations with 2–3 degrees of freedom per node and block
sparsity.  This module assembles genuine linear-elasticity stiffness
matrices on structured quadrilateral (2D plane stress) and hexahedral (3D)
meshes using Gauss quadrature, then pins one boundary to make them SPD.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["elasticity2d", "elasticity3d", "shell_like"]


def _q4_stiffness(young: float, poisson: float) -> np.ndarray:
    """8×8 plane-stress stiffness of a unit square Q4 element (2×2 Gauss)."""
    e, nu = young, poisson
    c = e / (1.0 - nu * nu)
    d_mat = c * np.array([[1.0, nu, 0.0], [nu, 1.0, 0.0], [0.0, 0.0, (1.0 - nu) / 2.0]])
    gp = np.array([-1.0, 1.0]) / np.sqrt(3.0)
    ke = np.zeros((8, 8))
    for xi in gp:
        for eta in gp:
            # shape function derivatives on the reference square [-1, 1]²
            dn = 0.25 * np.array(
                [
                    [-(1 - eta), (1 - eta), (1 + eta), -(1 + eta)],
                    [-(1 - xi), -(1 + xi), (1 + xi), (1 - xi)],
                ]
            )
            jac = 0.5 * np.eye(2)  # unit square element: x = (ξ+1)/2
            dn_xy = np.linalg.solve(jac, dn)
            b_mat = np.zeros((3, 8))
            b_mat[0, 0::2] = dn_xy[0]
            b_mat[1, 1::2] = dn_xy[1]
            b_mat[2, 0::2] = dn_xy[1]
            b_mat[2, 1::2] = dn_xy[0]
            ke += b_mat.T @ d_mat @ b_mat * np.linalg.det(jac)
    return ke


def _hex8_stiffness(young: float, poisson: float) -> np.ndarray:
    """24×24 stiffness of a unit cube 8-node hexahedron (2×2×2 Gauss)."""
    e, nu = young, poisson
    lam = e * nu / ((1 + nu) * (1 - 2 * nu))
    mu = e / (2 * (1 + nu))
    d_mat = np.zeros((6, 6))
    d_mat[:3, :3] = lam
    d_mat[np.arange(3), np.arange(3)] += 2 * mu
    d_mat[3:, 3:] = mu * np.eye(3)
    gp = np.array([-1.0, 1.0]) / np.sqrt(3.0)
    # reference-node coordinates of the standard hex ordering
    nodes = np.array(
        [
            [-1, -1, -1], [1, -1, -1], [1, 1, -1], [-1, 1, -1],
            [-1, -1, 1], [1, -1, 1], [1, 1, 1], [-1, 1, 1],
        ],
        dtype=np.float64,
    )
    ke = np.zeros((24, 24))
    for xi in gp:
        for eta in gp:
            for zeta in gp:
                dn = np.empty((3, 8))
                for a in range(8):
                    sx, sy, sz = nodes[a]
                    dn[0, a] = 0.125 * sx * (1 + sy * eta) * (1 + sz * zeta)
                    dn[1, a] = 0.125 * sy * (1 + sx * xi) * (1 + sz * zeta)
                    dn[2, a] = 0.125 * sz * (1 + sx * xi) * (1 + sy * eta)
                jac = 0.5 * np.eye(3)  # unit cube element
                dn_xyz = np.linalg.solve(jac, dn)
                b_mat = np.zeros((6, 24))
                for a in range(8):
                    bx, by, bz = dn_xyz[:, a]
                    col = 3 * a
                    b_mat[0, col] = bx
                    b_mat[1, col + 1] = by
                    b_mat[2, col + 2] = bz
                    b_mat[3, col] = by
                    b_mat[3, col + 1] = bx
                    b_mat[4, col + 1] = bz
                    b_mat[4, col + 2] = by
                    b_mat[5, col] = bz
                    b_mat[5, col + 2] = bx
                ke += b_mat.T @ d_mat @ b_mat * np.linalg.det(jac)
    return ke


def _assemble_fem(
    elem_nodes: np.ndarray, ke: np.ndarray, n_nodes: int, dof: int, pinned: np.ndarray
) -> CSRMatrix:
    """Scatter element stiffness into global COO and pin boundary DOFs.

    Pinned DOFs keep only a unit diagonal (homogeneous Dirichlet), which is
    what makes the assembled operator SPD.
    """
    n_dofs = n_nodes * dof
    edofs = (elem_nodes[:, :, None] * dof + np.arange(dof)[None, None, :]).reshape(
        elem_nodes.shape[0], -1
    )
    k = edofs.shape[1]
    rows = np.repeat(edofs, k, axis=1).ravel()
    cols = np.tile(edofs, (1, k)).ravel()
    vals = np.tile(ke.ravel(), elem_nodes.shape[0])
    pin_mask = np.zeros(n_dofs, dtype=bool)
    pin_mask[pinned] = True
    keep = ~(pin_mask[rows] | pin_mask[cols])
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    rows = np.concatenate([rows, np.flatnonzero(pin_mask)])
    cols = np.concatenate([cols, np.flatnonzero(pin_mask)])
    vals = np.concatenate([vals, np.ones(int(pin_mask.sum()))])
    return CSRMatrix.from_coo((n_dofs, n_dofs), rows, cols, vals)


def elasticity2d(
    nx: int, ny: int, *, young: float = 1.0, poisson: float = 0.3
) -> CSRMatrix:
    """Plane-stress elasticity on an ``nx × ny`` element grid (2 DOF/node).

    The left edge is clamped.  Matrix order is ``2·(nx+1)·(ny+1)``.
    """
    if nx < 1 or ny < 1:
        raise ValueError("element grid must be at least 1×1")
    nnx, nny = nx + 1, ny + 1
    node = np.arange(nnx * nny, dtype=np.int64).reshape(nnx, nny)
    elems = np.stack(
        [
            node[:-1, :-1].ravel(),
            node[1:, :-1].ravel(),
            node[1:, 1:].ravel(),
            node[:-1, 1:].ravel(),
        ],
        axis=1,
    )
    ke = _q4_stiffness(young, poisson)
    clamped_nodes = node[0, :].ravel()
    pinned = (clamped_nodes[:, None] * 2 + np.arange(2)[None, :]).ravel()
    return _assemble_fem(elems, ke, nnx * nny, 2, pinned)


def elasticity3d(
    nx: int, ny: int, nz: int, *, young: float = 1.0, poisson: float = 0.3
) -> CSRMatrix:
    """3-D linear elasticity on an ``nx × ny × nz`` hex grid (3 DOF/node).

    One face (x = 0) is clamped.  Matrix order is ``3·(nx+1)(ny+1)(nz+1)``;
    ~81 nonzeros per interior row, matching the density of the structural
    matrices in the paper's set.
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("element grid must be at least 1×1×1")
    nnx, nny, nnz_ = nx + 1, ny + 1, nz + 1
    node = np.arange(nnx * nny * nnz_, dtype=np.int64).reshape(nnx, nny, nnz_)
    elems = np.stack(
        [
            node[:-1, :-1, :-1].ravel(),
            node[1:, :-1, :-1].ravel(),
            node[1:, 1:, :-1].ravel(),
            node[:-1, 1:, :-1].ravel(),
            node[:-1, :-1, 1:].ravel(),
            node[1:, :-1, 1:].ravel(),
            node[1:, 1:, 1:].ravel(),
            node[:-1, 1:, 1:].ravel(),
        ],
        axis=1,
    )
    ke = _hex8_stiffness(young, poisson)
    clamped_nodes = node[0, :, :].ravel()
    pinned = (clamped_nodes[:, None] * 3 + np.arange(3)[None, :]).ravel()
    return _assemble_fem(elems, ke, node.size, 3, pinned)


def shell_like(nx: int, ny: int, *, thickness_ratio: float = 1e-2) -> CSRMatrix:
    """Thin-shell surrogate: 2D elasticity with a weak bending-like coupling.

    Reproduces the character of the af_shell/ldoor matrices — structural
    sparsity with strongly varying entry scales — by combining in-plane
    stiffness with a scaled-down second operator on the same mesh.
    """
    base = elasticity2d(nx, ny)
    bend = elasticity2d(nx, ny, young=thickness_ratio, poisson=0.2)
    rows1, cols1, vals1 = base.to_coo()
    rows2, cols2, vals2 = bend.to_coo()
    return CSRMatrix.from_coo(
        base.shape,
        np.concatenate([rows1, rows2]),
        np.concatenate([cols1, cols2]),
        np.concatenate([vals1, vals2]),
    )
