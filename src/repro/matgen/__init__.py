"""Workload generation: synthetic SPD matrices and the evaluation catalog.

Every problem class of the paper's test set has a from-scratch generator
here, and :func:`table1_cases` / :func:`table2_cases` mirror the paper's two
evaluation tables (metadata + reference numbers + scaled synthetic analog).
"""

from repro.matgen.fem import elasticity2d, elasticity3d, shell_like
from repro.matgen.graphs import banded_spd, circuit_laplacian, electromagnetics_like
from repro.matgen.rhs import PAPER_RTOL, paper_rhs
from repro.matgen.stencils import (
    anisotropic2d,
    anisotropic3d,
    poisson2d,
    poisson3d,
    stretched_grid_2d,
    wide_stencil_3d,
)
from repro.matgen.suite import (
    MatrixCase,
    PaperRecord,
    default_rank_count,
    get_case,
    table1_cases,
    table2_cases,
)

__all__ = [
    "poisson2d",
    "poisson3d",
    "anisotropic2d",
    "anisotropic3d",
    "wide_stencil_3d",
    "stretched_grid_2d",
    "elasticity2d",
    "elasticity3d",
    "shell_like",
    "circuit_laplacian",
    "electromagnetics_like",
    "banded_spd",
    "paper_rhs",
    "PAPER_RTOL",
    "MatrixCase",
    "PaperRecord",
    "table1_cases",
    "table2_cases",
    "get_case",
    "default_rank_count",
]
