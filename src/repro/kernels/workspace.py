"""Preallocated solver workspaces — zero-allocation distributed hot loops.

A :class:`SolverWorkspace` owns every temporary a Krylov solve needs — the
residual/direction/preconditioned vectors, the per-rank SpMV input vectors
``[x_local | x_halo]`` (whose tail doubles as the halo receive buffer, so the
halo update writes straight into the SpMV operand with no copy), and the
:class:`~repro.kernels.plan.SpMVPlan` set of every operator it applies.

The contract: after warm-up (the first acquisition of each named buffer),
repeated solves through the same workspace perform **zero hot-loop array
allocations**.  The workspace counts every array it creates in
:attr:`allocations` (mirrored to the ``kernels.allocs`` counter of
:mod:`repro.instrument`), which is how ``scripts/check_no_alloc.py`` and the
test suite enforce the invariant.

Workspaces hold scratch state and are therefore **not thread-safe**; use one
workspace per thread.  Buffers are keyed by name, so a workspace can be
reused across solves of the same operator family indefinitely.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.dist.matrix import DistMatrix
from repro.dist.vector import DistVector
from repro.errors import ShapeError
from repro.instrument import get_metrics

__all__ = ["SolverWorkspace"]


class _OperatorState:
    """Per-operator plan set and SpMV input buffers (one per rank)."""

    __slots__ = ("dmat", "plans", "xin", "halo_views")

    def __init__(self, dmat: DistMatrix, backend: ArrayBackend):
        self.dmat = dmat
        self.plans = dmat.plans(backend)
        self.xin: list[np.ndarray] = []
        self.halo_views: list[np.ndarray] = []
        for lm in dmat.locals:
            buf = backend.xp.empty(lm.n_local + lm.n_halo, dtype=np.float64)
            self.xin.append(buf)
            self.halo_views.append(buf[lm.n_local:])

    @property
    def narrays(self) -> int:
        return len(self.xin)


class SolverWorkspace:
    """Reusable buffers and kernel plans for distributed Krylov solves.

    Parameters
    ----------
    mat:
        The system matrix; its partition defines every vector buffer.  Plans
        and input buffers for further operators (e.g. the preconditioner's
        ``G`` / ``Gᵀ``) are registered lazily on first application.
    backend:
        Array backend the buffers and kernel plans live on — a name accepted
        by :func:`repro.backend.get_backend` or an
        :class:`~repro.backend.ArrayBackend`.  Defaults to NumPy.  Operand
        vectors must match the backend and dtype (float64); mismatches raise
        :class:`ValueError` rather than silently casting into the buffers.

    Attributes
    ----------
    allocations:
        Total arrays this workspace has allocated.  Constant once every
        buffer is warm — the no-allocation invariant asserted by
        ``scripts/check_no_alloc.py``.
    """

    def __init__(self, mat: DistMatrix, backend: str | ArrayBackend | None = None):
        self.mat = mat
        self.backend = get_backend(backend)
        self.partition = mat.partition
        self.allocations = 0
        self._vectors: dict[str, DistVector] = {}
        self._ops: dict[int, _OperatorState] = {}
        self._register(mat)

    # ------------------------------------------------------------------
    def _count_allocs(self, n: int) -> None:
        self.allocations += n
        get_metrics().counter("kernels.allocs").inc(n)

    def _register(self, dmat: DistMatrix) -> _OperatorState:
        state = _OperatorState(dmat, self.backend)
        self._ops[id(dmat)] = state
        self._count_allocs(state.narrays)
        return state

    def operator(self, dmat: DistMatrix) -> _OperatorState:
        """Plan/buffer state for ``dmat``, registered on first use.

        Reuse is counted in the ``kernels.plan_cache.hits`` /
        ``kernels.plan_cache.misses`` instrumentation counters.
        """
        state = self._ops.get(id(dmat))
        if state is None:
            get_metrics().counter("kernels.plan_cache.misses").inc()
            state = self._register(dmat)
        else:
            get_metrics().counter("kernels.plan_cache.hits").inc()
        return state

    def vector(self, name: str) -> DistVector:
        """The named preallocated :class:`DistVector` (created on first use).

        Contents persist between calls; callers own the naming discipline
        (two live uses of the same name would alias).
        """
        vec = self._vectors.get(name)
        if vec is None:
            vec = DistVector.zeros(self.partition)
            self._vectors[name] = vec
            self._count_allocs(len(vec.parts))
        return vec

    # ------------------------------------------------------------------
    def spmv(
        self,
        dmat: DistMatrix,
        x: DistVector,
        out: DistVector | None = None,
        tracker=None,
    ) -> DistVector:
        """Distributed ``out = dmat · x`` through cached plans and buffers.

        The halo update writes directly into the tail of each rank's
        preallocated ``[x_local | x_halo]`` input vector; the local products
        run through :class:`SpMVPlan` with ``out=`` — zero allocations once
        the operator is warm.
        """
        if x.partition != dmat.partition:
            raise ShapeError("operand lives on a different partition")
        state = self.operator(dmat)
        if out is None:
            out = self.vector(f"spmv.out.{id(dmat)}")
        self._check_parts(x, "x")
        self._check_parts(out, "out")
        dmat.schedule.update(x.parts, tracker, out=state.halo_views)
        for p, lm in enumerate(dmat.locals):
            xin = state.xin[p]
            xin[: lm.n_local] = x.parts[p]
            state.plans[p].spmv(xin, out=out.parts[p])
        return out

    def _check_parts(self, vec: DistVector, label: str) -> None:
        """Reject operand vectors that would silently cast into the buffers."""
        backend = self.backend
        for p, part in enumerate(vec.parts):
            if not backend.is_native(part):
                raise ValueError(
                    f"{label}.parts[{p}] is {type(part).__name__}, but this "
                    f"workspace runs on the {backend.name!r} backend — convert "
                    "with backend.to_device() before the solve"
                )
            if part.dtype != np.float64:
                raise ValueError(
                    f"{label}.parts[{p}] has dtype {part.dtype}; workspace "
                    "buffers are float64 and refuse to cast silently — "
                    "convert the operand explicitly"
                )

    def __repr__(self) -> str:
        return (
            f"SolverWorkspace(nparts={self.partition.nparts}, "
            f"vectors={len(self._vectors)}, operators={len(self._ops)}, "
            f"allocations={self.allocations})"
        )
