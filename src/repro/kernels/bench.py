"""Microbenchmarks for the kernel runtime — the ``BENCH_kernels.json`` suite.

Measures (never asserts) the wins of the :mod:`repro.kernels` layer:

* planned vs unplanned SpMV and transpose SpMV on 2-D Poisson matrices of
  increasing size,
* a full PCG solve through the legacy allocating path vs a warm
  :class:`~repro.kernels.workspace.SolverWorkspace` (equivalent arithmetic —
  bitwise on the reduceat plan path, rounding-level on the ELL path — so
  the delta is runtime overhead, not convergence), with per-solve
  allocation counters from the instrumentation registry,
* per-row reference vs batched FSAI setup
  (:func:`~repro.core.fsai.compute_g_values_per_row` vs the vectorised
  :func:`~repro.core.fsai.compute_g_values` group solves).

Entry points: :func:`run_suite` returns the result dict, :func:`write_suite`
writes it as JSON, :func:`format_summary` renders the human-readable table
printed by ``repro bench`` and ``benchmarks/microbench.py``.  ``run_suite``
takes a ``backend=`` name so the same suite can be pointed at CuPy when
present (the default NumPy backend is always available).

Timings are best-of-``reps`` wall clock; sizes stay small enough that the
full suite runs in seconds (``quick=True`` trims further for smoke tests).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.backend import get_backend
from repro.core.cg import pcg
from repro.core.fsai import (
    SetupOptions,
    compute_g_values,
    compute_g_values_per_row,
    fsai_pattern,
)
from repro.core.precond import build_fsai
from repro.dist.matrix import DistMatrix
from repro.dist.partition_map import RowPartition
from repro.dist.vector import DistVector
from repro.instrument import NULL_TRACER, tracing
from repro.kernels.plan import SpMVPlan
from repro.kernels.workspace import SolverWorkspace
from repro.matgen import poisson2d

__all__ = ["run_suite", "write_suite", "format_summary", "DEFAULT_SIZES", "DEFAULT_REPS"]

#: 2-D Poisson grid edge lengths benchmarked by default (n = size²).
DEFAULT_SIZES = (32, 64, 96)
DEFAULT_REPS = 5


def _best(fn, reps: int, inner: int = 4) -> float:
    """Best-of-``reps`` mean wall time of ``inner`` back-to-back calls."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _bench_spmv(sizes, reps: int, backend) -> list[dict]:
    records = []
    xp = backend.xp
    for size in sizes:
        mat = poisson2d(size)
        rng = np.random.default_rng(size)
        x_host = rng.standard_normal(mat.ncols)
        x = backend.asarray(x_host)  # no-copy on the numpy backend
        plan = SpMVPlan(mat, backend=backend)
        out = xp.empty(mat.nrows, dtype=np.float64)
        out_t = xp.empty(mat.ncols, dtype=np.float64)

        unplanned = _best(lambda: mat.spmv(x_host), reps)
        planned = _best(lambda: plan.spmv(x, out=out), reps)
        unplanned_t = _best(lambda: mat.spmv_transpose(x_host), reps)
        planned_t = _best(lambda: plan.spmv_t(x, out=out_t), reps)
        records.append(
            {
                "grid": int(size),
                "n": mat.nrows,
                "nnz": mat.nnz,
                "unplanned_s": unplanned,
                "planned_s": planned,
                "speedup": unplanned / planned if planned > 0 else float("inf"),
                "unplanned_transpose_s": unplanned_t,
                "planned_transpose_s": planned_t,
                "speedup_transpose": (
                    unplanned_t / planned_t if planned_t > 0 else float("inf")
                ),
            }
        )
    return records


def _bench_pcg(size: int, reps: int, nparts: int = 4) -> dict:
    mat = poisson2d(size)
    partition = RowPartition.contiguous(mat.nrows, nparts)
    dmat = DistMatrix.from_global(mat, partition)
    pre = build_fsai(mat, partition)
    rng = np.random.default_rng(2 * size + 1)
    b = DistVector.from_global(rng.standard_normal(mat.nrows), partition)

    legacy = pcg(dmat, b, precond=pre, workspace=False)
    ws = SolverWorkspace(dmat)
    warm = pcg(dmat, b, precond=pre, workspace=ws)  # warm-up: fills buffers/plans
    allocs_before = ws.allocations
    reused = pcg(dmat, b, precond=pre, workspace=ws)
    hot_allocs = ws.allocations - allocs_before

    legacy_s = _best(lambda: pcg(dmat, b, precond=pre, workspace=False), reps, inner=1)
    ws_s = _best(lambda: pcg(dmat, b, precond=pre, workspace=ws), reps, inner=1)

    # metric-based allocation accounting for the legacy path (the workspace
    # path reports through ws.allocations above)
    with tracing(NULL_TRACER) as (_, metrics):
        pcg(dmat, b, precond=pre, workspace=False)
        legacy_allocs = metrics.value("kernels.allocs") or 0
    wx = warm.x.to_global()
    lx = legacy.x.to_global()
    return {
        "grid": int(size),
        "n": mat.nrows,
        "ranks": nparts,
        "iterations": legacy.iterations,
        "iterations_workspace": reused.iterations,
        "legacy_s": legacy_s,
        "workspace_s": ws_s,
        "speedup": legacy_s / ws_s if ws_s > 0 else float("inf"),
        "legacy_allocs_per_solve": int(legacy_allocs),
        "workspace_allocs_warmup": int(allocs_before),
        "workspace_allocs_hot": int(hot_allocs),
        # rounding-level agreement: the ELL plan path sums rows in a
        # different (documented) order than the legacy reduceat kernel
        "solutions_match": bool(np.allclose(wx, lx, rtol=1e-6, atol=1e-9)),
        "solutions_max_abs_diff": float(np.max(np.abs(wx - lx))) if wx.size else 0.0,
    }


def _bench_setup(size: int, reps: int, backend) -> dict:
    """Per-row reference loop vs the batched group solves, same pattern."""
    mat = poisson2d(size)
    pattern = fsai_pattern(mat)
    setup = SetupOptions(backend=backend)
    per_row = _best(lambda: compute_g_values_per_row(mat, pattern), reps, inner=1)
    batched = _best(
        lambda: compute_g_values(mat, pattern, setup=setup), reps, inner=1
    )
    g_ref = compute_g_values_per_row(mat, pattern)
    g_bat = compute_g_values(mat, pattern, setup=setup)
    return {
        "grid": int(size),
        "n": mat.nrows,
        "backend": backend.name,
        "per_row_s": per_row,
        "batched_s": batched,
        "speedup": per_row / batched if batched > 0 else float("inf"),
        "values_max_abs_diff": float(np.max(np.abs(g_ref.data - g_bat.data)))
        if g_ref.nnz
        else 0.0,
    }


def run_suite(
    sizes=DEFAULT_SIZES,
    reps: int = DEFAULT_REPS,
    *,
    quick: bool = False,
    backend: str | None = None,
) -> dict:
    """Run the full microbenchmark suite and return the result dict.

    ``quick=True`` shrinks sizes and repetitions to smoke-test territory
    (used by ``pytest -m bench_smoke``); numbers are then indicative only.
    ``backend=`` selects the array backend for the planned-kernel and
    batched-setup cases (``"numpy"``, ``"cupy"`` or ``"auto"``; unavailable
    backends fall back to NumPy with a warning).
    """
    bk = get_backend(backend)
    if quick:
        sizes = tuple(sizes[:2]) or (16,)
        reps = min(reps, 2)
    sizes = tuple(int(s) for s in sizes)
    spmv = _bench_spmv(sizes, reps, bk)
    largest = max(sizes)
    result = {
        "suite": "kernels",
        "config": {
            "sizes": list(sizes),
            "reps": reps,
            "quick": quick,
            "backend": bk.name,
        },
        "spmv": spmv,
        "pcg": _bench_pcg(min(largest, 48), reps),
        "setup": _bench_setup(largest, reps, bk),
    }
    by_grid = {rec["grid"]: rec for rec in spmv}
    result["summary"] = {
        "spmv_speedup_largest": by_grid[largest]["speedup"],
        "spmv_transpose_speedup_largest": by_grid[largest]["speedup_transpose"],
        "pcg_speedup": result["pcg"]["speedup"],
        "pcg_hot_allocs": result["pcg"]["workspace_allocs_hot"],
        "setup_batched_speedup": result["setup"]["speedup"],
    }
    return result


def write_suite(result: dict, path: str | Path, *, report: bool = True) -> Path:
    """Write a suite result as pretty-printed JSON; returns the path.

    Unless ``report=False``, a companion :class:`repro.observe.RunReport`
    document is written next to it (``<stem>.report.json``) — the comparable
    form consumed by ``repro report --compare`` and
    ``scripts/check_bench_regression.py``.
    """
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if report:
        from repro.observe import RunReport

        RunReport.from_bench(result, label=path.stem).save(
            path.with_suffix(".report.json")
        )
    return path


def format_summary(result: dict) -> str:
    """Human-readable table of a :func:`run_suite` result."""
    lines = ["kernel microbenchmarks (best-of-%d)" % result["config"]["reps"], ""]
    lines.append(f"{'grid':>6} {'nnz':>9} {'spmv':>9} {'planned':>9} {'x':>6} "
                 f"{'spmv_t':>9} {'planned_t':>10} {'x':>6}")
    for rec in result["spmv"]:
        lines.append(
            f"{rec['grid']:>6} {rec['nnz']:>9} "
            f"{rec['unplanned_s'] * 1e6:>8.1f}µ {rec['planned_s'] * 1e6:>8.1f}µ "
            f"{rec['speedup']:>5.2f}x "
            f"{rec['unplanned_transpose_s'] * 1e6:>8.1f}µ "
            f"{rec['planned_transpose_s'] * 1e6:>9.1f}µ "
            f"{rec['speedup_transpose']:>5.2f}x"
        )
    p = result["pcg"]
    lines += [
        "",
        f"pcg {p['grid']}x{p['grid']} on {p['ranks']} ranks: "
        f"legacy {p['legacy_s'] * 1e3:.2f} ms vs workspace "
        f"{p['workspace_s'] * 1e3:.2f} ms ({p['speedup']:.2f}x), "
        f"{p['iterations']} vs {p['iterations_workspace']} iterations",
        f"allocations/solve: legacy {p['legacy_allocs_per_solve']}, "
        f"warm workspace {p['workspace_allocs_hot']}",
    ]
    s = result["setup"]
    lines.append(
        f"fsai setup {s['grid']}x{s['grid']} [{s['backend']}]: per-row "
        f"{s['per_row_s'] * 1e3:.2f} ms vs batched {s['batched_s'] * 1e3:.2f} ms "
        f"({s['speedup']:.2f}x)"
    )
    return "\n".join(lines)
