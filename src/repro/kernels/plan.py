"""Precomputed SpMV kernel plans — allocation-free matrix-vector products.

The paper's premise is that preconditioner application is bound by memory
traffic, not flops — yet the plain :meth:`CSRMatrix.spmv` pays Python-side
overhead on every call: it re-derives the nonempty-row mask, allocates the
gathered-product scratch array, and (for the transpose product) falls back to
``np.add.at`` scatter-adds, the slowest reduction NumPy offers.

An :class:`SpMVPlan` hoists all of that out of the iteration loop.  At
construction it computes, once per matrix:

* the ``add.reduceat`` segment starts (and, when some rows are empty, the
  compressed nonempty-row index list),
* a full transpose gather plan — a CSC view of the matrix (permuted values,
  source-row gather indices, column segment starts) so ``Aᵀx`` is evaluated
  with the same gather + ``reduceat`` kernel as ``Ax`` instead of
  ``np.add.at``,
* for narrow-row matrices (every row at most :data:`ELL_MAX_WIDTH` entries
  and modest padding overhead — the common case for stencil operators and
  FSAI factors), a zero-padded ELLPACK layout stored slot-major, so the
  per-row reduction is a handful of long contiguous vector adds instead of
  ``reduceat``'s per-segment dispatch,
* the scratch-buffer sizes (``nnz``, or the padded ELL shape) — the buffers
  themselves are materialised lazily, once per applying thread.

After construction, :meth:`spmv` / :meth:`spmv_t` perform **zero array
allocations** when an ``out=`` vector is supplied: the gather runs through
``np.take(..., out=...)``, the multiply through ``np.multiply(..., out=...)``
and the reduction through ``np.add.reduceat(..., out=...)`` or in-place
vector adds over the ELL slots.

Numerics: the reduceat path reduces each row with the exact routine
``CSRMatrix.spmv`` uses, so it is bitwise-identical to the unplanned kernel.
The ELL path accumulates each row strictly left to right (a deterministic,
documented order), which matches ``reduceat``'s internal pairwise order only
to rounding — expect 1-ulp-level differences from the unplanned kernel on
narrow matrices.  The ELL padding multiplies ``0.0`` against ``x[0]``, so it
assumes finite input vectors (as every iterative solver here does).

Plans snapshot the matrix structure and values at construction; the matrix
must not be mutated afterwards.  Scratch buffers are **thread-local**: a
plan may be applied concurrently from many threads (the solve farm runs
concurrent solves through the plans cached on a shared
:class:`~repro.dist.DistMatrix`), each thread lazily allocating its own
scratch on first use and running allocation-free thereafter.  The
``calls``/``calls_t`` counters are plain integers and may undercount under
concurrency — they are instrumentation, not accounting.

Plans are backend-aware: pass ``backend=`` (a name or
:class:`repro.backend.ArrayBackend`) and every kernel array — gather
indices, value snapshots, scratch buffers — lives in that backend's
namespace, with ``spmv``/``spmv_t`` running entirely through ``backend.xp``.
The default NumPy backend is bitwise-identical to the historical behaviour.
Backends without ``ufunc.reduceat`` (CuPy) require the ELLPACK layout; a
wide-row matrix on such a backend raises
:class:`~repro.errors.BackendError` at construction (see
``docs/BACKENDS.md``).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.errors import BackendError, ShapeError
from repro.sparse.csr import CSRMatrix

__all__ = ["SpMVPlan", "ELL_MAX_WIDTH"]

# Rows wider than this keep the reduceat path; 8 keeps the slot loop short
# and covers every stencil/FSAI operator in the evaluation suite.
ELL_MAX_WIDTH = 8
# Padded size must stay within this factor of nnz, or ELL wastes bandwidth.
_ELL_PAD_FACTOR = 1.5


def _build_ell(widths: np.ndarray, indices: np.ndarray, data: np.ndarray):
    """Slot-major ELLPACK arrays ``(width, n)`` from row-major CSR triples.

    Returns ``(idx, vals, scratch)`` or ``None`` when the layout does not
    pay off (wide rows or too much padding).  Slot ``j`` holds the ``j``-th
    stored entry of every row, zero-padded, so the row reduction is
    ``width`` contiguous vector adds.
    """
    n = widths.size
    if n == 0 or indices.size == 0:
        return None
    w = int(widths.max())
    if w == 0 or w > ELL_MAX_WIDTH or n * w > _ELL_PAD_FACTOR * indices.size:
        return None
    mask = np.arange(w) < widths[:, None]  # (n, w), row-major like CSR data
    idx = np.zeros((n, w), dtype=np.int64)
    vals = np.zeros((n, w), dtype=np.float64)
    idx[mask] = indices
    vals[mask] = data
    # slot-major: each slot is one contiguous length-n vector
    idx = np.ascontiguousarray(idx.T)
    vals = np.ascontiguousarray(vals.T)
    return idx, vals, np.empty((w, n), dtype=np.float64)


def _ell_apply(xp, x, idx, vals, scratch, out):
    """``out[i] = Σ_j vals[j, i] * x[idx[j, i]]``, left-to-right in ``j``."""
    if xp is np:
        # indices are validated at construction; clip skips the bounds check
        np.take(x, idx, out=scratch, mode="clip")
    else:
        xp.take(x, idx, out=scratch)  # cupy.take has no mode= kwarg
    xp.multiply(scratch, vals, out=scratch)
    if scratch.shape[0] == 1:
        xp.copyto(out, scratch[0])
        return out
    xp.add(scratch[0], scratch[1], out=out)
    for j in range(2, scratch.shape[0]):
        out += scratch[j]
    return out


class _PlanScratch:
    """One thread's scratch buffers for one plan (lazily built per thread)."""

    __slots__ = ("ell_x", "prod", "seg", "t_ell_x", "t_prod", "t_seg")

    def __init__(self, xp, spec):
        ell_shape, prod_size, seg_size, t_ell_shape, t_prod_size, t_seg_size = spec
        self.ell_x = xp.empty(ell_shape, dtype=np.float64) if ell_shape else None
        self.prod = xp.empty(prod_size, dtype=np.float64) if prod_size else None
        self.seg = xp.empty(seg_size, dtype=np.float64) if seg_size else None
        self.t_ell_x = (
            xp.empty(t_ell_shape, dtype=np.float64) if t_ell_shape else None
        )
        self.t_prod = xp.empty(t_prod_size, dtype=np.float64) if t_prod_size else None
        self.t_seg = xp.empty(t_seg_size, dtype=np.float64) if t_seg_size else None


def _check_out(out, n: int, label: str, backend: ArrayBackend) -> None:
    """Validate a user-supplied output vector (backend, shape and dtype)."""
    if not backend.is_native(out):
        raise TypeError(
            f"{label} must be a {backend.name} array, got {type(out).__name__}"
        )
    if out.dtype != np.float64:
        raise TypeError(f"{label} must have dtype float64, got {out.dtype}")
    if out.shape != (n,):
        raise ShapeError(f"{label} has shape {out.shape}, expected ({n},)")


class SpMVPlan:
    """Per-matrix SpMV metadata and scratch buffers, computed once.

    Parameters
    ----------
    mat:
        The CSR matrix to plan for.  Its ``indptr``/``indices``/``data``
        arrays are referenced (forward product) and partially copied
        (transpose gather plan); do not mutate the matrix afterwards.
    backend:
        Array backend the kernels run on — a name accepted by
        :func:`repro.backend.get_backend` or an
        :class:`~repro.backend.ArrayBackend`.  Defaults to NumPy.  All plan
        arrays live in the backend namespace; input and ``out=`` vectors
        must be native to it.

    Attributes
    ----------
    calls / calls_t:
        Plain counters of forward/transpose products executed through the
        plan (object-local so the hot path never touches a registry; the
        runtime layer publishes them to :mod:`repro.instrument`).
    """

    __slots__ = (
        "mat", "nrows", "ncols", "nnz", "backend", "_xp",
        "_a_indices", "_a_data",
        "_starts", "_row_ids", "_all_rows_nonempty",
        "_ell_idx", "_ell_vals",
        "_t_rows", "_t_data", "_t_starts", "_t_col_ids",
        "_all_cols_nonempty",
        "_t_ell_idx", "_t_ell_vals",
        "_scratch_spec", "_tls",
        "calls", "calls_t",
    )

    def __init__(self, mat: CSRMatrix, backend: str | ArrayBackend | None = None):
        self.mat = mat
        self.backend = get_backend(backend)
        xp = self._xp = self.backend.xp
        dev = self.backend.asarray
        self.nrows, self.ncols = mat.shape
        self.nnz = mat.nnz
        self.calls = 0
        self.calls_t = 0

        # scratch sizes are recorded here and materialised per thread on
        # first use (see _scratch) — None means the path never needs one
        ell_shape = prod_size = seg_size = None
        t_ell_shape = t_prod_size = t_seg_size = None

        widths = np.diff(mat.indptr)
        ell = _build_ell(widths, mat.indices, mat.data)
        if ell is not None:
            idx, vals, scratch = ell
            self._ell_idx, self._ell_vals = dev(idx), dev(vals)
            ell_shape = scratch.shape
            self._starts = self._row_ids = None
            self._a_indices = self._a_data = None
            self._all_rows_nonempty = True
        elif not self.backend.supports_reduceat and self.nnz:
            raise BackendError(
                f"backend {self.backend.name!r} has no ufunc.reduceat; SpMV "
                f"plans need the ELLPACK layout (rows at most {ELL_MAX_WIDTH} "
                "wide with modest padding) — see docs/BACKENDS.md"
            )
        else:
            self._ell_idx = self._ell_vals = None
            self._a_indices = dev(mat.indices)
            self._a_data = dev(mat.data)
            # forward plan: reduceat starts over nonempty rows
            starts = mat.indptr[:-1]
            nonempty = mat.indptr[1:] > starts
            self._all_rows_nonempty = bool(nonempty.all()) if self.nrows else True
            if self._all_rows_nonempty:
                self._starts = dev(np.ascontiguousarray(starts))
                self._row_ids = None
            else:
                row_ids = np.flatnonzero(nonempty)
                self._row_ids = dev(row_ids)
                self._starts = dev(np.ascontiguousarray(starts[row_ids]))
                seg_size = row_ids.size
            prod_size = self.nnz

        # transpose plan: CSC gather (stable sort keeps determinism and,
        # within a column, ascending source rows)
        order = np.argsort(mat.indices, kind="stable")
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), mat.row_nnz())
        t_rows = rows[order]
        t_data = mat.data[order]
        col_counts = np.bincount(mat.indices, minlength=self.ncols) if self.nnz \
            else np.zeros(self.ncols, dtype=np.int64)
        t_ell = _build_ell(col_counts, t_rows, t_data)
        if t_ell is not None:
            idx, vals, scratch = t_ell
            self._t_ell_idx, self._t_ell_vals = dev(idx), dev(vals)
            t_ell_shape = scratch.shape
            self._t_rows = self._t_data = None
            self._t_starts = self._t_col_ids = None
            self._all_cols_nonempty = True
        else:
            if not self.backend.supports_reduceat and self.nnz:
                raise BackendError(
                    f"backend {self.backend.name!r} has no ufunc.reduceat; the "
                    "transpose SpMV plan needs the ELLPACK layout — see "
                    "docs/BACKENDS.md"
                )
            self._t_ell_idx = self._t_ell_vals = None
            self._t_rows = dev(t_rows)
            self._t_data = dev(t_data)
            t_indptr = np.zeros(self.ncols + 1, dtype=np.int64)
            np.cumsum(col_counts, out=t_indptr[1:])
            t_starts = t_indptr[:-1]
            col_nonempty = t_indptr[1:] > t_starts
            self._all_cols_nonempty = bool(col_nonempty.all()) if self.ncols else True
            if self._all_cols_nonempty:
                self._t_starts = dev(np.ascontiguousarray(t_starts))
                self._t_col_ids = None
            else:
                t_col_ids = np.flatnonzero(col_nonempty)
                self._t_col_ids = dev(t_col_ids)
                self._t_starts = dev(np.ascontiguousarray(t_starts[t_col_ids]))
                t_seg_size = t_col_ids.size
            t_prod_size = self.nnz

        self._scratch_spec = (
            ell_shape, prod_size, seg_size, t_ell_shape, t_prod_size, t_seg_size,
        )
        self._tls = threading.local()

    # ------------------------------------------------------------------
    def _scratch(self) -> _PlanScratch:
        """This thread's scratch buffers, built on first use.

        Per-thread scratch is what makes concurrent application safe: two
        threads running :meth:`spmv` through the same plan gather into
        disjoint buffers instead of racing on shared ones.
        """
        bufs = getattr(self._tls, "bufs", None)
        if bufs is None:
            bufs = self._tls.bufs = _PlanScratch(self._xp, self._scratch_spec)
        return bufs

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` through the plan; allocation-free when ``out`` is given.

        ``out`` may alias ``x``: the gathered products are materialised in the
        thread's scratch buffer before ``out`` is written.
        """
        xp = self._xp
        if x.shape != (self.ncols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.ncols},)")
        if out is None:
            out = xp.empty(self.nrows, dtype=np.float64)
        else:
            _check_out(out, self.nrows, "out", self.backend)
        self.calls += 1
        if self.nnz == 0:
            out.fill(0.0)
            return out
        scratch = self._scratch()
        if self._ell_idx is not None:
            return _ell_apply(xp, x, self._ell_idx, self._ell_vals, scratch.ell_x, out)
        # indices are validated at matrix construction; mode="clip" skips the
        # redundant per-call bounds check
        xp.take(x, self._a_indices, out=scratch.prod, mode="clip")
        xp.multiply(scratch.prod, self._a_data, out=scratch.prod)
        if self._all_rows_nonempty:
            xp.add.reduceat(scratch.prod, self._starts, out=out)
        else:
            xp.add.reduceat(scratch.prod, self._starts, out=scratch.seg)
            out.fill(0.0)
            out[self._row_ids] = scratch.seg
        return out

    def spmv_t(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = Aᵀ @ x`` through the transpose gather plan (no ``add.at``).

        ``out`` may alias ``x``; allocation-free when ``out`` is given.
        """
        xp = self._xp
        if x.shape != (self.nrows,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.nrows},)")
        if out is None:
            out = xp.empty(self.ncols, dtype=np.float64)
        else:
            _check_out(out, self.ncols, "out", self.backend)
        self.calls_t += 1
        if self.nnz == 0:
            out.fill(0.0)
            return out
        scratch = self._scratch()
        if self._t_ell_idx is not None:
            return _ell_apply(
                xp, x, self._t_ell_idx, self._t_ell_vals, scratch.t_ell_x, out
            )
        xp.take(x, self._t_rows, out=scratch.t_prod, mode="clip")
        xp.multiply(scratch.t_prod, self._t_data, out=scratch.t_prod)
        if self._all_cols_nonempty:
            xp.add.reduceat(scratch.t_prod, self._t_starts, out=out)
        else:
            xp.add.reduceat(scratch.t_prod, self._t_starts, out=scratch.t_seg)
            out.fill(0.0)
            out[self._t_col_ids] = scratch.t_seg
        return out

    def __repr__(self) -> str:
        return (
            f"SpMVPlan(shape=({self.nrows}, {self.ncols}), nnz={self.nnz}, "
            f"calls={self.calls}+{self.calls_t}T)"
        )
