"""Kernel plans and buffer-reuse runtime for allocation-free hot loops.

The paper's premise — preconditioner application is bound by memory traffic
and communication, not flops — means the Python runtime must not add
per-iteration allocation and metadata overhead on top.  This package
provides:

* :class:`~repro.kernels.plan.SpMVPlan` — per-matrix SpMV metadata
  (reduceat row starts, transpose gather plans, scratch buffers) computed
  once, with allocation-free ``spmv(x, out=)`` / ``spmv_t(x, out=)``;
* :class:`~repro.kernels.workspace.SolverWorkspace` — every Krylov solve
  temporary preallocated and reused, threaded through
  :func:`repro.core.cg.pcg`, :func:`repro.core.solvers.bicgstab` and
  :func:`repro.core.solvers.pipelined_pcg` so warm solves perform zero
  hot-loop array allocations (counted, not asserted — see
  ``scripts/check_no_alloc.py``);
* :func:`~repro.kernels.bench.run_suite` — the microbenchmark suite behind
  ``BENCH_kernels.json`` (``repro bench``).

See ``docs/PERFORMANCE.md`` for the full API walkthrough and invariants.
"""

from repro.kernels.plan import SpMVPlan
from repro.kernels.workspace import SolverWorkspace

__all__ = [
    "SpMVPlan",
    "SolverWorkspace",
    "run_suite",
    "write_suite",
    "format_summary",
]

_BENCH_EXPORTS = ("run_suite", "write_suite", "format_summary")


def __getattr__(name: str):
    # bench drives the solvers, which in turn import this package — loading
    # it lazily keeps the package importable from repro.core.cg
    if name in _BENCH_EXPORTS:
        from repro.kernels import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
