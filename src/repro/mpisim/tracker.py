"""Communication accounting for the simulated MPI runtime.

The paper's central claim is that FSAIE-Comm extensions leave the
communication scheme *unchanged*.  The tracker gives that claim a measurable
form: every point-to-point message and every collective is recorded, so
benchmarks can assert byte-for-byte identical traffic between the FSAI and
FSAIE-Comm solves.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CommError

__all__ = ["CommTracker", "payload_nbytes"]


def payload_nbytes(obj) -> int:
    """Wire size of a message payload in bytes.

    Arrays and scalars are sized exactly; everything else falls back to its
    pickled size (what a real MPI layer would ship for a Python object).  An
    unpicklable payload raises :class:`~repro.errors.CommError` — silently
    counting it as 0 bytes would undercount traffic and break the
    byte-for-byte communication-invariance checks the benchmarks rely on.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (tuple, list)) and all(
        isinstance(x, (int, float, np.integer, np.floating)) for x in obj
    ):
        return 8 * len(obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:
        raise CommError(
            f"cannot size message payload of type {type(obj).__name__}: "
            f"payload is not picklable ({exc!r})"
        ) from exc


@dataclass
class CommTracker:
    """Thread-safe counters of point-to-point and collective traffic.

    In-band telemetry aggregation (:mod:`repro.observe.stream`) is booked
    on a *separate* channel — ``telemetry_messages`` / ``telemetry_bytes``
    via :meth:`record_telemetry` — so observability traffic never pollutes
    the solver's ``p2p_*`` accounting.  The invariance auditor
    (:func:`repro.observe.audit.compare_snapshots`) only normalises the
    solver keys, which is what lets the paper's schedule-unchanged claim be
    re-proved with telemetry enabled.
    """

    p2p_messages: dict[tuple[int, int], int] = field(default_factory=dict)
    p2p_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    collective_calls: dict[str, int] = field(default_factory=dict)
    collective_bytes: dict[str, int] = field(default_factory=dict)
    telemetry_messages: dict[tuple[int, int], int] = field(default_factory=dict)
    telemetry_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_p2p(self, src: int, dst: int, nbytes: int) -> None:
        """Count one point-to-point message of ``nbytes``."""
        key = (int(src), int(dst))
        with self._lock:
            self.p2p_messages[key] = self.p2p_messages.get(key, 0) + 1
            self.p2p_bytes[key] = self.p2p_bytes.get(key, 0) + int(nbytes)

    def record_telemetry(self, src: int, dst: int, nbytes: int) -> None:
        """Count one in-band telemetry message of ``nbytes`` — kept out of
        the solver's point-to-point accounting by design."""
        key = (int(src), int(dst))
        with self._lock:
            self.telemetry_messages[key] = self.telemetry_messages.get(key, 0) + 1
            self.telemetry_bytes[key] = self.telemetry_bytes.get(key, 0) + int(nbytes)

    def record_collective(self, name: str, nbytes: int) -> None:
        """Count one collective operation of ``nbytes``."""
        with self._lock:
            self.collective_calls[name] = self.collective_calls.get(name, 0) + 1
            self.collective_bytes[name] = self.collective_bytes.get(name, 0) + int(nbytes)

    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        """All point-to-point messages recorded."""
        return sum(self.p2p_messages.values())

    @property
    def total_bytes(self) -> int:
        """All point-to-point bytes recorded."""
        return sum(self.p2p_bytes.values())

    @property
    def total_telemetry_messages(self) -> int:
        """All in-band telemetry messages recorded."""
        return sum(self.telemetry_messages.values())

    @property
    def total_telemetry_bytes(self) -> int:
        """All in-band telemetry bytes recorded."""
        return sum(self.telemetry_bytes.values())

    def edges(self) -> set[tuple[int, int]]:
        """The set of (src, dst) pairs that exchanged at least one message."""
        return {k for k, v in self.p2p_messages.items() if v > 0}

    def reset(self) -> None:
        """Clear every counter."""
        with self._lock:
            self.p2p_messages.clear()
            self.p2p_bytes.clear()
            self.collective_calls.clear()
            self.collective_bytes.clear()
            self.telemetry_messages.clear()
            self.telemetry_bytes.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy suitable for comparison/serialisation.

        The ``telemetry_*`` keys ride along for reporting but are ignored
        by :func:`repro.observe.audit.compare_snapshots`, which normalises
        only the solver-traffic keys.
        """
        with self._lock:
            return {
                "p2p_messages": dict(self.p2p_messages),
                "p2p_bytes": dict(self.p2p_bytes),
                "collective_calls": dict(self.collective_calls),
                "collective_bytes": dict(self.collective_bytes),
                "telemetry_messages": dict(self.telemetry_messages),
                "telemetry_bytes": dict(self.telemetry_bytes),
            }

    def same_edges(self, other: "CommTracker") -> bool:
        """True when both trackers saw the same communication graph."""
        return self.edges() == other.edges()

    def same_bytes(self, other: "CommTracker") -> bool:
        """True when both trackers saw identical per-edge p2p byte counts.

        Strictly stronger than :meth:`same_edges` — the byte-for-byte form of
        the paper's invariance claim.  The auditor
        (:func:`repro.observe.audit.compare_snapshots`) reports *which* edges
        differ when this is False.
        """
        return self.edge_bytes() == other.edge_bytes()

    def edge_bytes(self, edge: tuple[int, int] | None = None):
        """Bytes per directed edge: all of them (dict), or one edge's total."""
        with self._lock:
            if edge is not None:
                return self.p2p_bytes.get((int(edge[0]), int(edge[1])), 0)
            return {k: v for k, v in self.p2p_bytes.items() if v > 0}
