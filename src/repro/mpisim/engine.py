"""SPMD execution engine: run rank functions with real message passing.

``send`` is *buffered* (eager-mode MPI): it enqueues and returns immediately,
so the pairwise exchange patterns used by the collectives and halo updates
cannot deadlock on matched sends.  ``recv`` blocks until a matching message
(source, tag) arrives, with a configurable timeout that converts silent
deadlocks into :class:`~repro.errors.CommError`.

Two engines share this transport (selected by ``run_spmd(engine=...)``):

* ``"threads"`` — one preemptively scheduled OS thread per rank (the
  original engine; fine up to a few dozen ranks);
* ``"events"`` — the cooperative engine in :mod:`repro.mpisim.events`:
  rank tasks hold one of a bounded set of run slots while runnable and
  park slot-free on their mailbox's condition variable while blocked, so
  1000+ simulated ranks are practical on one machine.

Delivery is condition-variable driven: each rank owns a :class:`_Mailbox`
whose ``recv`` side scans pending messages under the mailbox lock and then
*sleeps* on the condition until a sender's ``put`` wakes it — no poll loops,
no busy-waiting, and one absolute deadline per receive (earlier revisions
restarted the timeout every time an unrelated message arrived).

NumPy payloads are copied on send so a rank mutating its buffer after the
call cannot corrupt data in flight — the semantics of a real network.

Per-edge message coalescing (``Comm.coalescing``) batches every payload
sent to one destination inside the epoch into a single envelope: the
:class:`~repro.mpisim.tracker.CommTracker` records one message whose byte
count is the exact sum of the batched payloads — fewer messages, identical
per-edge bytes, auditable with :func:`repro.observe.compare_snapshots`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CommError, RankFailedError
from repro.instrument import get_metrics, get_tracer
from repro.mpisim.comm import ANY_TAG, Comm
from repro.mpisim.injection import DuplicateEnvelope, get_injector
from repro.mpisim.tracker import CommTracker, payload_nbytes

__all__ = ["ThreadComm", "Request", "run_spmd", "waitall", "waitany"]

_DEFAULT_TIMEOUT = 120.0

#: Sentinel distinguishing "no matching message" from a ``None`` payload.
_NOTHING = object()


class _Mailbox:
    """One rank's incoming-message queue with (source, tag) matching.

    A single consumer (the owning rank) pops the earliest message matching
    a ``(source, tag)`` pair; non-matching messages stay queued in arrival
    order.  Blocking receives sleep on the mailbox condition until a
    sender's :meth:`put` notifies them — a true wakeup, never a poll loop.

    Each entry carries an *availability* timestamp modelling link latency:
    a message only becomes matchable once ``time.monotonic()`` passes it
    (``0.0`` — the default — means immediately).
    """

    __slots__ = ("cond", "items")

    def __init__(self):
        self.cond = threading.Condition()
        self.items: list[tuple[int, int, Any, float]] = []

    def put(self, src: int, tag: int, obj, avail: float = 0.0) -> None:
        """Enqueue one message and wake the (single) receiver."""
        with self.cond:
            self.items.append((src, tag, obj, avail))
            self.cond.notify()

    def put_many(
        self, entries: Sequence[tuple[int, int, Any, float]]
    ) -> None:
        """Enqueue several messages under one lock acquisition."""
        with self.cond:
            self.items.extend(entries)
            self.cond.notify()

    def pop_match(self, source: int, tag: int, now: float):
        """Pop the earliest *available* message from ``source``/``tag``.

        Caller must hold :attr:`cond`.  Returns ``(entry, next_avail)``:
        the matched ``(src, tag, obj, avail)`` tuple (or ``None``), and the
        earliest future availability among matching in-flight messages (or
        ``None``) so a blocked receiver knows when to wake and re-scan.
        """
        next_avail = None
        for i, entry in enumerate(self.items):
            if entry[0] == source and (tag == ANY_TAG or entry[1] == tag):
                if entry[3] <= now:
                    del self.items[i]
                    return entry, None
                if next_avail is None or entry[3] < next_avail:
                    next_avail = entry[3]
        return None, next_avail


class Request:
    """Handle for a nonblocking operation (mpi4py ``isend``/``irecv`` style).

    Send requests complete immediately (sends are buffered); receive
    requests complete when a matching message is available.  ``wait`` blocks
    and returns the payload (``None`` for sends); ``test`` polls.  Requests
    compose with :func:`waitall` and :func:`waitany`.
    """

    __slots__ = ("_comm", "_source", "_tag", "_done", "_value")

    def __init__(self, comm=None, source: int | None = None, tag: int = ANY_TAG,
                 *, completed: bool = False, value=None):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = completed
        self._value = value

    @property
    def source(self) -> int | None:
        """Peer rank a receive request is matching on (``None`` for sends)."""
        return self._source

    def wait(self, timeout: float | None = None):
        """Block until complete; returns the received payload (sends: None).

        The blocking path parks on the mailbox condition variable — an idle
        rank waiting on a request consumes no CPU.
        """
        if not self._done:
            self._value = self._comm.recv(self._source, self._tag, timeout=timeout)
            self._done = True
        return self._value

    def test(self) -> tuple[bool, object]:
        """Non-blocking completion check: ``(done, payload_or_None)``."""
        if self._done:
            return True, self._value
        value = self._comm._try_recv(self._source, self._tag)
        if value is _NOTHING:
            return False, None
        self._value = value
        self._done = True
        return True, self._value


def waitall(requests) -> list:
    """Wait on every request; returns their payloads in order."""
    return [req.wait() for req in requests]


def waitany(requests, timeout: float | None = None) -> tuple[int, object]:
    """Wait until *one* request completes; returns ``(index, payload)``.

    Completed requests are preferred (cheap test scan); otherwise the call
    blocks on whichever incomplete request matches first, scanning in order
    with short condition waits so a message for any pending request wakes
    the caller.  Raises :class:`~repro.errors.CommError` when ``requests``
    is empty or the timeout expires with nothing complete.
    """
    reqs = list(requests)
    if not reqs:
        raise CommError("waitany needs at least one request")
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        for i, req in enumerate(reqs):
            done, value = req.test()
            if done:
                return i, value
        # block until *anything* lands in the mailbox, then rescan
        comm = next((r._comm for r in reqs if r._comm is not None), None)
        if comm is None:  # all completed-at-construction, none matched above
            return 0, reqs[0].wait()
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            raise CommError("waitany timed out with no completed request")
        comm._wait_for_any(remaining)


class ThreadComm(Comm):
    """Communicator endpoint for one SPMD rank (thread or event engine)."""

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: Sequence[_Mailbox],
        tracker: CommTracker | None,
        timeout: float,
        latency: float = 0.0,
    ):
        self.rank = rank
        self.size = size
        self._mailboxes = mailboxes
        self.tracker = tracker
        self._timeout = timeout
        self._latency = float(latency)
        self._seen_dups: set[int] = set()  # sequence ids of delivered duplicates
        self._coalesce_depth = 0
        self._coalesce_buf: dict[int, list[tuple[int, Any]]] = {}

    def _avail(self) -> float:
        """Earliest instant a message sent now becomes matchable."""
        return time.monotonic() + self._latency if self._latency > 0.0 else 0.0

    # -- engine hooks ---------------------------------------------------
    def _on_park(self) -> None:
        """Called once when a receive is about to block (event engine frees
        its run slot here); the thread engine just sleeps on the condition."""

    def _on_unpark(self) -> None:
        """Called once after a blocked receive resumes (event engine
        re-acquires a run slot here)."""

    # ------------------------------------------------------------------
    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Buffered (eager) send: enqueue and return immediately.

        Each message is recorded in the tracker (when attached) and, with
        tracing enabled, emitted as an ``mpisim.send`` instant event tagged
        with source, destination, tag and payload bytes.  Inside a
        :meth:`Comm.coalescing` epoch the payload is staged per destination
        and shipped in one envelope at flush time instead.
        """
        self._check_peer(dest)
        if dest == self.rank:
            raise CommError("send to self is not supported; restructure the exchange")
        if isinstance(obj, np.ndarray):
            obj = obj.copy()
        injector = get_injector()
        if injector is not None:
            obj = self._inject_on_send(injector, obj, dest, tag)
        if self._coalesce_depth > 0 and injector is None:
            self._coalesce_buf.setdefault(dest, []).append((tag, obj))
            return
        self._deliver(obj, dest, tag)

    def _deliver(self, obj, dest: int, tag: int) -> None:
        """Account for and enqueue one wire message."""
        tracer = get_tracer()
        if (
            self.tracker is not None
            or tracer.enabled
            or (self.telemetry is not None and not self._telemetry_mode)
        ):
            self._account_send(dest, tag, payload_nbytes(obj), tracer)
        self._mailboxes[dest].put(self.rank, tag, obj, self._avail())

    def _account_send(self, dest: int, tag: int, nbytes: int, tracer,
                      coalesced: int = 0) -> None:
        """Book one outgoing wire message with tracker, tracer and telemetry.

        Inside a :meth:`Comm.telemetry_channel` context the message is
        in-band telemetry: it lands in the tracker's separate telemetry
        accounting (excluded from the invariance audit), its trace event is
        tagged ``channel="telemetry"`` (excluded from timelines), and it is
        never observed into the telemetry histograms themselves.
        """
        if self._telemetry_mode:
            if self.tracker is not None:
                self.tracker.record_telemetry(self.rank, dest, nbytes)
            if tracer.enabled:
                tracer.event("mpisim.send", src=self.rank, dst=dest, tag=tag,
                             bytes=nbytes, channel="telemetry")
                metrics = get_metrics()
                metrics.counter("mpisim.telemetry_messages").inc()
                metrics.counter("mpisim.telemetry_bytes").inc(nbytes)
            return
        if self.telemetry is not None:
            self.telemetry.observe_message(nbytes)
        if self.tracker is not None:
            self.tracker.record_p2p(self.rank, dest, nbytes)
        if tracer.enabled:
            extra = {"coalesced": coalesced} if coalesced else {}
            tracer.event("mpisim.send", src=self.rank, dst=dest, tag=tag,
                         bytes=nbytes, **extra)
            metrics = get_metrics()
            metrics.counter("mpisim.messages").inc()
            metrics.counter("mpisim.bytes").inc(nbytes)
            if coalesced:
                metrics.counter("mpisim.coalesced_payloads").inc(coalesced)

    # -- coalescing -----------------------------------------------------
    @contextmanager
    def coalescing(self):
        """Per-edge message coalescing epoch.

        Every ``send`` inside the epoch is staged per destination; on exit
        (or before any blocking receive, to preserve progress) each
        destination's staged payloads travel as **one** envelope.  The
        tracker records one message per edge whose byte count is the exact
        sum of the batched payloads — fewer messages, identical per-edge
        bytes.  Nested epochs flush once, at the outermost exit.

        With a fault injector installed, coalescing deactivates so that
        drop/delay/duplicate verdicts keep their exact per-message
        semantics (the chaos gates depend on them).
        """
        self._coalesce_depth += 1
        try:
            yield self
        finally:
            self._coalesce_depth -= 1
            if self._coalesce_depth == 0:
                self._flush_coalesced()

    def _flush_coalesced(self) -> None:
        """Ship every staged per-destination batch as a single envelope."""
        if not self._coalesce_buf:
            return
        buf, self._coalesce_buf = self._coalesce_buf, {}
        tracer = get_tracer()
        for dest, items in buf.items():
            if len(items) == 1:
                tag, obj = items[0]
                self._deliver(obj, dest, tag)
                continue
            if (
                self.tracker is not None
                or tracer.enabled
                or (self.telemetry is not None and not self._telemetry_mode)
            ):
                nbytes = sum(payload_nbytes(obj) for _, obj in items)
                self._account_send(dest, items[0][0], nbytes, tracer,
                                   coalesced=len(items))
            # one envelope on the wire; the receiver matches the payloads
            # individually, in the order they were staged
            avail = self._avail()
            self._mailboxes[dest].put_many(
                [(self.rank, tag, obj, avail) for tag, obj in items]
            )

    # -- fault injection ------------------------------------------------
    def _apply_rank_faults(self, injector) -> None:
        """Raise on permanent failure; serve any pending transient stall.

        Called on entry to every injected send/recv, so ``at_update`` in a
        stall/failure rule counts this rank's communication operations.
        """
        if injector.rank_failed(self.rank):
            raise RankFailedError(self.rank)
        seconds = injector.consume_stall(self.rank)
        if seconds > 0:
            tracer = get_tracer()
            get_metrics().counter("resilience.stalls").inc()
            with tracer.span("resilience.stall", rank=self.rank, seconds=seconds):
                injector.sleep(seconds)

    def _inject_on_send(self, injector, obj, dest: int, tag: int):
        """Run one outgoing message through the installed fault plan.

        Reliable-transport semantics: drops and over-timeout delays cost a
        retry (``mpisim.retries``) with linear backoff until the plan's
        ``max_retries`` is exhausted (``mpisim.timeouts`` +
        :class:`~repro.errors.CommError`).  Returns the payload to enqueue
        — possibly bit-flipped, possibly wrapped in a
        :class:`~repro.mpisim.injection.DuplicateEnvelope` (in which case
        the extra copy is enqueued here and deduplicated by the receiver).
        """
        self._apply_rank_faults(injector)
        plan = injector.plan
        tracer = get_tracer()
        metrics = get_metrics()
        attempts = 0
        while True:
            verdict = injector.message_verdict(self.rank, dest, tag)
            if verdict.dropped or verdict.delay_s > plan.message_timeout:
                attempts += 1
                injector.record_retry()
                metrics.counter("mpisim.retries", rank=self.rank).inc()
                tracer.event(
                    "resilience.retry",
                    src=self.rank,
                    dst=dest,
                    attempt=attempts,
                    cause="drop" if verdict.dropped else "timeout",
                )
                if attempts > plan.max_retries:
                    metrics.counter("mpisim.timeouts", rank=self.rank).inc()
                    raise CommError(
                        f"send {self.rank}->{dest} (tag {tag}) lost {attempts} "
                        f"times (max_retries={plan.max_retries}); giving up"
                    )
                with tracer.span("resilience.backoff", src=self.rank, dst=dest,
                                 attempt=attempts):
                    injector.sleep(plan.backoff * attempts)
                continue
            break
        if verdict.delay_s > 0:
            with tracer.span("resilience.delay", src=self.rank, dst=dest,
                             seconds=verdict.delay_s):
                injector.sleep(verdict.delay_s)
        if verdict.flip_bit is not None:
            obj = injector.corrupt(obj, verdict)
            metrics.counter("resilience.bitflips").inc()
            tracer.event("resilience.bitflip", src=self.rank, dst=dest,
                         bit=verdict.flip_bit)
        if verdict.duplicated:
            obj = DuplicateEnvelope(injector.next_duplicate_seq(), obj)
            metrics.counter("mpisim.dup_messages").inc()
            tracer.event("resilience.duplicate", src=self.rank, dst=dest, seq=obj.seq)
            self._mailboxes[dest].put(self.rank, tag, obj, self._avail())  # extra copy
        return obj

    def _accept(self, obj) -> tuple[bool, Any]:
        """Unwrap duplicate envelopes; ``(False, None)`` for stale copies."""
        if isinstance(obj, DuplicateEnvelope):
            if obj.seq in self._seen_dups:
                return False, None
            self._seen_dups.add(obj.seq)
            return True, obj.payload
        return True, obj

    # -- nonblocking ----------------------------------------------------
    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Nonblocking send: buffered, hence complete on return."""
        self.send(obj, dest, tag)
        return Request(completed=True)

    def irecv(self, source: int, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; complete via ``Request.wait``/``test``."""
        self._check_peer(source)
        return Request(self, source, tag)

    # -- receive --------------------------------------------------------
    def _try_recv(self, source: int, tag: int):
        """Deliver a matching message without blocking, else ``_NOTHING``."""
        self._flush_coalesced()
        mailbox = self._mailboxes[self.rank]
        tracer = get_tracer()
        while True:
            with mailbox.cond:
                entry, _ = mailbox.pop_match(source, tag, time.monotonic())
            if entry is None:
                return _NOTHING
            deliver, payload = self._accept(entry[2])
            if not deliver:
                continue  # stale duplicate; keep scanning
            if tracer.enabled:
                tracer.event("mpisim.recv", src=entry[0], dst=self.rank, tag=entry[1])
            return payload

    def recv(self, source: int, tag: int = ANY_TAG, *, timeout: float | None = None):
        """Block until a message matching ``(source, tag)`` arrives.

        With tracing enabled, time spent blocked on the mailbox is recorded
        as an ``mpisim.wait`` span tagged with the awaited source — the raw
        material for the timeline layer's wait-time attribution.  A blocked
        receive is also streamed into this rank's telemetry endpoint (when
        installed) as a wait observation classified by tag; receives made
        inside the telemetry channel record neither spans nor observations.
        Any open coalescing epoch flushes first so peers never starve
        waiting on a staged message.
        """
        self._check_peer(source)
        if source == self.rank:
            raise CommError("recv from self is not supported")
        injector = get_injector()
        if injector is not None:
            self._apply_rank_faults(injector)
        value = self._try_recv(source, tag)
        if value is not _NOTHING:
            return value
        limit = self._timeout if timeout is None else timeout
        tracer = get_tracer()
        telemetry = self.telemetry if not self._telemetry_mode else None
        start = time.monotonic() if telemetry is not None else 0.0
        try:
            if tracer.enabled and not self._telemetry_mode:
                with tracer.span("mpisim.wait", rank=self.rank, src=source,
                                 tag=tag):
                    return self._recv_blocking(source, tag, limit, tracer)
            return self._recv_blocking(source, tag, limit, tracer)
        finally:
            if telemetry is not None:
                telemetry.observe_wait(time.monotonic() - start, tag=tag,
                                       src=source)

    def _recv_blocking(self, source: int, tag: int, limit: float, tracer):
        """Sleep on the mailbox condition until a match arrives or ``limit``
        (one absolute deadline) expires — a condition-variable wakeup, not a
        poll loop, so idle ranks burn no CPU."""
        mailbox = self._mailboxes[self.rank]
        deadline = time.monotonic() + limit
        parked = False
        try:
            while True:
                timed_out = False
                with mailbox.cond:
                    now = time.monotonic()
                    entry, next_avail = mailbox.pop_match(source, tag, now)
                    while entry is None:
                        remaining = deadline - now
                        if remaining <= 0:
                            timed_out = True
                            break
                        if next_avail is not None:
                            # an in-flight match exists; wake when its
                            # modelled link latency elapses
                            remaining = min(remaining, max(next_avail - now, 0.0))
                        if not parked:
                            parked = True
                            self._on_park()  # releasing a slot never blocks
                        mailbox.cond.wait(remaining)
                        now = time.monotonic()
                        entry, next_avail = mailbox.pop_match(source, tag, now)
                if timed_out:
                    raise CommError(
                        f"rank {self.rank}: recv(source={source}, tag={tag}) "
                        f"timed out after {limit}s — likely deadlock or "
                        "missing send"
                    )
                deliver, payload = self._accept(entry[2])
                if not deliver:
                    continue  # stale duplicate of an already-delivered message
                if tracer.enabled:
                    tracer.event("mpisim.recv", src=entry[0], dst=self.rank,
                                 tag=entry[1])
                return payload
        finally:
            if parked:
                self._on_unpark()  # re-acquire outside the mailbox lock

    def _wait_for_any(self, timeout: float | None) -> None:
        """Park until *any* message lands in this rank's mailbox (or the
        timeout passes); used by :func:`waitany` between matching scans."""
        self._flush_coalesced()
        mailbox = self._mailboxes[self.rank]
        parked = False
        try:
            with mailbox.cond:
                if any(e[3] <= time.monotonic() for e in mailbox.items):
                    return
                parked = True
                self._on_park()
                mailbox.cond.wait(0.05 if timeout is None else min(timeout, 0.05))
        finally:
            if parked:
                self._on_unpark()


def run_spmd(
    fn: Callable[..., Any],
    size: int,
    *args,
    tracker: CommTracker | None = None,
    timeout: float = _DEFAULT_TIMEOUT,
    engine: str = "threads",
    workers: int | None = None,
    latency: float = 0.0,
    telemetry=None,
    **kwargs,
) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; return all results.

    ``engine`` selects the execution substrate with identical messaging
    semantics (collectives, fault injection, tracer spans and tracker
    accounting behave the same on both):

    * ``"threads"`` (default) — one preemptive OS thread per rank.  Right
      for small rank counts and for rank functions that genuinely benefit
      from preemption.
    * ``"events"`` — the cooperative engine (:mod:`repro.mpisim.events`):
      at most ``workers`` rank tasks are runnable at once and blocked tasks
      park slot-free on their mailbox condition, so 1000+ ranks simulate
      without thrashing the OS scheduler.  ``workers`` defaults to a small
      multiple of the CPU count.

    ``latency`` models per-message link latency in seconds: a sent message
    only becomes matchable on the receiver once the latency elapses (the
    send itself stays nonblocking).  The default ``0.0`` delivers
    immediately with zero overhead.  A nonzero latency is wall-clock a
    receiver can hide by computing between posting receives and waiting —
    the mechanism that makes communication/computation overlap measurable
    in :mod:`repro.observe.timeline`.

    ``telemetry`` takes a :class:`repro.observe.stream.TelemetryConfig`
    (duck-typed: anything with ``make_rank(rank, size)`` and
    ``collect(comm, rank_telemetry)``): each rank gets a bounded telemetry
    endpoint on ``comm.telemetry``, the transport streams blocked-receive
    waits and message sizes into it, and after ``fn`` returns the per-rank
    summaries are reduced in-band over an O(log P) tree — booked as
    telemetry traffic, invisible to the audited solver schedule.

    The first exception raised by any rank is re-raised in the caller after
    all ranks finish or are abandoned at the timeout.

    Notes
    -----
    This is a *correctness* runtime: with CPython's GIL, NumPy-heavy rank
    functions interleave rather than speed up.  Its purpose is to execute the
    genuine distributed algorithm — real messages, real orderings — so the
    deterministic BSP layer in :mod:`repro.dist` can be validated against it.
    """
    if size < 1:
        raise CommError("size must be >= 1")
    if engine == "events":
        from repro.mpisim.events import run_spmd_events

        return run_spmd_events(
            fn, size, *args, tracker=tracker, timeout=timeout, workers=workers,
            latency=latency, telemetry=telemetry, **kwargs,
        )
    if engine != "threads":
        raise CommError(f"unknown engine {engine!r}; use 'threads' or 'events'")
    mailboxes = [_Mailbox() for _ in range(size)]
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    # the launch event anchors per-rank clock offsets: each rank's root
    # span records its start relative to this instant, so the timeline
    # layer can align (and report) rank clock skew
    tracer = get_tracer()
    launch_t0 = None
    if tracer.enabled:
        launch_t0 = tracer.event("mpisim.launch", ranks=size).start

    def _worker(rank: int) -> None:
        comm = ThreadComm(rank, size, mailboxes, tracker, timeout, latency)
        if telemetry is not None:
            comm.telemetry = telemetry.make_rank(rank, size)
        try:
            if tracer.enabled:
                with tracer.span("spmd.rank", rank=rank) as root:
                    if launch_t0 is not None:
                        root.set_tag("clock_offset", root.start - launch_t0)
                    results[rank] = fn(comm, *args, **kwargs)
            else:
                results[rank] = fn(comm, *args, **kwargs)
            if telemetry is not None:
                telemetry.collect(comm, comm.telemetry)
        except BaseException as exc:  # noqa: BLE001 — propagated to caller
            with lock:
                errors.append((rank, exc))

    threads = [
        threading.Thread(target=_worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    join_deadline = time.monotonic() + timeout * 2
    for t in threads:
        t.join(timeout=max(0.0, join_deadline - time.monotonic()))
    if errors:
        errors.sort(key=lambda e: e[0])
        rank, exc = errors[0]
        raise CommError(f"rank {rank} failed: {exc!r}") from exc
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise CommError(f"{len(alive)} ranks still running after timeout (deadlock?)")
    return results
