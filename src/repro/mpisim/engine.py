"""SPMD execution engine: run rank functions on threads with message passing.

``send`` is *buffered* (eager-mode MPI): it enqueues and returns immediately,
so the pairwise exchange patterns used by the collectives and halo updates
cannot deadlock on matched sends.  ``recv`` blocks until a matching message
(source, tag) arrives, with a configurable timeout that converts silent
deadlocks into :class:`~repro.errors.CommError`.

NumPy payloads are copied on send so a rank mutating its buffer after the
call cannot corrupt data in flight — the semantics of a real network.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CommError, RankFailedError
from repro.instrument import get_metrics, get_tracer
from repro.mpisim.comm import ANY_TAG, Comm
from repro.mpisim.injection import DuplicateEnvelope, get_injector
from repro.mpisim.tracker import CommTracker, payload_nbytes

__all__ = ["ThreadComm", "Request", "run_spmd", "waitall"]

_DEFAULT_TIMEOUT = 120.0


class Request:
    """Handle for a nonblocking operation (mpi4py ``isend``/``irecv`` style).

    Send requests complete immediately (sends are buffered); receive
    requests complete when a matching message is available.  ``wait`` blocks
    and returns the payload (``None`` for sends); ``test`` polls.
    """

    __slots__ = ("_comm", "_source", "_tag", "_done", "_value")

    def __init__(self, comm=None, source: int | None = None, tag: int = ANY_TAG,
                 *, completed: bool = False, value=None):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = completed
        self._value = value

    def wait(self, timeout: float | None = None):
        """Block until complete; returns the received payload (sends: None)."""
        if not self._done:
            self._value = self._comm.recv(self._source, self._tag, timeout=timeout)
            self._done = True
        return self._value

    def test(self) -> tuple[bool, object]:
        """Non-blocking completion check: ``(done, payload_or_None)``."""
        if self._done:
            return True, self._value
        try:
            self._value = self._comm.recv(self._source, self._tag, timeout=0.0)
            self._done = True
            return True, self._value
        except CommError:
            return False, None


def waitall(requests) -> list:
    """Wait on every request; returns their payloads in order."""
    return [req.wait() for req in requests]


class ThreadComm(Comm):
    """Communicator endpoint for one SPMD thread."""

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: Sequence[queue.Queue],
        tracker: CommTracker | None,
        timeout: float,
    ):
        self.rank = rank
        self.size = size
        self._mailboxes = mailboxes
        self.tracker = tracker
        self._timeout = timeout
        self._pending: list[tuple[int, int, Any]] = []  # out-of-order stash
        self._seen_dups: set[int] = set()  # sequence ids of delivered duplicates

    # ------------------------------------------------------------------
    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Buffered (eager) send: enqueue and return immediately.

        Each message is recorded in the tracker (when attached) and, with
        tracing enabled, emitted as an ``mpisim.send`` instant event tagged
        with source, destination, tag and payload bytes.
        """
        self._check_peer(dest)
        if dest == self.rank:
            raise CommError("send to self is not supported; restructure the exchange")
        if isinstance(obj, np.ndarray):
            obj = obj.copy()
        injector = get_injector()
        if injector is not None:
            obj = self._inject_on_send(injector, obj, dest, tag)
        tracer = get_tracer()
        if self.tracker is not None or tracer.enabled:
            nbytes = payload_nbytes(obj)
            if self.tracker is not None:
                self.tracker.record_p2p(self.rank, dest, nbytes)
            if tracer.enabled:
                tracer.event("mpisim.send", src=self.rank, dst=dest, tag=tag,
                             bytes=nbytes)
                metrics = get_metrics()
                metrics.counter("mpisim.messages").inc()
                metrics.counter("mpisim.bytes").inc(nbytes)
        self._mailboxes[dest].put((self.rank, tag, obj))

    def _apply_rank_faults(self, injector) -> None:
        """Raise on permanent failure; serve any pending transient stall.

        Called on entry to every injected send/recv, so ``at_update`` in a
        stall/failure rule counts this rank's communication operations.
        """
        if injector.rank_failed(self.rank):
            raise RankFailedError(self.rank)
        seconds = injector.consume_stall(self.rank)
        if seconds > 0:
            tracer = get_tracer()
            get_metrics().counter("resilience.stalls").inc()
            with tracer.span("resilience.stall", rank=self.rank, seconds=seconds):
                injector.sleep(seconds)

    def _inject_on_send(self, injector, obj, dest: int, tag: int):
        """Run one outgoing message through the installed fault plan.

        Reliable-transport semantics: drops and over-timeout delays cost a
        retry (``mpisim.retries``) with linear backoff until the plan's
        ``max_retries`` is exhausted (``mpisim.timeouts`` +
        :class:`~repro.errors.CommError`).  Returns the payload to enqueue
        — possibly bit-flipped, possibly wrapped in a
        :class:`~repro.mpisim.injection.DuplicateEnvelope` (in which case
        the extra copy is enqueued here and deduplicated by the receiver).
        """
        self._apply_rank_faults(injector)
        plan = injector.plan
        tracer = get_tracer()
        metrics = get_metrics()
        attempts = 0
        while True:
            verdict = injector.message_verdict(self.rank, dest, tag)
            if verdict.dropped or verdict.delay_s > plan.message_timeout:
                attempts += 1
                injector.record_retry()
                metrics.counter("mpisim.retries", rank=self.rank).inc()
                tracer.event(
                    "resilience.retry",
                    src=self.rank,
                    dst=dest,
                    attempt=attempts,
                    cause="drop" if verdict.dropped else "timeout",
                )
                if attempts > plan.max_retries:
                    metrics.counter("mpisim.timeouts", rank=self.rank).inc()
                    raise CommError(
                        f"send {self.rank}->{dest} (tag {tag}) lost {attempts} "
                        f"times (max_retries={plan.max_retries}); giving up"
                    )
                with tracer.span("resilience.backoff", src=self.rank, dst=dest,
                                 attempt=attempts):
                    injector.sleep(plan.backoff * attempts)
                continue
            break
        if verdict.delay_s > 0:
            with tracer.span("resilience.delay", src=self.rank, dst=dest,
                             seconds=verdict.delay_s):
                injector.sleep(verdict.delay_s)
        if verdict.flip_bit is not None:
            obj = injector.corrupt(obj, verdict)
            metrics.counter("resilience.bitflips").inc()
            tracer.event("resilience.bitflip", src=self.rank, dst=dest,
                         bit=verdict.flip_bit)
        if verdict.duplicated:
            obj = DuplicateEnvelope(injector.next_duplicate_seq(), obj)
            metrics.counter("mpisim.dup_messages").inc()
            tracer.event("resilience.duplicate", src=self.rank, dst=dest, seq=obj.seq)
            self._mailboxes[dest].put((self.rank, tag, obj))  # the extra copy
        return obj

    def _accept(self, obj) -> tuple[bool, Any]:
        """Unwrap duplicate envelopes; ``(False, None)`` for stale copies."""
        if isinstance(obj, DuplicateEnvelope):
            if obj.seq in self._seen_dups:
                return False, None
            self._seen_dups.add(obj.seq)
            return True, obj.payload
        return True, obj

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Nonblocking send: buffered, hence complete on return."""
        self.send(obj, dest, tag)
        return Request(completed=True)

    def irecv(self, source: int, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; complete via ``Request.wait``/``test``."""
        self._check_peer(source)
        return Request(self, source, tag)

    def recv(self, source: int, tag: int = ANY_TAG, *, timeout: float | None = None):
        """Block until a message matching ``(source, tag)`` arrives.

        With tracing enabled, time spent blocked on the mailbox is recorded
        as an ``mpisim.wait`` span tagged with the awaited source — the raw
        material for the timeline layer's wait-time attribution.
        """
        self._check_peer(source)
        if source == self.rank:
            raise CommError("recv from self is not supported")
        injector = get_injector()
        if injector is not None:
            self._apply_rank_faults(injector)
        limit = self._timeout if timeout is None else timeout
        tracer = get_tracer()
        # check the stash of earlier non-matching messages first
        k = 0
        while k < len(self._pending):
            src, t, obj = self._pending[k]
            if src == source and (tag == ANY_TAG or t == tag):
                del self._pending[k]
                deliver, payload = self._accept(obj)
                if not deliver:
                    continue  # stale duplicate; keep scanning from k
                if tracer.enabled:
                    tracer.event("mpisim.recv", src=src, dst=self.rank, tag=t)
                return payload
            k += 1
        if tracer.enabled:
            with tracer.span("mpisim.wait", rank=self.rank, src=source, tag=tag):
                return self._recv_blocking(source, tag, limit, tracer)
        return self._recv_blocking(source, tag, limit, tracer)

    def _recv_blocking(self, source: int, tag: int, limit: float, tracer):
        while True:
            try:
                src, t, obj = self._mailboxes[self.rank].get(timeout=limit)
            except queue.Empty:
                raise CommError(
                    f"rank {self.rank}: recv(source={source}, tag={tag}) timed out "
                    f"after {limit}s — likely deadlock or missing send"
                ) from None
            if src == source and (tag == ANY_TAG or t == tag):
                deliver, payload = self._accept(obj)
                if not deliver:
                    continue  # stale duplicate of an already-delivered message
                if tracer.enabled:
                    tracer.event("mpisim.recv", src=src, dst=self.rank, tag=t)
                return payload
            self._pending.append((src, t, obj))


def run_spmd(
    fn: Callable[..., Any],
    size: int,
    *args,
    tracker: CommTracker | None = None,
    timeout: float = _DEFAULT_TIMEOUT,
    **kwargs,
) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; return all results.

    Each rank executes on its own thread with a :class:`ThreadComm`.  The
    first exception raised by any rank is re-raised in the caller after all
    threads finish or are abandoned at the timeout.

    Notes
    -----
    This is a *correctness* runtime: with CPython's GIL, NumPy-heavy rank
    functions interleave rather than speed up.  Its purpose is to execute the
    genuine distributed algorithm — real messages, real orderings — so the
    deterministic BSP layer in :mod:`repro.dist` can be validated against it.
    """
    if size < 1:
        raise CommError("size must be >= 1")
    mailboxes = [queue.Queue() for _ in range(size)]
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    # the launch event anchors per-rank clock offsets: each rank's root
    # span records its start relative to this instant, so the timeline
    # layer can align (and report) rank clock skew
    tracer = get_tracer()
    launch_t0 = None
    if tracer.enabled:
        launch_t0 = tracer.event("mpisim.launch", ranks=size).start

    def _worker(rank: int) -> None:
        comm = ThreadComm(rank, size, mailboxes, tracker, timeout)
        try:
            if tracer.enabled:
                with tracer.span("spmd.rank", rank=rank) as root:
                    if launch_t0 is not None:
                        root.set_tag("clock_offset", root.start - launch_t0)
                    results[rank] = fn(comm, *args, **kwargs)
            else:
                results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — propagated to caller
            with lock:
                errors.append((rank, exc))

    threads = [
        threading.Thread(target=_worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout * 2)
    if errors:
        errors.sort(key=lambda e: e[0])
        rank, exc = errors[0]
        raise CommError(f"rank {rank} failed: {exc!r}") from exc
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise CommError(f"{len(alive)} ranks still running after timeout (deadlock?)")
    return results
