"""Simulated MPI runtime (the repo's distributed-memory substrate).

The paper runs on MPI over up to 32 768 cores; offline we substitute an
MPI-like SPMD runtime with identical semantics for everything the algorithms
depend on: ranks, blocking point-to-point messages with tags, and collective
operations with realistic message patterns.  A :class:`CommTracker` records
every message so communication-invariance (the paper's core guarantee) is a
testable property.

Public surface:

* :func:`run_spmd` — execute a rank function on N ranks; pick the
  substrate with ``engine="threads"`` (one OS thread per rank) or
  ``engine="events"`` (cooperative tasks on a bounded worker pool,
  practical at 1000+ ranks).
* :class:`Comm`, :class:`ThreadComm`, :class:`EventComm`,
  :class:`SelfComm` — communicators.
* :class:`Request`, :func:`waitall`, :func:`waitany` — nonblocking
  completion handles (``comm.isend`` / ``comm.irecv``).
* ``comm.coalescing()`` — per-edge message coalescing epochs (fewer
  tracked messages, byte-identical per edge).
* :data:`SUM`, :data:`MAX`, :data:`MIN` — reduction operators.
* :class:`CommTracker`, :func:`payload_nbytes` — traffic accounting.
* :func:`get_injector` / :func:`install_injector` / :func:`clear_injector` —
  the fault-injection hook consumed by :mod:`repro.resilience`.
"""

from repro.mpisim.comm import ANY_TAG, MAX, MIN, SUM, Comm, ReduceOp, SelfComm
from repro.mpisim.engine import Request, ThreadComm, run_spmd, waitall, waitany
from repro.mpisim.events import EventComm, default_workers
from repro.mpisim.injection import (
    DuplicateEnvelope,
    clear_injector,
    get_injector,
    install_injector,
)
from repro.mpisim.tracker import CommTracker, payload_nbytes

__all__ = [
    "Comm",
    "SelfComm",
    "ThreadComm",
    "EventComm",
    "default_workers",
    "Request",
    "waitall",
    "waitany",
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "ANY_TAG",
    "run_spmd",
    "CommTracker",
    "payload_nbytes",
    "get_injector",
    "install_injector",
    "clear_injector",
    "DuplicateEnvelope",
]
