"""Simulated MPI runtime (the repo's distributed-memory substrate).

The paper runs on MPI over up to 32 768 cores; offline we substitute an
MPI-like SPMD runtime with identical semantics for everything the algorithms
depend on: ranks, blocking point-to-point messages with tags, and collective
operations with realistic message patterns.  A :class:`CommTracker` records
every message so communication-invariance (the paper's core guarantee) is a
testable property.

Public surface:

* :func:`run_spmd` — execute a rank function on N threads.
* :class:`Comm`, :class:`ThreadComm`, :class:`SelfComm` — communicators.
* :data:`SUM`, :data:`MAX`, :data:`MIN` — reduction operators.
* :class:`CommTracker`, :func:`payload_nbytes` — traffic accounting.
* :func:`get_injector` / :func:`install_injector` / :func:`clear_injector` —
  the fault-injection hook consumed by :mod:`repro.resilience`.
"""

from repro.mpisim.comm import ANY_TAG, MAX, MIN, SUM, Comm, ReduceOp, SelfComm
from repro.mpisim.engine import Request, ThreadComm, run_spmd, waitall
from repro.mpisim.injection import (
    DuplicateEnvelope,
    clear_injector,
    get_injector,
    install_injector,
)
from repro.mpisim.tracker import CommTracker, payload_nbytes

__all__ = [
    "Comm",
    "SelfComm",
    "ThreadComm",
    "Request",
    "waitall",
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "ANY_TAG",
    "run_spmd",
    "CommTracker",
    "payload_nbytes",
    "get_injector",
    "install_injector",
    "clear_injector",
    "DuplicateEnvelope",
]
