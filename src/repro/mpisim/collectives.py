"""Generic collective algorithms over blocking point-to-point primitives.

Each collective here uses a textbook message pattern (binomial trees,
recursive doubling, rings) so the :class:`~repro.mpisim.tracker.CommTracker`
records traffic shaped like a real MPI implementation:

* ``barrier``    — dissemination, ⌈log₂P⌉ rounds;
* ``bcast``      — binomial tree;
* ``reduce``     — binomial tree (reversed);
* ``allreduce``  — recursive doubling with a fold-in step for non-powers of 2;
* ``gather`` / ``scatter`` — linear to/from root (as small-message MPI does);
* ``allgather``  — ring, P−1 rounds;
* ``alltoall``   — pairwise exchange.

Reduction operators must be associative; floating-point reductions are
deterministic for a fixed size because the combine order is fixed.
"""

from __future__ import annotations

from repro.errors import CommError
from repro.mpisim.comm import Comm, ReduceOp

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "scan",
    "reduce_scatter",
]

_TAG_BARRIER = 1_000_001
_TAG_BCAST = 1_000_002
_TAG_REDUCE = 1_000_003
_TAG_ALLREDUCE = 1_000_004
_TAG_GATHER = 1_000_005
_TAG_ALLGATHER = 1_000_006
_TAG_SCATTER = 1_000_007
_TAG_ALLTOALL = 1_000_008
_TAG_SCAN = 1_000_009
_TAG_RSCAT = 1_000_010


def barrier(comm: Comm) -> None:
    """Dissemination barrier: round k exchanges with rank ± 2^k."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    k = 1
    while k < size:
        dest = (rank + k) % size
        source = (rank - k) % size
        comm.sendrecv(None, dest, source, tag=_TAG_BARRIER + k)
        k <<= 1


def bcast(comm: Comm, obj, root: int = 0):
    """Binomial-tree broadcast rooted at ``root``."""
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise CommError(f"bad root {root}")
    if size == 1:
        return obj
    vrank = (rank - root) % size  # virtual rank: root becomes 0
    # receive phase: wait on the parent (at the lowest set bit of vrank)
    mask = 1
    while mask < size:
        if vrank & mask:
            src = (vrank - mask + root) % size
            obj = comm.recv(src, _TAG_BCAST)
            break
        mask <<= 1
    # send phase: forward to children below our receive bit (MPICH scheme)
    mask >>= 1
    while mask > 0:
        child = vrank + mask
        if child < size:
            comm.send(obj, (child + root) % size, _TAG_BCAST)
        mask >>= 1
    return obj


def reduce(comm: Comm, value, op: ReduceOp, root: int = 0):
    """Binomial-tree reduction; only ``root`` receives the result."""
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise CommError(f"bad root {root}")
    vrank = (rank - root) % size
    mask = 1
    acc = value
    while mask < size:
        if vrank & mask:
            comm.send(acc, ((vrank & ~mask) + root) % size, _TAG_REDUCE)
            return None
        peer = vrank | mask
        if peer < size:
            other = comm.recv((peer + root) % size, _TAG_REDUCE)
            acc = op(acc, other)
        mask <<= 1
    return acc if rank == root else None


def allreduce(comm: Comm, value, op: ReduceOp):
    """Recursive-doubling allreduce (with pre/post folding when P not 2^k)."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    # largest power of two <= size
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    acc = value
    # fold the remainder ranks into the power-of-two group
    if rank < 2 * rem:
        if rank % 2 == 1:  # odd ranks send and go idle
            comm.send(acc, rank - 1, _TAG_ALLREDUCE)
            newrank = -1
        else:
            other = comm.recv(rank + 1, _TAG_ALLREDUCE)
            acc = op(acc, other)
            newrank = rank // 2
    else:
        newrank = rank - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            peer_new = newrank ^ mask
            peer = peer_new * 2 if peer_new < rem else peer_new + rem
            other = comm.sendrecv(acc, peer, peer, tag=_TAG_ALLREDUCE + mask)
            acc = op(acc, other)
            mask <<= 1
    # unfold: send results back to the idle odd ranks
    if rank < 2 * rem:
        if rank % 2 == 0:
            comm.send(acc, rank + 1, _TAG_ALLREDUCE)
        else:
            acc = comm.recv(rank - 1, _TAG_ALLREDUCE)
    return acc


def gather(comm: Comm, value, root: int = 0):
    """Linear gather to ``root``; returns the list at root, None elsewhere."""
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise CommError(f"bad root {root}")
    if rank == root:
        out = [None] * size
        out[root] = value
        for src in range(size):
            if src != root:
                out[src] = comm.recv(src, _TAG_GATHER)
        return out
    comm.send(value, root, _TAG_GATHER)
    return None


def allgather(comm: Comm, value):
    """Ring allgather: P−1 rounds, each rank forwards what it just received."""
    size, rank = comm.size, comm.rank
    out = [None] * size
    out[rank] = value
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    block = value
    src_rank = rank
    for _ in range(size - 1):
        block = comm.sendrecv(block, right, left, tag=_TAG_ALLGATHER)
        src_rank = (src_rank - 1) % size
        out[src_rank] = block
    return out


def scatter(comm: Comm, values, root: int = 0):
    """Linear scatter from ``root``; ``values`` must have length ``size``."""
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise CommError(f"bad root {root}")
    if rank == root:
        if values is None or len(values) != size:
            raise CommError("scatter needs one value per rank at the root")
        for dst in range(size):
            if dst != root:
                comm.send(values[dst], dst, _TAG_SCATTER)
        return values[root]
    return comm.recv(root, _TAG_SCATTER)


def alltoall(comm: Comm, values):
    """Pairwise-exchange all-to-all; ``values[j]`` goes to rank ``j``."""
    size, rank = comm.size, comm.rank
    if values is None or len(values) != size:
        raise CommError("alltoall needs one value per rank")
    out = [None] * size
    out[rank] = values[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        out[source] = comm.sendrecv(values[dest], dest, source, tag=_TAG_ALLTOALL + step)
    return out


def scan(comm: Comm, value, op: ReduceOp):
    """Inclusive prefix reduction: rank r receives op(v_0, ..., v_r).

    Linear-chain algorithm: rank r waits for the prefix of r−1, folds its
    value in, forwards to r+1.  Latency O(P), bandwidth optimal — the shape
    small-message MPI implementations use.
    """
    size, rank = comm.size, comm.rank
    acc = value
    if rank > 0:
        prefix = comm.recv(rank - 1, _TAG_SCAN)
        acc = op(prefix, value)
    if rank + 1 < size:
        comm.send(acc, rank + 1, _TAG_SCAN)
    return acc


def reduce_scatter(comm: Comm, values, op: ReduceOp):
    """Reduce a per-rank list element-wise, scatter: rank r gets element r.

    ``values`` must have one entry per rank.  Implemented as a pairwise
    exchange ring: each rank accumulates the slot it owns.
    """
    size, rank = comm.size, comm.rank
    if values is None or len(values) != size:
        raise CommError("reduce_scatter needs one value per rank")
    acc = values[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        received = comm.sendrecv(values[dest], dest, source, tag=_TAG_RSCAT + step)
        acc = op(acc, received)
    return acc
