"""Communicator interface of the simulated MPI runtime.

Mirrors the mpi4py surface the paper's solver would use (lower-case
object-based methods): blocking ``send``/``recv``, ``sendrecv`` and the
collectives from :mod:`repro.mpisim.collectives`.  Implementations:

* :class:`ThreadComm` (in :mod:`repro.mpisim.engine`) — real message passing
  between SPMD threads.
* :class:`SelfComm` — the trivial single-process communicator, so SPMD code
  also runs with ``size == 1`` without special-casing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable

import numpy as np

from repro.errors import CommError
from repro.instrument import get_tracer
from repro.mpisim.tracker import CommTracker

__all__ = ["Comm", "SelfComm", "ReduceOp", "SUM", "MAX", "MIN", "ANY_TAG"]

ANY_TAG = -1


class ReduceOp:
    """A named, associative reduction operator for collectives."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        self.name = name
        self.fn = fn

    def __call__(self, a, b):
        return self.fn(a, b)

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


def _sum(a, b):
    if isinstance(a, np.ndarray):
        return a + b
    return a + b


SUM = ReduceOp("sum", _sum)
MAX = ReduceOp("max", lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b))
MIN = ReduceOp("min", lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b))


class Comm:
    """Abstract communicator.

    Subclasses provide ``rank``, ``size``, :meth:`send` and :meth:`recv`;
    every collective is implemented generically on top of those two
    primitives in :mod:`repro.mpisim.collectives`, so the communication
    tracker observes the genuine message pattern of each algorithm.
    """

    rank: int
    size: int
    tracker: CommTracker | None

    #: This rank's bounded telemetry endpoint
    #: (:class:`repro.observe.stream.RankTelemetry`), installed by
    #: :func:`repro.mpisim.run_spmd` when a ``telemetry=`` config is passed.
    #: Duck-typed — the transport only calls ``observe_message`` /
    #: ``observe_wait`` / ``observe`` on it.
    telemetry = None

    #: True while inside :meth:`telemetry_channel`: traffic is booked as
    #: telemetry (``CommTracker.record_telemetry``) instead of solver p2p,
    #: and is itself never observed into the telemetry histograms.
    _telemetry_mode = False

    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to ``dest`` (implemented by subclasses)."""
        raise NotImplementedError

    def recv(self, source: int, tag: int = ANY_TAG, *, timeout: float | None = None):
        """Receive from ``source`` (implemented by subclasses)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise CommError(f"peer rank {peer} out of range for size {self.size}")

    def sendrecv(self, obj, dest: int, source: int, *, tag: int = 0):
        """Exchange with two (possibly different) peers without deadlock.

        Implemented as a nonblocking ``isend`` followed by a blocking
        ``recv``: the send is buffered and completes immediately, so
        symmetric exchanges are deadlock-free regardless of which peer
        posts first — no rank-ordering protocol required.
        """
        self._check_peer(dest)
        self._check_peer(source)
        if self.rank == dest and self.rank == source:
            return obj
        req = self.isend(obj, dest, tag)
        received = self.recv(source, tag)
        req.wait()
        return received

    def isend(self, obj, dest: int, tag: int = 0):
        """Nonblocking send (implemented by subclasses with transport)."""
        raise NotImplementedError

    def irecv(self, source: int, tag: int = ANY_TAG):
        """Nonblocking receive (implemented by subclasses with transport)."""
        raise NotImplementedError

    @contextmanager
    def coalescing(self):
        """Message-coalescing epoch; the base communicator has no transport
        to batch, so this is a no-op context (overridden by
        :class:`~repro.mpisim.engine.ThreadComm`)."""
        yield self

    @contextmanager
    def telemetry_channel(self):
        """Book traffic sent inside this context as in-band telemetry.

        The in-band aggregation of :mod:`repro.observe.stream` wraps its
        reduction-tree hops in this context so the transport routes their
        accounting to :meth:`CommTracker.record_telemetry` — keeping the
        solver's audited ``p2p_*`` schedule byte-identical with telemetry
        on or off.
        """
        previous = self._telemetry_mode
        self._telemetry_mode = True
        try:
            yield self
        finally:
            self._telemetry_mode = previous

    # collectives (generic algorithms over send/recv) -------------------
    def barrier(self) -> None:
        """Block until every rank arrives."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.barrier", rank=self.rank):
            collectives.barrier(self)

    def bcast(self, obj, root: int = 0):
        """Broadcast ``obj`` from ``root`` to every rank."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.bcast", rank=self.rank):
            return collectives.bcast(self, obj, root)

    def reduce(self, value, op: ReduceOp = SUM, root: int = 0):
        """Reduce to ``root``; other ranks receive None."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.reduce", rank=self.rank):
            return collectives.reduce(self, value, op, root)

    def allreduce(self, value, op: ReduceOp = SUM):
        """Reduce and deliver the result on every rank.

        When a telemetry endpoint is installed, the whole recursive-doubling
        exchange is timed into its ``reduction`` histogram — the measured
        counterpart of the α–β model's ``reductions`` term.
        """
        from repro.mpisim import collectives

        telemetry = self.telemetry if not self._telemetry_mode else None
        start = time.monotonic() if telemetry is not None else 0.0
        try:
            with get_tracer().span("mpisim.allreduce", rank=self.rank):
                return collectives.allreduce(self, value, op)
        finally:
            if telemetry is not None:
                telemetry.observe("reduction", time.monotonic() - start)

    def gather(self, value, root: int = 0):
        """Collect one value per rank at ``root``."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.gather", rank=self.rank):
            return collectives.gather(self, value, root)

    def allgather(self, value):
        """Collect one value per rank, everywhere."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.allgather", rank=self.rank):
            return collectives.allgather(self, value)

    def scatter(self, values, root: int = 0):
        """Distribute one value per rank from ``root``."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.scatter", rank=self.rank):
            return collectives.scatter(self, values, root)

    def alltoall(self, values):
        """Personalised exchange: ``values[j]`` goes to rank ``j``."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.alltoall", rank=self.rank):
            return collectives.alltoall(self, values)

    def scan(self, value, op: ReduceOp = SUM):
        """Inclusive prefix reduction."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.scan", rank=self.rank):
            return collectives.scan(self, value, op)

    def reduce_scatter(self, values, op: ReduceOp = SUM):
        """Element-wise reduce, scatter slot ``r`` to rank ``r``."""
        from repro.mpisim import collectives

        with get_tracer().span("mpisim.reduce_scatter", rank=self.rank):
            return collectives.reduce_scatter(self, values, op)


class SelfComm(Comm):
    """The ``size == 1`` communicator: all operations are local no-ops."""

    def __init__(self, tracker: CommTracker | None = None):
        self.rank = 0
        self.size = 1
        self.tracker = tracker

    def send(self, obj, dest: int, tag: int = 0) -> None:
        """SelfComm has no peers; always raises."""
        raise CommError("SelfComm has no peers to send to")

    def recv(self, source: int, tag: int = ANY_TAG, *, timeout: float | None = None):
        """SelfComm has no peers; always raises."""
        raise CommError("SelfComm has no peers to receive from")

    def sendrecv(self, obj, dest: int, source: int, *, tag: int = 0):
        """Self-exchange is the identity; peers are rejected."""
        if dest != 0 or source != 0:
            raise CommError("SelfComm has no peers")
        return obj
