"""Cooperative event-driven SPMD engine for 1000+ simulated ranks.

The thread engine in :mod:`repro.mpisim.engine` gives every rank a
preemptively scheduled OS thread; at hundreds of ranks the scheduler
thrashes and per-thread stacks dominate memory.  This engine keeps the
*same transport* (mailboxes, tracker accounting, fault injection, tracer
spans) but schedules rank tasks cooperatively:

* every rank task is hosted on a small-stack (1 MiB) daemon thread, so
  1000+ tasks cost ~1 GiB of *virtual* address space and near-zero RSS;
* a bounded semaphore of **run slots** (``workers``) caps how many tasks
  are runnable at once — the rest are parked;
* a task *parks* when its receive blocks: the transport's ``_on_park``
  hook releases the task's run slot just before sleeping on the mailbox
  condition variable, and ``_on_unpark`` re-acquires a slot after the
  wakeup (outside the mailbox lock, so a sender needing that lock can
  never deadlock against a waking receiver).

Parked ranks consume zero CPU — delivery is condition-variable driven, so
a 1024-rank PCG solve advances exactly the ranks whose messages have
arrived.  Semantics are identical to ``engine="threads"``: collectives,
``sendrecv``, coalescing epochs, fault-injection verdicts and ``mpisim.*``
metrics all behave the same (the fault RNG is seeded per (src, dst, tag,
sequence), so verdicts do not depend on interleaving).

Use via :func:`repro.mpisim.run_spmd` with ``engine="events"``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable

from repro.errors import CommError
from repro.instrument import get_tracer
from repro.mpisim.engine import ThreadComm, _Mailbox
from repro.mpisim.tracker import CommTracker

__all__ = ["EventComm", "run_spmd_events", "default_workers"]

#: Stack reservation per rank task (bytes).  Rank programs are shallow
#: Python frames over NumPy kernels; 1 MiB is ample and keeps 1000+ tasks
#: cheap.  The interpreter enforces a 32 KiB floor.
_TASK_STACK_BYTES = 1 << 20

_stack_lock = threading.Lock()


def default_workers(size: int) -> int:
    """Default run-slot count: enough to keep every core busy plus slack
    for tasks blocked in injected sleeps, capped at the rank count."""
    cores = os.cpu_count() or 1
    return min(size, max(4, 2 * cores))


class EventComm(ThreadComm):
    """Transport endpoint whose blocking receives yield their run slot.

    Identical messaging semantics to :class:`~repro.mpisim.engine.ThreadComm`
    — only the scheduling hooks differ: parking releases the task's run
    slot to the shared pool and unparking re-acquires one, so at most
    ``workers`` rank tasks are ever runnable.
    """

    def __init__(self, rank, size, mailboxes, tracker, timeout, slots,
                 latency: float = 0.0):
        super().__init__(rank, size, mailboxes, tracker, timeout, latency)
        self._slots = slots

    def _on_park(self) -> None:
        """Give up the run slot before sleeping on the mailbox condition.

        ``Semaphore.release`` never blocks, so calling this while holding
        the mailbox lock is safe.
        """
        self._slots.release()

    def _on_unpark(self) -> None:
        """Re-acquire a run slot after waking.

        Must be called *outside* the mailbox lock: acquisition can block
        until another task parks, and a sender may need the mailbox lock
        to deliver the very message that lets that task park.
        """
        self._slots.acquire()


def run_spmd_events(
    fn: Callable[..., Any],
    size: int,
    *args,
    tracker: CommTracker | None = None,
    timeout: float = 120.0,
    workers: int | None = None,
    latency: float = 0.0,
    telemetry=None,
    **kwargs,
) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` cooperative rank tasks.

    At most ``workers`` tasks (default :func:`default_workers`) are
    runnable at once; tasks blocked on a receive park slot-free on their
    mailbox condition.  Results, error propagation, the launch event,
    per-rank ``spmd.rank`` root spans and the in-band ``telemetry=`` hook
    match the thread engine exactly (telemetry aggregation parks and
    unparks like any other receive, so 1000-rank telemetered runs stay
    slot-bounded).

    Prefer calling this through :func:`repro.mpisim.run_spmd` with
    ``engine="events"``.
    """
    if size < 1:
        raise CommError("size must be >= 1")
    nworkers = default_workers(size) if workers is None else int(workers)
    if nworkers < 1:
        raise CommError("workers must be >= 1")
    slots = threading.BoundedSemaphore(nworkers)
    mailboxes = [_Mailbox() for _ in range(size)]
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    tracer = get_tracer()
    launch_t0 = None
    if tracer.enabled:
        launch_t0 = tracer.event("mpisim.launch", ranks=size, engine="events").start

    def _task(rank: int) -> None:
        comm = EventComm(rank, size, mailboxes, tracker, timeout, slots, latency)
        if telemetry is not None:
            comm.telemetry = telemetry.make_rank(rank, size)
        slots.acquire()  # wait for a run slot before executing any rank code
        try:
            if tracer.enabled:
                with tracer.span("spmd.rank", rank=rank) as root:
                    if launch_t0 is not None:
                        root.set_tag("clock_offset", root.start - launch_t0)
                    results[rank] = fn(comm, *args, **kwargs)
            else:
                results[rank] = fn(comm, *args, **kwargs)
            if telemetry is not None:
                telemetry.collect(comm, comm.telemetry)
        except BaseException as exc:  # noqa: BLE001 — propagated to caller
            with lock:
                errors.append((rank, exc))
        finally:
            slots.release()

    # threading.stack_size is process-global state: pin it around
    # creation+start of the task threads, then restore.
    with _stack_lock:
        previous = threading.stack_size()
        try:
            threading.stack_size(_TASK_STACK_BYTES)
        except (ValueError, RuntimeError):
            previous = None  # platform refused; run with default stacks
        try:
            tasks = [
                threading.Thread(
                    target=_task, args=(r,), name=f"spmd-task-{r}", daemon=True
                )
                for r in range(size)
            ]
            for t in tasks:
                t.start()
        finally:
            if previous is not None:
                threading.stack_size(previous)

    join_deadline = time.monotonic() + timeout * 2
    for t in tasks:
        t.join(timeout=max(0.0, join_deadline - time.monotonic()))
    if errors:
        errors.sort(key=lambda e: e[0])
        rank, exc = errors[0]
        raise CommError(f"rank {rank} failed: {exc!r}") from exc
    alive = [t for t in tasks if t.is_alive()]
    if alive:
        raise CommError(
            f"{len(alive)} ranks still running after timeout (deadlock?)"
        )
    return results
