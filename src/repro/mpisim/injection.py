"""Fault-injection hook point of the simulated MPI runtime.

The resilience layer (:mod:`repro.resilience`) defines *what* faults to
inject (a seeded, declarative :class:`~repro.resilience.FaultPlan`); this
module defines *where* they plug in.  An injector object — anything
implementing the small protocol below — is installed process-wide with
:func:`install_injector`; the message-passing engine
(:class:`~repro.mpisim.engine.ThreadComm`) and the BSP halo update
(:meth:`~repro.dist.halo.HaloSchedule.update`) consult
:func:`get_injector` on every message and apply the verdicts.

Layering: this module has **no** dependency on :mod:`repro.resilience` —
it only stores the active injector — so the low-level runtime stays free
of upward imports.  When no injector is installed (the default),
:func:`get_injector` returns ``None`` and every hot path takes its
original branch: fault injection is a single ``is not None`` test away
from zero overhead.

Injector protocol (duck-typed; :class:`repro.resilience.FaultInjector` is
the canonical implementation):

* ``message_verdict(src, dst, tag)`` → object with ``dropped``,
  ``duplicated``, ``delay_s``, ``flip_bit`` (``None`` or 0–63) attributes;
* ``consume_stall(rank)`` → seconds the rank should stall (0.0 normally);
* ``rank_failed(rank)`` → bool, permanent failure;
* ``begin_update()`` → advance and return the halo-update counter;
* ``plan`` → the installed plan (``message_timeout``, ``max_retries``,
  ``backoff``, ``sleep_cap`` attributes).
"""

from __future__ import annotations

import threading

__all__ = [
    "get_injector",
    "install_injector",
    "clear_injector",
    "DuplicateEnvelope",
]

_lock = threading.Lock()
_active = None


def get_injector():
    """The installed fault injector, or ``None`` (the default, fault-free)."""
    return _active


def install_injector(injector):
    """Install ``injector`` process-wide; returns the previous one (or None).

    Prefer the scoped :func:`repro.resilience.fault_injection` context
    manager, which restores the previous injector on exit.
    """
    global _active
    with _lock:
        previous = _active
        _active = injector
        return previous


def clear_injector() -> None:
    """Remove any installed injector, restoring fault-free execution."""
    global _active
    with _lock:
        _active = None


class DuplicateEnvelope:
    """Wrapper marking a message that was injected as a duplicate.

    Both copies of a duplicated message travel wrapped with the same
    sequence number; the receiving :class:`~repro.mpisim.engine.ThreadComm`
    unwraps the first copy and silently discards any later copy with an
    already-seen sequence — the at-most-once delivery a real transport's
    sequence numbers provide.
    """

    __slots__ = ("seq", "payload")

    def __init__(self, seq: int, payload):
        self.seq = seq
        self.payload = payload

    def __repr__(self) -> str:
        return f"DuplicateEnvelope(seq={self.seq})"
