"""Sparse-matrix substrate: CSR storage, pattern algebra, SpGEMM, I/O.

This package is the from-scratch sparse kernel library the FSAI
preconditioners are built on.  Public surface:

* :class:`CSRMatrix` — the numeric sparse matrix type.
* :class:`SparsityPattern` — structure-only patterns with set algebra.
* :func:`threshold_pattern`, :func:`power_pattern` — Alg. 1 pattern builders.
* :func:`symbolic_spgemm`, :func:`spgemm` — sparse matrix products.
* :func:`read_matrix_market`, :func:`write_matrix_market` — ``.mtx`` I/O.
* BLAS-1 helpers (:func:`axpy`, :func:`dot`, ...) and SPD checks.
"""

from repro.sparse.csr import CSRMatrix
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.ops import (
    axpy,
    check_spd,
    dot,
    drop_small_relative,
    is_symmetric,
    max_norm,
    norm2,
    xpay,
)
from repro.sparse.pattern import SparsityPattern, power_pattern, threshold_pattern
from repro.sparse.spgemm import spgemm, symbolic_spgemm

__all__ = [
    "CSRMatrix",
    "SparsityPattern",
    "threshold_pattern",
    "power_pattern",
    "spgemm",
    "symbolic_spgemm",
    "read_matrix_market",
    "write_matrix_market",
    "axpy",
    "xpay",
    "dot",
    "norm2",
    "max_norm",
    "is_symmetric",
    "check_spd",
    "drop_small_relative",
]
