"""Compressed Sparse Row (CSR) matrix implemented from scratch on NumPy.

This is the storage format used throughout the library for the system matrix
``A`` and the FSAI factors ``G``/``Gᵀ``.  It deliberately does **not** wrap
:mod:`scipy.sparse`: the FSAI pattern-extension algorithms need direct,
documented control over ``indptr``/``indices``/``data`` and over invariants
such as *sorted, duplicate-free column indices per row*, which this class
enforces at construction time.

Design notes
------------
* All index arrays are ``int64``; values are ``float64``.  Mixing dtypes in
  hot SpMV loops costs conversions, so we normalise once at the boundary.
* Rows always hold **sorted, unique** column indices.  Algorithms that build
  rows out of order must go through :meth:`CSRMatrix.from_coo` or
  :func:`repro.sparse.pattern.SparsityPattern` builders which canonicalise.
* The SpMV kernel is vectorised with ``numpy.add.reduceat`` — no Python-level
  per-row loop — following the "vectorise the hot loop" idiom of the
  scientific-python optimisation guide.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ShapeError, SparseFormatError

__all__ = ["CSRMatrix"]


def _as_index_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise SparseFormatError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def _check_out(out: np.ndarray, n: int) -> None:
    """Validate a user-supplied ``out=`` vector: float64 ndarray of length n."""
    if not isinstance(out, np.ndarray):
        raise TypeError(f"out must be a numpy array, got {type(out).__name__}")
    if out.dtype != np.float64:
        raise TypeError(f"out must have dtype float64, got {out.dtype}")
    if out.shape != (n,):
        raise ShapeError(f"out has shape {out.shape}, expected ({n},)")


class CSRMatrix:
    """A real-valued sparse matrix in CSR format.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    indptr:
        Row pointer array of length ``nrows + 1``.
    indices:
        Column indices, sorted and unique within each row.
    data:
        Nonzero values aligned with ``indices``.
    check:
        When ``True`` (default) validate every structural invariant.  Internal
        callers that construct provably-valid arrays pass ``False`` to skip
        the O(nnz) validation cost.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(self, shape, indptr, indices, data, *, check: bool = True):
        nrows, ncols = int(shape[0]), int(shape[1])
        self.shape = (nrows, ncols)
        self.indptr = _as_index_array(indptr, "indptr")
        self.indices = _as_index_array(indices, "indices")
        self.data = np.asarray(data, dtype=np.float64)
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls, shape, rows, cols, vals, *,
        sum_duplicates: bool = True, canonical: bool = False,
    ) -> "CSRMatrix":
        """Build from coordinate triplets.

        Duplicate ``(row, col)`` entries are summed (``sum_duplicates=True``)
        or rejected.

        ``canonical=True`` asserts the triplets are already in lexicographic
        ``(row, col)`` order with no duplicates — e.g. the output of
        ``np.nonzero`` on a dense array — and skips the O(nnz log nnz)
        sort/dedup pass.  The resulting structure is still validated cheaply
        via the CSR invariant check.
        """
        nrows, ncols = int(shape[0]), int(shape[1])
        rows = _as_index_array(rows, "rows")
        cols = _as_index_array(cols, "cols")
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape):
            raise ShapeError("rows, cols and vals must have identical length")
        if rows.size:
            if rows.min() < 0 or rows.max() >= nrows:
                raise SparseFormatError("row index out of range")
            if cols.min() < 0 or cols.max() >= ncols:
                raise SparseFormatError("column index out of range")
        if canonical:
            counts = np.bincount(rows, minlength=nrows) if rows.size else \
                np.zeros(nrows, dtype=np.int64)
            indptr = np.zeros(nrows + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            # check=True here is the cheap per-row ordering validation that
            # catches a wrong canonical= promise instead of corrupting state
            return cls((nrows, ncols), indptr, cols, vals, check=True)
        # lexicographic sort by (row, col)
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size:
            dup = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            if dup.any():
                if not sum_duplicates:
                    raise SparseFormatError("duplicate (row, col) entries")
                # segment-sum duplicates: keep first of each run, add the rest
                keep = np.concatenate(([True], ~dup))
                seg_ids = np.cumsum(keep) - 1
                summed = np.zeros(int(seg_ids[-1]) + 1, dtype=np.float64)
                np.add.at(summed, seg_ids, vals)
                rows, cols, vals = rows[keep], cols[keep], summed
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls((nrows, ncols), indptr, cols, vals, check=False)

    @classmethod
    def from_dense(cls, dense, *, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense 2-D array, dropping entries with ``|v| <= tol``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError("from_dense expects a 2-D array")
        mask = np.abs(dense) > tol
        # np.nonzero walks row-major: triplets come out canonically ordered
        rows, cols = np.nonzero(mask)
        return cls.from_coo(dense.shape, rows, cols, dense[rows, cols], canonical=True)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The n×n identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.arange(n + 1, dtype=np.int64), idx, np.ones(n), check=False)

    @classmethod
    def zeros(cls, shape) -> "CSRMatrix":
        """An all-zero matrix with no stored entries."""
        nrows = int(shape[0])
        return cls(
            shape,
            np.zeros(nrows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            check=False,
        )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        nrows, ncols = self.shape
        if nrows < 0 or ncols < 0:
            raise SparseFormatError(f"negative shape {self.shape}")
        if self.indptr.shape != (nrows + 1,):
            raise SparseFormatError(
                f"indptr length {self.indptr.size} != nrows+1 = {nrows + 1}"
            )
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise SparseFormatError("indices/data length does not match indptr[-1]")
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= ncols:
                raise SparseFormatError("column index out of range")
            # sorted + unique per row: strict increase within rows
            starts = self.indptr[:-1]
            ends = self.indptr[1:]
            diffs = np.diff(self.indices)
            # positions where a row boundary sits between consecutive entries
            boundary = np.zeros(max(nnz - 1, 0), dtype=bool)
            inner = ends[:-1][(ends[:-1] > 0) & (ends[:-1] < nnz)]
            boundary[inner - 1] = True
            if np.any((diffs <= 0) & ~boundary):
                raise SparseFormatError("column indices must be strictly increasing per row")
            del starts

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (including explicit zeros)."""
        return int(self.indptr[-1])

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` (views, do not mutate)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_nnz(self) -> np.ndarray:
        """Per-row nonzero counts as an ``int64`` array of length ``nrows``."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(i, cols, vals)`` for each row."""
        for i in range(self.nrows):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            yield i, self.indices[lo:hi], self.data[lo:hi]

    def copy(self) -> "CSRMatrix":
        """Deep copy (independent arrays)."""
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data.copy(), check=False
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D array."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coordinate triplets ``(rows, cols, vals)`` (copies)."""
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        return rows, self.indices.copy(), self.data.copy()

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Sparse matrix–vector product ``y = A @ x``.

        Vectorised with ``add.reduceat`` over the gathered products — the
        irregular gather ``x[indices]`` is the cache-critical access the FSAI
        extension algorithms optimise.

        ``out`` must be a float64 vector of length ``nrows``; it may alias
        ``x`` (the gathered products are materialised before ``out`` is
        written).  For repeated products over one matrix prefer
        :class:`repro.kernels.plan.SpMVPlan`, which hoists the per-call
        metadata work done here out of the loop.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.ncols},)")
        if out is not None:
            _check_out(out, self.nrows)
        if self.nnz == 0:
            if out is None:
                return np.zeros(self.nrows, dtype=np.float64)
            out[:] = 0.0
            return out
        # gathered products come first so that out= may alias x
        prod = self.data * x[self.indices]
        if out is None:
            out = np.zeros(self.nrows, dtype=np.float64)
        else:
            out[:] = 0.0
        # reduceat over the starts of nonempty rows only: those starts are
        # strictly increasing and < nnz, so each segment ends exactly at the
        # next nonempty row (or the end of prod).
        starts = self.indptr[:-1]
        nonempty = self.indptr[1:] > starts
        if nonempty.any():
            out[nonempty] = np.add.reduceat(prod, starts[nonempty])
        return out

    def spmv_transpose(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Compute ``y = Aᵀ @ x`` without materialising the transpose.

        ``out`` must be a float64 vector of length ``ncols``; it may alias
        ``x``.  :class:`repro.kernels.plan.SpMVPlan.spmv_t` evaluates the same
        product through a precomputed gather plan without the ``add.at``
        scatter used here.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.nrows,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.nrows},)")
        if out is not None:
            _check_out(out, self.ncols)
        if self.nnz == 0:
            if out is None:
                return np.zeros(self.ncols, dtype=np.float64)
            out[:] = 0.0
            return out
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        prod = self.data * x[rows]  # before touching out: out= may alias x
        if out is None:
            out = np.zeros(self.ncols, dtype=np.float64)
        else:
            out[:] = 0.0
        np.add.at(out, self.indices, prod)
        return out

    def transpose(self) -> "CSRMatrix":
        """Return ``Aᵀ`` as a new CSR matrix (counting-sort transpose)."""
        nrows, ncols = self.shape
        nnz = self.nnz
        t_indptr = np.zeros(ncols + 1, dtype=np.int64)
        np.add.at(t_indptr, self.indices + 1, 1)
        np.cumsum(t_indptr, out=t_indptr)
        t_indices = np.empty(nnz, dtype=np.int64)
        t_data = np.empty(nnz, dtype=np.float64)
        # stable counting placement keeps per-row order => sorted columns
        rows = np.repeat(np.arange(nrows, dtype=np.int64), self.row_nnz())
        order = np.argsort(self.indices, kind="stable")
        t_indices[:] = rows[order]
        t_data[:] = self.data[order]
        return CSRMatrix((ncols, nrows), t_indptr, t_indices, t_data, check=False)

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (missing entries are 0)."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=np.float64)
        for i in range(n):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            pos = np.searchsorted(self.indices[lo:hi], i)
            if pos < hi - lo and self.indices[lo + pos] == i:
                diag[i] = self.data[lo + pos]
        return diag

    def extract_lower(self, *, strict: bool = False) -> "CSRMatrix":
        """Lower-triangular part (``col <= row``; ``col < row`` when strict)."""
        return self._triangular(lower=True, strict=strict)

    def extract_upper(self, *, strict: bool = False) -> "CSRMatrix":
        """Upper-triangular part (``col >= row``; ``col > row`` when strict)."""
        return self._triangular(lower=False, strict=strict)

    def _triangular(self, *, lower: bool, strict: bool) -> "CSRMatrix":
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        if lower:
            mask = self.indices < rows if strict else self.indices <= rows
        else:
            mask = self.indices > rows if strict else self.indices >= rows
        keep = np.flatnonzero(mask)
        new_indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.add.at(new_indptr, rows[keep] + 1, 1)
        np.cumsum(new_indptr, out=new_indptr)
        return CSRMatrix(
            self.shape, new_indptr, self.indices[keep], self.data[keep], check=False
        )

    def submatrix(self, row_ids: np.ndarray, col_ids: np.ndarray) -> np.ndarray:
        """Dense restriction ``A[row_ids][:, col_ids]``.

        Used for the per-row FSAI Frobenius systems, which are small and
        dense-solved; returns a dense array by design.
        """
        row_ids = _as_index_array(row_ids, "row_ids")
        col_ids = _as_index_array(col_ids, "col_ids")
        out = np.zeros((row_ids.size, col_ids.size), dtype=np.float64)
        # col_ids are sorted in all internal callers; support unsorted anyway.
        sorter = np.argsort(col_ids, kind="stable")
        sorted_cols = col_ids[sorter]
        for r, i in enumerate(row_ids):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            cols = self.indices[lo:hi]
            vals = self.data[lo:hi]
            pos = np.searchsorted(sorted_cols, cols)
            pos = np.minimum(pos, sorted_cols.size - 1) if sorted_cols.size else pos
            if sorted_cols.size == 0:
                continue
            hit = sorted_cols[pos] == cols
            out[r, sorter[pos[hit]]] = vals[hit]
        return out

    def scale_rows(self, scale: np.ndarray) -> "CSRMatrix":
        """Return ``diag(scale) @ A``."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.nrows,):
            raise ShapeError("scale must have one entry per row")
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data * scale[rows],
            check=False,
        )

    def drop_entries(self, mask: np.ndarray) -> "CSRMatrix":
        """Return a copy without the entries where ``mask`` is True.

        ``mask`` is aligned with ``self.data``.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.data.shape:
            raise ShapeError("mask must align with stored entries")
        keep = ~mask
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        new_indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.add.at(new_indptr, rows[keep] + 1, 1)
        np.cumsum(new_indptr, out=new_indptr)
        return CSRMatrix(
            self.shape, new_indptr, self.indices[keep], self.data[keep], check=False
        )

    # ------------------------------------------------------------------
    # operators & comparison
    # ------------------------------------------------------------------
    def __add__(self, other):
        """Entry-wise sum of two matrices of identical shape."""
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        if self.shape != other.shape:
            raise ShapeError(f"shape mismatch {self.shape} vs {other.shape}")
        r1, c1, v1 = self.to_coo()
        r2, c2, v2 = other.to_coo()
        return CSRMatrix.from_coo(
            self.shape,
            np.concatenate([r1, r2]),
            np.concatenate([c1, c2]),
            np.concatenate([v1, v2]),
        )

    def __sub__(self, other):
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return self + (other * -1.0)

    def __mul__(self, scalar):
        """Scalar multiple (``A * 2.0``)."""
        if not isinstance(scalar, (int, float, np.integer, np.floating)):
            return NotImplemented
        return CSRMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data * float(scalar),
            check=False,
        )

    __rmul__ = __mul__

    def __matmul__(self, other):
        if isinstance(other, np.ndarray) and other.ndim == 1:
            return self.spmv(other)
        if isinstance(other, CSRMatrix):
            from repro.sparse.spgemm import spgemm  # local import avoids cycle

            return spgemm(self, other)
        return NotImplemented

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self):  # mutable arrays: not hashable
        raise TypeError("CSRMatrix is unhashable")

    def allclose(self, other: "CSRMatrix", *, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Structural equality plus numerically-close values."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.data, other.data, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
