"""Structure-only sparsity patterns and symbolic pattern algebra.

FSAI-family preconditioners are defined by a *pattern* first and values
second: the pattern ``S`` fixes which entries of the inverse factor ``G`` may
be nonzero, then a small dense system per row fills in the values.  This
module provides the pattern type and the symbolic operations the paper uses:

* lower-triangular restriction (``G`` is lower triangular),
* pattern union (base pattern ∪ extension),
* symbolic powers ``pattern(Ã^N)`` ("sparse level" N patterns, Alg. 1 step 2),
* thresholding ``Ã`` = A with small entries dropped (Alg. 1 step 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, SparseFormatError
from repro.sparse.csr import CSRMatrix

__all__ = ["SparsityPattern", "threshold_pattern", "power_pattern"]


class SparsityPattern:
    """An ``nrows × ncols`` boolean sparsity structure in CSR form.

    Rows hold sorted, unique column indices.  Instances are immutable by
    convention: all operations return new patterns.
    """

    __slots__ = ("shape", "indptr", "indices")

    def __init__(self, shape, indptr, indices, *, check: bool = True):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if check:
            self._validate()

    def _validate(self) -> None:
        nrows, ncols = self.shape
        if self.indptr.shape != (nrows + 1,) or self.indptr[0] != 0:
            raise SparseFormatError("bad indptr")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,):
            raise SparseFormatError("indices length mismatch")
        if nnz and (self.indices.min() < 0 or self.indices.max() >= ncols):
            raise SparseFormatError("column index out of range")
        for i in range(nrows):
            row = self.indices[self.indptr[i] : self.indptr[i + 1]]
            if row.size > 1 and np.any(np.diff(row) <= 0):
                raise SparseFormatError(f"row {i} not strictly increasing")

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, mat: CSRMatrix) -> "SparsityPattern":
        """Pattern of the stored entries of ``mat`` (explicit zeros included)."""
        return cls(mat.shape, mat.indptr.copy(), mat.indices.copy(), check=False)

    @classmethod
    def from_rows(cls, shape, rows_to_cols) -> "SparsityPattern":
        """Build from a sequence (len nrows) of per-row column iterables.

        Each row is sorted and deduplicated.
        """
        nrows, ncols = int(shape[0]), int(shape[1])
        if len(rows_to_cols) != nrows:
            raise ShapeError("need exactly one column list per row")
        parts = []
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        for i, cols in enumerate(rows_to_cols):
            arr = np.unique(np.asarray(list(cols), dtype=np.int64))
            if arr.size and (arr[0] < 0 or arr[-1] >= ncols):
                raise SparseFormatError(f"row {i}: column out of range")
            parts.append(arr)
            indptr[i + 1] = indptr[i] + arr.size
        indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return cls(shape, indptr, indices, check=False)

    @classmethod
    def identity(cls, n: int) -> "SparsityPattern":
        """The n×n diagonal pattern."""
        return cls(
            (n, n), np.arange(n + 1, dtype=np.int64), np.arange(n, dtype=np.int64), check=False
        )

    @classmethod
    def empty(cls, shape) -> "SparsityPattern":
        """A pattern with no entries."""
        return cls(
            shape,
            np.zeros(int(shape[0]) + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            check=False,
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored positions."""
        return int(self.indptr[-1])

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def row(self, i: int) -> np.ndarray:
        """Sorted column indices of row ``i`` (a view)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def row_nnz(self) -> np.ndarray:
        """Per-row entry counts."""
        return np.diff(self.indptr)

    def contains(self, i: int, j: int) -> bool:
        """Membership test for position ``(i, j)``."""
        row = self.row(i)
        pos = np.searchsorted(row, j)
        return bool(pos < row.size and row[pos] == j)

    # ------------------------------------------------------------------
    def union(self, other: "SparsityPattern") -> "SparsityPattern":
        """Set union of two patterns of identical shape."""
        if self.shape != other.shape:
            raise ShapeError(f"shape mismatch {self.shape} vs {other.shape}")
        nrows = self.nrows
        parts = []
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        for i in range(nrows):
            merged = np.union1d(self.row(i), other.row(i))
            parts.append(merged)
            indptr[i + 1] = indptr[i] + merged.size
        indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return SparsityPattern(self.shape, indptr, indices, check=False)

    def intersection(self, other: "SparsityPattern") -> "SparsityPattern":
        """Set intersection of two patterns of identical shape."""
        if self.shape != other.shape:
            raise ShapeError(f"shape mismatch {self.shape} vs {other.shape}")
        nrows = self.nrows
        parts = []
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        for i in range(nrows):
            both = np.intersect1d(self.row(i), other.row(i), assume_unique=True)
            parts.append(both)
            indptr[i + 1] = indptr[i] + both.size
        indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return SparsityPattern(self.shape, indptr, indices, check=False)

    def difference(self, other: "SparsityPattern") -> "SparsityPattern":
        """Entries of ``self`` not present in ``other``."""
        if self.shape != other.shape:
            raise ShapeError(f"shape mismatch {self.shape} vs {other.shape}")
        nrows = self.nrows
        parts = []
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        for i in range(nrows):
            only = np.setdiff1d(self.row(i), other.row(i), assume_unique=True)
            parts.append(only)
            indptr[i + 1] = indptr[i] + only.size
        indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return SparsityPattern(self.shape, indptr, indices, check=False)

    def issubset(self, other: "SparsityPattern") -> bool:
        """True when every entry of ``self`` is in ``other``."""
        if self.shape != other.shape:
            return False
        for i in range(self.nrows):
            if np.setdiff1d(self.row(i), other.row(i), assume_unique=True).size:
                return False
        return True

    def lower(self, *, strict: bool = False) -> "SparsityPattern":
        """Lower-triangular restriction (``col <= row``, or ``<`` when strict)."""
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        mask = self.indices < rows if strict else self.indices <= rows
        keep = np.flatnonzero(mask)
        indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows[keep] + 1, 1)
        np.cumsum(indptr, out=indptr)
        return SparsityPattern(self.shape, indptr, self.indices[keep], check=False)

    def with_diagonal(self) -> "SparsityPattern":
        """Union with the identity pattern (FSAI requires diagonal entries)."""
        n = min(self.shape)
        eye = SparsityPattern.identity(self.nrows) if self.nrows == self.ncols else None
        if eye is None:
            rows = [[] for _ in range(self.nrows)]
            for i in range(n):
                rows[i] = [i]
            eye = SparsityPattern.from_rows(self.shape, rows)
        return self.union(eye)

    def transpose(self) -> "SparsityPattern":
        """The transposed pattern."""
        indptr = np.zeros(self.ncols + 1, dtype=np.int64)
        np.add.at(indptr, self.indices + 1, 1)
        np.cumsum(indptr, out=indptr)
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_nnz())
        order = np.argsort(self.indices, kind="stable")
        return SparsityPattern(
            (self.ncols, self.nrows), indptr, rows[order], check=False
        )

    def symmetrized(self) -> "SparsityPattern":
        """Union of the pattern and its transpose (square patterns only)."""
        if self.nrows != self.ncols:
            raise ShapeError("symmetrized requires a square pattern")
        return self.union(self.transpose())

    def to_csr(self, values: np.ndarray | None = None) -> CSRMatrix:
        """Materialise as a CSR matrix; values default to 1.0 everywhere."""
        if values is None:
            values = np.ones(self.nnz, dtype=np.float64)
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), values, check=False
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparsityPattern):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self):
        raise TypeError("SparsityPattern is unhashable")

    def __repr__(self) -> str:
        return f"SparsityPattern(shape={self.shape}, nnz={self.nnz})"


# ----------------------------------------------------------------------
# module-level pattern constructors (Alg. 1 steps 1–2)
# ----------------------------------------------------------------------
def threshold_pattern(mat: CSRMatrix, threshold: float) -> SparsityPattern:
    """Pattern of ``Ã``: entries with ``|a_ij| > threshold·sqrt(|a_ii·a_jj|)``.

    The comparison is scale independent (relative to the diagonal, Chow
    2001).  Diagonal entries are always kept.
    """
    if mat.nrows != mat.ncols:
        raise ShapeError("threshold_pattern expects a square matrix")
    diag = np.abs(mat.diagonal())
    # guard zero diagonals: treat the scale as 1 so plain |a_ij| > t applies
    diag[diag == 0.0] = 1.0
    rows = np.repeat(np.arange(mat.nrows, dtype=np.int64), mat.row_nnz())
    scale = np.sqrt(diag[rows] * diag[mat.indices])
    keep = (np.abs(mat.data) > threshold * scale) | (rows == mat.indices)
    sel = np.flatnonzero(keep)
    indptr = np.zeros(mat.nrows + 1, dtype=np.int64)
    np.add.at(indptr, rows[sel] + 1, 1)
    np.cumsum(indptr, out=indptr)
    return SparsityPattern(mat.shape, indptr, mat.indices[sel], check=False)


def power_pattern(pat: SparsityPattern, level: int) -> SparsityPattern:
    """Symbolic pattern of ``pat^level`` (with the diagonal included).

    ``level=1`` returns the input union identity; higher levels perform
    repeated boolean sparse matrix products (the "sparse level" of the
    preconditioner in the paper).
    """
    if pat.nrows != pat.ncols:
        raise ShapeError("power_pattern expects a square pattern")
    if level < 1:
        raise ValueError("level must be >= 1")
    from repro.sparse.spgemm import symbolic_spgemm  # local import avoids cycle

    base = pat.with_diagonal()
    result = base
    for _ in range(level - 1):
        result = symbolic_spgemm(result, base)
    return result
