"""Minimal MatrixMarket (``.mtx``) reader/writer.

Supports the subset used by the SuiteSparse collection matrices the paper
evaluates: ``matrix coordinate real {general|symmetric}`` and
``matrix coordinate pattern {general|symmetric}`` (pattern entries get value
1.0).  Symmetric files are expanded to full storage on read, which is what
the solver expects.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def _open_text(path: Path, mode: str) -> TextIO:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


def read_matrix_market(path) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into a :class:`CSRMatrix`."""
    path = Path(path)
    with _open_text(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise SparseFormatError(f"{path}: missing MatrixMarket banner")
        tokens = header.strip().split()
        if len(tokens) < 5:
            raise SparseFormatError(f"{path}: malformed banner: {header!r}")
        _, obj, fmt, field, symmetry = tokens[:5]
        obj, fmt = obj.lower(), fmt.lower()
        field, symmetry = field.lower(), symmetry.lower()
        if obj != "matrix" or fmt != "coordinate":
            raise SparseFormatError(f"{path}: only coordinate matrices supported")
        if field not in ("real", "integer", "pattern"):
            raise SparseFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise SparseFormatError(f"{path}: unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%") or not line.strip():
            line = fh.readline()
        try:
            nrows, ncols, nnz = (int(t) for t in line.split())
        except ValueError as exc:
            raise SparseFormatError(f"{path}: bad size line {line!r}") from exc

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = fh.readline().split()
            if not parts:
                raise SparseFormatError(f"{path}: truncated at entry {k}")
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = 1.0 if field == "pattern" else float(parts[2])

    if symmetry == "symmetric":
        off = rows != cols
        mirror_rows, mirror_cols, mirror_vals = cols[off], rows[off], vals[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])
    return CSRMatrix.from_coo((nrows, ncols), rows, cols, vals)


def write_matrix_market(path, mat: CSRMatrix, *, symmetric: bool = False) -> None:
    """Write a :class:`CSRMatrix` as a MatrixMarket coordinate file.

    With ``symmetric=True`` only the lower triangle is written and the file
    is marked ``symmetric`` (the matrix must actually be symmetric; this is
    not verified here for speed).
    """
    path = Path(path)
    out = mat.extract_lower() if symmetric else mat
    rows, cols, vals = out.to_coo()
    with _open_text(path, "w") as fh:
        kind = "symmetric" if symmetric else "general"
        fh.write(f"%%MatrixMarket matrix coordinate real {kind}\n")
        fh.write(f"{mat.nrows} {mat.ncols} {out.nnz}\n")
        for r, c, v in zip(rows, cols, vals):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
