"""Dense-vector BLAS-1 helpers and sparse utility operations.

The CG solver is built on exactly three kernels (paper §2.1): SpMV, AXPY and
dot products.  SpMV lives on :class:`~repro.sparse.csr.CSRMatrix`; the vector
kernels live here so the distributed layer can route them through communication
tracking without touching NumPy call sites everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotSPDError, ShapeError
from repro.sparse.csr import CSRMatrix

__all__ = [
    "axpy",
    "xpay",
    "dot",
    "norm2",
    "max_norm",
    "is_symmetric",
    "check_spd",
    "drop_small_relative",
]


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """In-place ``y += alpha * x``; returns ``y``."""
    if x.shape != y.shape:
        raise ShapeError("axpy operands must have identical shape")
    y += alpha * x
    return y


def xpay(x: np.ndarray, alpha: float, y: np.ndarray) -> np.ndarray:
    """In-place ``y = x + alpha * y`` (the CG direction update); returns ``y``."""
    if x.shape != y.shape:
        raise ShapeError("xpay operands must have identical shape")
    y *= alpha
    y += x
    return y


def dot(x: np.ndarray, y: np.ndarray) -> float:
    """Dense dot product (float result)."""
    if x.shape != y.shape:
        raise ShapeError("dot operands must have identical shape")
    return float(np.dot(x, y))


def norm2(x: np.ndarray) -> float:
    """Euclidean norm."""
    return float(np.linalg.norm(x))


def max_norm(mat: CSRMatrix) -> float:
    """Largest absolute stored entry (the paper normalises RHS to this)."""
    if mat.nnz == 0:
        return 0.0
    return float(np.abs(mat.data).max())


def is_symmetric(mat: CSRMatrix, *, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
    """Check ``A == Aᵀ`` structurally and numerically."""
    if mat.nrows != mat.ncols:
        return False
    return mat.allclose(mat.transpose(), rtol=rtol, atol=atol)


def check_spd(mat: CSRMatrix, *, probe_vectors: int = 4, seed: int = 0) -> None:
    """Cheap SPD sanity check; raises :class:`NotSPDError` on failure.

    Verifies symmetry, positive diagonal, and ``xᵀAx > 0`` for a few random
    probes.  This is a guard for user-facing entry points, not a proof.
    """
    if not is_symmetric(mat):
        raise NotSPDError("matrix is not symmetric")
    diag = mat.diagonal()
    if np.any(diag <= 0):
        raise NotSPDError("matrix has non-positive diagonal entries")
    rng = np.random.default_rng(seed)
    for _ in range(probe_vectors):
        x = rng.standard_normal(mat.nrows)
        if float(x @ mat.spmv(x)) <= 0:
            raise NotSPDError("random probe found non-positive curvature")


def drop_small_relative(mat: CSRMatrix, tol: float) -> CSRMatrix:
    """Drop off-diagonal entries with ``|a_ij| <= tol·sqrt(|a_ii·a_jj|)``.

    The scale-independent dropping rule of Chow (2001), used both to build
    ``Ã`` (Alg. 1 step 1) and to post-filter ``G`` (Alg. 1 step 4).
    Diagonal entries are always kept.
    """
    if mat.nrows != mat.ncols:
        raise ShapeError("drop_small_relative expects a square matrix")
    if tol < 0:
        raise ValueError("tol must be non-negative")
    diag = np.abs(mat.diagonal())
    diag[diag == 0.0] = 1.0
    rows = np.repeat(np.arange(mat.nrows, dtype=np.int64), mat.row_nnz())
    scale = np.sqrt(diag[rows] * diag[mat.indices])
    drop = (np.abs(mat.data) <= tol * scale) & (rows != mat.indices)
    return mat.drop_entries(drop)
