"""Sparse general matrix–matrix multiplication (SpGEMM).

Two variants:

* :func:`symbolic_spgemm` — structure only, used to build the "sparse level"
  patterns ``pattern(Ã^N)`` of Alg. 1.
* :func:`spgemm` — numeric, row-wise Gustavson algorithm with a sparse
  accumulator (SPA).

Both are pure NumPy; the per-row inner loops are vectorised by gathering all
contributing rows of ``B`` at once and reducing with ``np.unique`` /
segment sums, which keeps the Python-level loop to one iteration per row of
``A`` (the standard Gustavson structure).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern

__all__ = ["symbolic_spgemm", "spgemm"]


def symbolic_spgemm(a: SparsityPattern, b: SparsityPattern) -> SparsityPattern:
    """Structure of the product ``a @ b`` of two boolean patterns."""
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    nrows = a.nrows
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    parts: list[np.ndarray] = []
    b_indptr, b_indices = b.indptr, b.indices
    for i in range(nrows):
        acols = a.row(i)
        if acols.size == 0:
            parts.append(np.empty(0, dtype=np.int64))
            continue
        # gather the column lists of every contributing row of B
        lo = b_indptr[acols]
        hi = b_indptr[acols + 1]
        total = int((hi - lo).sum())
        if total == 0:
            parts.append(np.empty(0, dtype=np.int64))
            continue
        gathered = np.empty(total, dtype=np.int64)
        off = 0
        for s, e in zip(lo, hi):
            gathered[off : off + (e - s)] = b_indices[s:e]
            off += e - s
        cols = np.unique(gathered)
        parts.append(cols)
        indptr[i + 1] = cols.size
    np.cumsum(indptr, out=indptr)
    indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    return SparsityPattern((a.nrows, b.ncols), indptr, indices, check=False)


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Numeric product ``a @ b`` via row-wise Gustavson with segment sums."""
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    nrows = a.nrows
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    col_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data
    for i in range(nrows):
        acols, avals = a.row(i)
        if acols.size == 0:
            col_parts.append(np.empty(0, dtype=np.int64))
            val_parts.append(np.empty(0, dtype=np.float64))
            continue
        lo = b_indptr[acols]
        hi = b_indptr[acols + 1]
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            col_parts.append(np.empty(0, dtype=np.int64))
            val_parts.append(np.empty(0, dtype=np.float64))
            continue
        gathered_cols = np.empty(total, dtype=np.int64)
        gathered_vals = np.empty(total, dtype=np.float64)
        off = 0
        for k in range(acols.size):
            s, e = lo[k], hi[k]
            n = e - s
            gathered_cols[off : off + n] = b_indices[s:e]
            gathered_vals[off : off + n] = avals[k] * b_data[s:e]
            off += n
        cols, inverse = np.unique(gathered_cols, return_inverse=True)
        vals = np.zeros(cols.size, dtype=np.float64)
        np.add.at(vals, inverse, gathered_vals)
        col_parts.append(cols)
        val_parts.append(vals)
        indptr[i + 1] = cols.size
    np.cumsum(indptr, out=indptr)
    indices = (
        np.concatenate(col_parts) if col_parts else np.empty(0, dtype=np.int64)
    )
    data = np.concatenate(val_parts) if val_parts else np.empty(0, dtype=np.float64)
    return CSRMatrix((a.nrows, b.ncols), indptr, indices, data, check=False)
