"""Admission control and per-tenant QoS accounting for the solve farm.

The farm is multi-tenant: every :class:`~repro.serve.farm.SolveRequest`
names a tenant, and each tenant runs under a :class:`TenantPolicy` — a
token budget bounding its in-flight solves, plus an optional
:class:`~repro.resilience.FaultPlan` that turns the tenant into a *chaos
tenant* (its solves run with the plan's faults installed, the
chaos-under-load recipe in ``docs/SERVING.md``).

The :class:`AdmissionController` is the front door.  Admission is a pure,
lock-protected decision — no I/O, no awaits — so its counts are exactly
reproducible and gateable: a request is admitted iff its tenant is known,
the global bounded queue has room, and the tenant has a token left.
Every decision is an :class:`AdmissionVerdict`; refusals carry a
machine-readable reason, and the shed fraction they induce is one of the
gated numbers in ``BENCH_serve.json``.

Completed solves report their latency back via
:meth:`AdmissionController.observe_latency`, which feeds one
:class:`~repro.observe.stream.StreamingHistogram` per tenant (microsecond
grid) — the source of the per-tenant p50/p95/p99 columns in the serve
report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.instrument import get_metrics
from repro.observe.stream import StreamingHistogram

__all__ = [
    "TenantPolicy",
    "AdmissionVerdict",
    "TenantStats",
    "AdmissionController",
]

#: Histogram grid for request latencies: 1 µs floor, ~19% bucket width.
LATENCY_LO = 1e-6
LATENCY_BASE = 2.0 ** 0.25


@dataclass(frozen=True)
class TenantPolicy:
    """QoS contract of one tenant.

    ``max_in_flight`` is the token budget: each admitted request consumes a
    token, returned on completion, so it bounds the tenant's concurrent
    solves.  ``fault_plan`` (a :class:`repro.resilience.FaultPlan`), when
    set, makes this a chaos tenant — the farm installs the plan around the
    tenant's solves, injecting its faults only into that tenant's traffic.
    """

    name: str
    max_in_flight: int = 8
    fault_plan: object | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("TenantPolicy: name must be non-empty")
        if self.max_in_flight < 1:
            raise ValueError(
                f"TenantPolicy {self.name!r}: max_in_flight must be >= 1, "
                f"got {self.max_in_flight}"
            )

    @property
    def chaotic(self) -> bool:
        """True when this tenant runs under a fault plan."""
        return self.fault_plan is not None


@dataclass(frozen=True)
class AdmissionVerdict:
    """Outcome of one admission decision.

    ``reason`` is ``"ok"`` on admission; refusals say why —
    ``"unknown-tenant"``, ``"queue-full"`` (global bounded queue) or
    ``"tenant-budget"`` (token budget exhausted).  ``queue_depth`` and
    ``in_flight`` snapshot the controller at decision time.
    """

    admitted: bool
    tenant: str
    reason: str
    queue_depth: int = 0
    in_flight: int = 0

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "admitted": self.admitted,
            "tenant": self.tenant,
            "reason": self.reason,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
        }


@dataclass
class TenantStats:
    """Always-on per-tenant accounting (admissions, sheds, latency)."""

    policy: TenantPolicy
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    in_flight: int = 0
    shed_reasons: dict = field(default_factory=dict)
    latency: StreamingHistogram = field(
        default_factory=lambda: StreamingHistogram(lo=LATENCY_LO, base=LATENCY_BASE)
    )

    @property
    def requests(self) -> int:
        """Total admission decisions for this tenant (admitted + shed)."""
        return self.admitted + self.shed

    @property
    def shed_fraction(self) -> float:
        """Shed decisions over total decisions (0.0 before any request)."""
        return self.shed / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (latency as p50/p95/p99/mean seconds)."""
        return {
            "tenant": self.policy.name,
            "max_in_flight": self.policy.max_in_flight,
            "chaotic": self.policy.chaotic,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "shed_fraction": self.shed_fraction,
            "shed_reasons": dict(self.shed_reasons),
            "latency": {
                "count": self.latency.count,
                "mean_s": self.latency.mean,
                "p50_s": self.latency.percentile(50),
                "p95_s": self.latency.percentile(95),
                "p99_s": self.latency.percentile(99),
            },
        }


class AdmissionController:
    """Bounded-queue, token-budget admission for the solve farm.

    ``queue_limit`` bounds requests admitted-but-not-finished across *all*
    tenants (the global queue); each tenant additionally spends from its
    own ``max_in_flight`` token budget.  All state transitions happen under
    one lock, so the admitted/shed counts are deterministic for a given
    request sequence — which is what lets ``check_bench_regression.py
    --serve`` gate them exactly.
    """

    def __init__(self, tenants, *, queue_limit: int = 64):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.queue_limit = queue_limit
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantStats] = {}
        for policy in tenants:
            if policy.name in self._tenants:
                raise ValueError(f"duplicate tenant {policy.name!r}")
            self._tenants[policy.name] = TenantStats(policy=policy)
        self._in_flight = 0

    @property
    def tenants(self) -> list[str]:
        """Registered tenant names, in registration order."""
        return list(self._tenants)

    def policy(self, tenant: str) -> TenantPolicy:
        """The policy of ``tenant`` (KeyError when unknown)."""
        return self._tenants[tenant].policy

    def stats(self, tenant: str) -> TenantStats:
        """Live stats of ``tenant`` (KeyError when unknown)."""
        return self._tenants[tenant]

    @property
    def in_flight(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._in_flight

    def _shed(self, stats: TenantStats | None, tenant: str, reason: str) -> AdmissionVerdict:
        if stats is not None:
            stats.shed += 1
            stats.shed_reasons[reason] = stats.shed_reasons.get(reason, 0) + 1
        get_metrics().counter("serve.shed", tenant=tenant, reason=reason).inc()
        return AdmissionVerdict(
            admitted=False,
            tenant=tenant,
            reason=reason,
            queue_depth=self._in_flight,
            in_flight=stats.in_flight if stats is not None else 0,
        )

    def admit(self, tenant: str) -> AdmissionVerdict:
        """Decide one request: consume a queue slot and a tenant token, or shed.

        Admitted requests *must* be paired with exactly one
        :meth:`release` call (the farm does this in a ``finally``).
        """
        with self._lock:
            stats = self._tenants.get(tenant)
            if stats is None:
                return self._shed(None, tenant, "unknown-tenant")
            if self._in_flight >= self.queue_limit:
                return self._shed(stats, tenant, "queue-full")
            if stats.in_flight >= stats.policy.max_in_flight:
                return self._shed(stats, tenant, "tenant-budget")
            self._in_flight += 1
            stats.in_flight += 1
            stats.admitted += 1
            get_metrics().counter("serve.admitted", tenant=tenant).inc()
            return AdmissionVerdict(
                admitted=True,
                tenant=tenant,
                reason="ok",
                queue_depth=self._in_flight,
                in_flight=stats.in_flight,
            )

    def release(self, tenant: str, *, ok: bool = True) -> None:
        """Return an admitted request's slot and token; ``ok=False`` counts
        the request as failed instead of completed."""
        with self._lock:
            stats = self._tenants[tenant]
            if stats.in_flight < 1:
                raise RuntimeError(
                    f"release without matching admit for tenant {tenant!r}"
                )
            stats.in_flight -= 1
            self._in_flight -= 1
            if ok:
                stats.completed += 1
            else:
                stats.failed += 1

    def observe_latency(self, tenant: str, seconds: float) -> None:
        """Stream one request latency into the tenant's histogram and the
        ``serve.latency`` metric."""
        with self._lock:
            self._tenants[tenant].latency.observe(seconds)
        get_metrics().counter("serve.latency.observations", tenant=tenant).inc()

    @property
    def shed_fraction(self) -> float:
        """Global shed fraction across all tenants (unknown-tenant sheds
        excluded — they have no registered tenant to charge)."""
        with self._lock:
            admitted = sum(s.admitted for s in self._tenants.values())
            shed = sum(s.shed for s in self._tenants.values())
        total = admitted + shed
        return shed / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form: global counts plus per-tenant stats."""
        with self._lock:
            tenants = {name: s.to_dict() for name, s in self._tenants.items()}
            admitted = sum(s.admitted for s in self._tenants.values())
            shed = sum(s.shed for s in self._tenants.values())
        total = admitted + shed
        return {
            "queue_limit": self.queue_limit,
            "admitted": admitted,
            "shed": shed,
            "shed_fraction": shed / total if total else 0.0,
            "tenants": tenants,
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(tenants={self.tenants}, "
            f"queue_limit={self.queue_limit}, in_flight={self.in_flight})"
        )
