"""Versioned serve reports: what the farm did, as a JSON artifact.

A :class:`ServeReport` (``format: "repro-serve-report"``, ``version: 1``)
captures one serving window: farm configuration, admission and shed
accounting per tenant, both artifact-cache tiers, build/solve/audit
counters, and optionally the per-request outcomes.  It is the document
the ``repro serve`` CLI prints and saves, and
:meth:`repro.observe.report.RunReport.load` dispatches on its format so
``repro report`` / ``RunReport.compare`` work on serve artifacts the same
way they work on trace and benchmark artifacts (the format string is
duplicated there deliberately — the observe layer must not import
:mod:`repro.serve`, mirroring the flight-recorder contract).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

__all__ = [
    "SERVE_FORMAT",
    "SERVE_VERSION",
    "ServeReportError",
    "ServeReport",
]

SERVE_FORMAT = "repro-serve-report"
SERVE_VERSION = 1


class ServeReportError(ReproError):
    """A serve-report artifact is malformed or has the wrong format."""


@dataclass
class ServeReport:
    """One serving window's accounting, as a versioned document.

    ``farm`` is the :meth:`repro.serve.farm.SolveFarm.report` dictionary;
    ``outcomes`` the per-request :meth:`SolveOutcome.to_dict` rows (may be
    omitted for long windows — the aggregate accounting stands alone).
    """

    meta: dict = field(default_factory=dict)
    farm: dict = field(default_factory=dict)
    outcomes: list = field(default_factory=list)

    @property
    def label(self) -> str:
        """Display label of this report."""
        return str(self.meta.get("label", "serve"))

    @classmethod
    def from_farm(
        cls, farm, outcomes=None, *, label: str = "serve", **meta
    ) -> "ServeReport":
        """Snapshot a :class:`~repro.serve.farm.SolveFarm` (and optionally
        the outcomes it produced) into a report."""
        return cls(
            meta={"label": label, **meta},
            farm=farm.report(),
            outcomes=[o.to_dict() for o in outcomes] if outcomes else [],
        )

    def metrics(self) -> dict:
        """Flat comparable ``serve.*`` metrics (the surface
        :meth:`RunReport.compare` diffs)."""
        flat: dict[str, float] = {}
        admission = self.farm.get("admission", {})
        for key in ("admitted", "shed", "shed_fraction"):
            if key in admission:
                flat[f"serve.{key}"] = float(admission[key])
        for name, tstats in admission.get("tenants", {}).items():
            for key in ("admitted", "shed", "completed", "failed", "shed_fraction"):
                flat[f"serve.tenant.{name}.{key}"] = float(tstats.get(key, 0))
            lat = tstats.get("latency", {})
            for key in ("p50_s", "p95_s", "p99_s", "mean_s"):
                if key in lat:
                    flat[f"serve.tenant.{name}.latency.{key}"] = float(lat[key])
        for tier, cstats in self.farm.get("caches", {}).items():
            for key in ("hits", "misses", "evictions", "hit_rate"):
                if key in cstats:
                    flat[f"serve.cache.{tier}.{key}"] = float(cstats[key])
        for key, value in self.farm.get("counters", {}).items():
            flat[f"serve.{key}"] = float(value)
        return flat

    # persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable versioned form."""
        return {
            "format": SERVE_FORMAT,
            "version": SERVE_VERSION,
            "meta": dict(self.meta),
            "farm": dict(self.farm),
            "outcomes": list(self.outcomes),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ServeReport":
        """Validate and load the saved document form."""
        if not isinstance(doc, dict):
            raise ServeReportError("serve report must be a JSON object")
        if doc.get("format") != SERVE_FORMAT:
            raise ServeReportError(
                f"not a serve report (format={doc.get('format')!r}, "
                f"expected {SERVE_FORMAT!r})"
            )
        if doc.get("version") != SERVE_VERSION:
            raise ServeReportError(
                f"unsupported serve-report schema version {doc.get('version')!r} "
                f"(this build reads version {SERVE_VERSION})"
            )
        return cls(
            meta=dict(doc.get("meta", {})),
            farm=dict(doc.get("farm", {})),
            outcomes=list(doc.get("outcomes", [])),
        )

    def save(self, path, *, indent: int | None = 2) -> Path:
        """Write the versioned JSON document; returns the path written."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path) -> "ServeReport":
        """Read a serve report; :class:`ServeReportError` on anything else."""
        path = Path(path)
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise ServeReportError(f"cannot read {path}: {exc}") from exc
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServeReportError(f"{path} is not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(doc)
        except ServeReportError as exc:
            raise ServeReportError(f"{path}: {exc}") from None

    # rendering ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable multi-line summary (the ``repro serve`` output)."""
        admission = self.farm.get("admission", {})
        caches = self.farm.get("caches", {})
        counters = self.farm.get("counters", {})
        lines = [
            f"serve report: {self.label}",
            (
                f"  admitted {admission.get('admitted', 0)}, "
                f"shed {admission.get('shed', 0)} "
                f"(fraction {admission.get('shed_fraction', 0.0):.3f}), "
                f"solves {counters.get('solves', 0)}"
            ),
        ]
        for name, tstats in admission.get("tenants", {}).items():
            lat = tstats.get("latency", {})
            chaos = " [chaos]" if tstats.get("chaotic") else ""
            lines.append(
                f"  tenant {name}{chaos}: admitted {tstats.get('admitted', 0)}, "
                f"shed {tstats.get('shed', 0)}, "
                f"p50 {lat.get('p50_s', 0.0) * 1e3:.2f} ms, "
                f"p95 {lat.get('p95_s', 0.0) * 1e3:.2f} ms, "
                f"p99 {lat.get('p99_s', 0.0) * 1e3:.2f} ms"
            )
        for tier, cstats in caches.items():
            lines.append(
                f"  cache[{tier}]: {cstats.get('hits', 0)} hits / "
                f"{cstats.get('misses', 0)} misses "
                f"(rate {cstats.get('hit_rate', 0.0):.3f}), "
                f"{cstats.get('evictions', 0)} evictions, "
                f"{cstats.get('bytes', 0)} bytes resident"
            )
        lines.append(
            f"  setup builds: {counters.get('structure_builds', 0)} structure, "
            f"{counters.get('system_builds', 0)} system; invariance audits "
            f"{counters.get('audits', 0)} "
            f"({counters.get('audit_violations', 0)} violations)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ServeReport(label={self.label!r}, "
            f"outcomes={len(self.outcomes)})"
        )
