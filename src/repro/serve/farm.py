"""The solve farm: an async front door over a pool of solver workers.

A :class:`SolveFarm` accepts concurrent :class:`SolveRequest` objects
(asyncio coroutine :meth:`SolveFarm.submit`, or the synchronous batch
driver :meth:`SolveFarm.serve`), admits them through the
:class:`~repro.serve.tenancy.AdmissionController`, and runs each admitted
solve on a thread worker.  Workers host the same numerics as everything
else in the repo — :func:`repro.core.cg.pcg` on a
:class:`~repro.dist.DistMatrix` by default, or the full SPMD runtime
(:func:`repro.dist.spmd.spmd_cg`, message passing via
:func:`repro.mpisim.run_spmd`) when the request says ``engine="spmd"``.

Request lifecycle (the diagram in ``docs/SERVING.md``):

1. **admit** — bounded queue + per-tenant token budget; refusals return a
   shed :class:`SolveOutcome` immediately.
2. **structure tier** — fingerprint the matrix structure
   (:func:`~repro.serve.fingerprint.fingerprint_structure`); on a miss,
   build partition + preconditioner and cache them with the halo-schedule
   snapshot; on a hit, reuse and *prove* the fresh operator's schedule is
   byte-identical to the cached snapshot
   (:func:`repro.observe.audit.compare_snapshots` — the §4 invariance
   audit, now running on production traffic).
3. **system tier** — key on (structure, values digest); on a hit the
   distributed operator and a warm :class:`~repro.serve.cache.WorkspacePool`
   are reused verbatim.
4. **solve** — PCG under a read lock; chaos tenants instead take the
   exclusive write lock and run under their
   :class:`~repro.resilience.FaultPlan` (the injector hook is
   process-wide, so faulty and clean solves must not overlap).
5. **report** — latency into the tenant histogram, counters into
   ``serve.*`` metrics, a :class:`SolveOutcome` back to the caller.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.cg import pcg
from repro.core.precond import (
    FilterSpec,
    PrecondOptions,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
)
from repro.dist.matrix import DistMatrix
from repro.dist.partition_map import RowPartition
from repro.dist.spmd import spmd_cg
from repro.dist.vector import DistVector
from repro.errors import ReproError
from repro.instrument import get_metrics
from repro.matgen.rhs import paper_rhs
from repro.observe.audit import compare_snapshots, schedule_snapshot
from repro.resilience import fault_injection
from repro.serve.cache import (
    ArtifactCache,
    SetupArtifacts,
    SystemArtifacts,
    WorkspacePool,
    estimate_dist_nbytes,
    estimate_precond_nbytes,
)
from repro.serve.fingerprint import fingerprint_structure, values_digest
from repro.serve.tenancy import AdmissionController

__all__ = [
    "SolveRequest",
    "SolveOutcome",
    "FarmConfig",
    "SolveFarm",
]

_BUILDERS = {"fsai": build_fsai, "fsaie": build_fsaie, "comm": build_fsaie_comm}


class _ReadWriteLock:
    """Writer-preferring readers-writer lock.

    Normal solves run concurrently under the read side; chaos solves take
    the exclusive write side because the fault-injector hook
    (:mod:`repro.mpisim.injection`) is process-wide — a plan installed for
    one tenant must never bleed into another tenant's in-flight solve.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self):
        """Block until no writer holds or awaits the lock, then enter."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self):
        """Leave the read side."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self):
        """Block until exclusive, then enter."""
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self):
        """Leave the write side."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()


@dataclass(frozen=True)
class SolveRequest:
    """One tenant's solve: a CSR system plus solver knobs.

    ``rhs=None`` uses the paper's deterministic right-hand side
    (:func:`repro.matgen.rhs.paper_rhs`).  ``engine`` picks the worker
    numerics: ``"bsp"`` runs :func:`repro.core.cg.pcg` on the distributed
    operator; ``"spmd"`` routes through :func:`repro.dist.spmd.spmd_cg`
    on real simulated message passing.  ``tag`` is an opaque label echoed
    into the outcome (request tracing).
    """

    tenant: str
    mat: object
    rhs: object | None = None
    rtol: float = 1e-8
    max_iterations: int = 10_000
    engine: str = "bsp"
    tag: str = ""

    def __post_init__(self):
        if self.engine not in ("bsp", "spmd"):
            raise ReproError(
                f"SolveRequest.engine must be 'bsp' or 'spmd', got {self.engine!r}"
            )


@dataclass
class SolveOutcome:
    """What the farm did with one request.

    ``ok`` means admitted, solved and converged.  Shed requests have
    ``admitted=False`` and carry the shed reason; solved requests report
    cache behaviour (``structure_hit`` / ``system_hit``), the invariance
    audit (``schedule_invariant`` — ``None`` on structure misses, where
    there is no cached snapshot to compare against), the tenant's injected
    fault counts when chaotic, and the request latency.
    """

    tenant: str
    tag: str = ""
    admitted: bool = False
    shed_reason: str = ""
    ok: bool = False
    converged: bool = False
    iterations: int = 0
    residual: float = float("nan")
    latency_s: float = 0.0
    engine: str = "bsp"
    fingerprint: str = ""
    structure_hit: bool = False
    system_hit: bool = False
    schedule_invariant: bool | None = None
    injected: dict = field(default_factory=dict)
    error: str | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "tenant": self.tenant,
            "tag": self.tag,
            "admitted": self.admitted,
            "shed_reason": self.shed_reason,
            "ok": self.ok,
            "converged": self.converged,
            "iterations": self.iterations,
            "residual": self.residual,
            "latency_s": self.latency_s,
            "engine": self.engine,
            "fingerprint": self.fingerprint,
            "structure_hit": self.structure_hit,
            "system_hit": self.system_hit,
            "schedule_invariant": self.schedule_invariant,
            "injected": self.injected,
            "error": self.error,
        }


@dataclass(frozen=True)
class FarmConfig:
    """Farm-wide knobs: cluster shape, setup options, queue and cache bounds.

    ``cache_max_bytes=None`` leaves the artifact caches unbounded;
    ``0`` disables them (the benchmark's cold phase).  ``ranks`` is the
    simulated cluster size each solve is sharded across; ``method`` picks
    the preconditioner family (``fsai`` / ``fsaie`` / ``comm``).
    """

    ranks: int = 4
    method: str = "comm"
    workers: int = 4
    queue_limit: int = 64
    cache_max_bytes: int | None = None
    line_bytes: int = 64
    filter_value: float = 0.01
    dynamic_filter: bool = True
    partition_seed: int = 0

    def __post_init__(self):
        if self.method not in _BUILDERS:
            raise ReproError(
                f"FarmConfig.method must be one of {sorted(_BUILDERS)}, "
                f"got {self.method!r}"
            )
        if self.ranks < 1 or self.workers < 1:
            raise ReproError("FarmConfig: ranks and workers must be >= 1")

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "ranks": self.ranks,
            "method": self.method,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "cache_max_bytes": self.cache_max_bytes,
            "line_bytes": self.line_bytes,
            "filter_value": self.filter_value,
            "dynamic_filter": self.dynamic_filter,
            "partition_seed": self.partition_seed,
        }


class SolveFarm:
    """Multi-tenant solve service over simulated clusters.

    Construct with the tenant policies and a :class:`FarmConfig`; submit
    requests from asyncio (:meth:`submit`) or in bulk from synchronous
    code (:meth:`serve`).  The farm owns the two artifact-cache tiers,
    the admission controller, the worker pool and the chaos lock; call
    :meth:`shutdown` (or use it as a context manager) when done.
    """

    def __init__(self, tenants, config: FarmConfig | None = None):
        self.config = config or FarmConfig()
        self.admission = AdmissionController(
            tenants, queue_limit=self.config.queue_limit
        )
        self.structures = ArtifactCache(
            self.config.cache_max_bytes, name="structure"
        )
        self.systems = ArtifactCache(self.config.cache_max_bytes, name="system")
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="serve-worker"
        )
        self._chaos_lock = _ReadWriteLock()
        self._build_locks: dict = {}
        self._build_locks_guard = threading.Lock()
        self._stats_lock = threading.Lock()
        self.structure_builds = 0
        self.system_builds = 0
        self.solves = 0
        self.audits = 0
        self.audit_violations = 0

    # -- lifecycle ------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the worker pool (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SolveFarm":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- front door -----------------------------------------------------
    async def submit(self, request: SolveRequest) -> SolveOutcome:
        """Admit and run one request; always returns an outcome.

        Shed requests return immediately (no worker dispatched).  Worker
        exceptions are captured into ``outcome.error`` rather than raised —
        one tenant's bad matrix must not tear down the farm.
        """
        verdict = self.admission.admit(request.tenant)
        if not verdict.admitted:
            return SolveOutcome(
                tenant=request.tenant,
                tag=request.tag,
                admitted=False,
                shed_reason=verdict.reason,
                engine=request.engine,
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self._run_admitted, request)

    def serve(self, requests) -> list:
        """Synchronous batch driver: submit all requests concurrently and
        return their outcomes in request order."""

        async def _drive():
            return await asyncio.gather(*(self.submit(r) for r in requests))

        return asyncio.run(_drive())

    # -- worker body ----------------------------------------------------
    def _run_admitted(self, request: SolveRequest) -> SolveOutcome:
        start = time.perf_counter()
        try:
            outcome = self._solve(request)
        except Exception as exc:  # noqa: BLE001 — isolate tenant failures
            outcome = SolveOutcome(
                tenant=request.tenant,
                tag=request.tag,
                admitted=True,
                engine=request.engine,
                error=f"{type(exc).__name__}: {exc}",
            )
        outcome.latency_s = time.perf_counter() - start
        self.admission.release(request.tenant, ok=outcome.ok)
        self.admission.observe_latency(request.tenant, outcome.latency_s)
        get_metrics().counter(
            "serve.requests", tenant=request.tenant, ok=str(outcome.ok)
        ).inc()
        return outcome

    def _build_lock(self, cache: ArtifactCache, key):
        """Per-key build lock, so concurrent cold requests for the same
        artifact build it once.  When the cache is disabled (``max_bytes=0``,
        the benchmark's cold phase) nothing can be shared, so builds run
        unserialised — the cold numbers measure no-reuse concurrency, not
        lock contention."""
        if cache.max_bytes == 0:
            return nullcontext()
        with self._build_locks_guard:
            lock = self._build_locks.get(key)
            if lock is None:
                lock = self._build_locks[key] = threading.Lock()
            return lock

    def _setup_artifacts(self, request: SolveRequest):
        """Structure tier: fingerprint, then fetch-or-build setup artifacts.

        Returns ``(setup, structure_hit)``.  Per-fingerprint build locks
        serialise concurrent cold requests for the same structure so the
        expensive FSAI setup runs once, not once per request.
        """
        cfg = self.config
        fp = fingerprint_structure(
            request.mat,
            ranks=cfg.ranks,
            method=cfg.method,
            line_bytes=cfg.line_bytes,
            filter_value=cfg.filter_value,
            dynamic=cfg.dynamic_filter,
            seed=cfg.partition_seed,
        )
        with self._build_lock(self.structures, ("structure", fp.digest)):
            setup = self.structures.get(fp)
            if setup is not None:
                return setup, True
            part = RowPartition.from_matrix(
                request.mat, cfg.ranks, seed=cfg.partition_seed
            )
            options = PrecondOptions(
                line_bytes=cfg.line_bytes,
                filter=FilterSpec(cfg.filter_value, dynamic=cfg.dynamic_filter),
            )
            pre = _BUILDERS[cfg.method](request.mat, part, options)
            dist_a = DistMatrix.from_global(request.mat, part)
            setup = SetupArtifacts(
                fingerprint=fp,
                partition=part,
                preconditioner=pre,
                schedule_snapshot=schedule_snapshot(dist_a.schedule),
                nbytes=estimate_precond_nbytes(pre),
            )
            self.structures.put(fp, setup, setup.nbytes)
            with self._stats_lock:
                self.structure_builds += 1
            # Seed the system tier with the operator we just built so the
            # first solve of this exact matrix doesn't redistribute it.
            vd = values_digest(request.mat)
            system = SystemArtifacts(
                values_digest=vd,
                dist_a=dist_a,
                workspaces=WorkspacePool(lambda: _fresh_workspace(dist_a)),
                nbytes=estimate_dist_nbytes(dist_a),
            )
            self.systems.put((fp.digest, vd), system, system.nbytes)
            with self._stats_lock:
                self.system_builds += 1
            return setup, False

    def _system_artifacts(self, request: SolveRequest, setup, structure_hit: bool):
        """System tier: fetch-or-build the distributed operator.

        On a build after a structure *hit*, audits the fresh operator's
        halo schedule against the cached snapshot — the proof that
        same-structure/different-values reuse moves byte-identical
        traffic.  Returns ``(system, system_hit, schedule_invariant)``.
        """
        fp = setup.fingerprint
        vd = values_digest(request.mat)
        key = (fp.digest, vd)
        with self._build_lock(self.systems, ("system",) + key):
            system = self.systems.get(key)
            if system is not None:
                return system, True, None
            dist_a = DistMatrix.from_global(request.mat, setup.partition)
            invariant = None
            if structure_hit:
                verdict = compare_snapshots(
                    setup.schedule_snapshot,
                    schedule_snapshot(dist_a.schedule),
                    base_label="cached-structure",
                    other_label="fresh-operator",
                )
                invariant = verdict.invariant
                with self._stats_lock:
                    self.audits += 1
                    if not invariant:
                        self.audit_violations += 1
                get_metrics().counter(
                    "serve.audit", invariant=str(invariant)
                ).inc()
            system = SystemArtifacts(
                values_digest=vd,
                dist_a=dist_a,
                workspaces=WorkspacePool(lambda: _fresh_workspace(dist_a)),
                nbytes=estimate_dist_nbytes(dist_a),
            )
            self.systems.put(key, system, system.nbytes)
            with self._stats_lock:
                self.system_builds += 1
            return system, False, invariant

    def _solve(self, request: SolveRequest) -> SolveOutcome:
        setup, structure_hit = self._setup_artifacts(request)
        system, system_hit, invariant = self._system_artifacts(
            request, setup, structure_hit
        )
        rhs = request.rhs
        if rhs is None:
            rhs = paper_rhs(request.mat, seed=0)
        b = DistVector.from_global(np.asarray(rhs, dtype=np.float64), setup.partition)

        policy = self.admission.policy(request.tenant)
        if policy.chaotic:
            self._chaos_lock.acquire_write()
            try:
                with fault_injection(policy.fault_plan) as injector:
                    outcome = self._execute(request, setup, system, b)
                outcome.injected = {
                    k: v for k, v in injector.counts.items() if v
                }
            finally:
                self._chaos_lock.release_write()
        else:
            self._chaos_lock.acquire_read()
            try:
                outcome = self._execute(request, setup, system, b)
            finally:
                self._chaos_lock.release_read()

        outcome.fingerprint = setup.fingerprint.digest
        outcome.structure_hit = structure_hit
        outcome.system_hit = system_hit
        outcome.schedule_invariant = invariant
        with self._stats_lock:
            self.solves += 1
        return outcome

    def _execute(self, request, setup, system, b) -> SolveOutcome:
        """Run the numerics on a checked-out workspace (bsp) or the SPMD
        runtime, and fold the result into an outcome."""
        pre = setup.preconditioner
        if request.engine == "spmd":
            x, iters = spmd_cg(
                system.dist_a,
                b,
                rtol=request.rtol,
                max_iterations=request.max_iterations,
                precond_pair=(pre.g, pre.gt),
            )
            xg = x.to_global()
            bg = b.to_global()
            res = float(
                np.linalg.norm(bg - request.mat.spmv(xg)) / np.linalg.norm(bg)
            )
            converged = res <= request.rtol * 10
            return SolveOutcome(
                tenant=request.tenant,
                tag=request.tag,
                admitted=True,
                ok=converged,
                converged=converged,
                iterations=int(iters),
                residual=res,
                engine="spmd",
            )
        workspace = system.workspaces.acquire()
        try:
            result = pcg(
                system.dist_a,
                b,
                precond=pre,
                rtol=request.rtol,
                max_iterations=request.max_iterations,
                workspace=workspace,
            )
        finally:
            system.workspaces.release(workspace)
        return SolveOutcome(
            tenant=request.tenant,
            tag=request.tag,
            admitted=True,
            ok=bool(result.converged),
            converged=bool(result.converged),
            iterations=int(result.iterations),
            residual=float(result.residual_norms[-1]),
            engine="bsp",
        )

    # -- reporting ------------------------------------------------------
    def report(self) -> dict:
        """Everything the serve report needs: config, admission stats,
        both cache tiers, build/solve/audit counters."""
        with self._stats_lock:
            counters = {
                "solves": self.solves,
                "structure_builds": self.structure_builds,
                "system_builds": self.system_builds,
                "audits": self.audits,
                "audit_violations": self.audit_violations,
            }
        return {
            "config": self.config.to_dict(),
            "admission": self.admission.to_dict(),
            "caches": {
                "structure": self.structures.stats.to_dict(),
                "system": self.systems.stats.to_dict(),
            },
            "counters": counters,
        }

    def __repr__(self) -> str:
        return (
            f"SolveFarm(tenants={self.admission.tenants}, "
            f"method={self.config.method!r}, ranks={self.config.ranks}, "
            f"workers={self.config.workers})"
        )


def _fresh_workspace(dist_a):
    from repro.kernels.workspace import SolverWorkspace

    return SolverWorkspace(dist_a)
