"""Solver-as-a-service: the multi-tenant batched solve farm.

This package is the serving front door over everything built below it —
the paper's setup artifacts (FSAI/FSAIE/FSAIE-Comm factors, halo
schedules, SpMV plans, solver workspaces) are expensive to build and cheap
to reuse, and :mod:`repro.serve` turns that into service economics:

* :mod:`~repro.serve.fingerprint` — structure fingerprints, the cache
  keys: SHA-256 over shape + CSR ``indptr``/``indices`` + setup options
  (values deliberately excluded);
* :mod:`~repro.serve.cache` — the fingerprint-keyed
  :class:`~repro.serve.cache.ArtifactCache` (thread-safe LRU, max-bytes
  bound, ``serve.cache.*`` metrics) holding the structure and system
  artifact tiers;
* :mod:`~repro.serve.tenancy` — admission control: per-tenant token
  budgets, a bounded global queue, load-shed verdicts, per-tenant latency
  histograms;
* :mod:`~repro.serve.farm` — the :class:`~repro.serve.farm.SolveFarm`
  itself: asyncio front end, thread workers hosting
  :func:`repro.core.cg.pcg` / :func:`repro.dist.spmd.spmd_cg`, chaos
  tenants under :mod:`repro.resilience` fault plans, and the §4
  invariance audit run on every warm-structure solve;
* :mod:`~repro.serve.report` — the versioned ``repro-serve-report``
  artifact.

Operator documentation lives in ``docs/SERVING.md``; the benchmark is
``benchmarks/serve_bench.py`` (gated by ``check_bench_regression.py
--serve``); the CLI driver is ``repro serve``.
"""

from repro.serve.cache import (
    ArtifactCache,
    SetupArtifacts,
    SystemArtifacts,
    WorkspacePool,
    estimate_dist_nbytes,
    estimate_precond_nbytes,
)
from repro.serve.farm import FarmConfig, SolveFarm, SolveOutcome, SolveRequest
from repro.serve.fingerprint import (
    StructureFingerprint,
    fingerprint_structure,
    values_digest,
)
from repro.serve.report import (
    SERVE_FORMAT,
    SERVE_VERSION,
    ServeReport,
    ServeReportError,
)
from repro.serve.tenancy import (
    AdmissionController,
    AdmissionVerdict,
    TenantPolicy,
    TenantStats,
)

__all__ = [
    "StructureFingerprint",
    "fingerprint_structure",
    "values_digest",
    "ArtifactCache",
    "SetupArtifacts",
    "SystemArtifacts",
    "WorkspacePool",
    "estimate_dist_nbytes",
    "estimate_precond_nbytes",
    "TenantPolicy",
    "AdmissionVerdict",
    "TenantStats",
    "AdmissionController",
    "SolveRequest",
    "SolveOutcome",
    "FarmConfig",
    "SolveFarm",
    "SERVE_FORMAT",
    "SERVE_VERSION",
    "ServeReportError",
    "ServeReport",
]
