"""Structure fingerprints: the cache keys of the solve farm.

The paper's economics — setup artifacts are expensive to build but cheap to
reuse — only pay off if the serving layer can *recognise* that two solve
requests share a setup.  A :class:`StructureFingerprint` is that
recognition: a SHA-256 digest over everything the setup artifacts depend on
structurally —

* the matrix **shape** and the CSR **indptr/indices** arrays (the sparsity
  pattern; values are deliberately excluded),
* the **partitioning** inputs (rank count, partition seed),
* the **pattern options** (method, cache-line bytes, filter spec), and
* the **runtime options** (array backend, dtype).

Two matrices with the same fingerprint produce bit-identical FSAI patterns,
halo schedules, :class:`~repro.kernels.plan.SpMVPlan` layouts and
:class:`~repro.kernels.workspace.SolverWorkspace` geometries — which is what
makes the :class:`~repro.serve.cache.ArtifactCache` sound.  The factor
*values* of a cached preconditioner do depend on the matrix values; reusing
them across same-structure/different-values solves is the classic
time-stepping amortization (the preconditioner stays symmetric positive
definite, so CG still converges to the new system's solution — only the
iteration count may drift as the values drift).  Requests that must not
share factor values additionally key on :func:`values_digest`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["StructureFingerprint", "fingerprint_structure", "values_digest"]


@dataclass(frozen=True)
class StructureFingerprint:
    """Identity of one setup-artifact family in the cache.

    ``digest`` is the SHA-256 hex over the structure and options;
    ``options`` keeps the human-readable ingredients for reports and
    eviction logs.  Hashable — usable directly as a cache key.
    """

    digest: str
    shape: tuple[int, int]
    nnz: int
    ranks: int
    options: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @property
    def key(self) -> str:
        """The cache-key string (digest prefixed with shape/ranks for logs)."""
        return f"{self.shape[0]}x{self.shape[1]}/p{self.ranks}/{self.digest}"

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "digest": self.digest,
            "shape": list(self.shape),
            "nnz": self.nnz,
            "ranks": self.ranks,
            "options": {k: v for k, v in self.options},
        }

    def __repr__(self) -> str:
        return f"StructureFingerprint({self.key[:40]}…, nnz={self.nnz})"


def _hash_arrays(h, *arrays) -> None:
    for arr in arrays:
        h.update(arr.tobytes())


def fingerprint_structure(
    mat,
    *,
    ranks: int,
    method: str = "comm",
    line_bytes: int = 64,
    filter_value: float = 0.01,
    dynamic: bool = True,
    backend: str = "numpy",
    dtype: str = "float64",
    seed: int = 0,
) -> StructureFingerprint:
    """Fingerprint a CSR matrix's structure plus the setup options.

    The digest covers shape, ``indptr``, ``indices`` and the canonicalised
    option string — **not** ``data``: requests whose matrices differ only in
    values map to the same fingerprint and therefore share every
    structure-derived artifact (pattern, schedules, plans, workspaces).
    """
    opts = (
        ("method", str(method)),
        ("line_bytes", str(int(line_bytes))),
        ("filter_value", f"{float(filter_value):.12g}"),
        ("dynamic", str(bool(dynamic))),
        ("backend", str(backend)),
        ("dtype", str(dtype)),
        ("seed", str(int(seed))),
    )
    h = hashlib.sha256()
    h.update(f"shape={mat.shape!r};".encode())
    _hash_arrays(h, mat.indptr, mat.indices)
    h.update(";".join(f"{k}={v}" for k, v in opts).encode())
    return StructureFingerprint(
        digest=h.hexdigest(),
        shape=(int(mat.shape[0]), int(mat.shape[1])),
        nnz=int(mat.nnz),
        ranks=int(ranks),
        options=opts,
    )


def values_digest(mat) -> str:
    """SHA-256 hex over the matrix's stored values (``data`` array only).

    Combined with a :class:`StructureFingerprint` this identifies the matrix
    bitwise: same structure digest + same values digest means the distributed
    operator and its factor values are reusable verbatim.
    """
    h = hashlib.sha256()
    h.update(mat.data.tobytes())
    return h.hexdigest()
