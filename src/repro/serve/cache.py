"""Fingerprint-keyed artifact cache with LRU eviction under a byte bound.

One :class:`ArtifactCache` instance holds one *tier* of reusable setup
state; the farm runs two:

* the **structure tier**, keyed by
  :class:`~repro.serve.fingerprint.StructureFingerprint` — holds
  :class:`SetupArtifacts` (partition, preconditioner, the halo-schedule
  snapshot used to prove bit-identity on later hits);
* the **system tier**, keyed by ``(structure digest, values digest)`` —
  holds :class:`SystemArtifacts` (the distributed operator and a
  :class:`WorkspacePool` of warm :class:`~repro.kernels.SolverWorkspace`
  objects, so repeated solves of the bit-identical system run
  allocation-free).

Entries carry a byte estimate; inserting past ``max_bytes`` evicts least
recently used entries (never the one just inserted).  Hits, misses,
evictions and resident bytes are mirrored to the instrumentation registry
as ``serve.cache.{hits,misses,evictions,bytes}`` counters/gauges tagged by
tier, alongside the cache's own always-on counters — the numbers
``BENCH_serve.json`` reports.  All operations are thread-safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.instrument import get_metrics

__all__ = [
    "ArtifactCache",
    "SetupArtifacts",
    "SystemArtifacts",
    "WorkspacePool",
    "estimate_dist_nbytes",
    "estimate_precond_nbytes",
]


def estimate_dist_nbytes(dmat) -> int:
    """Rough resident-byte estimate of a :class:`~repro.dist.DistMatrix`
    (CSR arrays plus halo-schedule index lists)."""
    total = 0
    for lm in dmat.locals:
        total += 8 * (lm.csr.indptr.size + lm.csr.indices.size + lm.csr.data.size)
        total += 8 * lm.global_rows.size + 8 * lm.ext_cols.size
    return total


def estimate_precond_nbytes(pre) -> int:
    """Rough resident-byte estimate of a
    :class:`~repro.core.precond.Preconditioner` (both factors)."""
    return estimate_dist_nbytes(pre.g) + estimate_dist_nbytes(pre.gt)


class WorkspacePool:
    """Checkout pool of :class:`~repro.kernels.SolverWorkspace` objects.

    Workspaces hold scratch state and are not thread-safe; the pool hands
    each concurrent solve its own, and returns finished workspaces to the
    free list so later solves of the same system reuse the warm buffers
    (zero hot-loop allocations, the PR-2 contract).
    """

    def __init__(self, factory):
        self._factory = factory
        self._free: list = []
        self._lock = threading.Lock()
        #: Workspaces ever created by this pool (monotonic).
        self.created = 0

    def acquire(self):
        """A free workspace, or a freshly built one when none is idle."""
        with self._lock:
            if self._free:
                return self._free.pop()
            self.created += 1
        return self._factory()

    def release(self, workspace) -> None:
        """Return ``workspace`` to the free list."""
        with self._lock:
            self._free.append(workspace)

    @property
    def idle(self) -> int:
        """Workspaces currently parked in the free list."""
        with self._lock:
            return len(self._free)

    def __repr__(self) -> str:
        return f"WorkspacePool(created={self.created}, idle={self.idle})"


@dataclass
class SetupArtifacts:
    """Structure-tier cache entry: everything derived from the sparsity
    structure plus setup options, reusable across matrices that share the
    fingerprint.

    ``schedule_snapshot`` is the static per-edge accounting of the
    operator's halo schedule (see
    :func:`repro.observe.audit.schedule_snapshot`), stored at build time so
    later same-structure solves can *prove* their fresh schedule is
    bit-identical instead of assuming it.
    """

    fingerprint: object
    partition: object
    preconditioner: object
    schedule_snapshot: dict
    nbytes: int = 0

    def __repr__(self) -> str:
        return (
            f"SetupArtifacts({self.preconditioner.name}, "
            f"ranks={self.partition.nparts}, nbytes={self.nbytes})"
        )


@dataclass
class SystemArtifacts:
    """System-tier cache entry: the distributed operator of one bitwise
    matrix (structure *and* values) plus its workspace pool."""

    values_digest: str
    dist_a: object
    workspaces: WorkspacePool
    nbytes: int = 0

    def __repr__(self) -> str:
        return f"SystemArtifacts({self.values_digest[:12]}…, nbytes={self.nbytes})"


@dataclass
class _Entry:
    payload: object
    nbytes: int
    hits: int = 0


@dataclass
class CacheStats:
    """Always-on counters of one cache tier (independent of whether the
    instrumentation registry is enabled)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    bytes: int = 0
    evicted_bytes: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "bytes": self.bytes,
            "evicted_bytes": self.evicted_bytes,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """Thread-safe LRU cache of setup artifacts, bounded by bytes.

    ``max_bytes=None`` means unbounded; ``max_bytes=0`` disables caching
    entirely (every lookup misses, every insert is dropped) — the switch the
    benchmark's cold phase uses to measure the no-reuse baseline.  Metrics
    are double-booked: the returned :class:`CacheStats` always counts, and
    when :mod:`repro.instrument` is enabled the same events land in
    ``serve.cache.*`` instruments tagged ``tier=<name>``.
    """

    def __init__(self, max_bytes: int | None = None, *, name: str = "default"):
        self.name = name
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.RLock()

    def _metric(self, kind: str, amount: int = 1) -> None:
        get_metrics().counter(f"serve.cache.{kind}", tier=self.name).inc(amount)

    def get(self, key):
        """The cached payload for ``key`` (refreshed to most-recently-used),
        or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._metric("misses")
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stats.hits += 1
            self._metric("hits")
            return entry.payload

    def put(self, key, payload, nbytes: int) -> list:
        """Insert ``payload`` under ``key``; returns the evicted payloads.

        Inserting an existing key replaces the entry.  Eviction drops least
        recently used entries until the byte bound holds again, but never
        the entry just inserted — a single oversized artifact stays resident
        (documented and tested) rather than thrashing.  With ``max_bytes=0``
        the insert itself is dropped and the payload returned as "evicted".
        """
        nbytes = int(nbytes)
        with self._lock:
            if self.max_bytes == 0:
                self.stats.evictions += 1
                self.stats.evicted_bytes += nbytes
                self._metric("evictions")
                return [payload]
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.bytes -= old.nbytes
            self._entries[key] = _Entry(payload, nbytes)
            self.stats.inserts += 1
            self.stats.bytes += nbytes
            evicted = []
            if self.max_bytes is not None:
                while self.stats.bytes > self.max_bytes and len(self._entries) > 1:
                    _, victim = self._entries.popitem(last=False)
                    self.stats.bytes -= victim.nbytes
                    self.stats.evictions += 1
                    self.stats.evicted_bytes += victim.nbytes
                    self._metric("evictions")
                    evicted.append(victim.payload)
            self.stats.entries = len(self._entries)
            metrics = get_metrics()
            metrics.gauge("serve.cache.bytes", tier=self.name).set(self.stats.bytes)
            metrics.gauge("serve.cache.entries", tier=self.name).set(
                self.stats.entries
            )
            return evicted

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list:
        """Resident keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def __repr__(self) -> str:
        return (
            f"ArtifactCache({self.name!r}, entries={len(self)}, "
            f"bytes={self.stats.bytes}, max_bytes={self.max_bytes})"
        )
