"""Reverse Cuthill–McKee (RCM) bandwidth-reducing ordering.

Cache-friendly pattern extension exploits *locality of column indices*:
entries whose ``x`` operands share cache lines.  How much locality exists
depends on the matrix ordering — the paper's related work (Nagasaka et al.,
ref. [32]) improves preconditioner locality by reordering.  This module
provides the classic RCM ordering so users can study (and the ablation
benchmark quantifies) the interaction between ordering quality and
FSAIE/FSAIE-Comm gains.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import SparsityPattern

__all__ = ["rcm_ordering", "bandwidth", "pseudo_peripheral_vertex"]


def _adjacency(pattern: SparsityPattern) -> tuple[np.ndarray, np.ndarray]:
    """Symmetrised adjacency without the diagonal (xadj, adjncy)."""
    sym = pattern.symmetrized()
    rows = np.repeat(np.arange(sym.nrows, dtype=np.int64), sym.row_nnz())
    keep = rows != sym.indices
    xadj = np.zeros(sym.nrows + 1, dtype=np.int64)
    np.add.at(xadj, rows[keep] + 1, 1)
    np.cumsum(xadj, out=xadj)
    return xadj, sym.indices[keep]


def pseudo_peripheral_vertex(
    xadj: np.ndarray, adjncy: np.ndarray, start: int = 0
) -> int:
    """Find a vertex of near-maximal eccentricity (George–Liu heuristic).

    Repeated BFS: move to a minimum-degree vertex of the last BFS level
    until the eccentricity stops growing.  A good RCM start vertex.
    """
    n = xadj.size - 1
    current = int(start)
    last_height = -1
    for _ in range(n):  # terminates much earlier in practice
        levels = _bfs_levels(xadj, adjncy, current)
        height = int(levels.max())
        if height <= last_height:
            return current
        last_height = height
        frontier = np.flatnonzero(levels == height)
        degrees = xadj[frontier + 1] - xadj[frontier]
        current = int(frontier[np.argmin(degrees)])
    return current


def _bfs_levels(xadj: np.ndarray, adjncy: np.ndarray, source: int) -> np.ndarray:
    n = xadj.size - 1
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        v = queue.popleft()
        for u in adjncy[xadj[v] : xadj[v + 1]]:
            if levels[u] == -1:
                levels[u] = levels[v] + 1
                queue.append(int(u))
    return levels


def rcm_ordering(mat_or_pattern) -> np.ndarray:
    """RCM permutation: ``perm[k]`` is the old index of new row ``k``.

    Handles disconnected graphs (each component ordered from its own
    pseudo-peripheral vertex).  Apply with
    :func:`repro.order.permute.permute_symmetric`.
    """
    pattern = (
        SparsityPattern.from_csr(mat_or_pattern)
        if isinstance(mat_or_pattern, CSRMatrix)
        else mat_or_pattern
    )
    if pattern.nrows != pattern.ncols:
        raise ShapeError("RCM needs a square pattern")
    n = pattern.nrows
    xadj, adjncy = _adjacency(pattern)
    degrees = xadj[1:] - xadj[:-1]

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for seed in range(n):
        if visited[seed]:
            continue
        start = pseudo_peripheral_vertex(xadj, adjncy, seed)
        if visited[start]:  # peripheral search may land in a visited region
            start = seed
        visited[start] = True
        queue: deque[int] = deque([start])
        while queue:
            v = queue.popleft()
            order[pos] = v
            pos += 1
            nbrs = adjncy[xadj[v] : xadj[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                # Cuthill–McKee visits neighbours in increasing degree
                fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
                # remove duplicates while preserving degree order
                seen_local: set[int] = set()
                for u in fresh.tolist():
                    if u not in seen_local:
                        seen_local.add(u)
                        visited[u] = True
                        queue.append(u)
    assert pos == n
    return order[::-1].copy()  # the *reverse* of Cuthill–McKee


def bandwidth(mat_or_pattern) -> int:
    """Maximum ``|i - j|`` over stored entries (0 for diagonal matrices)."""
    pattern = (
        SparsityPattern.from_csr(mat_or_pattern)
        if isinstance(mat_or_pattern, CSRMatrix)
        else mat_or_pattern
    )
    if pattern.nnz == 0:
        return 0
    rows = np.repeat(np.arange(pattern.nrows, dtype=np.int64), pattern.row_nnz())
    return int(np.abs(rows - pattern.indices).max())
