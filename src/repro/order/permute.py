"""Symmetric permutations of sparse matrices and vectors.

``perm[k]`` = old index of new position ``k`` (the convention of
:func:`repro.order.rcm.rcm_ordering`).  A symmetric permutation
``P A Pᵀ`` preserves symmetry and positive definiteness, so reordered
systems can be solved with the same CG/FSAI pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix

__all__ = ["permute_symmetric", "permute_vector", "unpermute_vector", "inverse_permutation"]


def _check_perm(perm: np.ndarray, n: int) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (n,):
        raise ShapeError(f"permutation has length {perm.size}, expected {n}")
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise ShapeError("not a permutation of 0..n-1")
    return perm


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``inv[old] = new`` for ``perm[new] = old``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def permute_symmetric(mat: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Return ``P A Pᵀ``: new row/col ``k`` is old row/col ``perm[k]``."""
    if mat.nrows != mat.ncols:
        raise ShapeError("symmetric permutation needs a square matrix")
    perm = _check_perm(perm, mat.nrows)
    inv = inverse_permutation(perm)
    rows, cols, vals = mat.to_coo()
    return CSRMatrix.from_coo(mat.shape, inv[rows], inv[cols], vals)


def permute_vector(x: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Reorder ``x`` to match a permuted matrix: ``out[k] = x[perm[k]]``."""
    perm = _check_perm(perm, np.asarray(x).shape[0])
    return np.asarray(x)[perm]


def unpermute_vector(x: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Inverse of :func:`permute_vector`: recover original ordering."""
    perm = _check_perm(perm, np.asarray(x).shape[0])
    out = np.empty_like(np.asarray(x))
    out[perm] = x
    return out
