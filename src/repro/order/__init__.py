"""Matrix reordering: RCM bandwidth reduction and symmetric permutations.

Ordering controls the column locality the cache-friendly extensions exploit;
see ``benchmarks/test_ablation_ordering.py`` for the quantified interaction.
"""

from repro.order.permute import (
    inverse_permutation,
    permute_symmetric,
    permute_vector,
    unpermute_vector,
)
from repro.order.rcm import bandwidth, pseudo_peripheral_vertex, rcm_ordering

__all__ = [
    "rcm_ordering",
    "bandwidth",
    "pseudo_peripheral_vertex",
    "permute_symmetric",
    "permute_vector",
    "unpermute_vector",
    "inverse_permutation",
]
