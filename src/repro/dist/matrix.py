"""Row-distributed sparse matrices with localised column indexing.

Each rank stores its rows as a :class:`LocalMatrix` whose columns are
renumbered into the *local index space* (paper §3): positions
``[0, n_local)`` are the rank's own unknowns (ascending global order) and
positions ``[n_local, n_local + n_halo)`` are the halo unknowns in the order
of :attr:`HaloSchedule.ext_cols`.  The SpMV multiplying vector is the
concatenation ``[x_local | x_halo]`` — the memory layout whose cache lines
the FSAIE/FSAIE-Comm extensions exploit.
"""

from __future__ import annotations

import numpy as np

from repro.dist.halo import HaloSchedule
from repro.dist.partition_map import RowPartition
from repro.dist.vector import DistVector
from repro.errors import ShapeError
from repro.instrument import get_metrics
from repro.mpisim.tracker import CommTracker
from repro.sparse.csr import CSRMatrix

__all__ = ["LocalMatrix", "DistMatrix"]


class LocalMatrix:
    """One rank's block of a row-distributed matrix.

    Attributes
    ----------
    csr:
        ``n_local × (n_local + n_halo)`` CSR block in local column indexing.
    global_rows:
        Global ids of the local rows (ascending).
    ext_cols:
        Global ids of the halo columns (ascending), aligned with local column
        positions ``n_local + k``.
    rank:
        Owning rank.
    """

    __slots__ = ("rank", "csr", "global_rows", "ext_cols")

    def __init__(self, rank: int, csr: CSRMatrix, global_rows: np.ndarray, ext_cols: np.ndarray):
        self.rank = int(rank)
        self.csr = csr
        self.global_rows = np.asarray(global_rows, dtype=np.int64)
        self.ext_cols = np.asarray(ext_cols, dtype=np.int64)
        if csr.shape != (self.global_rows.size, self.global_rows.size + self.ext_cols.size):
            raise ShapeError(
                f"rank {rank}: local CSR shape {csr.shape} inconsistent with "
                f"{self.global_rows.size} rows and {self.ext_cols.size} halo columns"
            )

    @property
    def n_local(self) -> int:
        """Number of owned rows."""
        return self.global_rows.size

    @property
    def n_halo(self) -> int:
        """Number of halo columns."""
        return self.ext_cols.size

    @property
    def nnz(self) -> int:
        """Stored entries of the local block."""
        return self.csr.nnz

    def local_nnz(self) -> int:
        """Stored entries in the local (non-halo) column block."""
        return int(np.count_nonzero(self.csr.indices < self.n_local))

    def halo_nnz(self) -> int:
        """Stored entries in the halo column block."""
        return self.nnz - self.local_nnz()

    def column_global_id(self, local_col: int) -> int:
        """Global id of a local column position."""
        if local_col < self.n_local:
            return int(self.global_rows[local_col])
        return int(self.ext_cols[local_col - self.n_local])

    def __repr__(self) -> str:
        return (
            f"LocalMatrix(rank={self.rank}, n_local={self.n_local}, "
            f"n_halo={self.n_halo}, nnz={self.nnz})"
        )


class DistMatrix:
    """A sparse matrix distributed by rows with a halo exchange schedule."""

    __slots__ = ("partition", "locals", "schedule", "shape", "_plans")

    def __init__(
        self,
        partition: RowPartition,
        locals_: list[LocalMatrix],
        schedule: HaloSchedule,
        shape: tuple[int, int],
    ):
        if len(locals_) != partition.nparts:
            raise ShapeError("need one LocalMatrix per rank")
        self.partition = partition
        self.locals = locals_
        self.schedule = schedule
        self.shape = (int(shape[0]), int(shape[1]))
        self._plans: dict[str, list] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, mat: CSRMatrix, partition: RowPartition) -> "DistMatrix":
        """Distribute a square global matrix by rows according to ``partition``."""
        if mat.nrows != mat.ncols:
            raise ShapeError("DistMatrix.from_global expects a square matrix")
        if mat.nrows != partition.nrows:
            raise ShapeError("partition size does not match the matrix")
        schedule = HaloSchedule.from_row_structure(partition, mat.indptr, mat.indices)
        locals_: list[LocalMatrix] = []
        for p in range(partition.nparts):
            rows = partition.global_ids[p]
            ext = schedule.ext_cols[p]
            n_local = rows.size
            # global -> local column map for this rank
            col_map = np.full(mat.ncols, -1, dtype=np.int64)
            col_map[rows] = np.arange(n_local, dtype=np.int64)
            col_map[ext] = n_local + np.arange(ext.size, dtype=np.int64)
            counts = (mat.indptr[rows + 1] - mat.indptr[rows]).astype(np.int64)
            indptr = np.zeros(n_local + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.empty(int(indptr[-1]), dtype=np.int64)
            data = np.empty(int(indptr[-1]), dtype=np.float64)
            for li, g in enumerate(rows):
                lo, hi = mat.indptr[g], mat.indptr[g + 1]
                seg = slice(indptr[li], indptr[li + 1])
                local_cols = col_map[mat.indices[lo:hi]]
                order = np.argsort(local_cols, kind="stable")
                indices[seg] = local_cols[order]
                data[seg] = mat.data[lo:hi][order]
            csr = CSRMatrix((n_local, n_local + ext.size), indptr, indices, data, check=False)
            locals_.append(LocalMatrix(p, csr, rows, ext))
        return cls(partition, locals_, schedule, mat.shape)

    def to_global(self) -> CSRMatrix:
        """Reassemble the global matrix (testing/debugging helper)."""
        rows_acc: list[np.ndarray] = []
        cols_acc: list[np.ndarray] = []
        vals_acc: list[np.ndarray] = []
        for lm in self.locals:
            gl_cols = np.concatenate([lm.global_rows, lm.ext_cols])
            r, c, v = lm.csr.to_coo()
            rows_acc.append(lm.global_rows[r])
            cols_acc.append(gl_cols[c])
            vals_acc.append(v)
        return CSRMatrix.from_coo(
            self.shape,
            np.concatenate(rows_acc),
            np.concatenate(cols_acc),
            np.concatenate(vals_acc),
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Total stored entries across all ranks."""
        return sum(lm.nnz for lm in self.locals)

    def nnz_per_rank(self) -> np.ndarray:
        """Stored entries per rank."""
        return np.array([lm.nnz for lm in self.locals], dtype=np.int64)

    def plans(self, backend=None) -> list:
        """Per-rank :class:`~repro.kernels.plan.SpMVPlan` set, built lazily.

        Cached on the matrix per backend (plans snapshot the structure, so
        the matrix must not be mutated after the first call).  Cache hits
        and misses accumulate in the ``kernels.plan_cache.*`` metrics.
        """
        from repro.backend import get_backend
        from repro.kernels.plan import SpMVPlan

        bk = get_backend(backend)
        plans = self._plans.get(bk.name)
        if plans is None:
            get_metrics().counter("kernels.plan_cache.misses").inc()
            plans = [SpMVPlan(lm.csr, backend=bk) for lm in self.locals]
            self._plans[bk.name] = plans
        else:
            get_metrics().counter("kernels.plan_cache.hits").inc()
        return plans

    def split_blocks(self) -> list[tuple[CSRMatrix, CSRMatrix | None]]:
        """Per-rank ``(A_ll, A_lh)`` column split of the local blocks.

        ``A_ll`` (``n_local × n_local``) covers the owned columns and can be
        applied before any halo value arrives; ``A_lh``
        (``n_local × n_halo``, ``None`` when the rank has no halo) covers
        the halo columns.  ``A·x = A_ll·x_local + A_lh·x_halo`` — the
        decomposition behind communication/computation overlap.  Built once
        and cached on the matrix (which must not be mutated afterwards).

        Note the split changes floating-point summation *order* within each
        row, so overlapped products may differ from the fused ones in the
        last ulps — which is why overlap is opt-in.
        """
        blocks = self._plans.get("__split__")
        if blocks is not None:
            return blocks
        blocks = []
        for lm in self.locals:
            if lm.n_halo == 0:
                blocks.append((lm.csr, None))
                continue
            rows, cols, vals = lm.csr.to_coo()
            local = cols < lm.n_local
            a_ll = CSRMatrix.from_coo(
                (lm.n_local, lm.n_local), rows[local], cols[local], vals[local]
            )
            a_lh = CSRMatrix.from_coo(
                (lm.n_local, lm.n_halo),
                rows[~local],
                cols[~local] - lm.n_local,
                vals[~local],
            )
            blocks.append((a_ll, a_lh))
        self._plans["__split__"] = blocks
        return blocks

    def spmv(
        self,
        x: DistVector,
        tracker: CommTracker | None = None,
        *,
        workspace=None,
        out: DistVector | None = None,
        overlap: bool = False,
    ) -> DistVector:
        """Distributed ``y = A·x``: halo update then per-rank local SpMV.

        With a :class:`~repro.kernels.workspace.SolverWorkspace` the product
        runs through cached plans and preallocated buffers (allocation-free
        once warm); otherwise fresh arrays are allocated per call and counted
        in the ``kernels.allocs`` metric.

        ``overlap=True`` restructures the product as halo ``update_start``
        → local-block SpMV (``A_ll·x_local``) → ``update_finish`` → halo
        contribution (``A_lh·x_halo``), the ordering that hides halo
        latency behind compute on a real transport.  Communication is
        byte-identical to the fused path; results agree to the last ulps
        (row sums accumulate in a different order).  Not combined with
        ``workspace``.
        """
        if overlap:
            if workspace is not None:
                raise ShapeError("overlap=True uses the allocating path; pass workspace=None")
            if x.partition != self.partition:
                raise ShapeError("operand lives on a different partition")
            blocks = self.split_blocks()
            pending = self.schedule.update_start(x.parts, tracker)
            # local-block products run while halo traffic is in flight
            out_parts = [blocks[p][0].spmv(x.parts[p]) for p in range(len(blocks))]
            halos = self.schedule.update_finish(pending)
            for p, (_, a_lh) in enumerate(blocks):
                if a_lh is not None:
                    out_parts[p] += a_lh.spmv(halos[p])
            get_metrics().counter("kernels.allocs").inc(2 * self.partition.nparts)
            if out is not None:
                out.copy_from(DistVector(self.partition, out_parts))
                return out
            return DistVector(self.partition, out_parts)
        if workspace is not None:
            return workspace.spmv(self, x, out=out, tracker=tracker)
        if x.partition != self.partition:
            raise ShapeError("operand lives on a different partition")
        halos = self.schedule.update(x.parts, tracker)
        out_parts = []
        for p, lm in enumerate(self.locals):
            xin = np.concatenate([x.parts[p], halos[p]]) if lm.n_halo else x.parts[p]
            out_parts.append(lm.csr.spmv(xin))
        get_metrics().counter("kernels.allocs").inc(2 * self.partition.nparts)
        if out is not None:
            out.copy_from(DistVector(self.partition, out_parts))
            return out
        return DistVector(self.partition, out_parts)

    def flops_per_rank(self) -> np.ndarray:
        """SpMV floating-point operations per rank (2 per stored entry)."""
        return 2 * self.nnz_per_rank()

    def __repr__(self) -> str:
        return (
            f"DistMatrix(shape={self.shape}, nparts={self.partition.nparts}, "
            f"nnz={self.nnz})"
        )
