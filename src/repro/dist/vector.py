"""Row-distributed dense vectors.

A :class:`DistVector` mirrors the matrix row distribution: rank ``p`` stores
the entries of the global vector at ``partition.global_ids[p]`` in that
order.  Reductions (dot products, norms) are recorded as allreduce traffic
when a tracker is supplied, since in the real system they are the CG solver's
global synchronisation points.
"""

from __future__ import annotations

import numpy as np

from repro.dist.partition_map import RowPartition
from repro.errors import ShapeError
from repro.mpisim.tracker import CommTracker

__all__ = ["DistVector"]


class DistVector:
    """A dense vector distributed by rows across ranks."""

    __slots__ = ("partition", "parts")

    def __init__(self, partition: RowPartition, parts: list[np.ndarray]):
        if len(parts) != partition.nparts:
            raise ShapeError("need one part per rank")
        for p, arr in enumerate(parts):
            if arr.shape != (partition.size_of(p),):
                raise ShapeError(
                    f"rank {p}: part has shape {arr.shape}, expected "
                    f"({partition.size_of(p)},)"
                )
        self.partition = partition
        self.parts = [np.asarray(a, dtype=np.float64) for a in parts]

    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, x: np.ndarray, partition: RowPartition) -> "DistVector":
        """Scatter a global vector onto the partition."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (partition.nrows,):
            raise ShapeError(f"global vector must have length {partition.nrows}")
        return cls(partition, [x[ids].copy() for ids in partition.global_ids])

    @classmethod
    def zeros(cls, partition: RowPartition) -> "DistVector":
        """All-zero vector on the partition."""
        return cls(partition, [np.zeros(partition.size_of(p)) for p in range(partition.nparts)])

    def to_global(self) -> np.ndarray:
        """Gather into a global vector (testing/IO helper)."""
        out = np.empty(self.partition.nrows, dtype=np.float64)
        for ids, arr in zip(self.partition.global_ids, self.parts):
            out[ids] = arr
        return out

    def copy(self) -> "DistVector":
        """Deep copy."""
        return DistVector(self.partition, [a.copy() for a in self.parts])

    def copy_from(self, other: "DistVector") -> "DistVector":
        """In-place ``self[:] = other`` (no allocation); returns self."""
        self._check_compatible(other)
        for a, b in zip(self.parts, other.parts):
            np.copyto(a, b)
        return self

    # ------------------------------------------------------------------
    def _check_compatible(self, other: "DistVector") -> None:
        if self.partition != other.partition:
            raise ShapeError("vectors live on different partitions")

    def dot(self, other: "DistVector", tracker: CommTracker | None = None) -> float:
        """Global dot product (local partials + allreduce)."""
        self._check_compatible(other)
        partial = sum(float(np.dot(a, b)) for a, b in zip(self.parts, other.parts))
        if tracker is not None:
            tracker.record_collective("allreduce", 8 * self.partition.nparts)
        return partial

    def norm2(self, tracker: CommTracker | None = None) -> float:
        """Global Euclidean norm (one allreduce)."""
        return float(np.sqrt(max(self.dot(self, tracker), 0.0)))

    def axpy(self, alpha: float, x: "DistVector") -> "DistVector":
        """In-place ``self += alpha·x``; returns self."""
        self._check_compatible(x)
        for a, b in zip(self.parts, x.parts):
            a += alpha * b
        return self

    def xpay(self, x: "DistVector", alpha: float) -> "DistVector":
        """In-place ``self = x + alpha·self``; returns self."""
        self._check_compatible(x)
        for a, b in zip(self.parts, x.parts):
            a *= alpha
            a += b
        return self

    def scale(self, alpha: float) -> "DistVector":
        """In-place scalar multiply; returns self."""
        for a in self.parts:
            a *= alpha
        return self

    def fill(self, value: float) -> "DistVector":
        """Set every entry to ``value``; returns self."""
        for a in self.parts:
            a.fill(value)
        return self

    def __repr__(self) -> str:
        return f"DistVector(n={self.partition.nrows}, nparts={self.partition.nparts})"
