"""Row distribution of a matrix across ranks (the paper's §3 setup).

The system matrix is distributed by rows: each MPI rank owns a subset of
rows, and the same distribution applies to the unknown and right-hand-side
vectors.  :class:`RowPartition` stores the owner map plus global↔local index
translation.  Within a rank, local indices follow ascending global order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError

__all__ = ["RowPartition"]


class RowPartition:
    """Assignment of ``nrows`` global rows to ``nparts`` ranks.

    Attributes
    ----------
    owner:
        ``owner[g]`` is the rank that owns global row ``g``.
    global_ids:
        ``global_ids[p]`` — ascending global ids owned by rank ``p``; the
        position of ``g`` in this array is its local index on ``p``.
    local_index:
        ``local_index[g]`` — local index of ``g`` on its owner.
    """

    __slots__ = ("owner", "nparts", "global_ids", "local_index")

    def __init__(self, owner, nparts: int | None = None):
        self.owner = np.asarray(owner, dtype=np.int64)
        if self.owner.ndim != 1:
            raise PartitionError("owner map must be 1-D")
        inferred = int(self.owner.max()) + 1 if self.owner.size else 0
        self.nparts = inferred if nparts is None else int(nparts)
        if self.owner.size and (self.owner.min() < 0 or inferred > self.nparts):
            raise PartitionError("owner ids out of range")
        counts = np.bincount(self.owner, minlength=self.nparts)
        if self.nparts > 0 and counts.min() == 0:
            empty = int(np.flatnonzero(counts == 0)[0])
            raise PartitionError(f"rank {empty} owns no rows")
        self.global_ids = [
            np.flatnonzero(self.owner == p).astype(np.int64) for p in range(self.nparts)
        ]
        self.local_index = np.empty(self.owner.size, dtype=np.int64)
        for ids in self.global_ids:
            self.local_index[ids] = np.arange(ids.size, dtype=np.int64)

    # ------------------------------------------------------------------
    @classmethod
    def contiguous(cls, nrows: int, nparts: int) -> "RowPartition":
        """Balanced contiguous strips (no partitioner needed)."""
        from repro.partition.geometric import strip_partition

        return cls(strip_partition(nrows, nparts), nparts)

    @classmethod
    def from_matrix(
        cls, mat, nparts: int, *, seed: int = 0, weight_by_nnz: bool = False
    ) -> "RowPartition":
        """Partition via the multilevel graph partitioner (METIS stand-in).

        ``weight_by_nnz=True`` balances stored entries per rank instead of
        rows (useful for matrices with skewed row densities, §5.3.3).
        """
        if nparts == 1:
            return cls(np.zeros(mat.nrows, dtype=np.int64), 1)
        from repro.partition.multilevel import partition_matrix

        return cls(
            partition_matrix(mat, nparts, seed=seed, weight_by_nnz=weight_by_nnz),
            nparts,
        )

    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        """Total rows covered by the partition."""
        return self.owner.size

    def size_of(self, rank: int) -> int:
        """Number of rows owned by ``rank``."""
        return self.global_ids[rank].size

    def sizes(self) -> np.ndarray:
        """Rows owned by each rank."""
        return np.array([ids.size for ids in self.global_ids], dtype=np.int64)

    def to_local(self, rank: int, global_rows: np.ndarray) -> np.ndarray:
        """Local indices on ``rank`` of rows it owns (error if not owned)."""
        global_rows = np.asarray(global_rows, dtype=np.int64)
        if np.any(self.owner[global_rows] != rank):
            raise PartitionError(f"some rows are not owned by rank {rank}")
        return self.local_index[global_rows]

    def to_global(self, rank: int, local_rows: np.ndarray) -> np.ndarray:
        """Global ids of local rows on ``rank``."""
        return self.global_ids[rank][np.asarray(local_rows, dtype=np.int64)]

    def __eq__(self, other) -> bool:
        if not isinstance(other, RowPartition):
            return NotImplemented
        return self.nparts == other.nparts and np.array_equal(self.owner, other.owner)

    def __hash__(self):
        raise TypeError("RowPartition is unhashable")

    def __repr__(self) -> str:
        return f"RowPartition(nrows={self.nrows}, nparts={self.nparts})"
