"""Distributed linear algebra: row partitions, halos, distributed matrices.

Two execution engines share these data structures:

* the deterministic bulk-synchronous (BSP) methods on
  :class:`DistMatrix`/:class:`DistVector`, used by the solver and benchmarks;
* the SPMD functions in :mod:`repro.dist.spmd`, which run the identical
  algorithms over real message passing on :mod:`repro.mpisim` and validate
  the BSP shortcut.
"""

from repro.dist.halo import HaloSchedule, PendingHaloUpdate
from repro.dist.matrix import DistMatrix, LocalMatrix
from repro.dist.partition_map import RowPartition
from repro.dist.redistribute import (
    migration_volume,
    redistribute_matrix,
    redistribute_vector,
)
from repro.dist.spmd import (
    spmd_cg,
    spmd_dot,
    spmd_halo_update,
    spmd_pipelined_pcg,
    spmd_spmv,
)
from repro.dist.vector import DistVector

__all__ = [
    "RowPartition",
    "HaloSchedule",
    "PendingHaloUpdate",
    "DistVector",
    "LocalMatrix",
    "DistMatrix",
    "redistribute_vector",
    "redistribute_matrix",
    "migration_volume",
    "spmd_spmv",
    "spmd_dot",
    "spmd_halo_update",
    "spmd_cg",
    "spmd_pipelined_pcg",
]
