"""SPMD execution of the distributed kernels on the mpisim runtime.

The BSP layer (:class:`~repro.dist.matrix.DistMatrix`) applies operations
rank-by-rank in the driver — deterministic and fast.  This module runs the
*same* data structures through genuine message passing on
:func:`repro.mpisim.run_spmd`: every halo value travels in a real
point-to-point message and every reduction is a real allreduce.  Tests assert
both engines agree, which validates the BSP shortcut.
"""

from __future__ import annotations

import numpy as np

from repro.dist.matrix import DistMatrix
from repro.dist.vector import DistVector
from repro.instrument import get_tracer
from repro.mpisim import SUM, Comm, CommTracker, run_spmd

__all__ = ["spmd_spmv", "spmd_dot", "spmd_halo_update", "spmd_cg"]

_TAG_HALO = 7_000


def _halo_exchange(comm: Comm, mat: DistMatrix, x_local: np.ndarray) -> np.ndarray:
    """One rank's side of the halo update; returns its halo buffer.

    With tracing enabled the exchange decomposes into ``spmd.halo.pack``
    (gathering send payloads) and one ``spmd.halo.wait`` per incoming edge
    (tagged with the awaited source and payload bytes) — the segments the
    timeline layer classifies as pack/wait time.
    """
    p = comm.rank
    sched = mat.schedule
    part = mat.partition
    tracer = get_tracer()
    if not tracer.enabled:
        # post all sends (buffered), then receive
        for q, ids in sched.send_to[p].items():
            if ids.size:
                comm.send(x_local[part.local_index[ids]], q, _TAG_HALO)
        halo = np.zeros(sched.ext_cols[p].size, dtype=np.float64)
        for q, ids in sched.recv_from[p].items():
            if ids.size:
                values = comm.recv(q, _TAG_HALO)
                halo[sched.recv_pos[p][q]] = values
        return halo
    with tracer.span("spmd.halo.pack", rank=p) as pack:
        sends = []
        packed_bytes = 0
        for q, ids in sched.send_to[p].items():
            if ids.size:
                payload = x_local[part.local_index[ids]]
                packed_bytes += payload.nbytes
                sends.append((payload, q))
        pack.set_tag("bytes", packed_bytes)
    for payload, q in sends:
        comm.send(payload, q, _TAG_HALO)
    halo = np.zeros(sched.ext_cols[p].size, dtype=np.float64)
    for q, ids in sched.recv_from[p].items():
        if ids.size:
            with tracer.span(
                "spmd.halo.wait", rank=p, src=q, bytes=8 * int(ids.size)
            ):
                values = comm.recv(q, _TAG_HALO)
            halo[sched.recv_pos[p][q]] = values
    return halo


def spmd_halo_update(
    mat: DistMatrix, x: DistVector, tracker: CommTracker | None = None
) -> list[np.ndarray]:
    """Run the halo update alone on the SPMD runtime; returns halo buffers."""

    def _prog(comm: Comm):
        return _halo_exchange(comm, mat, x.parts[comm.rank])

    return run_spmd(_prog, mat.partition.nparts, tracker=tracker)


def spmd_spmv(
    mat: DistMatrix, x: DistVector, tracker: CommTracker | None = None
) -> DistVector:
    """Distributed SpMV executed with real messages; result equals BSP spmv."""

    def _prog(comm: Comm):
        p = comm.rank
        lm = mat.locals[p]
        halo = _halo_exchange(comm, mat, x.parts[p])
        xin = np.concatenate([x.parts[p], halo]) if lm.n_halo else x.parts[p]
        return lm.csr.spmv(xin)

    parts = run_spmd(_prog, mat.partition.nparts, tracker=tracker)
    return DistVector(mat.partition, parts)


def spmd_dot(x: DistVector, y: DistVector, tracker: CommTracker | None = None) -> float:
    """Distributed dot product through a real allreduce on every rank."""

    def _prog(comm: Comm):
        p = comm.rank
        partial = float(np.dot(x.parts[p], y.parts[p]))
        return comm.allreduce(partial, SUM)

    results = run_spmd(_prog, x.partition.nparts, tracker=tracker)
    first = results[0]
    assert all(abs(r - first) < 1e-9 * max(1.0, abs(first)) for r in results)
    return first


def spmd_cg(
    mat: DistMatrix,
    b: DistVector,
    *,
    rtol: float = 1e-8,
    max_iterations: int = 10_000,
    precond_pair: tuple[DistMatrix, DistMatrix] | None = None,
    tracker: CommTracker | None = None,
) -> tuple[DistVector, int]:
    """(Preconditioned) CG fully inside the SPMD runtime.

    ``precond_pair`` is ``(G, Gᵀ)`` as row-distributed matrices; the
    preconditioner application is ``z = Gᵀ(G·r)`` — two SpMVs, as in the
    paper.  Returns the solution and the iteration count.  This mirrors
    :func:`repro.core.cg.pcg` and exists to validate it end-to-end on real
    message passing.
    """
    part = mat.partition

    def _prog(comm: Comm):
        p = comm.rank
        lm = mat.locals[p]
        tracer = get_tracer()

        def local_spmv(m: DistMatrix, v: np.ndarray) -> np.ndarray:
            halo = _halo_exchange(comm, m, v)
            lmm = m.locals[p]
            with tracer.span("spmd.compute", rank=p, kernel="spmv"):
                vin = np.concatenate([v, halo]) if lmm.n_halo else v
                return lmm.csr.spmv(vin)

        def gdot(u: np.ndarray, v: np.ndarray) -> float:
            with tracer.span("spmd.reduction", rank=p):
                return comm.allreduce(float(np.dot(u, v)), SUM)

        def apply_precond(v: np.ndarray) -> np.ndarray:
            if precond_pair is None:
                return v.copy()
            g, gt = precond_pair
            return local_spmv(gt, local_spmv(g, v))

        x = np.zeros(lm.n_local, dtype=np.float64)
        r = b.parts[p].copy()
        norm0 = np.sqrt(gdot(r, r))
        if norm0 == 0.0:
            return x, 0
        z = apply_precond(r)
        d = z.copy()
        rz = gdot(r, z)
        iterations = 0
        for _ in range(max_iterations):
            if np.sqrt(gdot(r, r)) <= rtol * norm0:
                break
            with tracer.span("spmd.iteration", rank=p, index=iterations):
                ad = local_spmv(mat, d)
                alpha = rz / gdot(d, ad)
                with tracer.span("spmd.compute", rank=p, kernel="axpy"):
                    x += alpha * d
                    r -= alpha * ad
                z = apply_precond(r)
                rz_new = gdot(r, z)
                beta = rz_new / rz
                rz = rz_new
                d = z + beta * d
            iterations += 1
        return x, iterations

    results = run_spmd(_prog, part.nparts, tracker=tracker)
    iters = results[0][1]
    assert all(it == iters for _, it in results)
    return DistVector(part, [x for x, _ in results]), iters
