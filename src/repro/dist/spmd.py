"""SPMD execution of the distributed kernels on the mpisim runtime.

The BSP layer (:class:`~repro.dist.matrix.DistMatrix`) applies operations
rank-by-rank in the driver — deterministic and fast.  This module runs the
*same* data structures through genuine message passing on
:func:`repro.mpisim.run_spmd`: every halo value travels in a real
point-to-point message and every reduction is a real allreduce.  Tests assert
both engines agree, which validates the BSP shortcut.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import numpy as np

from repro.dist.matrix import DistMatrix
from repro.dist.vector import DistVector
from repro.instrument import get_tracer
from repro.mpisim import SUM, Comm, CommTracker, run_spmd

__all__ = [
    "spmd_spmv",
    "spmd_dot",
    "spmd_halo_update",
    "spmd_cg",
    "spmd_pipelined_pcg",
]

_TAG_HALO = 7_000


@contextmanager
def _compute_probe(telemetry):
    """Stream the enclosed block's duration into the rank's telemetry
    ``compute`` histogram (:mod:`repro.observe.stream`); free when no
    telemetry endpoint is installed."""
    if telemetry is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        telemetry.observe("compute", time.perf_counter() - start)


def _halo_exchange_start(comm: Comm, mat: DistMatrix, x_local: np.ndarray) -> list:
    """Post one rank's halo exchange; complete with ``_halo_exchange_finish``.

    Receives are posted first (``irecv`` per incoming edge), then all
    outgoing payloads ship inside one coalescing epoch — each (src, dst)
    pair's traffic is a single tracked envelope.  The caller can run local
    compute between start and finish, overlapping it with in-flight halo
    traffic from the other ranks.

    With tracing enabled the pack phase is a ``spmd.halo.pack`` span tagged
    with the total payload bytes.
    """
    p = comm.rank
    sched = mat.schedule
    part = mat.partition
    tracer = get_tracer()
    reqs = [
        (q, comm.irecv(q, _TAG_HALO))
        for q, ids in sched.recv_from[p].items()
        if ids.size
    ]
    if tracer.enabled:
        with tracer.span("spmd.halo.pack", rank=p) as pack:
            sends = []
            packed_bytes = 0
            for q, ids in sched.send_to[p].items():
                if ids.size:
                    payload = x_local[part.local_index[ids]]
                    packed_bytes += payload.nbytes
                    sends.append((payload, q))
            pack.set_tag("bytes", packed_bytes)
    else:
        sends = [
            (x_local[part.local_index[ids]], q)
            for q, ids in sched.send_to[p].items()
            if ids.size
        ]
    with comm.coalescing():
        for payload, q in sends:
            comm.send(payload, q, _TAG_HALO)
    return reqs


def _halo_exchange_finish(comm: Comm, mat: DistMatrix, reqs: list) -> np.ndarray:
    """Complete a posted halo exchange; returns the rank's halo buffer.

    Each incoming edge's completion is a ``spmd.halo.wait`` span (tagged
    with the awaited source and payload bytes) — the segments the timeline
    layer classifies as wait time, and the ones overlap shrinks.
    """
    p = comm.rank
    sched = mat.schedule
    tracer = get_tracer()
    halo = np.zeros(sched.ext_cols[p].size, dtype=np.float64)
    for q, req in reqs:
        ids = sched.recv_from[p][q]
        if tracer.enabled:
            with tracer.span(
                "spmd.halo.wait", rank=p, src=q, bytes=8 * int(ids.size)
            ):
                values = req.wait()
        else:
            values = req.wait()
        halo[sched.recv_pos[p][q]] = values
    return halo


def _halo_exchange(comm: Comm, mat: DistMatrix, x_local: np.ndarray) -> np.ndarray:
    """One rank's side of the halo update; returns its halo buffer."""
    return _halo_exchange_finish(comm, mat, _halo_exchange_start(comm, mat, x_local))


def spmd_halo_update(
    mat: DistMatrix,
    x: DistVector,
    tracker: CommTracker | None = None,
    *,
    engine: str = "threads",
    telemetry=None,
) -> list[np.ndarray]:
    """Run the halo update alone on the SPMD runtime; returns halo buffers.

    ``telemetry`` forwards a :class:`repro.observe.stream.TelemetryConfig`
    to :func:`repro.mpisim.run_spmd` — the instrumented form used to
    re-prove the paper's schedule invariance *with telemetry enabled*.
    """

    def _prog(comm: Comm):
        return _halo_exchange(comm, mat, x.parts[comm.rank])

    return run_spmd(
        _prog, mat.partition.nparts, tracker=tracker, engine=engine,
        telemetry=telemetry,
    )


def spmd_spmv(
    mat: DistMatrix,
    x: DistVector,
    tracker: CommTracker | None = None,
    *,
    engine: str = "threads",
) -> DistVector:
    """Distributed SpMV executed with real messages; result equals BSP spmv."""

    def _prog(comm: Comm):
        p = comm.rank
        lm = mat.locals[p]
        halo = _halo_exchange(comm, mat, x.parts[p])
        xin = np.concatenate([x.parts[p], halo]) if lm.n_halo else x.parts[p]
        return lm.csr.spmv(xin)

    parts = run_spmd(_prog, mat.partition.nparts, tracker=tracker, engine=engine)
    return DistVector(mat.partition, parts)


def spmd_dot(
    x: DistVector,
    y: DistVector,
    tracker: CommTracker | None = None,
    *,
    engine: str = "threads",
) -> float:
    """Distributed dot product through a real allreduce on every rank."""

    def _prog(comm: Comm):
        p = comm.rank
        partial = float(np.dot(x.parts[p], y.parts[p]))
        return comm.allreduce(partial, SUM)

    results = run_spmd(_prog, x.partition.nparts, tracker=tracker, engine=engine)
    first = results[0]
    assert all(abs(r - first) < 1e-9 * max(1.0, abs(first)) for r in results)
    return first


def spmd_cg(
    mat: DistMatrix,
    b: DistVector,
    *,
    rtol: float = 1e-8,
    max_iterations: int = 10_000,
    precond_pair: tuple[DistMatrix, DistMatrix] | None = None,
    tracker: CommTracker | None = None,
    engine: str = "threads",
) -> tuple[DistVector, int]:
    """(Preconditioned) CG fully inside the SPMD runtime.

    ``precond_pair`` is ``(G, Gᵀ)`` as row-distributed matrices; the
    preconditioner application is ``z = Gᵀ(G·r)`` — two SpMVs, as in the
    paper.  Returns the solution and the iteration count.  This mirrors
    :func:`repro.core.cg.pcg` and exists to validate it end-to-end on real
    message passing.
    """
    part = mat.partition

    def _prog(comm: Comm):
        p = comm.rank
        lm = mat.locals[p]
        tracer = get_tracer()

        def local_spmv(m: DistMatrix, v: np.ndarray) -> np.ndarray:
            halo = _halo_exchange(comm, m, v)
            lmm = m.locals[p]
            with tracer.span("spmd.compute", rank=p, kernel="spmv"):
                vin = np.concatenate([v, halo]) if lmm.n_halo else v
                return lmm.csr.spmv(vin)

        def gdot(u: np.ndarray, v: np.ndarray) -> float:
            with tracer.span("spmd.reduction", rank=p):
                return comm.allreduce(float(np.dot(u, v)), SUM)

        def apply_precond(v: np.ndarray) -> np.ndarray:
            if precond_pair is None:
                return v.copy()
            g, gt = precond_pair
            return local_spmv(gt, local_spmv(g, v))

        x = np.zeros(lm.n_local, dtype=np.float64)
        r = b.parts[p].copy()
        norm0 = np.sqrt(gdot(r, r))
        if norm0 == 0.0:
            return x, 0
        z = apply_precond(r)
        d = z.copy()
        rz = gdot(r, z)
        iterations = 0
        for _ in range(max_iterations):
            if np.sqrt(gdot(r, r)) <= rtol * norm0:
                break
            with tracer.span("spmd.iteration", rank=p, index=iterations):
                ad = local_spmv(mat, d)
                alpha = rz / gdot(d, ad)
                with tracer.span("spmd.compute", rank=p, kernel="axpy"):
                    x += alpha * d
                    r -= alpha * ad
                z = apply_precond(r)
                rz_new = gdot(r, z)
                beta = rz_new / rz
                rz = rz_new
                d = z + beta * d
            iterations += 1
        return x, iterations

    results = run_spmd(_prog, part.nparts, tracker=tracker, engine=engine)
    iters = results[0][1]
    assert all(it == iters for _, it in results)
    return DistVector(part, [x for x, _ in results]), iters


def spmd_pipelined_pcg(
    mat: DistMatrix,
    b: DistVector,
    *,
    rtol: float = 1e-8,
    max_iterations: int = 10_000,
    precond_pair: tuple[DistMatrix, DistMatrix] | None = None,
    tracker: CommTracker | None = None,
    overlap: bool = True,
    engine: str = "threads",
    workers: int | None = None,
    timeout: float = 120.0,
    latency: float = 0.0,
    telemetry=None,
) -> tuple[DistVector, int]:
    """Pipelined PCG fully inside the SPMD runtime, built for scale.

    The message-passing twin of :func:`repro.core.solvers.pipelined_pcg`
    with two communication optimisations on by default:

    * **fused reductions** — the three dot products of an iteration travel
      as ONE length-3 allreduce instead of three scalar allreduces: 3×
      fewer reduction messages per edge per iteration, byte-identical
      totals (auditable with :class:`~repro.mpisim.CommTracker`);
    * **overlapped SpMV** (``overlap=True``) — each halo exchange is
      posted with :func:`_halo_exchange_start` (early receives + coalesced
      sends), the local column block ``A_ll·x_local`` is computed while
      peer traffic is in flight, and only then does the rank wait — so
      ``spmd.halo.wait`` self-time in :mod:`repro.observe.timeline` drops
      versus the blocking exchange.

    ``engine="events"`` runs the ranks on the cooperative engine
    (:mod:`repro.mpisim.events`), the practical choice beyond ~100 ranks.
    ``latency`` forwards to :func:`repro.mpisim.run_spmd` — with a nonzero
    modelled link latency the overlap benefit becomes directly visible as
    reduced wait time (local compute runs inside the latency window).
    ``telemetry`` forwards a :class:`repro.observe.stream.TelemetryConfig`:
    every compute block is additionally timed into the rank's bounded
    ``compute`` histogram (waits and reductions are observed by the
    transport itself), giving :mod:`repro.observe.conformance` its
    measured per-phase seconds without full tracing.
    Returns ``(solution, iterations)``; iterates match the BSP
    ``pipelined_pcg`` to roundoff (the overlapped split changes row
    summation order in the last ulps).
    """
    part = mat.partition
    blocks = mat.split_blocks() if overlap else None
    pre_blocks = (
        (precond_pair[0].split_blocks(), precond_pair[1].split_blocks())
        if overlap and precond_pair is not None
        else (None, None)
    )

    def _prog(comm: Comm):
        p = comm.rank
        tracer = get_tracer()
        tel = comm.telemetry

        def local_spmv(m: DistMatrix, m_blocks, v: np.ndarray) -> np.ndarray:
            if m_blocks is not None:
                reqs = _halo_exchange_start(comm, m, v)
                a_ll, a_lh = m_blocks[p]
                with tracer.span("spmd.compute", rank=p, kernel="spmv_local"):
                    with _compute_probe(tel):
                        y = a_ll.spmv(v)
                halo = _halo_exchange_finish(comm, m, reqs)
                if a_lh is not None:
                    with tracer.span("spmd.compute", rank=p, kernel="spmv_halo"):
                        with _compute_probe(tel):
                            y += a_lh.spmv(halo)
                return y
            halo = _halo_exchange(comm, m, v)
            lmm = m.locals[p]
            with tracer.span("spmd.compute", rank=p, kernel="spmv"):
                with _compute_probe(tel):
                    vin = np.concatenate([v, halo]) if lmm.n_halo else v
                    return lmm.csr.spmv(vin)

        def fused_dots(*pairs: tuple[np.ndarray, np.ndarray]) -> list[float]:
            partials = np.array(
                [float(np.dot(a, c)) for a, c in pairs], dtype=np.float64
            )
            with tracer.span("spmd.reduction", rank=p, fused=len(pairs)):
                return [float(v) for v in comm.allreduce(partials, SUM)]

        def apply_precond(v: np.ndarray) -> np.ndarray:
            if precond_pair is None:
                return v.copy()
            g, gt = precond_pair
            gb, gtb = pre_blocks
            return local_spmv(gt, gtb, local_spmv(g, gb, v))

        a_blocks = blocks
        x = np.zeros(mat.locals[p].n_local, dtype=np.float64)
        r = b.parts[p].copy()
        (norm0_sq,) = fused_dots((r, r))
        norm0 = float(np.sqrt(max(norm0_sq, 0.0)))
        if norm0 == 0.0:
            return x, 0
        target = rtol * norm0
        u = apply_precond(r)
        w = local_spmv(mat, a_blocks, u)
        gamma, delta = fused_dots((r, u), (w, u))
        m_w = apply_precond(w)
        n_vec = local_spmv(mat, a_blocks, m_w)
        z = n_vec.copy()
        q = m_w.copy()
        pd = u.copy()
        s = w.copy()
        alpha = gamma / delta if delta != 0 else 0.0
        res = norm0
        iterations = 0
        for _ in range(max_iterations):
            if res <= target or delta == 0 or not np.isfinite(alpha):
                break
            with tracer.span("spmd.iteration", rank=p, index=iterations):
                with tracer.span("spmd.compute", rank=p, kernel="axpy"):
                    with _compute_probe(tel):
                        x += alpha * pd
                        r -= alpha * s
                        u -= alpha * q
                        w -= alpha * z
                rr, gamma_new, delta = fused_dots((r, r), (r, u), (w, u))
                res = float(np.sqrt(max(rr, 0.0)))
                iterations += 1
                if res <= target:
                    break
                m_w = apply_precond(w)
                n_vec = local_spmv(mat, a_blocks, m_w)
                beta = gamma_new / gamma if gamma != 0 else 0.0
                gamma = gamma_new
                denom = delta - beta * gamma / alpha if alpha != 0 else delta
                alpha = gamma / denom if denom != 0 else 0.0
                with tracer.span("spmd.compute", rank=p, kernel="axpy"):
                    with _compute_probe(tel):
                        z = n_vec + beta * z
                        q = m_w + beta * q
                        pd = u + beta * pd
                        s = w + beta * s
        return x, iterations

    results = run_spmd(
        _prog, part.nparts, tracker=tracker, timeout=timeout, engine=engine,
        workers=workers, latency=latency, telemetry=telemetry,
    )
    iters = results[0][1]
    assert all(it == iters for _, it in results)
    return DistVector(part, [x for x, _ in results]), iters
