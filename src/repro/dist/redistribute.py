"""Repartitioning of distributed objects.

Production solvers occasionally re-balance: after adaptive refinement, after
a pattern change, or when the §5.2 sizing rule picks a new rank count.  The
functions here move :class:`DistVector`/:class:`DistMatrix` data between row
partitions, tracking the all-to-all traffic such a migration would cost on
the wire.
"""

from __future__ import annotations

import numpy as np

from repro.dist.matrix import DistMatrix
from repro.dist.partition_map import RowPartition
from repro.dist.vector import DistVector
from repro.errors import ShapeError
from repro.mpisim.tracker import CommTracker

__all__ = ["redistribute_vector", "redistribute_matrix", "migration_volume"]


def migration_volume(old: RowPartition, new: RowPartition) -> dict[tuple[int, int], int]:
    """Rows each (old_owner → new_owner) pair must move; diagonal excluded."""
    if old.nrows != new.nrows:
        raise ShapeError("partitions cover different row counts")
    moves: dict[tuple[int, int], int] = {}
    changed = np.flatnonzero(old.owner != new.owner)
    for g in changed:
        key = (int(old.owner[g]), int(new.owner[g]))
        moves[key] = moves.get(key, 0) + 1
    return moves


def redistribute_vector(
    x: DistVector, new_partition: RowPartition, tracker: CommTracker | None = None
) -> DistVector:
    """Move a distributed vector onto ``new_partition``.

    Off-rank rows are accounted as one message per (src, dst) pair carrying
    8 bytes per moved value.
    """
    old = x.partition
    if old.nrows != new_partition.nrows:
        raise ShapeError("partitions cover different row counts")
    if tracker is not None:
        for (src, dst), count in migration_volume(old, new_partition).items():
            tracker.record_p2p(src, dst, 8 * count)
    global_values = x.to_global()
    return DistVector.from_global(global_values, new_partition)


def redistribute_matrix(
    mat: DistMatrix, new_partition: RowPartition, tracker: CommTracker | None = None
) -> DistMatrix:
    """Move a distributed matrix onto ``new_partition``.

    Each moved row ships its entries (12 bytes per stored entry: value +
    column index).
    """
    old = mat.partition
    if old.nrows != new_partition.nrows:
        raise ShapeError("partitions cover different row counts")
    if tracker is not None:
        changed = np.flatnonzero(old.owner != new_partition.owner)
        volumes: dict[tuple[int, int], int] = {}
        for g in changed:
            p_old = int(old.owner[g])
            lm = mat.locals[p_old]
            li = int(old.local_index[g])
            row_nnz = int(lm.csr.indptr[li + 1] - lm.csr.indptr[li])
            key = (p_old, int(new_partition.owner[g]))
            volumes[key] = volumes.get(key, 0) + row_nnz
        for (src, dst), nnz in volumes.items():
            tracker.record_p2p(src, dst, 12 * nnz)
    return DistMatrix.from_global(mat.to_global(), new_partition)
