"""Halo (ghost-cell) exchange schedules for row-distributed sparse matrices.

Terminology follows the paper (§3): rows owned by a rank are its *local
unknowns*; off-rank unknowns coupled to them are *halo unknowns*.  Before a
distributed SpMV, every rank must receive the current values of its halo
unknowns from their owners — the *halo update*.

:class:`HaloSchedule` captures exactly which values move between which ranks,
and is therefore the object on which the paper's communication-invariance
guarantee is stated: FSAIE-Comm must produce an extended matrix whose halo
schedule **equals** the original one (for both ``G`` and ``Gᵀ``).
"""

from __future__ import annotations

import numpy as np

from repro.dist.partition_map import RowPartition
from repro.errors import CommError, PartitionError, RankFailedError
from repro.instrument import get_metrics, get_tracer
from repro.mpisim.injection import get_injector
from repro.mpisim.tracker import CommTracker

__all__ = ["HaloSchedule", "PendingHaloUpdate"]

#: Tag halo messages are accounted under (mirrors ``repro.dist.spmd``).
_TAG_HALO = 7_000


class PendingHaloUpdate:
    """Completion handle for a split halo update.

    Returned by :meth:`HaloSchedule.update_start`; redeem with
    :meth:`HaloSchedule.update_finish` (or :meth:`wait`) to obtain the
    per-rank halo buffers.  In the deterministic BSP layer the exchange is
    performed eagerly at start time — the handle models the *pattern* of a
    nonblocking runtime (post early, complete late) so callers written
    against it overlap correctly when run on real message passing
    (:func:`repro.dist.spmd.spmd_pipelined_pcg`).
    """

    __slots__ = ("_halos",)

    def __init__(self, halos: list[np.ndarray]):
        self._halos = halos

    def wait(self) -> list[np.ndarray]:
        """Per-rank halo buffers (the exchange already completed at start)."""
        return self._halos


class HaloSchedule:
    """Per-rank halo exchange lists derived from a matrix pattern.

    Attributes
    ----------
    ext_cols:
        ``ext_cols[p]`` — ascending global column ids referenced by rank
        ``p``'s rows but owned elsewhere.  The local SpMV input vector on
        ``p`` is ``[x_local | x_halo]`` with the halo section in this order.
    recv_from:
        ``recv_from[p][q]`` — ascending global ids owned by ``q`` that ``p``
        receives (a sub-list of ``ext_cols[p]``).
    send_to:
        ``send_to[p][q]`` — ascending global ids owned by ``p`` that ``p``
        sends to ``q`` (mirror of ``recv_from[q][p]``).
    recv_pos:
        ``recv_pos[p][q]`` — positions of ``recv_from[p][q]`` inside
        ``ext_cols[p]`` (where received values land in the halo buffer).
    """

    __slots__ = ("partition", "ext_cols", "recv_from", "send_to", "recv_pos", "recv_src")

    def __init__(self, partition: RowPartition, ext_cols: list[np.ndarray]):
        if len(ext_cols) != partition.nparts:
            raise PartitionError("need one ext-column list per rank")
        self.partition = partition
        self.ext_cols = [np.asarray(c, dtype=np.int64) for c in ext_cols]
        owner = partition.owner
        self.recv_from: list[dict[int, np.ndarray]] = []
        self.recv_pos: list[dict[int, np.ndarray]] = []
        for p, cols in enumerate(self.ext_cols):
            if cols.size and np.any(np.diff(cols) <= 0):
                raise PartitionError(f"rank {p}: ext_cols must be strictly increasing")
            if cols.size and np.any(owner[cols] == p):
                raise PartitionError(f"rank {p}: ext_cols contains owned columns")
            by_owner: dict[int, np.ndarray] = {}
            pos: dict[int, np.ndarray] = {}
            if cols.size:
                owners = owner[cols]
                for q in np.unique(owners):
                    sel = np.flatnonzero(owners == q)
                    by_owner[int(q)] = cols[sel]
                    pos[int(q)] = sel.astype(np.int64)
            self.recv_from.append(by_owner)
            self.recv_pos.append(pos)
        self.send_to: list[dict[int, np.ndarray]] = [dict() for _ in range(partition.nparts)]
        for p, by_owner in enumerate(self.recv_from):
            for q, ids in by_owner.items():
                self.send_to[q][p] = ids
        # sender-local positions of each message, precomputed once so updates
        # skip the per-call global->local translation
        self.recv_src: list[dict[int, np.ndarray]] = [
            {q: partition.local_index[ids] for q, ids in by_owner.items()}
            for by_owner in self.recv_from
        ]

    # ------------------------------------------------------------------
    @classmethod
    def from_row_structure(
        cls, partition: RowPartition, indptr: np.ndarray, indices: np.ndarray
    ) -> "HaloSchedule":
        """Build from the global CSR structure of a matrix distributed by rows."""
        nparts = partition.nparts
        ext: list[np.ndarray] = []
        owner = partition.owner
        for p in range(nparts):
            rows = partition.global_ids[p]
            if rows.size:
                starts = indptr[rows]
                ends = indptr[rows + 1]
                total = int((ends - starts).sum())
                cols = np.empty(total, dtype=np.int64)
                off = 0
                for s, e in zip(starts, ends):
                    cols[off : off + (e - s)] = indices[s:e]
                    off += e - s
                cols = np.unique(cols)
                ext.append(cols[owner[cols] != p])
            else:
                ext.append(np.empty(0, dtype=np.int64))
        return cls(partition, ext)

    @classmethod
    def from_pattern(cls, pattern, partition: RowPartition) -> "HaloSchedule":
        """Build from a :class:`SparsityPattern` or :class:`CSRMatrix`."""
        return cls.from_row_structure(partition, pattern.indptr, pattern.indices)

    # ------------------------------------------------------------------
    def halo_size(self, rank: int) -> int:
        """Number of halo values the rank receives per update."""
        return self.ext_cols[rank].size

    def edges(self) -> set[tuple[int, int]]:
        """Directed (sender, receiver) pairs with non-empty exchanges."""
        out = set()
        for p, by_owner in enumerate(self.recv_from):
            for q, ids in by_owner.items():
                if ids.size:
                    out.add((q, p))
        return out

    def total_halo_values(self) -> int:
        """Total values moved per halo update (sum over all messages)."""
        return sum(int(c.size) for c in self.ext_cols)

    def neighbour_counts(self) -> np.ndarray:
        """Per-rank number of neighbours it receives from."""
        return np.array(
            [sum(1 for ids in d.values() if ids.size) for d in self.recv_from],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    def update(
        self,
        x_parts: list[np.ndarray],
        tracker: CommTracker | None = None,
        out: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Bulk-synchronous halo update: return per-rank halo buffers.

        ``x_parts[p]`` holds rank ``p``'s local values in local order.  Each
        exchanged message is recorded in ``tracker`` (8 bytes per value).

        ``out`` supplies preallocated receive buffers (one per rank, each of
        length ``halo_size(p)``) — e.g. tail views of a
        :class:`~repro.kernels.workspace.SolverWorkspace` SpMV input vector —
        making the update allocation-free.  Received values cover every halo
        position, so the buffers need no zeroing.  Without ``out``, fresh
        buffers are allocated and counted in the ``kernels.allocs`` metric.

        With tracing enabled, the update emits a ``halo.update`` span with
        one ``halo.exchange`` child per receiving rank (tagged ``rank`` and
        ``bytes``, matching the tracker's accounting exactly) wrapping
        ``halo.pack`` / ``halo.unpack`` children per message.

        With metrics enabled, every message also increments per-sender-rank
        ``halo.bytes_sent`` / ``halo.msgs`` counters — identically on the
        legacy (allocating) and ``out=`` paths, so the invariance auditor
        sees the same accounting regardless of which kernel path ran.
        """
        tracer = get_tracer()
        injector = get_injector()
        if tracer.enabled or injector is not None:
            return self._update_traced(x_parts, tracker, tracer, out, injector)
        part = self.partition
        metrics = get_metrics()
        record = metrics.enabled
        halos = self._recv_buffers(out)
        for p in range(part.nparts):
            for q, ids in self.recv_from[p].items():
                if ids.size == 0:
                    continue
                values = x_parts[q][self.recv_src[p][q]]
                halos[p][self.recv_pos[p][q]] = values
                if tracker is not None:
                    tracker.record_p2p(q, p, 8 * ids.size)
                if record:
                    metrics.counter("halo.bytes_sent", rank=q).inc(8 * int(ids.size))
                    metrics.counter("halo.msgs", rank=q).inc()
        return halos

    def update_start(
        self,
        x_parts: list[np.ndarray],
        tracker: CommTracker | None = None,
        out: list[np.ndarray] | None = None,
    ) -> PendingHaloUpdate:
        """Post the halo exchange; complete it with :meth:`update_finish`.

        The split form exists so SpMV callers can compute on their local
        column block *between* start and finish, overlapping compute with
        in-flight halo traffic.  The BSP layer performs the exchange
        eagerly here (identical tracker/metric accounting to
        :meth:`update`); the SPMD layer's equivalent split
        (:func:`repro.dist.spmd` halo start/finish) moves real messages.
        """
        return PendingHaloUpdate(self.update(x_parts, tracker, out))

    def update_finish(self, pending: PendingHaloUpdate) -> list[np.ndarray]:
        """Complete a split halo update; returns the per-rank halo buffers."""
        return pending.wait()

    def _recv_buffers(self, out: list[np.ndarray] | None) -> list[np.ndarray]:
        """Validate supplied receive buffers, or allocate (and count) fresh ones.

        Supplied buffers must be float64 — halo values are packed with plain
        slice assignment, and a float32 buffer would silently truncate every
        received value, so a dtype mismatch raises :class:`ValueError`
        instead.
        """
        nparts = self.partition.nparts
        if out is not None:
            if len(out) != nparts:
                raise PartitionError("need one halo receive buffer per rank")
            for p, buf in enumerate(out):
                if buf.shape != (self.ext_cols[p].size,):
                    raise PartitionError(
                        f"rank {p}: halo buffer has shape {buf.shape}, expected "
                        f"({self.ext_cols[p].size},)"
                    )
                if buf.dtype != np.float64:
                    raise ValueError(
                        f"rank {p}: halo buffer has dtype {buf.dtype}; halo "
                        "values are float64 and unpacking would silently cast "
                        "— allocate the buffer as float64"
                    )
            return out
        get_metrics().counter("kernels.allocs").inc(nparts)
        return [np.zeros(self.ext_cols[p].size, dtype=np.float64) for p in range(nparts)]

    def _update_traced(
        self,
        x_parts: list[np.ndarray],
        tracker: CommTracker | None,
        tracer,
        out: list[np.ndarray] | None = None,
        injector=None,
    ) -> list[np.ndarray]:
        """The :meth:`update` loop with per-rank spans and byte accounting.

        Also the fault-injected path: with an installed injector each
        message runs through :meth:`_deliver_injected` (drop → retry with
        backoff, delay, bit-flip) and each rank's stall/failure faults are
        applied on entry to its exchange.
        """
        part = self.partition
        metrics = get_metrics()
        halos = self._recv_buffers(out)
        if injector is not None:
            injector.begin_update()
        total_bytes = 0
        with tracer.span("halo.update", ranks=part.nparts):
            for p in range(part.nparts):
                if injector is not None:
                    self._apply_rank_faults(injector, tracer, metrics, p)
                rank_bytes = 8 * sum(int(ids.size) for ids in self.recv_from[p].values())
                total_bytes += rank_bytes
                with tracer.span("halo.exchange", rank=p, bytes=rank_bytes,
                                 neighbours=len(self.recv_from[p])):
                    for q, ids in self.recv_from[p].items():
                        if ids.size == 0:
                            continue
                        nbytes = 8 * int(ids.size)
                        with tracer.span("halo.pack", src=q, dst=p, bytes=nbytes):
                            values = x_parts[q][self.recv_src[p][q]]
                        if injector is not None:
                            values = self._deliver_injected(
                                injector, tracer, metrics, q, p, values
                            )
                        with tracer.span("halo.unpack", src=q, dst=p, bytes=nbytes):
                            halos[p][self.recv_pos[p][q]] = values
                        if tracker is not None:
                            tracker.record_p2p(q, p, nbytes)
                        if metrics.enabled:
                            metrics.counter("halo.bytes_sent", rank=q).inc(nbytes)
                            metrics.counter("halo.msgs", rank=q).inc()
        metrics.counter("halo.updates").inc()
        metrics.counter("halo.bytes").inc(total_bytes)
        return halos

    @staticmethod
    def _apply_rank_faults(injector, tracer, metrics, rank: int) -> None:
        """Raise on permanent failure; serve any pending transient stall."""
        if injector.rank_failed(rank):
            raise RankFailedError(rank)
        seconds = injector.consume_stall(rank)
        if seconds > 0:
            metrics.counter("resilience.stalls").inc()
            with tracer.span("resilience.stall", rank=rank, seconds=seconds):
                injector.sleep(seconds)

    @staticmethod
    def _deliver_injected(injector, tracer, metrics, src: int, dst: int, values):
        """Run one halo message through the installed fault plan.

        Models a reliable transport over a lossy channel: a dropped
        message — or one delayed past ``plan.message_timeout`` — costs a
        retry (``halo.retries``) with linear backoff; exhausting
        ``plan.max_retries`` counts a ``halo.timeouts`` and raises
        :class:`~repro.errors.CommError`.  Sub-timeout delays sleep (capped
        by the plan); bit-flips corrupt the delivered copy.
        """
        if injector.rank_failed(src):
            raise RankFailedError(src)
        plan = injector.plan
        attempts = 0
        while True:
            verdict = injector.message_verdict(src, dst, _TAG_HALO)
            if verdict.dropped or verdict.delay_s > plan.message_timeout:
                attempts += 1
                injector.record_retry()
                metrics.counter("halo.retries", rank=dst).inc()
                tracer.event(
                    "resilience.retry",
                    src=src,
                    dst=dst,
                    attempt=attempts,
                    cause="drop" if verdict.dropped else "timeout",
                )
                if attempts > plan.max_retries:
                    metrics.counter("halo.timeouts", rank=dst).inc()
                    raise CommError(
                        f"halo message {src}->{dst} lost {attempts} times "
                        f"(max_retries={plan.max_retries}); giving up"
                    )
                with tracer.span("resilience.backoff", src=src, dst=dst,
                                 attempt=attempts):
                    injector.sleep(plan.backoff * attempts)
                continue
            break
        if verdict.delay_s > 0:
            with tracer.span("resilience.delay", src=src, dst=dst,
                             seconds=verdict.delay_s):
                injector.sleep(verdict.delay_s)
        if verdict.flip_bit is not None:
            values = injector.corrupt(values, verdict)
            metrics.counter("resilience.bitflips").inc()
            tracer.event("resilience.bitflip", src=src, dst=dst, bit=verdict.flip_bit)
        return values

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, HaloSchedule):
            return NotImplemented
        if self.partition != other.partition:
            return False
        return all(
            np.array_equal(a, b) for a, b in zip(self.ext_cols, other.ext_cols)
        )

    def __hash__(self):
        raise TypeError("HaloSchedule is unhashable")

    def __repr__(self) -> str:
        return (
            f"HaloSchedule(nparts={self.partition.nparts}, "
            f"total_halo={self.total_halo_values()}, edges={len(self.edges())})"
        )
