"""Command-line interface: solve and compare without writing Python.

Usage::

    python -m repro solve   --generate poisson3d:12 --ranks 8 --method comm
    python -m repro solve   --matrix system.mtx --method fsaie --filter 0.05
    python -m repro compare --generate catalog:thermal2 --machine a64fx
    python -m repro info    --matrix system.mtx
    python -m repro trace   --workload poisson3d --nparts 8 --output trace.json
    python -m repro chaos   --generate poisson2d:16 --ranks 4 --json chaos.json
    python -m repro conformance --generate poisson2d:24 --ladder 4,8,16
    python -m repro cache   --generate poisson2d:32 --line-bytes 64,256
    python -m repro serve   --generate poisson2d:24 --requests 32 --chaos beta

Matrix sources: ``--matrix FILE`` reads MatrixMarket; ``--generate SPEC``
builds a synthetic problem, where SPEC is one of

* ``poisson2d:N`` / ``poisson3d:N`` — Laplacian on an N^d grid,
* ``elasticity2d:NX,NY`` / ``elasticity3d:NX,NY,NZ`` — FEM stiffness,
* ``catalog:NAME`` / ``catalog-large:NAME`` — an evaluation-catalog entry.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import (
    FilterSpec,
    PrecondOptions,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
    check_comm_invariance,
    imbalance_index,
    pcg,
)
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.errors import ReproError
from repro.matgen import PAPER_RTOL, get_case, paper_rhs
from repro.perfmodel import MACHINES, CostModel
from repro.sparse import CSRMatrix, read_matrix_market
from repro.sparse.ops import is_symmetric

__all__ = ["main", "build_parser", "load_matrix"]

_BUILDERS = {"fsai": build_fsai, "fsaie": build_fsaie, "comm": build_fsaie_comm}


def load_matrix(args) -> CSRMatrix:
    """Resolve ``--matrix`` / ``--generate`` into a CSR matrix."""
    if args.matrix:
        return read_matrix_market(args.matrix)
    spec = args.generate
    if spec is None:
        raise ReproError("provide --matrix FILE or --generate SPEC")
    kind, _, rest = spec.partition(":")
    if kind in ("catalog", "catalog-large"):
        return get_case(rest, large=kind.endswith("large")).build(args.scale)
    dims = [int(d) for d in rest.split(",")] if rest else []
    from repro import matgen

    if kind == "poisson2d":
        return matgen.poisson2d(*(dims or [16]))
    if kind == "poisson3d":
        return matgen.poisson3d(*(dims or [8]))
    if kind == "elasticity2d":
        return matgen.elasticity2d(*(dims or [8, 8]))
    if kind == "elasticity3d":
        return matgen.elasticity3d(*(dims or [4, 4, 4]))
    raise ReproError(f"unknown generator {kind!r}")


def _setup(args):
    mat = load_matrix(args)
    if not is_symmetric(mat):
        raise ReproError("matrix must be symmetric (CG/FSAI requirement)")
    part = RowPartition.from_matrix(mat, args.ranks, seed=args.seed)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=args.seed), part)
    return mat, part, da, b


def _options(args) -> PrecondOptions:
    machine = MACHINES[args.machine]
    return PrecondOptions(
        line_bytes=machine.cache_line_bytes,
        filter=FilterSpec(args.filter, dynamic=not args.static),
    )


def cmd_solve(args) -> int:
    """``repro solve``: one system, one method, full report."""
    mat, part, da, b = _setup(args)
    pre = _BUILDERS[args.method](mat, part, _options(args))
    result = pcg(da, b, precond=pre, rtol=args.rtol, max_iterations=args.max_iterations)
    x = result.x.to_global()
    rel = np.linalg.norm(mat.spmv(x) - b.to_global()) / np.linalg.norm(b.to_global())
    model = CostModel(MACHINES[args.machine], threads_per_process=args.threads)
    t = result.iterations * model.iteration_cost(da, pre).total
    print(f"matrix           : {mat.nrows} rows, {mat.nnz} nnz, {args.ranks} ranks")
    print(f"preconditioner   : {pre.name} (pattern +{pre.nnz_increase_percent:.1f}% vs FSAI)")
    print(f"iterations       : {result.iterations} (converged={result.converged})")
    print(f"relative residual: {rel:.3e}")
    print(f"modeled time     : {t * 1e3:.3f} ms on {args.machine} "
          f"({args.threads} threads/process)")
    return 0 if result.converged else 1


def cmd_compare(args) -> int:
    """``repro compare``: FSAI vs FSAIE vs FSAIE-Comm side by side."""
    from repro.analysis import format_table, pct_decrease

    mat, part, da, b = _setup(args)
    model = CostModel(MACHINES[args.machine], threads_per_process=args.threads)
    rows = []
    results = {}
    for method, build in _BUILDERS.items():
        pre = build(mat, part, _options(args))
        res = pcg(da, b, precond=pre, rtol=args.rtol, max_iterations=args.max_iterations)
        t = res.iterations * model.iteration_cost(da, pre).total
        results[method] = (pre, res, t)
        rows.append(
            [
                pre.name,
                res.iterations,
                f"{pre.nnz_increase_percent:.1f}",
                f"{imbalance_index(pre.nnz_per_rank()):.3f}",
                f"{t * 1e3:.3f}",
            ]
        )
    base_t = results["fsai"][2]
    for row, method in zip(rows, _BUILDERS):
        row.append(f"{pct_decrease(base_t, results[method][2]):+.1f}")
    print(
        format_table(
            ["Method", "iterations", "%NNZ", "imb index", "modeled ms", "Δtime %"],
            rows,
            title=f"{mat.nrows} rows / {mat.nnz} nnz on {args.ranks} ranks, "
            f"{args.machine}, Filter {args.filter} "
            f"({'static' if args.static else 'dynamic'})",
        )
    )
    invariant = check_comm_invariance(results["fsai"][0], results["comm"][0])
    print(f"\ncommunication scheme unchanged by FSAIE-Comm: {invariant}")
    return 0


def cmd_export(args) -> int:
    """Write catalog matrices as MatrixMarket files."""
    from pathlib import Path

    from repro.matgen import table1_cases, table2_cases
    from repro.sparse import write_matrix_market

    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    cases = table2_cases() if args.large else table1_cases()
    if args.names:
        wanted = set(args.names.split(","))
        cases = [c for c in cases if c.name in wanted]
        missing = wanted - {c.name for c in cases}
        if missing:
            raise ReproError(f"unknown matrices: {sorted(missing)}")
    for case in cases:
        mat = case.build(args.scale)
        path = out_dir / f"{case.name}.mtx"
        write_matrix_market(path, mat, symmetric=True)
        print(f"{path}  ({mat.nrows} rows, {mat.nnz} nnz)")
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: instrumented build + solve, exported as a trace file.

    Records construction-phase spans (pattern, extension, filtering, factor),
    per-iteration solver spans and halo-exchange spans with byte counts, then
    writes them in Chrome ``trace_event`` form (loadable in ``about:tracing``
    / Perfetto) or the plain JSON document form.
    """
    from repro.instrument import tracing, write_chrome_trace, write_json_trace
    from repro.mpisim.tracker import CommTracker

    if args.workload:
        args.generate = args.workload
    args.ranks = args.nparts
    mat, part, da, b = _setup(args)
    tracker = CommTracker()
    with tracing() as (tracer, metrics):
        pre = _BUILDERS[args.method](mat, part, _options(args))
        result = pcg(
            da, b, precond=pre, rtol=args.rtol,
            max_iterations=args.max_iterations, tracker=tracker,
        )
    writer = write_chrome_trace if args.format == "chrome" else write_json_trace
    path = writer(args.output, tracer, metrics)
    halo_bytes = sum(int(s.tags["bytes"]) for s in tracer.by_name("halo.exchange"))
    print(f"trace            : {path} ({args.format}, {len(tracer)} spans)")
    print(f"matrix           : {mat.nrows} rows, {mat.nnz} nnz, {args.ranks} ranks")
    print(f"preconditioner   : {pre.name}")
    print(f"iterations       : {result.iterations} (converged={result.converged}, "
          f"{len(tracer.by_name('pcg.iteration'))} iteration spans)")
    print(f"halo traffic     : {halo_bytes} bytes in "
          f"{len(tracer.by_name('halo.exchange'))} exchanges "
          f"(tracker: {tracker.total_bytes} bytes)")
    return 0 if result.converged else 1


def cmd_timeline(args) -> int:
    """``repro timeline``: reconstruct the cross-rank timeline of an SPMD solve.

    Runs the preconditioned CG fully inside the SPMD runtime (real messages,
    one thread per rank) under tracing, merges the per-rank span streams
    into a :class:`~repro.observe.Timeline`, and prints an ASCII per-rank
    Gantt chart with per-rank busy/wait/slack, the critical path through
    the halo/allreduce dependency graph, and its top-k edges.  ``--load``
    renders a previously saved timeline (or exported trace) instead;
    ``--json`` / ``--prom`` write the timeline document and the
    OpenMetrics exposition.
    """
    from repro.analysis import format_table
    from repro.instrument import tracing
    from repro.observe import Timeline, halo_critical_path, timeline_samples
    from repro.observe.prom import write_openmetrics

    collected: list[dict] = []
    if args.load:
        timeline = Timeline.load(args.load)
    else:
        from repro.dist.spmd import spmd_cg

        mat, part, da, b = _setup(args)
        pre = _BUILDERS[args.method](mat, part, _options(args))
        with tracing() as (tracer, metrics):
            _, iterations = spmd_cg(
                da, b, precond_pair=(pre.g, pre.gt),
                rtol=args.rtol, max_iterations=args.max_iterations,
            )
        timeline = Timeline.from_tracer(
            tracer,
            meta={
                "case": args.generate or args.matrix,
                "method": pre.name,
                "ranks": args.ranks,
                "iterations": iterations,
            },
        )
        collected = metrics.collect()
        static = halo_critical_path(pre.g.schedule)
        print(f"method           : {pre.name} ({iterations} iterations)")
        print(f"static {static.render()}")
    print(timeline.render_gantt(width=args.width, max_ranks=args.top_ranks))
    summary = timeline.summary(top_k=args.top_edges)
    rows = [
        [
            r,
            f"{summary['busy_seconds'][str(r)] * 1e3:.3f}",
            f"{summary['wait_seconds'][str(r)] * 1e3:.3f}",
            f"{summary['slack_seconds'][str(r)] * 1e3:.3f}",
        ]
        for r in timeline.ranks
    ]
    print(format_table(["rank", "busy ms", "wait ms", "slack ms"], rows))
    cp = summary["critical_path"]
    print(
        f"critical path    : {cp['length_seconds'] * 1e3:.3f} ms over "
        f"{cp['n_segments']} segments (makespan "
        f"{summary['makespan_seconds'] * 1e3:.3f} ms)"
    )
    for e in cp["top_edges"]:
        print(
            f"  edge {e['src']} -> {e['dst']}: {e['bytes']} B, "
            f"blocked {e['wait_seconds'] * 1e3:.3f} ms"
        )
    if args.json:
        print(f"timeline written : {timeline.save(args.json)}")
    if args.prom:
        samples = collected + timeline_samples(timeline)
        print(f"openmetrics      : {write_openmetrics(args.prom, samples)}")
    return 0


def cmd_explain(args) -> int:
    """``repro explain``: attribution verdict for FSAI vs FSAIE vs FSAIE-Comm.

    Builds and solves with each pattern, feeds achieved iterations, the
    perfmodel prediction, cachesim misses, per-line free-ride ledgers and
    the invariance audit into :func:`repro.observe.attribute`, and prints
    the verdict with named suspects when achieved diverges from predicted —
    ``cache-reuse-not-realized`` citing the ledger's actual line evidence.
    """
    from repro.cachesim import precond_x_misses_per_rank
    from repro.core.fsai import fsai_pattern
    from repro.observe import FreeRideLedger, MethodFacts, attribute

    mat, part, da, b = _setup(args)
    machine = MACHINES[args.machine]
    model = CostModel(machine, threads_per_process=args.threads)
    options = _options(args)
    base_pattern = fsai_pattern(mat, options.fsai)
    base_g = base_pattern.to_csr()
    base_gt = base_pattern.transpose().to_csr()
    preconds = {}
    facts = []
    ledgers = {}
    for method, build in _BUILDERS.items():
        pre = build(mat, part, options)
        preconds[method] = pre
        result = pcg(
            da, b, precond=pre, rtol=args.rtol, max_iterations=args.max_iterations
        )
        l1 = machine.l1.scaled(args.threads)
        ledger = FreeRideLedger(
            method=pre.name, line_bytes=l1.line_bytes,
            base_g=base_g, base_gt=base_gt,
        )
        misses = precond_x_misses_per_rank(pre.g, pre.gt, l1, ledger=ledger)
        ledgers[pre.name] = ledger
        invariant = None
        if method == "comm":
            invariant = check_comm_invariance(preconds["fsai"], pre)
        facts.append(
            MethodFacts.from_objects(
                pre,
                result,
                cost=model.iteration_cost(da, pre, precond_misses=misses),
                misses=misses,
                invariant=invariant,
            )
        )
    verdict = attribute(
        facts,
        meta={
            "case": args.generate or args.matrix,
            "ranks": args.ranks,
            "machine": args.machine,
            "filter": args.filter,
        },
        ledgers=ledgers,
    )
    print(verdict.render())
    print()
    print("free-ride ledgers (extension x-accesses riding resident lines):")
    for name, ledger in ledgers.items():
        if ledger.ext_accesses:
            print(
                f"  {name:<12}: {ledger.free_rides}/{ledger.ext_accesses} "
                f"({ledger.free_ride_fraction:.1%}) free at "
                f"{ledger.line_bytes} B — local "
                f"{ledger.free_ride_fraction_local:.1%}, halo "
                f"{ledger.free_ride_fraction_halo:.1%}"
            )
        else:
            print(f"  {name:<12}: no extension entries (baseline pattern)")
    if args.json:
        print(f"\nverdict written: {verdict.save(args.json)}")
    return 0


def cmd_conformance(args) -> int:
    """``repro conformance``: α–β model predictions vs streamed measurements.

    Strong-scales one matrix over a ladder of rank counts on the simulated
    SPMD runtime with in-band telemetry enabled, compares
    :meth:`~repro.perfmodel.CostModel.phase_seconds` predictions against the
    streamed per-phase measurements at each rung, re-proves the paper's §4
    halo-schedule invariance *with telemetry on* (telemetry traffic rides
    its own tag and is excluded from the audit by construction), and prints
    the per-phase ratio table with named divergence verdicts.  ``--json``
    saves the versioned ``repro-conformance`` document; ``--prom`` writes
    the OpenMetrics exposition.  Exit code 1 when a structural fact fails
    (invariance broken, or no telemetry traffic observed); divergence
    verdicts alone are informational.
    """
    from repro.dist.spmd import spmd_halo_update, spmd_pipelined_pcg
    from repro.mpisim.tracker import CommTracker
    from repro.observe import (
        ConformanceReport,
        RankCountConformance,
        TelemetryConfig,
        compare_snapshots,
        conformance_samples,
    )
    from repro.observe.prom import write_openmetrics

    mat = load_matrix(args)
    if not is_symmetric(mat):
        raise ReproError("matrix must be symmetric (CG/FSAI requirement)")
    try:
        ladder = [int(r) for r in args.ladder.split(",")]
    except ValueError:
        raise ReproError(f"--ladder expects comma-separated rank counts, "
                         f"got {args.ladder!r}") from None
    try:
        rank_sample = int(args.rank_sample)
    except ValueError:
        rank_sample = args.rank_sample  # "all" / "sqrt" / "first:K" / "stride:K"
    model = CostModel(MACHINES[args.machine], threads_per_process=args.threads)
    entries = []
    structural_ok = True
    for ranks in ladder:
        part = RowPartition.from_matrix(mat, ranks, seed=args.seed)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, seed=args.seed), part)
        pre = _BUILDERS[args.method](mat, part, _options(args))
        telemetry = TelemetryConfig(rank_sample=rank_sample)
        tracker = CommTracker()
        _, iterations = spmd_pipelined_pcg(
            da, b, precond_pair=(pre.g, pre.gt), rtol=args.rtol,
            max_iterations=args.max_iterations, tracker=tracker,
            engine=args.engine, timeout=args.timeout, telemetry=telemetry,
        )
        cluster = telemetry.result
        if cluster is None:
            raise ReproError(f"no telemetry aggregated at {ranks} ranks "
                             f"(rank_sample={args.rank_sample!r})")
        predicted = model.phase_seconds(
            da, pre, iterations=iterations, reduction_phases=1
        )
        # §4 invariance, re-proved with telemetry enabled: the FSAI and
        # FSAIE-Comm halo schedules must stay byte-identical even while
        # both runs stream telemetry over the same communicator.
        base = _BUILDERS["fsai"](mat, part, _options(args))
        snaps = []
        telemetry_bytes = 0
        for g in (base.g, pre.g):
            t = CommTracker()
            spmd_halo_update(g, b, t, engine=args.engine,
                             telemetry=TelemetryConfig(rank_sample=rank_sample))
            snaps.append(t.snapshot())
            telemetry_bytes += t.total_telemetry_bytes
        audit = compare_snapshots(snaps[0], snaps[1], base_label="fsai",
                                  other_label=args.method,
                                  check_collectives=False)
        extras = {
            "halo_invariant": audit.invariant,
            "telemetry_excluded": audit.invariant and telemetry_bytes > 0,
            "messages": tracker.total_messages,
            "bytes": tracker.total_bytes,
            "telemetry_messages": tracker.total_telemetry_messages,
            "telemetry_bytes": tracker.total_telemetry_bytes,
        }
        structural_ok &= extras["halo_invariant"] and extras["telemetry_excluded"]
        entries.append(RankCountConformance.from_cluster(
            ranks=ranks, iterations=iterations, predicted=predicted,
            cluster=cluster, extras=extras,
        ))
        print(f"ranks {ranks:>5}: {iterations} iterations, "
              f"{len(cluster.sampled)} sampled ranks, "
              f"payload {cluster.payload_bytes()} B, "
              f"invariant={extras['halo_invariant']}")
    report = ConformanceReport(
        entries=entries,
        meta={
            "case": args.generate or args.matrix,
            "method": args.method,
            "machine": args.machine,
            "threads": args.threads,
            "engine": args.engine,
            "ladder": ladder,
            "rank_sample": args.rank_sample,
            "filter": args.filter,
        },
        share_tolerance=args.share_tolerance,
    )
    print()
    print(report.render())
    if args.json:
        print(f"\nconformance written: {report.save(args.json)}")
    if args.prom:
        samples = conformance_samples(report)
        samples += cluster.to_prom_samples()  # last rung's streamed histograms
        print(f"openmetrics        : {write_openmetrics(args.prom, samples)}")
    return 0 if structural_ok else 1


def cmd_cache(args) -> int:
    """``repro cache``: per-line free-ride ledgers and conformance verdicts.

    Replays the ``Gᵀ(Gx)`` access stream of every ladder method through the
    attributed cache simulator at each requested line geometry, classifying
    every extension-entry ``x`` access as free ride vs new fill against the
    baseline FSAI pattern, and confronts the measured fill traffic with the
    perfmodel's ``x``-read memory term.  Prints the conformance table with
    the paper's gated cache claims (free-ride majority, larger lines ⇒
    larger gains, misses-per-nnz not worse than FSAI); ``--json`` saves the
    versioned ``repro-cache-conformance`` document, ``--prom`` the
    OpenMetrics exposition including reuse-distance histograms.  Exit code
    1 when a gated claim fails.
    """
    from repro.cachesim import CacheConfig, precond_x_misses_per_rank
    from repro.core.fsai import fsai_pattern
    from repro.observe import (
        CacheConformance,
        FreeRideLedger,
        cache_conformance_samples,
        ledger_samples,
    )
    from repro.observe.prom import write_openmetrics

    mat, part, _, _ = _setup(args)
    machine = MACHINES[args.machine]
    methods = [m.strip() for m in args.ladder.split(",") if m.strip()]
    unknown = [m for m in methods if m not in _BUILDERS]
    if unknown:
        raise ReproError(
            f"--ladder expects methods from {sorted(_BUILDERS)}, got {unknown}"
        )
    try:
        line_sizes = [int(s) for s in args.line_bytes.split(",")]
    except ValueError:
        raise ReproError(
            f"--line-bytes expects comma-separated byte counts, "
            f"got {args.line_bytes!r}"
        ) from None
    report = CacheConformance(
        meta={
            "case": args.generate or args.matrix,
            "matrix": args.generate or args.matrix,
            "ranks": args.ranks,
            "machine": args.machine,
            "threads": args.threads,
            "filter": args.filter,
            "line_sizes": line_sizes,
        }
    )
    model = CostModel(machine, threads_per_process=args.threads)
    ledgers: list = []
    for lb in line_sizes:
        options = PrecondOptions(
            line_bytes=lb,
            filter=FilterSpec(args.filter, dynamic=not args.static),
        )
        base_pattern = fsai_pattern(mat, options.fsai)
        base_g = base_pattern.to_csr()
        base_gt = base_pattern.transpose().to_csr()
        config = CacheConfig(
            machine.l1.size_bytes, lb, machine.l1.associativity
        ).scaled(args.threads)
        for method in methods:
            pre = _BUILDERS[method](mat, part, options)
            ledger = FreeRideLedger(
                method=pre.name, line_bytes=lb, base_g=base_g, base_gt=base_gt,
                meta={"case": args.generate or args.matrix, "ranks": args.ranks},
            )
            precond_x_misses_per_rank(pre.g, pre.gt, config, ledger=ledger)
            report.add_ledger(
                ledger,
                modeled_x_bytes=float(model.precond_x_read_bytes(pre).sum()),
            )
            ledgers.append(ledger)
    print(report.render())
    if args.json:
        print(f"\ncache conformance written: {report.save(args.json)}")
    if args.prom:
        samples = cache_conformance_samples(report)
        for ledger in ledgers:
            samples += ledger_samples(ledger)
        print(f"openmetrics              : {write_openmetrics(args.prom, samples)}")
    failed = [c for c in report.claims() if not c["ok"]]
    return 1 if failed else 0


def cmd_bench(args) -> int:
    """``repro bench``: run the kernel microbenchmarks, write BENCH_kernels.json."""
    from repro.kernels.bench import DEFAULT_SIZES, format_summary, run_suite, write_suite

    sizes = tuple(int(s) for s in args.sizes.split(",")) if args.sizes else DEFAULT_SIZES
    result = run_suite(
        sizes=sizes, reps=args.reps, quick=args.quick, backend=args.backend
    )
    path = write_suite(result, args.output)
    print(format_summary(result))
    print(f"\nwritten: {path}")
    return 0


def cmd_report(args) -> int:
    """``repro report``: render or compare unified run reports.

    ``PATH`` may be a saved :class:`~repro.observe.RunReport`, an exported
    ``repro-trace`` document, or a ``BENCH_kernels.json`` suite — anything
    :meth:`RunReport.load` understands.  With ``--compare OTHER``, ``PATH``
    is the baseline and the exit code reflects the regression verdict
    (0 pass, 1 fail), making the subcommand usable directly as a CI gate.
    """
    from repro.observe import RunReport

    report = RunReport.load(args.path)
    if args.compare:
        other = RunReport.load(args.compare)
        tolerances = {}
        for spec in args.tol or []:
            name, sep, value = spec.partition("=")
            try:
                tolerances[name] = float(value)
            except ValueError:
                raise ReproError(
                    f"--tol expects NAME=RELATIVE_TOLERANCE, got {spec!r}"
                ) from None
            if not sep or not name:
                raise ReproError(f"--tol expects NAME=RELATIVE_TOLERANCE, got {spec!r}")
        comparison = report.compare(
            other, tolerances, default_rel=args.default_rel
        )
        print(comparison.render(only_failures=args.only_failures))
        return 0 if comparison.passed else 1
    rendered = report.to_markdown() if args.format == "markdown" else report.to_text()
    print(rendered, end="")
    return 0


def cmd_chaos(args) -> int:
    """``repro chaos``: inject a seeded fault menu, verify the solver survives.

    Runs the clean baseline and every scenario of the selected menu
    (message delays, drops, duplicates, bit-flips, a transient rank
    stall), printing the survival table and — with ``--json`` — writing
    the versioned ``repro-chaos-report`` artifact that
    ``scripts/check_resilience.py`` gates on.  Exit code 0 when every
    scenario met its contract, 1 otherwise.
    """
    from repro.resilience import quick_menu, run_chaos, standard_menu

    mat = load_matrix(args)
    if not is_symmetric(mat):
        raise ReproError("matrix must be symmetric (CG/FSAI requirement)")
    builder = None
    if args.method != "none":
        build = _BUILDERS[args.method]
        options = _options(args)

        def builder(a, part):
            return build(a, part, options)

    menu_fn = quick_menu if args.menu == "quick" else standard_menu
    report = run_chaos(
        mat,
        ranks=args.ranks,
        seed=args.seed,
        rtol=args.rtol,
        max_iterations=args.max_iterations,
        menu=menu_fn(args.ranks),
        engine=args.engine,
        precond_builder=builder,
        matrix_label=args.generate or args.matrix or "?",
    )
    print(report.render())
    if args.json:
        print(f"\nchaos report written: {report.save(args.json)}")
    return 0 if report.survived else 1


def cmd_serve(args) -> int:
    """``repro serve``: run a multi-tenant solve farm over one structure.

    Builds ``--variants`` same-structure/different-values copies of the
    source system (diagonal shifts, all SPD), then serves ``--requests``
    concurrent solve requests alternating across ``--tenants`` through the
    fingerprint-keyed artifact cache — so the first request per structure
    pays the setup and the rest reuse it, with the §4 invariance audit run
    on every warm-structure build.  ``--chaos TENANT`` turns one tenant
    into a chaos tenant (seeded message delays via
    :mod:`repro.resilience`, forced through the SPMD engine).  Prints the
    farm report; ``--json`` writes the versioned ``repro-serve-report``
    artifact that ``repro report`` and :meth:`RunReport.load` understand.
    Exit code 0 when every admitted request solved, 1 otherwise.
    """
    from repro.resilience import FaultPlan, MessageDelay
    from repro.serve import (
        FarmConfig,
        ServeReport,
        SolveFarm,
        SolveRequest,
        TenantPolicy,
    )

    mat = load_matrix(args)
    if not is_symmetric(mat):
        raise ReproError("matrix must be symmetric (CG/FSAI requirement)")
    tenants = [t.strip() for t in args.tenants.split(",") if t.strip()]
    if not tenants:
        raise ReproError("--tenants needs at least one name")
    if args.chaos is not None and args.chaos not in tenants:
        raise ReproError(f"--chaos tenant {args.chaos!r} not in --tenants")

    # same-structure value variants: shift the diagonal, keep SPD
    diag_pos = np.empty(mat.nrows, dtype=np.int64)
    for row in range(mat.nrows):
        cols = mat.indices[mat.indptr[row]:mat.indptr[row + 1]]
        diag_pos[row] = mat.indptr[row] + int(np.searchsorted(cols, row))
    mats = [mat]
    for v in range(1, max(1, args.variants)):
        data = mat.data.copy()
        data[diag_pos] += 0.05 * v
        mats.append(CSRMatrix(mat.shape, mat.indptr, mat.indices, data,
                              check=False))

    policies = []
    for name in tenants:
        plan = None
        if name == args.chaos:
            plan = FaultPlan(seed=args.seed,
                             delays=(MessageDelay(0.2, 0.002),))
        policies.append(TenantPolicy(name, max_in_flight=args.max_in_flight,
                                     fault_plan=plan))
    config = FarmConfig(
        ranks=args.ranks,
        method=args.method,
        workers=args.workers,
        queue_limit=args.queue_limit,
        line_bytes=MACHINES[args.machine].cache_line_bytes,
        filter_value=args.filter,
        dynamic_filter=not args.static,
        partition_seed=args.seed,
    )
    requests = []
    for i in range(args.requests):
        tenant = tenants[i % len(tenants)]
        # fault injection hooks the simulated transport, so chaos-tenant
        # requests must run on the SPMD engine to see their faults
        engine = "spmd" if tenant == args.chaos else args.engine
        requests.append(
            SolveRequest(
                tenant=tenant,
                mat=mats[i % len(mats)],
                rtol=args.rtol,
                max_iterations=args.max_iterations,
                engine=engine,
                tag=f"req{i}",
            )
        )
    with SolveFarm(policies, config) as farm:
        outcomes = farm.serve(requests)
        report = ServeReport.from_farm(
            farm,
            outcomes=outcomes,
            matrix=args.generate or args.matrix or "?",
            requests=args.requests,
        )
    print(report.render())
    if args.json:
        print(f"\nserve report written: {report.save(args.json)}")
    failed = [o for o in outcomes if o.admitted and not o.ok]
    return 0 if not failed else 1


def cmd_info(args) -> int:
    """``repro info``: structural statistics of a matrix."""
    from repro.order import bandwidth

    mat = load_matrix(args)
    diag = mat.diagonal()
    print(f"rows        : {mat.nrows}")
    print(f"nnz         : {mat.nnz} ({mat.nnz / max(mat.nrows, 1):.1f} per row)")
    print(f"symmetric   : {is_symmetric(mat)}")
    print(f"bandwidth   : {bandwidth(mat)}")
    print(f"diag range  : [{diag.min():.3e}, {diag.max():.3e}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="FSAIE-Comm reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_solver: bool):
        src = p.add_mutually_exclusive_group()
        src.add_argument("--matrix", help="MatrixMarket file")
        src.add_argument("--generate", help="synthetic spec, e.g. poisson3d:12")
        p.add_argument("--scale", type=float, default=1.0, help="catalog size scale")
        if with_solver:
            p.add_argument("--ranks", type=int, default=4)
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--machine", choices=sorted(MACHINES), default="skylake")
            p.add_argument("--threads", type=int, default=8,
                           help="threads per process (paper default: 8)")
            p.add_argument("--filter", type=float, default=0.01)
            p.add_argument("--static", action="store_true",
                           help="static filtering instead of dynamic (Alg. 4)")
            p.add_argument("--rtol", type=float, default=PAPER_RTOL)
            p.add_argument("--max-iterations", type=int, default=50_000)

    p_solve = sub.add_parser("solve", help="solve one system with one method")
    add_common(p_solve, with_solver=True)
    p_solve.add_argument("--method", choices=sorted(_BUILDERS), default="comm")
    p_solve.set_defaults(fn=cmd_solve)

    p_cmp = sub.add_parser("compare", help="FSAI vs FSAIE vs FSAIE-Comm")
    add_common(p_cmp, with_solver=True)
    p_cmp.set_defaults(fn=cmd_compare)

    p_trace = sub.add_parser(
        "trace", help="record an instrumented build + solve as a trace file"
    )
    add_common(p_trace, with_solver=True)
    p_trace.add_argument("--workload", help="synthetic spec (alias of --generate)")
    p_trace.add_argument("--nparts", type=int, default=8,
                         help="number of ranks (overrides --ranks)")
    p_trace.add_argument("--method", choices=sorted(_BUILDERS), default="comm")
    p_trace.add_argument("--format", choices=("chrome", "json"), default="chrome",
                         help="chrome trace_event file or plain JSON document")
    p_trace.add_argument("--output", default="trace.json", help="output path")
    p_trace.set_defaults(fn=cmd_trace)

    p_tl = sub.add_parser(
        "timeline",
        help="reconstruct the cross-rank timeline of an SPMD solve "
        "(ASCII Gantt, critical path, wait histogram)",
    )
    add_common(p_tl, with_solver=True)
    p_tl.add_argument("--method", choices=sorted(_BUILDERS), default="comm")
    p_tl.add_argument("--load", help="render a saved timeline/trace instead of running")
    p_tl.add_argument("--json", help="write the timeline document to this path")
    p_tl.add_argument("--prom", help="write OpenMetrics text exposition to this path")
    p_tl.add_argument("--width", type=int, default=72, help="Gantt chart width")
    p_tl.add_argument("--top-edges", type=int, default=5,
                      help="number of critical edges to report")
    p_tl.add_argument(
        "--top-ranks", type=int, default=None, metavar="N",
        help="cap the Gantt chart at the N ranks with the most wait time "
             "(a footer names how many ranks were elided)",
    )
    p_tl.set_defaults(fn=cmd_timeline)

    p_conf = sub.add_parser(
        "conformance",
        help="α–β model-conformance verdicts: predicted vs streamed "
             "per-phase seconds over a strong-scaled rank ladder",
    )
    add_common(p_conf, with_solver=True)
    p_conf.add_argument("--method", choices=sorted(_BUILDERS), default="comm")
    p_conf.add_argument("--ladder", default="4,8,16",
                        help="comma-separated rank counts to strong-scale over")
    p_conf.add_argument("--engine", choices=("threads", "events"),
                        default="events", help="SPMD runtime engine")
    p_conf.add_argument(
        "--rank-sample", default="8",
        help="full-span sampling policy: K, 'all', 'sqrt', 'first:K', "
             "'stride:K', or 'none' (histograms stream on every rank "
             "regardless)",
    )
    p_conf.add_argument("--share-tolerance", type=float, default=0.25,
                        help="phase-share drift that triggers a verdict")
    p_conf.add_argument("--timeout", type=float, default=600.0,
                        help="per-rung SPMD wall-clock timeout (seconds)")
    p_conf.add_argument("--json", help="write the conformance document here")
    p_conf.add_argument("--prom", help="write OpenMetrics text exposition here")
    p_conf.set_defaults(fn=cmd_conformance)

    p_expl = sub.add_parser(
        "explain",
        help="performance-attribution verdict: achieved vs predicted per pattern",
    )
    add_common(p_expl, with_solver=True)
    p_expl.add_argument("--json", help="write the attribution verdict to this path")
    p_expl.set_defaults(fn=cmd_explain)

    p_cache = sub.add_parser(
        "cache",
        help="per-line free-ride ledgers and cache-conformance verdicts "
             "over a method ladder at one or more line geometries",
    )
    add_common(p_cache, with_solver=True)
    p_cache.add_argument(
        "--ladder", default="fsai,fsaie,comm",
        help="comma-separated method ladder to profile",
    )
    p_cache.add_argument(
        "--line-bytes", default="64,256",
        help="comma-separated cache-line geometries to replay at",
    )
    p_cache.add_argument("--json", help="write the cache-conformance document here")
    p_cache.add_argument("--prom", help="write OpenMetrics text exposition here")
    p_cache.set_defaults(fn=cmd_cache)

    p_rep = sub.add_parser(
        "report", help="render or compare unified run reports (JSON)"
    )
    p_rep.add_argument(
        "path", help="run-report JSON (also accepts trace/bench documents)"
    )
    p_rep.add_argument("--format", choices=("text", "markdown"), default="text")
    p_rep.add_argument(
        "--compare", metavar="OTHER",
        help="diff OTHER against PATH (PATH is the baseline); exit 1 on regression",
    )
    p_rep.add_argument(
        "--tol", action="append", metavar="NAME=REL",
        help="per-metric relative tolerance for --compare (repeatable)",
    )
    p_rep.add_argument(
        "--default-rel", type=float, default=0.0,
        help="relative tolerance for metrics without an explicit --tol",
    )
    p_rep.add_argument(
        "--only-failures", action="store_true",
        help="print only out-of-tolerance rows of the comparison",
    )
    p_rep.set_defaults(fn=cmd_report)

    p_chaos = sub.add_parser(
        "chaos",
        help="inject a seeded fault menu and verify the solver survives",
    )
    add_common(p_chaos, with_solver=True)
    p_chaos.add_argument("--method", choices=["none", *sorted(_BUILDERS)],
                         default="fsai", help="preconditioner ('none' for plain CG)")
    p_chaos.add_argument("--menu", choices=("standard", "quick"), default="standard",
                         help="scenario menu (quick = 2-scenario smoke subset)")
    p_chaos.add_argument("--engine", choices=("bsp", "spmd"), default="bsp",
                         help="deterministic BSP solver or threaded SPMD runtime")
    p_chaos.add_argument("--json", help="write the versioned chaos report here")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="multi-tenant solve farm with a fingerprint-keyed artifact cache",
    )
    add_common(p_serve, with_solver=True)
    p_serve.add_argument("--method", choices=sorted(_BUILDERS), default="comm")
    p_serve.add_argument("--requests", type=int, default=16,
                         help="number of solve requests to serve")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="solver worker threads")
    p_serve.add_argument("--tenants", default="alpha,beta",
                         help="comma-separated tenant names")
    p_serve.add_argument("--variants", type=int, default=4,
                         help="same-structure value variants of the system")
    p_serve.add_argument("--max-in-flight", type=int, default=64,
                         help="per-tenant in-flight budget")
    p_serve.add_argument("--queue-limit", type=int, default=256,
                         help="global admission queue bound")
    p_serve.add_argument("--engine", choices=("bsp", "spmd"), default="bsp",
                         help="solver engine for non-chaos requests")
    p_serve.add_argument("--chaos", metavar="TENANT", default=None,
                         help="inject seeded message delays for this tenant "
                              "(its requests run on the SPMD engine)")
    p_serve.add_argument("--json", help="write the repro-serve-report here")
    p_serve.set_defaults(fn=cmd_serve)

    p_info = sub.add_parser("info", help="matrix statistics")
    add_common(p_info, with_solver=False)
    p_info.set_defaults(fn=cmd_info)

    p_bench = sub.add_parser(
        "bench", help="kernel microbenchmarks (plans, workspace, batched setup)"
    )
    p_bench.add_argument("--output", default="BENCH_kernels.json",
                         help="result JSON path")
    p_bench.add_argument("--sizes", help="comma-separated 2-D grid sizes, e.g. 32,64,96")
    p_bench.add_argument("--reps", type=int, default=5, help="repetitions (best-of)")
    p_bench.add_argument(
        "--backend", default=None, choices=("numpy", "cupy", "auto"),
        help="array backend for the planned kernels and batched setup "
             "(unavailable backends fall back to numpy with a warning)",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="smoke-test sizes/reps (numbers indicative only)")
    p_bench.set_defaults(fn=cmd_bench)

    p_exp = sub.add_parser("export", help="write catalog matrices as .mtx files")
    p_exp.add_argument("--output", default="matrices", help="output directory")
    p_exp.add_argument("--large", action="store_true", help="export the Table 2 set")
    p_exp.add_argument("--names", help="comma-separated subset of matrix names")
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.set_defaults(fn=cmd_export)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
