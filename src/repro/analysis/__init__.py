"""Result aggregation and reporting used by the benchmark harness."""

from repro.analysis.convergence import (
    SpectralEstimate,
    convergence_rate,
    estimate_spectrum,
    lanczos_tridiagonal,
)
from repro.analysis.histogram import format_histogram_pair, histogram_series
from repro.analysis.metrics import (
    ImprovementSummary,
    best_per_matrix,
    pct_decrease,
    pct_increase,
    summarize_improvements,
)
from repro.analysis.tables import format_kv, format_table

__all__ = [
    "pct_decrease",
    "pct_increase",
    "ImprovementSummary",
    "summarize_improvements",
    "best_per_matrix",
    "format_table",
    "format_kv",
    "histogram_series",
    "format_histogram_pair",
    "SpectralEstimate",
    "estimate_spectrum",
    "lanczos_tridiagonal",
    "convergence_rate",
]
