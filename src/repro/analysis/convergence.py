"""Convergence analysis of CG runs: rates and spectral estimates.

CG is a Lanczos process in disguise: the step scalars ``α_k`` (step lengths)
and ``β_k`` (direction couplings) define a tridiagonal matrix ``T_k`` whose
eigenvalues (Ritz values) approximate the spectrum of the *preconditioned*
operator.  From a converged run this module therefore recovers an estimate
of the preconditioned condition number — the quantity FSAI-family
preconditioners exist to reduce — without ever forming the operator.

References: Golub & Van Loan, *Matrix Computations*, §10.2; Saad,
*Iterative Methods for Sparse Linear Systems*, §6.7.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SpectralEstimate", "lanczos_tridiagonal", "estimate_spectrum", "convergence_rate"]


@dataclass(frozen=True)
class SpectralEstimate:
    """Ritz-value summary of a CG run."""

    lambda_min: float
    lambda_max: float
    ritz_values: np.ndarray

    @property
    def condition_number(self) -> float:
        """``λ_max / λ_min`` (inf when λ_min ≤ 0)."""
        if self.lambda_min <= 0:
            return float("inf")
        return self.lambda_max / self.lambda_min


def lanczos_tridiagonal(alphas: np.ndarray, betas: np.ndarray) -> np.ndarray:
    """The Lanczos tridiagonal ``T_k`` from CG coefficients.

    With CG scalars ``α_0..α_{k-1}`` and ``β_1..β_{k-1}`` (``β`` has one
    fewer entry), the standard identification is

        T[j, j]   = 1/α_j + β_j/α_{j-1}      (β_0/α_{-1} taken as 0)
        T[j, j+1] = T[j+1, j] = sqrt(β_{j+1}) / α_j
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    k = alphas.size
    if k == 0:
        raise ValueError("need at least one CG step")
    if betas.size != max(k - 1, 0):
        raise ValueError(f"expected {k - 1} betas for {k} alphas, got {betas.size}")
    if np.any(alphas == 0):
        raise ValueError("zero step length in CG coefficients")
    t = np.zeros((k, k))
    for j in range(k):
        t[j, j] = 1.0 / alphas[j]
        if j > 0:
            t[j, j] += betas[j - 1] / alphas[j - 1]
            off = np.sqrt(max(betas[j - 1], 0.0)) / alphas[j - 1]
            t[j, j - 1] = t[j - 1, j] = off
    return t


def estimate_spectrum(alphas, betas) -> SpectralEstimate:
    """Ritz values of the preconditioned operator from CG coefficients."""
    t = lanczos_tridiagonal(alphas, betas)
    ritz = np.linalg.eigvalsh(t)
    return SpectralEstimate(
        lambda_min=float(ritz[0]), lambda_max=float(ritz[-1]), ritz_values=ritz
    )


def convergence_rate(residual_norms) -> float:
    """Geometric-mean per-iteration residual reduction factor (< 1 is good).

    Computed over the whole history; returns 1.0 for runs shorter than two
    entries or with a zero initial residual.
    """
    hist = np.asarray(residual_norms, dtype=np.float64)
    if hist.size < 2 or hist[0] <= 0 or hist[-1] <= 0:
        return 1.0
    return float((hist[-1] / hist[0]) ** (1.0 / (hist.size - 1)))
