"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's tables as aligned text so a
terminal diff against the paper is direct.  No third-party formatting
dependency — fixed-width columns sized to content.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Numbers keep their given formatting (pass pre-formatted strings for
    control); all cells are right-aligned except the first column.
    """
    cells = [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    for r in cells:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in cells)) if cells else len(headers[j])
        for j in range(ncols)
    ]

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(row):
            parts.append(cell.ljust(widths[j]) if j == 0 else cell.rjust(widths[j]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)


def format_kv(pairs: dict[str, object], *, title: str | None = None) -> str:
    """Render a key/value block (summary footers under tables)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)} : {v}" for k, v in pairs.items())
    return "\n".join(lines)
