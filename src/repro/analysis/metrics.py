"""Evaluation metrics: the improvement statistics the paper's tables report.

Sign convention follows the paper: positive percentages are improvements
(decreases of iterations or time); "highest degradation" is the most
negative improvement across the matrix set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "pct_decrease",
    "pct_increase",
    "ImprovementSummary",
    "summarize_improvements",
    "best_per_matrix",
]


def pct_decrease(baseline: float, value: float) -> float:
    """Percentage decrease of ``value`` relative to ``baseline``.

    Positive = improvement.  A zero baseline yields 0 by convention.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - value) / baseline


def pct_increase(baseline: float, value: float) -> float:
    """Percentage increase (used for FLOPs and %NNZ metrics)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (value - baseline) / baseline


@dataclass(frozen=True)
class ImprovementSummary:
    """One row of a Table 3/5/6/7-style summary."""

    avg_iterations: float
    avg_time: float
    highest_improvement: float
    highest_degradation: float

    def row(self) -> list[str]:
        """The four formatted summary cells, table-ready."""
        return [
            f"{self.avg_iterations:.2f}",
            f"{self.avg_time:.2f}",
            f"{self.highest_improvement:.2f}",
            f"{self.highest_degradation:.2f}",
        ]


def summarize_improvements(
    base_iters: np.ndarray,
    base_times: np.ndarray,
    new_iters: np.ndarray,
    new_times: np.ndarray,
) -> ImprovementSummary:
    """Aggregate per-matrix results into the paper's four summary columns."""
    base_iters = np.asarray(base_iters, dtype=np.float64)
    base_times = np.asarray(base_times, dtype=np.float64)
    new_iters = np.asarray(new_iters, dtype=np.float64)
    new_times = np.asarray(new_times, dtype=np.float64)
    iter_imps = np.array(
        [pct_decrease(b, v) for b, v in zip(base_iters, new_iters)]
    )
    time_imps = np.array(
        [pct_decrease(b, v) for b, v in zip(base_times, new_times)]
    )
    return ImprovementSummary(
        avg_iterations=float(iter_imps.mean()),
        avg_time=float(time_imps.mean()),
        highest_improvement=float(time_imps.max()),
        highest_degradation=float(time_imps.min()),
    )


def best_per_matrix(times_by_filter: dict[float, np.ndarray]) -> np.ndarray:
    """Per-matrix best (smallest) time across filter values — the paper's
    "Best Filter" row picks the best configuration for each matrix."""
    stacked = np.stack([np.asarray(v, dtype=np.float64) for v in times_by_filter.values()])
    return stacked.min(axis=0)
