"""Histogram binning and ASCII rendering for the figure reproductions.

Figures 3, 5 and 7 of the paper are histograms over the 39-matrix set
(cache misses per nonzero; GFLOP/s per process).  The benchmarks regenerate
them as binned counts plus an ASCII bar chart, with the FSAI and FSAIE-Comm
series side by side.
"""

from __future__ import annotations

import numpy as np

__all__ = ["histogram_series", "format_histogram_pair"]


def histogram_series(
    values: np.ndarray, *, bins: int = 10, range_: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Bin ``values``; returns ``(edges, counts)`` with ``len(edges) = bins+1``."""
    values = np.asarray(values, dtype=np.float64)
    counts, edges = np.histogram(values, bins=bins, range=range_)
    return edges, counts


def format_histogram_pair(
    label_a: str,
    values_a: np.ndarray,
    label_b: str,
    values_b: np.ndarray,
    *,
    bins: int = 10,
    width: int = 30,
    title: str | None = None,
) -> str:
    """Two aligned ASCII histograms over a shared bin range.

    Mirrors the paper's paired blue/orange histograms: same bins for both
    series so the shift between distributions is visible.
    """
    both = np.concatenate([np.asarray(values_a, float), np.asarray(values_b, float)])
    lo, hi = float(both.min()), float(both.max())
    if lo == hi:
        hi = lo + 1.0
    edges, counts_a = histogram_series(values_a, bins=bins, range_=(lo, hi))
    _, counts_b = histogram_series(values_b, bins=bins, range_=(lo, hi))
    peak = max(int(counts_a.max()), int(counts_b.max()), 1)

    lines = [title] if title else []
    lines.append(f"{'bin':>22}  {label_a:<{width}}  {label_b:<{width}}")
    for k in range(bins):
        bar_a = "#" * int(round(width * counts_a[k] / peak))
        bar_b = "#" * int(round(width * counts_b[k] / peak))
        label = f"[{edges[k]:8.3g},{edges[k + 1]:8.3g})"
        lines.append(
            f"{label:>22}  {bar_a:<{width}}  {bar_b:<{width}}"
            f"  ({counts_a[k]:>2d} | {counts_b[k]:>2d})"
        )
    lines.append(
        f"{'mean':>22}  {np.mean(values_a):<{width}.4g}  {np.mean(values_b):<{width}.4g}"
    )
    return "\n".join(lines)
