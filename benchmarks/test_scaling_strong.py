"""Strong scaling — the §5.5.1 regime characterised.

The paper's large-scale runs (up to 32 768 cores) operate at ~16k nonzeros
per CPU, where communication dominates each iteration.  This benchmark
strong-scales one problem across rank counts and verifies the regime change
that motivates communication-aware extension:

* total halo volume grows with the rank count,
* FSAIE-Comm's modeled advantage over FSAI widens (or holds) as ranks grow,
* the communication volume of the Comm preconditioner equals FSAI's at
  every scale.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, pct_decrease
from repro.core import build_fsai, build_fsaie_comm, pcg
from repro.dist import DistMatrix, DistVector, RowPartition, spmd_pipelined_pcg
from repro.matgen import PAPER_RTOL, paper_rhs, poisson3d
from repro.mpisim import CommTracker
from repro.perfmodel import ZEN2, CostModel

RANKS = (2, 4, 8, 16, 32)
THREADS = 8


def test_strong_scaling_regime(benchmark):
    mat = poisson3d(14)
    rows = []
    gains = []
    halos = []
    for ranks in RANKS:
        part = RowPartition.from_matrix(mat, ranks, seed=ranks)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, 9), part)
        model = CostModel(ZEN2, threads_per_process=THREADS)
        times = {}
        for build in (build_fsai, build_fsaie_comm):
            pre = build(mat, part)
            res = pcg(da, b, precond=pre.apply, rtol=PAPER_RTOL)
            times[pre.name] = res.iterations * model.iteration_cost(da, pre).total
            if build is build_fsaie_comm:
                fsai_sched = build_fsai(mat, part).g.schedule
                assert pre.g.schedule == fsai_sched  # comm equality per scale
        halo = da.schedule.total_halo_values()
        gain = pct_decrease(times["FSAI"], times["FSAIE-Comm"])
        halos.append(halo)
        gains.append(gain)
        rows.append([ranks, halo, f"{times['FSAI'] * 1e3:.3f}",
                     f"{times['FSAIE-Comm'] * 1e3:.3f}", f"{gain:+.1f}"])

    print()
    print(
        format_table(
            ["ranks", "halo values", "t FSAI (ms)", "t Comm (ms)", "Δtime %"],
            rows,
            title="Strong scaling — Poisson 14³, Zen 2 model, 8 threads/process",
        )
    )

    # halos grow with rank count
    assert all(b >= a for a, b in zip(halos, halos[1:]))
    # the modeled advantage at the largest scale beats the smallest scale
    assert gains[-1] >= gains[0]
    assert gains[-1] > 0

    # The largest configuration re-runs on the event-driven SPMD engine:
    # the same FSAI-preconditioned solve over real (simulated) message
    # passing with per-edge coalescing must reach the paper tolerance.
    part = RowPartition.from_matrix(mat, RANKS[-1], seed=RANKS[-1])
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, 9), part)
    pre = build_fsai(mat, part)
    tracker = CommTracker()
    x, iters = spmd_pipelined_pcg(
        da, b, rtol=PAPER_RTOL, precond_pair=(pre.g, pre.gt),
        tracker=tracker, engine="events",
    )
    rhs = b.to_global()
    rel = np.linalg.norm(rhs - mat.spmv(x.to_global())) / np.linalg.norm(rhs)
    assert rel <= 10 * PAPER_RTOL
    assert 0 < iters
    assert tracker.total_messages > 0  # the solve really ran over the wire

    pre = build_fsaie_comm(mat, part)
    benchmark(lambda: pre.apply(b))
