"""Cache free-ride benchmark over the method ladder: ``BENCH_cache.json``.

The paper's Figures 3a/5a argue that FSAIE/FSAIE-Comm extension entries are
*nearly free*: their ``x``-operands live in cache lines the baseline FSAI
pattern already touched, so the extra nonzeros buy iteration reductions
without proportional L1 misses — and the effect *grows* with the cache-line
size (64 B Skylake/Zen 2 vs 256 B A64FX).  This suite proves all three
claims on the repo's own simulator, per grid, method and line geometry:

* the attributed cache replay (:func:`repro.cachesim
  .precond_x_misses_per_rank` with a ``ledger=``) classifies **every**
  extension-entry ``x`` access of the ``Gᵀ(Gx)`` stream as free ride vs new
  fill against the baseline pattern, split by local/halo extension;
* a :class:`repro.observe.CacheConformance` report per grid confronts the
  measured fill traffic with the :class:`repro.perfmodel.CostModel`
  ``x``-read memory term and gates the claims — **free-ride majority**,
  **free-ride fraction rises from 64 B to 256 B lines**, **misses-per-nnz
  not worse than FSAI** — as pass/fail records in the document;
* every count, fraction and flag lands in the flat ``summary`` surface
  (``g{grid}.{method}.l{line}.*``) consumed by
  :meth:`repro.observe.RunReport.from_cache_bench`.

Everything here is a deterministic pure function of the matrix, partition
seed and cache geometry — no timings — so ``scripts/check_cache_reuse.py``
and ``scripts/check_bench_regression.py --cache`` gate the summary exactly
against ``benchmarks/baselines/cache_baseline.json``.  ``--quick`` runs the
first grid only, producing a strict key-subset with identical values.

Run::

    PYTHONPATH=src python benchmarks/cache_bench.py           # full ladder
    PYTHONPATH=src python benchmarks/cache_bench.py --quick   # first grid only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cachesim import CacheConfig, precond_x_misses_per_rank  # noqa: E402
from repro.core import (  # noqa: E402
    PrecondOptions,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
)
from repro.core.fsai import fsai_pattern  # noqa: E402
from repro.dist import RowPartition  # noqa: E402
from repro.matgen import poisson2d  # noqa: E402
from repro.observe import CacheConformance, FreeRideLedger  # noqa: E402
from repro.perfmodel import MACHINES, CostModel  # noqa: E402

#: Poisson grids of the ladder (``grid``² rows each).  ``--quick`` keeps the
#: first grid only, so quick summaries are a strict key-subset of the full
#: run with identical values — what the regression gate's subset rule needs.
GRIDS = (32, 64)
QUICK_GRIDS = (32,)
RANKS = 4
PART_SEED = 0
#: The two evaluated line geometries: Skylake/Zen 2 and A64FX.
LINE_SIZES = (64, 256)
#: L1 capacity/associativity are held at the reference machine's while the
#: line size sweeps, so the geometry effect is isolated.
MACHINE = "skylake"

#: Ladder methods: summary key → builder.
BUILDERS = {"fsai": build_fsai, "fsaie": build_fsaie, "comm": build_fsaie_comm}

#: Claim name → summary flag key (``free-ride-rises-with-line-size`` is one
#: flag per method, the others one per method and line geometry).
CLAIM_FLAGS = {
    "free-ride-majority": "free_ride_majority",
    "misses-per-nnz-not-worse": "misses_per_nnz_ok",
    "free-ride-rises-with-line-size": "free_ride_rises",
}


def run_rung(grid: int) -> tuple[CacheConformance, dict]:
    """One grid: attributed replay of every (method, line geometry) cell.

    Returns the conformance report and the method-key → preconditioner-name
    mapping used to spell summary keys.
    """
    machine = MACHINES[MACHINE]
    mat = poisson2d(grid)
    part = RowPartition.from_matrix(mat, RANKS, seed=PART_SEED)
    model = CostModel(machine, threads_per_process=1)
    report = CacheConformance(
        meta={
            "matrix": f"poisson2d:{grid}",
            "ranks": RANKS,
            "machine": MACHINE,
            "line_sizes": list(LINE_SIZES),
        }
    )
    names: dict[str, str] = {}
    for line_bytes in LINE_SIZES:
        options = PrecondOptions(line_bytes=line_bytes)
        base_pattern = fsai_pattern(mat, options.fsai)
        base_g = base_pattern.to_csr()
        base_gt = base_pattern.transpose().to_csr()
        config = CacheConfig(
            machine.l1.size_bytes, line_bytes, machine.l1.associativity
        )
        for key, build in BUILDERS.items():
            pre = build(mat, part, options)
            names[key] = pre.name
            ledger = FreeRideLedger(
                method=pre.name,
                line_bytes=line_bytes,
                base_g=base_g,
                base_gt=base_gt,
                meta={"matrix": f"poisson2d:{grid}", "ranks": RANKS},
            )
            precond_x_misses_per_rank(pre.g, pre.gt, config, ledger=ledger)
            report.add_ledger(
                ledger,
                modeled_x_bytes=float(model.precond_x_read_bytes(pre).sum()),
            )
    return report, names


def _rung_summary(grid: int, report: CacheConformance, names: dict) -> dict:
    """Flatten one rung into ``g{grid}.{method}.l{line}.*`` summary keys."""
    summary: dict = {}
    by_name = {name: key for key, name in names.items()}
    for key, name in names.items():
        for line_bytes in LINE_SIZES:
            e = report.profile(name, line_bytes)
            if e is None:
                continue
            prefix = f"g{grid}.{key}.l{line_bytes}"
            summary[f"{prefix}.nnz"] = e.nnz
            summary[f"{prefix}.misses"] = e.misses_total
            summary[f"{prefix}.misses_per_nnz"] = e.misses_per_nnz
            summary[f"{prefix}.ext_accesses"] = e.ext_accesses
            summary[f"{prefix}.free_rides"] = e.free_rides
            summary[f"{prefix}.free_ride_pct"] = 100.0 * e.free_ride_fraction
            summary[f"{prefix}.free_ride_local_pct"] = (
                100.0 * e.free_ride_fraction_local
            )
            summary[f"{prefix}.free_ride_halo_pct"] = (
                100.0 * e.free_ride_fraction_halo
            )
            summary[f"{prefix}.model_ratio"] = e.model_ratio
    for claim in report.claims():
        key = by_name[claim["method"]]
        flag = CLAIM_FLAGS[claim["claim"]]
        if claim["claim"] == "free-ride-rises-with-line-size":
            summary[f"g{grid}.{key}.{flag}"] = int(claim["ok"])
        else:
            summary[f"g{grid}.{key}.l{claim['line_bytes']}.{flag}"] = int(
                claim["ok"]
            )
    return summary


def run_cache_suite(*, quick: bool = False) -> dict:
    """Run the grid ladder; returns the ``BENCH_cache.json`` document.

    The ``cache`` section holds one versioned ``repro-cache-conformance``
    document per grid (``g{grid}`` keys, claims and verdicts included);
    ``summary`` is the flat exact-gated surface.
    """
    grids = QUICK_GRIDS if quick else GRIDS
    cache: dict = {}
    summary: dict = {}
    for grid in grids:
        report, names = run_rung(grid)
        cache[f"g{grid}"] = report.to_dict()
        summary.update(_rung_summary(grid, report, names))
    return {
        "suite": "cache",
        "config": {
            "grids": list(grids),
            "ranks": RANKS,
            "part_seed": PART_SEED,
            "line_sizes": list(LINE_SIZES),
            "machine": MACHINE,
            "methods": list(BUILDERS),
        },
        "cache": cache,
        "summary": summary,
    }


def write_cache_suite(result: dict, path, *, report: bool = True) -> Path:
    """Write the suite JSON (and its ``.report.json`` companion)."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if report:
        from repro.observe import RunReport

        RunReport.from_cache_bench(result, label=path.stem).save(
            path.with_suffix(".report.json")
        )
    return path


def format_summary(result: dict) -> str:
    cfg = result["config"]
    lines = [
        "cache free-ride ladder (poisson2d, %d ranks, %s L1 geometry)"
        % (cfg["ranks"], cfg["machine"]),
    ]
    header = (
        f"{'grid':>6} {'method':<12} {'line':>5} {'misses':>8} "
        f"{'miss/nnz':>9} {'ext':>9} {'free %':>7} {'claims':>7}"
    )
    lines += ["", header, "-" * len(header)]
    total_failed = 0
    for grid_key in sorted(result["cache"]):
        doc = result["cache"][grid_key]
        claims = doc.get("claims", [])
        failed = sum(1 for c in claims if not c["ok"])
        total_failed += failed
        by_method: dict = {}
        for c in claims:
            cell = by_method.setdefault((c["method"], c["line_bytes"]), [0, 0])
            cell[0] += 1
            cell[1] += int(c["ok"])
        for e in doc.get("entries", []):
            n, ok = by_method.get((e["method"], e["line_bytes"]), (0, 0))
            lines.append(
                f"{grid_key:>6} {e['method']:<12} {e['line_bytes']:>4}B "
                f"{e['misses_total']:>8} {e['misses_per_nnz']:>9.4f} "
                f"{e['ext_accesses']:>9} "
                f"{100.0 * e['free_ride_fraction']:>6.1f}% "
                f"{ok:>3}/{n}"
            )
    lines.append("")
    lines.append(f"failed claims: {total_failed}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_cache.json")
    parser.add_argument("--quick", action="store_true",
                        help="first grid only (exact key-subset of the full run)")
    args = parser.parse_args(argv)
    result = run_cache_suite(quick=args.quick)
    print(format_summary(result))
    path = write_cache_suite(result, args.output)
    print(f"\nwritten: {path}")
    failed = sum(
        1
        for doc in result["cache"].values()
        for c in doc.get("claims", [])
        if not c["ok"]
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
