"""Figure 3 — cache-miss and GFLOP/s histograms on Skylake.

(a) L1 data-cache misses on accesses to the multiplying vector ``x`` in
``Gᵀ(Gx)``, normalised to nnz(G) — FSAI vs fully-extended (unfiltered)
FSAIE-Comm.  The extension must *reduce* misses per nonzero: the added
entries live in already-fetched lines.

(b) per-process GFLOP/s of the same operation — the extension must not hurt
the FLOP rate (paper: +6% on average).
"""

from __future__ import annotations

import numpy as np

from harness import DEFAULT_THREADS, cases, precond_misses, preconditioner
from repro.analysis import format_histogram_pair, pct_increase
from repro.perfmodel import SKYLAKE, CostModel

MACHINE = SKYLAKE


def _series():
    misses_fsai, misses_comm, gflops_fsai, gflops_comm = [], [], [], []
    model = CostModel(MACHINE, threads_per_process=DEFAULT_THREADS)
    for case in cases():
        name = case.name
        p_fsai = preconditioner(name, method="fsai")
        p_comm = preconditioner(name, method="comm", filter_value=0.0, dynamic=False)
        m_fsai = precond_misses(p_fsai, MACHINE, DEFAULT_THREADS)
        m_comm = precond_misses(p_comm, MACHINE, DEFAULT_THREADS)
        misses_fsai.append(m_fsai.mean() / p_fsai.g.nnz)
        misses_comm.append(m_comm.mean() / p_comm.g.nnz)
        gflops_fsai.append(
            model.precond_gflops_per_rank(p_fsai, precond_misses=m_fsai).mean()
        )
        gflops_comm.append(
            model.precond_gflops_per_rank(p_comm, precond_misses=m_comm).mean()
        )
    return (
        np.array(misses_fsai),
        np.array(misses_comm),
        np.array(gflops_fsai),
        np.array(gflops_comm),
    )


def test_fig3_cache_misses_and_gflops_skylake(benchmark):
    mf, mc, gf, gc = _series()

    print()
    print(
        format_histogram_pair(
            "FSAI", mf, "FSAIE-Comm (unfiltered)", mc, bins=8,
            title="Figure 3a — L1 DCM on x per nnz(G), GᵀGx, Skylake",
        )
    )
    print()
    print(
        format_histogram_pair(
            "FSAI", gf, "FSAIE-Comm (unfiltered)", gc, bins=8,
            title="Figure 3b — GFLOP/s per process, GᵀGx, Skylake",
        )
    )
    flops_gain = pct_increase(gf.mean(), gc.mean())
    print(f"\nmiss/nnz: FSAI {mf.mean():.4f} -> Comm {mc.mean():.4f}; "
          f"GFLOP/s change {flops_gain:+.1f}% (paper: +6%)")

    # Figure 3a's claim: extensions reduce misses per nonzero on average
    assert mc.mean() < mf.mean()
    # Figure 3b's claim: the extension does not hurt the FLOP rate
    assert gc.mean() >= 0.95 * gf.mean()

    from repro.cachesim import precond_x_misses_per_rank

    pre = preconditioner("consph", method="comm", filter_value=0.0, dynamic=False)
    l1 = MACHINE.l1.scaled(DEFAULT_THREADS)
    benchmark(lambda: precond_x_misses_per_rank(pre.g, pre.gt, l1))
