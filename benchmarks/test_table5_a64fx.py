"""Table 5 — FSAIE-Comm dynamic-filter sweep on A64FX (256 B cache lines).

The A64FX's 4× larger cache lines admit 4× wider extension blocks, so both
%NNZ and the iteration gains exceed the Skylake ones (the paper's §5.4).
"""

from __future__ import annotations

from harness import preconditioner, problem
from repro.perfmodel import A64FX
from sweep_common import dynamic_sweep_table


def test_table5_a64fx_sweep(benchmark):
    summaries = dynamic_sweep_table(
        A64FX, title="Table 5 — FSAIE-Comm, dynamic Filter, A64FX"
    )

    # paper shape 1: best-filter improvements are positive
    assert summaries["best"].avg_iterations > 0
    assert summaries["best"].avg_time > 0
    # paper shape 2: weak filters keep more entries and gain more iterations
    assert summaries[0.01].avg_iterations >= summaries[0.2].avg_iterations - 1.0

    # paper shape 3 (§5.4): larger cache lines extend more than Skylake's
    pct_256 = []
    pct_64 = []
    for name in ("thermal2", "ecology2", "af_shell7", "hood"):
        pct_256.append(
            preconditioner(name, method="comm", line_bytes=256, filter_value=0.01).nnz_increase_percent
        )
        pct_64.append(
            preconditioner(name, method="comm", line_bytes=64, filter_value=0.01).nnz_increase_percent
        )
    assert sum(pct_256) > sum(pct_64)

    prob = problem("thermal2")
    pre = preconditioner("thermal2", method="comm", line_bytes=256, filter_value=0.01)
    benchmark(lambda: pre.apply(prob.b))
