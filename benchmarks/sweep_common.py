"""Shared logic for the per-machine dynamic-filter sweep tables (5, 6, 7)."""

from __future__ import annotations

import numpy as np

from harness import FILTER_VALUES, cases, modeled_time, solve
from repro.analysis import format_table, summarize_improvements
from repro.perfmodel import MachineSpec


def dynamic_sweep_table(machine: MachineSpec, *, large: bool = False, title: str):
    """Print a Table 5/6/7-style block; returns {filter: summary-list}."""
    names = [c.name for c in cases(large=large)]
    line = machine.cache_line_bytes
    base_iters = np.array(
        [solve(n, large=large, method="fsai", line_bytes=line).iterations for n in names]
    )
    base_times = np.array(
        [modeled_time(n, machine, large=large, method="fsai") for n in names]
    )
    blocks = {}
    for f in FILTER_VALUES:
        iters = np.array(
            [
                solve(n, large=large, method="comm", line_bytes=line, filter_value=f).iterations
                for n in names
            ]
        )
        times = np.array(
            [
                modeled_time(n, machine, large=large, method="comm", filter_value=f)
                for n in names
            ]
        )
        blocks[f] = (iters, times)
    stacked_t = np.stack([blocks[f][1] for f in FILTER_VALUES])
    stacked_i = np.stack([blocks[f][0] for f in FILTER_VALUES])
    cols = np.arange(len(names))
    best = stacked_t.argmin(axis=0)
    blocks["best"] = (stacked_i[best, cols], stacked_t[best, cols])

    rows = []
    summaries = {}
    for key in list(FILTER_VALUES) + ["best"]:
        iters, times = blocks[key]
        s = summarize_improvements(base_iters, base_times, iters, times)
        rows.append([str(key)] + s.row())
        summaries[key] = s
    print()
    print(
        format_table(
            ["Filter", "Avg iter %", "Avg time %", "Highest imp %", "Highest deg %"],
            rows,
            title=title,
        )
    )
    return summaries


def time_decrease_series(
    machine: MachineSpec, fixed_filter: float, *, large: bool = False
):
    """Figure 2/4/6/8 data: per-matrix % time decrease of FSAIE-Comm vs FSAI
    for the per-matrix best Filter and for one fixed Filter value."""
    from repro.analysis import pct_decrease

    names = [c.name for c in cases(large=large)]
    best, fixed = [], []
    for n in names:
        t_fsai = modeled_time(n, machine, large=large, method="fsai")
        sweep = [
            modeled_time(n, machine, large=large, method="comm", filter_value=f)
            for f in FILTER_VALUES
        ]
        best.append(pct_decrease(t_fsai, min(sweep)))
        fixed.append(
            pct_decrease(
                t_fsai,
                modeled_time(n, machine, large=large, method="comm", filter_value=fixed_filter),
            )
        )
    return names, np.array(best), np.array(fixed)


def print_series(title: str, names, best, fixed, fixed_label: str):
    from repro.analysis import format_table

    rows = [
        [n, f"{b:+.2f}", f"{f:+.2f}"] for n, b, f in zip(names, best, fixed)
    ]
    print()
    print(
        format_table(
            ["Matrix", "best Filter Δt%", f"Filter {fixed_label} Δt%"],
            rows,
            title=title,
        )
    )
