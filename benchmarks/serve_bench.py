"""Solve-farm serving benchmark: ``BENCH_serve.json``.

The serving layer's claim is the paper's setup-reuse economics at traffic
scale: once the structure-keyed artifacts (FSAI factors, halo schedules,
SpMV plans, workspaces) are cached, a solve request costs an *apply*, not
a *setup*.  This suite proves it per concurrency rung:

* **admission** — a deterministic, synchronous exercise of the
  :class:`~repro.serve.tenancy.AdmissionController`: a fixed request
  pattern over two tenants plus one unknown tenant produces exact
  admitted/shed counts per shed reason (``admission.*`` keys, gated
  exactly);
* **cold** — a farm with caching disabled (``cache_max_bytes=0``) serves
  ``n`` concurrent requests over two tenants and four same-structure value
  variants; every request pays the full setup (``r{n}.cold.*`` keys);
* **warm** — a fresh farm is pre-warmed with one request per variant, then
  serves the same ``n`` requests from cache: structure-tier hits are exact
  (``n``), the §4 invariance audit runs on every warm-structure build and
  must be clean, and the timed phase yields the throughput that the
  ``r{n}.warm_cold_speedup`` floor (≥ {floor}x, checked by
  ``check_bench_regression.py --serve`` on every run) gates against the
  cold phase.

Counts, flags, hit rates and shed fractions are deterministic — admission
is lock-serialised, per-key build locks make cache misses exact, and the
thread-local kernel scratch keeps concurrent solves bitwise equal to
sequential ones — so they gate exactly against
``benchmarks/baselines/serve_baseline.json``.  Latency percentiles and
throughputs are machine-dependent (``--check-timings`` only); wall seconds
are never gated.  ``--quick`` runs the first rung only, producing a strict
key-subset with identical gateable values.

Run::

    PYTHONPATH=src python benchmarks/serve_bench.py           # full ladder
    PYTHONPATH=src python benchmarks/serve_bench.py --quick   # first rung only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.matgen import poisson2d  # noqa: E402
from repro.serve import (  # noqa: E402
    AdmissionController,
    FarmConfig,
    ServeReport,
    SolveFarm,
    SolveRequest,
    TenantPolicy,
)
from repro.sparse.csr import CSRMatrix  # noqa: E402

#: Concurrency rungs (requests per phase).  ``--quick`` keeps the first
#: rung only, so quick summaries are a strict key-subset of the full run.
RUNGS = (16, 64)
QUICK_RUNGS = (16,)
#: Poisson grid of the served system (``GRID``² rows) and cluster shape.
GRID = 32
RANKS = 4
METHOD = "comm"
WORKERS = 8
#: The two tenants requests alternate between.
TENANTS = ("alpha", "beta")
#: Same-structure value variants (diagonal shifts): variant 0 is the base
#: system; the others exercise the same-structure/different-values reuse
#: path, including the invariance audit on each first encounter.
VARIANTS = 4
DIAG_SHIFT = 0.05

#: Deterministic admission-phase shape: queue bound, per-tenant budgets,
#: and the request pattern (8 alpha, 4 beta, 1 unknown).
ADMISSION_QUEUE = 8
ADMISSION_BUDGETS = {"alpha": 6, "beta": 4}
ADMISSION_PATTERN = ("alpha",) * 8 + ("beta",) * 4 + ("mallory",)

#: The floor the regression gate enforces on every run: serving from the
#: warm artifact cache must be at least this many times faster than paying
#: the setup per request.
SPEEDUP_FLOOR = 3.0


def make_variants(grid: int, nvariants: int) -> list:
    """The base Poisson system plus ``nvariants - 1`` diagonal-shifted
    copies: identical structure, different values, all SPD."""
    import numpy as np

    base = poisson2d(grid)
    mats = [base]
    indptr, indices = base.indptr, base.indices
    diag_pos = np.empty(base.shape[0], dtype=np.int64)
    for row in range(base.shape[0]):
        cols = indices[indptr[row]:indptr[row + 1]]
        diag_pos[row] = indptr[row] + int(np.searchsorted(cols, row))
    for v in range(1, nvariants):
        data = base.data.copy()
        data[diag_pos] += DIAG_SHIFT * v
        mats.append(
            CSRMatrix(base.shape, indptr, indices, data, check=False)
        )
    return mats


def run_admission_phase() -> dict:
    """Deterministic admission counts: the fixed pattern against fixed
    budgets, no solver involved.  Returns the flat ``admission.*`` keys."""
    controller = AdmissionController(
        [TenantPolicy(t, max_in_flight=b) for t, b in ADMISSION_BUDGETS.items()],
        queue_limit=ADMISSION_QUEUE,
    )
    verdicts = [controller.admit(t) for t in ADMISSION_PATTERN]
    reasons: dict[str, int] = {}
    for v in verdicts:
        if not v.admitted:
            reasons[v.reason] = reasons.get(v.reason, 0) + 1
    for v in verdicts:
        if v.admitted:
            controller.release(v.tenant)
    stats = controller.to_dict()
    return {
        "admission.admitted": stats["admitted"],
        "admission.shed": stats["shed"],
        "admission.shed_fraction": stats["shed_fraction"],
        "admission.shed_queue_full": reasons.get("queue-full", 0),
        "admission.shed_tenant_budget": reasons.get("tenant-budget", 0),
        "admission.shed_unknown": reasons.get("unknown-tenant", 0),
    }


def _requests(n: int, mats: list) -> list:
    """The rung's request list: tenants alternate, value variants cycle."""
    return [
        SolveRequest(
            tenant=TENANTS[i % len(TENANTS)],
            mat=mats[i % len(mats)],
            tag=f"req{i}",
        )
        for i in range(n)
    ]


def _farm_config(n: int, *, cache_max_bytes) -> FarmConfig:
    return FarmConfig(
        ranks=RANKS,
        method=METHOD,
        workers=WORKERS,
        queue_limit=2 * n + len(TENANTS) * VARIANTS,
        cache_max_bytes=cache_max_bytes,
    )


def _tenants(n: int) -> list:
    return [TenantPolicy(t, max_in_flight=2 * n) for t in TENANTS]


def run_rung(n: int, mats: list) -> dict:
    """One concurrency rung: cold phase, then pre-warmed warm phase.

    Returns ``{"cold": ServeReport dict, "warm": ServeReport dict,
    "summary": flat keys}``.
    """
    requests = _requests(n, mats)
    prefix = f"r{n}"
    summary: dict = {}

    with SolveFarm(_tenants(n), _farm_config(n, cache_max_bytes=0)) as cold_farm:
        t0 = time.perf_counter()
        cold_outcomes = cold_farm.serve(requests)
        cold_wall = time.perf_counter() - t0
        cold_doc = ServeReport.from_farm(
            cold_farm, label=f"{prefix}-cold", phase="cold", requests=n
        ).to_dict()
        cold_report = cold_farm.report()

    summary[f"{prefix}.cold.wall_s"] = cold_wall
    summary[f"{prefix}.cold.throughput_rps"] = n / cold_wall
    summary[f"{prefix}.cold.solves"] = cold_report["counters"]["solves"]
    summary[f"{prefix}.cold.structure_builds"] = cold_report["counters"][
        "structure_builds"
    ]
    summary[f"{prefix}.cold.cache_hits"] = (
        cold_report["caches"]["structure"]["hits"]
        + cold_report["caches"]["system"]["hits"]
    )
    summary[f"{prefix}.cold.cache_misses"] = cold_report["caches"]["structure"][
        "misses"
    ]
    summary[f"{prefix}.cold.shed"] = cold_report["admission"]["shed"]
    summary[f"{prefix}.cold.converged"] = int(
        all(o.ok for o in cold_outcomes)
    )

    with SolveFarm(_tenants(n), _farm_config(n, cache_max_bytes=None)) as warm_farm:
        # pre-warm: one request per value variant, served sequentially so
        # the timed phase below hits the cache on every request
        for v in range(len(mats)):
            warm_farm.serve([_requests(len(mats), mats)[v]])
        t0 = time.perf_counter()
        warm_outcomes = warm_farm.serve(requests)
        warm_wall = time.perf_counter() - t0
        warm_doc = ServeReport.from_farm(
            warm_farm, label=f"{prefix}-warm", phase="warm", requests=n
        ).to_dict()
        warm_report = warm_farm.report()

    caches = warm_report["caches"]
    counters = warm_report["counters"]
    admission = warm_report["admission"]
    summary[f"{prefix}.warm.wall_s"] = warm_wall
    summary[f"{prefix}.warm.throughput_rps"] = n / warm_wall
    summary[f"{prefix}.warm.solves"] = counters["solves"]
    summary[f"{prefix}.warm.structure_hits"] = caches["structure"]["hits"]
    summary[f"{prefix}.warm.structure_misses"] = caches["structure"]["misses"]
    summary[f"{prefix}.warm.system_hits"] = caches["system"]["hits"]
    summary[f"{prefix}.warm.system_misses"] = caches["system"]["misses"]
    summary[f"{prefix}.warm.hit_rate"] = caches["structure"]["hit_rate"]
    summary[f"{prefix}.warm.audits"] = counters["audits"]
    summary[f"{prefix}.warm.audit_violations"] = counters["audit_violations"]
    summary[f"{prefix}.warm.schedule_invariant"] = int(
        counters["audits"] > 0 and counters["audit_violations"] == 0
    )
    summary[f"{prefix}.warm.iterations_total"] = sum(
        o.iterations for o in warm_outcomes
    )
    summary[f"{prefix}.warm.converged"] = int(all(o.ok for o in warm_outcomes))
    summary[f"{prefix}.warm.shed"] = admission["shed"]
    summary[f"{prefix}.warm.shed_fraction"] = admission["shed_fraction"]
    for tenant, tstats in admission["tenants"].items():
        lat = tstats["latency"]
        summary[f"{prefix}.{tenant}.latency.p50_ms"] = 1e3 * lat["p50_s"]
        summary[f"{prefix}.{tenant}.latency.p95_ms"] = 1e3 * lat["p95_s"]
        summary[f"{prefix}.{tenant}.latency.p99_ms"] = 1e3 * lat["p99_s"]

    summary[f"{prefix}.warm_cold_speedup"] = (
        summary[f"{prefix}.warm.throughput_rps"]
        / summary[f"{prefix}.cold.throughput_rps"]
    )
    return {"cold": cold_doc, "warm": warm_doc, "summary": summary}


def run_serve_suite(*, quick: bool = False) -> dict:
    """Run the ladder; returns the ``BENCH_serve.json`` document.

    The ``serve`` section holds the per-rung cold/warm
    ``repro-serve-report`` documents; ``summary`` is the flat surface
    consumed by :meth:`repro.observe.RunReport.from_serve_bench` and gated
    by ``check_bench_regression.py --serve``.
    """
    rungs = QUICK_RUNGS if quick else RUNGS
    mats = make_variants(GRID, VARIANTS)
    serve: dict = {}
    summary = run_admission_phase()
    for n in rungs:
        rung = run_rung(n, mats)
        serve[f"r{n}"] = {"cold": rung["cold"], "warm": rung["warm"]}
        summary.update(rung["summary"])
    return {
        "suite": "serve",
        "config": {
            "rungs": list(rungs),
            "grid": GRID,
            "ranks": RANKS,
            "method": METHOD,
            "workers": WORKERS,
            "tenants": list(TENANTS),
            "variants": VARIANTS,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        "serve": serve,
        "summary": summary,
    }


def write_serve_suite(result: dict, path, *, report: bool = True) -> Path:
    """Write the suite JSON (and its ``.report.json`` companion)."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if report:
        from repro.observe import RunReport

        RunReport.from_serve_bench(result, label=path.stem).save(
            path.with_suffix(".report.json")
        )
    return path


def failed_claims(result: dict) -> list[str]:
    """The suite's self-checks: speedup floors, clean audits, convergence,
    exact warm hit counts.  Empty when everything holds."""
    problems = []
    s = result["summary"]
    for n in result["config"]["rungs"]:
        speedup = s[f"r{n}.warm_cold_speedup"]
        if speedup < SPEEDUP_FLOOR:
            problems.append(
                f"r{n}: warm/cold speedup {speedup:.2f}x below the "
                f"{SPEEDUP_FLOOR}x floor"
            )
        if not s[f"r{n}.warm.schedule_invariant"]:
            problems.append(f"r{n}: §4 invariance audit not clean on served solves")
        if not (s[f"r{n}.warm.converged"] and s[f"r{n}.cold.converged"]):
            problems.append(f"r{n}: not all served solves converged")
        if s[f"r{n}.warm.structure_misses"] != 1:
            problems.append(
                f"r{n}: expected exactly 1 warm structure miss (the pre-warm "
                f"build), got {s[f'r{n}.warm.structure_misses']}"
            )
    return problems


def format_summary(result: dict) -> str:
    cfg = result["config"]
    s = result["summary"]
    lines = [
        "solve-farm serving ladder (poisson2d:%d, %d ranks, %s, %d workers, "
        "%d tenants)"
        % (cfg["grid"], cfg["ranks"], cfg["method"], cfg["workers"],
           len(cfg["tenants"])),
        "",
        f"admission: {s['admission.admitted']} admitted, "
        f"{s['admission.shed']} shed "
        f"(queue {s['admission.shed_queue_full']}, "
        f"budget {s['admission.shed_tenant_budget']}, "
        f"unknown {s['admission.shed_unknown']}; "
        f"fraction {s['admission.shed_fraction']:.3f})",
        "",
    ]
    header = (
        f"{'rung':>5} {'cold rps':>9} {'warm rps':>9} {'speedup':>8} "
        f"{'hit rate':>8} {'audits':>6} {'p95 ms':>8}"
    )
    lines += [header, "-" * len(header)]
    for n in cfg["rungs"]:
        p95 = max(
            s.get(f"r{n}.{t}.latency.p95_ms", 0.0) for t in cfg["tenants"]
        )
        lines.append(
            f"{n:>5} {s[f'r{n}.cold.throughput_rps']:>9.1f} "
            f"{s[f'r{n}.warm.throughput_rps']:>9.1f} "
            f"{s[f'r{n}.warm_cold_speedup']:>7.1f}x "
            f"{s[f'r{n}.warm.hit_rate']:>8.3f} "
            f"{s[f'r{n}.warm.audits']:>4}/{s[f'r{n}.warm.audit_violations']} "
            f"{p95:>8.2f}"
        )
    problems = failed_claims(result)
    lines.append("")
    lines.append(f"failed claims: {len(problems)}")
    lines.extend(f"  {p}" for p in problems)
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument("--quick", action="store_true",
                        help="first rung only (exact key-subset of the full run)")
    args = parser.parse_args(argv)
    result = run_serve_suite(quick=args.quick)
    print(format_summary(result))
    path = write_serve_suite(result, args.output)
    print(f"\nwritten: {path}")
    return 1 if failed_claims(result) else 0


if __name__ == "__main__":
    raise SystemExit(main())
