"""Figure 6 — per-matrix time decrease series on Zen 2 (best & Filter 0.05)."""

from __future__ import annotations

import numpy as np

from harness import preconditioner, problem
from repro.perfmodel import ZEN2
from sweep_common import print_series, time_decrease_series


def test_fig6_time_decrease_series_zen2(benchmark):
    names, best, fixed = time_decrease_series(ZEN2, 0.05)
    print_series("Figure 6 — Zen 2 time decrease (FSAIE-Comm vs FSAI)", names, best, fixed, "0.05")
    print(f"\nmean(best)={best.mean():+.2f}%  mean(0.05)={fixed.mean():+.2f}%")

    assert np.all(best >= fixed - 1e-9)
    assert best.mean() > 0
    assert np.mean(best > 0) >= 0.5
    if len(names) >= 10:
        assert np.mean(best > 0) > 0.5

    prob = problem("cfd2")
    pre = preconditioner("cfd2", method="comm", filter_value=0.05)
    benchmark(lambda: pre.apply(prob.b))
