"""Figure 7 — GFLOP/s per-process histogram of GᵀGx on Zen 2.

FSAI vs unfiltered FSAIE-Comm; the paper reports ~19% average FLOP/s
improvement on this architecture.
"""

from __future__ import annotations

import numpy as np

from harness import DEFAULT_THREADS, cases, precond_misses, preconditioner, problem
from repro.analysis import format_histogram_pair, pct_increase
from repro.perfmodel import ZEN2, CostModel

MACHINE = ZEN2


def test_fig7_gflops_histogram_zen2(benchmark):
    model = CostModel(MACHINE, threads_per_process=DEFAULT_THREADS)
    gf, gc = [], []
    for case in cases():
        name = case.name
        p_fsai = preconditioner(name, method="fsai")
        p_comm = preconditioner(name, method="comm", filter_value=0.0, dynamic=False)
        gf.append(
            model.precond_gflops_per_rank(
                p_fsai, precond_misses=precond_misses(p_fsai, MACHINE, DEFAULT_THREADS)
            ).mean()
        )
        gc.append(
            model.precond_gflops_per_rank(
                p_comm, precond_misses=precond_misses(p_comm, MACHINE, DEFAULT_THREADS)
            ).mean()
        )
    gf, gc = np.array(gf), np.array(gc)

    print()
    print(
        format_histogram_pair(
            "FSAI", gf, "FSAIE-Comm (unfiltered)", gc, bins=8,
            title="Figure 7 — GFLOP/s per process, GᵀGx, Zen 2",
        )
    )
    print(f"\nGFLOP/s change {pct_increase(gf.mean(), gc.mean()):+.1f}% (paper: +19%)")

    # the extension must not reduce the preconditioning FLOP rate
    assert gc.mean() >= 0.95 * gf.mean()

    prob = problem("shipsec5")
    pre = preconditioner("shipsec5", method="comm", filter_value=0.0, dynamic=False)
    benchmark(lambda: pre.apply(prob.b))
