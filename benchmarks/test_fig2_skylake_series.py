"""Figure 2 — per-matrix time decrease of FSAIE-Comm vs FSAI on Skylake.

Two series, as in the paper's bar chart: the per-matrix best Filter and the
fixed Filter 0.01 (both dynamic).  "Most of the matrices show significant
improvements and only for one the performance is slightly degraded."
"""

from __future__ import annotations

import numpy as np

from harness import preconditioner, problem
from repro.perfmodel import SKYLAKE
from sweep_common import print_series, time_decrease_series


def test_fig2_time_decrease_series_skylake(benchmark):
    names, best, fixed = time_decrease_series(SKYLAKE, 0.01)
    print_series("Figure 2 — Skylake time decrease (FSAIE-Comm vs FSAI)", names, best, fixed, "0.01")
    print(f"\nmean(best)={best.mean():+.2f}%  mean(0.01)={fixed.mean():+.2f}%")

    # best Filter never loses to the fixed filter, per construction per matrix
    assert np.all(best >= fixed - 1e-9)
    # Figure 2's shape: clear average improvement, few (small) degradations
    assert best.mean() > 0
    assert np.mean(best > 0) >= 0.5  # most matrices improve or tie
    if len(names) >= 10:  # strict majority only meaningful on the full set
        assert np.mean(best > 0) > 0.5
    assert best.min() > -10.0  # no catastrophic loss

    prob = problem("PFlow_742")
    pre = preconditioner("PFlow_742", method="comm", filter_value=0.01)
    benchmark(lambda: pre.apply(prob.b))
