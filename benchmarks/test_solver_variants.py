"""Ablation — solver variants: standard PCG vs pipelined PCG with FSAIE-Comm.

The paper attacks per-iteration *pattern* costs; communication-hiding CG
variants attack the *reduction* costs of the same latency-dominated regime.
This ablation shows the two compose: pipelined PCG needs one allreduce phase
per iteration instead of three (measured on the tracker), takes essentially
the same iterations, and its modeled advantage grows with the rank count.
"""

from __future__ import annotations

from harness import DEFAULT_THREADS, preconditioner, problem, solve
from repro.analysis import format_table
from repro.core import pcg, pipelined_pcg
from repro.matgen import PAPER_RTOL
from repro.mpisim import CommTracker
from repro.perfmodel import SKYLAKE, CostModel

CASES = ["thermal2", "af_shell7", "cfd2"]


def test_pipelined_composes_with_fsaie_comm(benchmark):
    rows = []
    for name in CASES:
        prob = problem(name)
        pre = preconditioner(name, method="comm", filter_value=0.01)
        t_std, t_pipe = CommTracker(), CommTracker()
        std = pcg(prob.da, prob.b, precond=pre.apply, rtol=PAPER_RTOL, tracker=t_std)
        pipe = pipelined_pcg(
            prob.da, prob.b, precond=pre.apply, rtol=PAPER_RTOL, tracker=t_pipe
        )
        assert pipe.converged
        assert abs(pipe.iterations - std.iterations) <= max(2, std.iterations // 20)

        model = CostModel(SKYLAKE, threads_per_process=DEFAULT_THREADS)
        cost_std = model.iteration_cost(prob.da, pre, reduction_phases=3)
        cost_pipe = model.iteration_cost(prob.da, pre, reduction_phases=1)
        ar_std = t_std.collective_calls["allreduce"] / max(std.iterations, 1)
        ar_pipe = t_pipe.collective_calls["allreduce"] / max(pipe.iterations, 1)
        rows.append(
            [
                name,
                std.iterations,
                pipe.iterations,
                f"{ar_std:.1f}",
                f"{ar_pipe:.1f}",
                f"{cost_std.reductions * 1e6:.2f}",
                f"{cost_pipe.reductions * 1e6:.2f}",
            ]
        )
        # the tracker confirms fewer reduction phases per iteration
        assert ar_pipe <= ar_std
        # and the model prices that in
        assert cost_pipe.reductions < cost_std.reductions

    print()
    print(
        format_table(
            ["Matrix", "it PCG", "it pipelined", "allreduce/it PCG",
             "allreduce/it pipe", "red. µs (model, PCG)", "red. µs (pipe)"],
            rows,
            title="Ablation — pipelined PCG × FSAIE-Comm (Skylake model)",
        )
    )

    prob = problem(CASES[0])
    pre = preconditioner(CASES[0], method="comm", filter_value=0.01)
    benchmark(
        lambda: pipelined_pcg(prob.da, prob.b, precond=pre.apply, rtol=1e-2)
    )
