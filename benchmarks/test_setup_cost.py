"""Preconditioner setup cost — real wall-clock of this implementation.

The paper evaluates solve time only; setup cost is the standard objection to
richer preconditioners.  This benchmark measures actual construction time of
each method on a fixed matrix (these are genuine wall-clock numbers of this
Python implementation, unlike the modeled solve times):

* FSAI        — one batched local solve per pattern-size group,
* FSAIE-Comm  — extension + two factor computations (Alg. 2 steps 4 and 5),
* FSPAI       — per-row adaptive growth, the §6 "computationally costlier"
  comparator,
* and the ExtensionWorkspace amortisation: re-filtering at a new Filter
  value must be much cheaper than building from scratch.
"""

from __future__ import annotations

import pytest

from harness import problem
from repro.core import (
    ExtensionMode,
    ExtensionWorkspace,
    FilterSpec,
    FSPAIOptions,
    build_fsai,
    build_fsaie_comm,
    fspai_factor,
)

CASE = "af_shell7"


@pytest.fixture(scope="module")
def prob():
    return problem(CASE)


def test_setup_fsai(benchmark, prob):
    result = benchmark(lambda: build_fsai(prob.mat, prob.part))
    assert result.nnz > 0


def test_setup_fsaie_comm(benchmark, prob):
    result = benchmark(lambda: build_fsaie_comm(prob.mat, prob.part))
    assert result.nnz > 0


def test_setup_fspai(benchmark, prob):
    result = benchmark(
        lambda: fspai_factor(prob.mat, FSPAIOptions(max_steps=3, per_step=2))
    )
    assert result.nnz > 0


def test_refilter_via_workspace(benchmark, prob):
    """Sweeping a new Filter value through a prepared workspace."""
    ws = ExtensionWorkspace("FSAIE-Comm", prob.mat, prob.part, ExtensionMode.COMM)
    result = benchmark(lambda: ws.finalize(FilterSpec(0.05, dynamic=True)))
    assert result.nnz > 0
