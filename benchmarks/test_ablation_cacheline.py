"""Ablation — cache-line size sweep.

The single hardware parameter behind the whole method (§5.1): wider lines
admit wider free extension blocks.  Sweep 32–512 B on a fixed matrix set and
verify %NNZ and iteration gains grow monotonically (up to filter effects)
with the line size — this is the mechanism behind A64FX (256 B) beating
Skylake/Zen 2 (64 B) in Tables 5 vs 3/6.
"""

from __future__ import annotations

import numpy as np

from harness import preconditioner, problem, solve
from repro.analysis import format_table, pct_decrease

LINES = (32, 64, 128, 256, 512)
CASES = ["thermal2", "ecology2", "af_shell7", "msdoor", "cfd2", "olafu"]


def test_ablation_cache_line_size(benchmark):
    base_iters = {n: solve(n, method="fsai").iterations for n in CASES}
    rows = []
    avg_pct = {}
    avg_iter_dec = {}
    for line in LINES:
        pcts, iter_decs = [], []
        for name in CASES:
            pre = preconditioner(name, method="comm", line_bytes=line, filter_value=0.01)
            res = solve(name, method="comm", line_bytes=line, filter_value=0.01)
            pcts.append(pre.nnz_increase_percent)
            iter_decs.append(pct_decrease(base_iters[name], res.iterations))
        avg_pct[line] = float(np.mean(pcts))
        avg_iter_dec[line] = float(np.mean(iter_decs))
        rows.append([line, f"{avg_pct[line]:.1f}", f"{avg_iter_dec[line]:.2f}"])

    print()
    print(
        format_table(
            ["line bytes", "avg %NNZ added", "avg iter decrease %"],
            rows,
            title="Ablation — cache-line size (FSAIE-Comm, dynamic Filter 0.01)",
        )
    )

    # 8-byte lines hold one double → no extension at all is possible; 32 B
    # must already extend, and 512 B must extend more than 64 B
    assert avg_pct[32] > 0
    assert avg_pct[512] > avg_pct[64] > avg_pct[32]
    # iteration gains grow (weakly) with line size
    assert avg_iter_dec[256] >= avg_iter_dec[32] - 0.5
    assert avg_iter_dec[512] > 0

    prob = problem("thermal2")
    pre = preconditioner("thermal2", method="comm", line_bytes=512, filter_value=0.01)
    benchmark(lambda: pre.apply(prob.b))
