"""Ablation — communication-aware extension vs naive pattern growth.

The obvious alternative to FSAIE-Comm is the classical one: make the FSAI
pattern numerically richer (sparse level 2, pattern of A²).  That also cuts
iterations — but it *changes the communication scheme* and inflates the halo.
This ablation quantifies the trade-off the paper's design avoids:

* level-2 FSAI reduces iterations at the cost of strictly more halo values
  per SpMV and more neighbour links;
* FSAIE-Comm reduces iterations with *zero* additional communication.
"""

from __future__ import annotations

from harness import problem, solve, preconditioner
from repro.analysis import format_table
from repro.core import FSAIOptions, PrecondOptions, build_fsai, pcg
from repro.matgen import PAPER_RTOL

CASES = ["thermal2", "ecology2", "parabolic_fem", "Dubcova2"]


def test_ablation_naive_growth_vs_comm_aware(benchmark):
    rows = []
    for name in CASES:
        prob = problem(name)
        it_fsai = solve(name, method="fsai").iterations
        halo_base = preconditioner(name, method="fsai").g.schedule.total_halo_values()

        # naive growth: sparse level 2
        pre_l2 = build_fsai(
            prob.mat, prob.part, PrecondOptions(fsai=FSAIOptions(level=2))
        )
        res_l2 = pcg(prob.da, prob.b, precond=pre_l2.apply, rtol=PAPER_RTOL)
        halo_l2 = pre_l2.g.schedule.total_halo_values()

        # communication-aware growth
        pre_comm = preconditioner(name, method="comm", filter_value=0.01)
        it_comm = solve(name, method="comm", filter_value=0.01).iterations
        halo_comm = pre_comm.g.schedule.total_halo_values()

        rows.append(
            [
                name,
                it_fsai,
                res_l2.iterations,
                it_comm,
                halo_base,
                halo_l2,
                halo_comm,
            ]
        )
        # the entire point: comm-aware extension never grows the halo
        assert halo_comm == halo_base, name
        assert halo_l2 > halo_base, name
        assert it_comm <= it_fsai, name

    print()
    print(
        format_table(
            ["Matrix", "it FSAI", "it FSAI-lvl2", "it Comm",
             "halo FSAI", "halo lvl2", "halo Comm"],
            rows,
            title="Ablation — naive pattern growth (level 2) vs FSAIE-Comm",
        )
    )
    print("\nlevel-2 growth buys iterations with extra communication;")
    print("FSAIE-Comm buys iterations with none.")

    prob = problem(CASES[0])
    pre = preconditioner(CASES[0], method="comm", filter_value=0.01)
    benchmark(lambda: pre.apply(prob.b))
