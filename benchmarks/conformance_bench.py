"""Model-conformance benchmark at scale: ``BENCH_conformance.json``.

Where ``BENCH_scaling.json`` (see :mod:`benchmarks.scaling_bench`) proves the
event engine *runs* at 64–1024 simulated ranks, this suite proves it can be
*observed* at that scale without perturbing what it observes:

* in-band telemetry — per-rank streaming histograms + counters on every
  rank, full span recording on a deterministic sampled subset — is
  aggregated over the simulator's own O(log P) reduction tree
  (:func:`repro.observe.stream.aggregate_telemetry`) rather than a P-way
  central gather, and its wire traffic rides a dedicated tag that the
  invariance auditors exclude by construction;
* the α–β :class:`repro.perfmodel.CostModel` prediction for each phase
  (compute, halo, reduction) is compared against the streamed measurement
  at every rung of a strong-scaled ladder, yielding the per-phase
  measured/predicted ratios and straggler verdicts of a
  :class:`repro.observe.ConformanceReport`;
* the paper's §4 schedule-invariance guarantee is re-proved *with
  telemetry enabled*: FSAI and FSAIE-Comm halo updates both stream
  telemetry, and their tracker snapshots must still match edge-for-edge
  while the telemetry byte counters are nonzero (``telemetry_excluded``);
* the streamed artifact stays sublinear in P — O(sampled ranks + log-bucket
  histograms), recorded per rung as ``payload_bytes`` and gated by
  ``scripts/check_model_conformance.py`` against both the rank-count growth
  and a full-trace volume estimate.

The ladder strong-scales one fixed Poisson grid (``GRID``² rows) over 64,
256 and 1024 ranks with a fixed iteration budget, so per-rung solver work is
deterministic and the *observability* cost is the only thing that varies
with P.

``scripts/check_model_conformance.py`` gates the structural facts and the
ratio drift against ``benchmarks/baselines/conformance_baseline.json``;
``scripts/check_bench_regression.py --conformance`` gates the deterministic
summary metrics.

Run::

    PYTHONPATH=src python benchmarks/conformance_bench.py          # full ladder
    PYTHONPATH=src python benchmarks/conformance_bench.py --quick  # 64 ranks only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import build_fsai, build_fsaie_comm, check_comm_invariance  # noqa: E402
from repro.dist import (  # noqa: E402
    DistMatrix,
    DistVector,
    RowPartition,
    spmd_halo_update,
    spmd_pipelined_pcg,
)
from repro.matgen import paper_rhs, poisson2d  # noqa: E402
from repro.mpisim import CommTracker  # noqa: E402
from repro.observe import (  # noqa: E402
    ConformanceReport,
    RankCountConformance,
    TelemetryConfig,
    compare_snapshots,
)
from repro.perfmodel import MACHINES, CostModel  # noqa: E402

#: Strong-scaling ladder: one fixed ``GRID``² Poisson system split over a
#: growing rank count, so the solve is identical work at every rung and the
#: telemetry payload/traffic is the only quantity that scales with P.
GRID = 96
SCALES = (64, 256, 1024)
QUICK_SCALES = (64,)

#: Fixed iteration budget: convergence-to-tolerance would make the per-rung
#: observation window depend on rounding in the (deterministic but
#: partition-dependent) residual history; a fixed budget keeps the number of
#: observed iterations — and hence every deterministic counter — identical
#: across rungs and runs.
RTOL = 1e-6
MAX_ITERATIONS = 30
RHS_SEED = 9
MODEL_MACHINE = "skylake"
ENGINE = "events"
#: Full span recording on this many deterministically spread ranks; the
#: other P−k ranks ship histograms + counters only.
RANK_SAMPLE = 8

#: Full-trace volume estimate used by the sublinearity gate: one trace event
#: is ~96 B of JSON, and a traced solve emits at least one wait + one send
#: event per message plus a compute span per iteration per rank.
_TRACE_EVENT_BYTES = 96


def _halo_invariance_with_telemetry(pre, pre_comm, b: DistVector) -> tuple[bool, bool]:
    """Re-prove §4 invariance on the wire *with telemetry enabled*.

    Both preconditioners' halo updates run with streaming telemetry on the
    same engine; returns ``(halo_invariant, telemetry_excluded)`` where the
    second requires telemetry traffic to have actually flowed while the
    point-to-point snapshots stayed identical — the auditors never see the
    telemetry tag.
    """
    trackers = []
    for pre_k in (pre, pre_comm):
        tr = CommTracker()
        for g in (pre_k.g, pre_k.gt):
            spmd_halo_update(
                g, b, tr, engine=ENGINE,
                telemetry=TelemetryConfig(rank_sample=RANK_SAMPLE),
            )
        trackers.append(tr)
    verdict = compare_snapshots(
        trackers[0].snapshot(),
        trackers[1].snapshot(),
        base_label=pre.name,
        other_label=pre_comm.name,
        check_collectives=False,
    )
    telemetry_flowed = all(t.total_telemetry_bytes > 0 for t in trackers)
    return bool(verdict.invariant), bool(verdict.invariant and telemetry_flowed)


def run_rung(ranks: int, *, grid: int = GRID, machine_name: str = MODEL_MACHINE) -> dict:
    """One strong-scaled rung: telemetered solve + invariance + conformance."""
    machine = MACHINES[machine_name]
    mat = poisson2d(grid)
    part = RowPartition.from_matrix(mat, ranks, seed=ranks)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=RHS_SEED), part)

    pre = build_fsai(mat, part)
    pre_comm = build_fsaie_comm(mat, part)
    invariant = check_comm_invariance(pre, pre_comm)
    halo_invariant, telemetry_excluded = _halo_invariance_with_telemetry(
        pre, pre_comm, b
    )

    telemetry = TelemetryConfig(rank_sample=RANK_SAMPLE)
    tracker = CommTracker()
    timeout = max(120.0, 0.6 * ranks)
    t0 = time.perf_counter()
    _, iterations = spmd_pipelined_pcg(
        da,
        b,
        rtol=RTOL,
        max_iterations=MAX_ITERATIONS,
        precond_pair=(pre.g, pre.gt),
        tracker=tracker,
        engine=ENGINE,
        timeout=timeout,
        telemetry=telemetry,
    )
    wall = time.perf_counter() - t0
    cluster = telemetry.result
    if cluster is None:
        raise RuntimeError(f"no telemetry aggregated at {ranks} ranks")

    model = CostModel(machine, threads_per_process=1)
    predicted = model.phase_seconds(da, pre, iterations=iterations,
                                    reduction_phases=1)
    # what a full trace of the same solve would have shipped: every message
    # produces a send + a wait event, every iteration a compute span per rank
    full_trace_bytes = _TRACE_EVENT_BYTES * (
        2 * tracker.total_messages + iterations * ranks
    )
    entry = RankCountConformance.from_cluster(
        ranks=ranks,
        iterations=iterations,
        predicted=predicted,
        cluster=cluster,
        extras={
            "invariant": bool(invariant),
            "halo_invariant": bool(halo_invariant),
            "telemetry_excluded": bool(telemetry_excluded),
            "messages": int(tracker.total_messages),
            "bytes": int(tracker.total_bytes),
            "telemetry_messages": int(tracker.total_telemetry_messages),
            "telemetry_bytes": int(tracker.total_telemetry_bytes),
            "full_trace_bytes": int(full_trace_bytes),
            "wall_s": float(wall),
        },
    )
    return entry.to_dict()


def run_conformance_suite(*, quick: bool = False) -> dict:
    """Run the strong-scaled conformance ladder; returns the suite document.

    ``summary`` is the flat comparable surface (consumed by
    :meth:`repro.observe.RunReport.from_conformance_bench`): per-rung
    iteration counts, exact message/byte totals, the three structural flags,
    payload sizes and per-phase measured/predicted ratios.  ``wall_s`` and
    the ratios are machine-dependent — recorded always, gated only where
    the gate scripts opt in.
    """
    scales = QUICK_SCALES if quick else SCALES
    entries = []
    summary: dict = {}
    for ranks in scales:
        entry = run_rung(ranks)
        entries.append(entry)
        key = f"r{ranks}"
        extras = entry["extras"]
        summary[f"{key}.iterations"] = entry["iterations"]
        summary[f"{key}.sampled_ranks"] = entry["sampled_ranks"]
        summary[f"{key}.payload_bytes"] = entry["telemetry_payload_bytes"]
        summary[f"{key}.stragglers"] = len(entry["stragglers"])
        for flag in ("invariant", "halo_invariant", "telemetry_excluded"):
            summary[f"{key}.{flag}"] = int(extras[flag])
        for metric in ("messages", "bytes", "telemetry_messages",
                       "telemetry_bytes", "wall_s"):
            summary[f"{key}.{metric}"] = extras[metric]
        for phase in entry["phases"]:
            summary[f"{key}.ratio.{phase['phase']}"] = phase["ratio"]
    report = ConformanceReport(
        entries=[RankCountConformance.from_dict(e) for e in entries],
        meta={
            "case": f"poisson2d:{GRID}",
            "scales": list(scales),
            "engine": ENGINE,
            "machine": MODEL_MACHINE,
            "rank_sample": RANK_SAMPLE,
            "rtol": RTOL,
            "max_iterations": MAX_ITERATIONS,
        },
    )
    return {
        "suite": "conformance",
        "config": {
            "grid": GRID,
            "rows": GRID * GRID,
            "scales": list(scales),
            "rtol": RTOL,
            "max_iterations": MAX_ITERATIONS,
            "rhs_seed": RHS_SEED,
            "engine": ENGINE,
            "machine": MODEL_MACHINE,
            "rank_sample": RANK_SAMPLE,
        },
        "conformance": report.to_dict(),
        "summary": summary,
    }


def write_conformance_suite(result: dict, path, *, report: bool = True) -> Path:
    """Write the suite JSON (and its ``.report.json`` companion)."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if report:
        from repro.observe import RunReport

        RunReport.from_conformance_bench(result, label=path.stem).save(
            path.with_suffix(".report.json")
        )
    return path


def format_summary(result: dict) -> str:
    cfg = result["config"]
    lines = [
        "model conformance, strong-scaled poisson2d:%d on engine=%s "
        "(modeled on %s)" % (cfg["grid"], cfg["engine"], cfg["machine"]),
        "",
    ]
    header = (
        f"{'ranks':>6} {'iters':>6} {'compute x':>10} {'halo x':>8} "
        f"{'reduce x':>9} {'payload':>9} {'trace est':>10} {'wall s':>7} "
        f"{'inv':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in result["conformance"]["entries"]:
        ratios = {p["phase"]: p["ratio"] for p in entry["phases"]}
        ex = entry["extras"]
        inv = ("ok" if ex["invariant"] and ex["halo_invariant"]
               and ex["telemetry_excluded"] else "FAIL")
        lines.append(
            f"{entry['ranks']:>6} {entry['iterations']:>6} "
            f"{ratios.get('compute', 0.0):>10.3g} "
            f"{ratios.get('halo', 0.0):>8.3g} "
            f"{ratios.get('reduction', 0.0):>9.3g} "
            f"{entry['telemetry_payload_bytes']:>9} "
            f"{ex['full_trace_bytes']:>10} {ex['wall_s']:>7.2f} {inv:>4}"
        )
    n_verdicts = len(result["conformance"].get("verdicts", []))
    lines.append("")
    lines.append(f"divergence verdicts: {n_verdicts}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_conformance.json")
    parser.add_argument("--quick", action="store_true", help="64-rank rung only")
    args = parser.parse_args(argv)
    result = run_conformance_suite(quick=args.quick)
    print(format_summary(result))
    path = write_conformance_suite(result, args.output)
    print(f"\nwritten: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
