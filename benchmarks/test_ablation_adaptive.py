"""Ablation — static communication-aware extension vs adaptive patterns.

The paper's §6 argues for static patterns: dynamic (adaptive) pattern
methods like FSPAI are "usually more powerful ... however, they are
difficult to parallelize ... and usually are computationally costlier", and
they ignore the communication structure.  This ablation quantifies all three
axes on a matrix subset:

* iterations: FSPAI typically wins (it spends nonzeros optimally),
* communication: FSPAI inflates the halo, FSAIE-Comm provably does not,
* modeled time: with communication priced in, FSAIE-Comm is competitive.
"""

from __future__ import annotations

import numpy as np

from harness import DEFAULT_THREADS, preconditioner, problem, solve
from repro.analysis import format_table
from repro.core import FSPAIOptions, fspai_factor, pcg
from repro.core.precond import _distribute
from repro.matgen import PAPER_RTOL
from repro.perfmodel import SKYLAKE, CostModel

CASES = ["thermal2", "ecology2", "gyro", "olafu"]


def test_ablation_adaptive_vs_static(benchmark):
    model = CostModel(SKYLAKE, threads_per_process=DEFAULT_THREADS)
    rows = []
    halo_ok = 0
    for name in CASES:
        prob = problem(name)
        fsai = preconditioner(name, method="fsai")
        comm = preconditioner(name, method="comm", filter_value=0.01)
        it_fsai = solve(name, method="fsai").iterations
        it_comm = solve(name, method="comm", filter_value=0.01).iterations

        g = fspai_factor(prob.mat, FSPAIOptions(max_steps=4, per_step=2))
        fspai = _distribute(
            "FSPAI", g, prob.part, base_nnz=fsai.nnz,
            filters=np.zeros(prob.part.nparts),
        )
        it_fspai = pcg(
            prob.da, prob.b, precond=fspai.apply, rtol=PAPER_RTOL
        ).iterations

        halo_base = fsai.g.schedule.total_halo_values()
        halo_comm = comm.g.schedule.total_halo_values()
        halo_fspai = fspai.g.schedule.total_halo_values()
        t_comm = it_comm * model.iteration_cost(prob.da, comm).total
        t_fspai = it_fspai * model.iteration_cost(prob.da, fspai).total
        rows.append(
            [
                name,
                it_fsai,
                it_comm,
                it_fspai,
                halo_base,
                halo_comm,
                halo_fspai,
                f"{t_comm * 1e3:.3f}",
                f"{t_fspai * 1e3:.3f}",
            ]
        )
        assert halo_comm == halo_base, name  # comm-aware: invariant
        halo_ok += halo_fspai > halo_base  # adaptive: inflates halos

    print()
    print(
        format_table(
            ["Matrix", "it FSAI", "it Comm", "it FSPAI",
             "halo FSAI", "halo Comm", "halo FSPAI",
             "t Comm (ms)", "t FSPAI (ms)"],
            rows,
            title="Ablation — FSAIE-Comm (static, comm-aware) vs FSPAI (adaptive)",
        )
    )
    # on most matrices the adaptive method pays in communication
    assert halo_ok >= len(CASES) - 1

    prob = problem(CASES[0])
    g = fspai_factor(prob.mat, FSPAIOptions(max_steps=2, per_step=2))
    benchmark(lambda: g.spmv(np.ones(g.ncols)))
