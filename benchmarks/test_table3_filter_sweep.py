"""Table 3 — filter sweep on Skylake.

Four summary blocks, exactly as in the paper: FSAIE / FSAIE-Comm × static /
dynamic filtering, over Filter ∈ {0.01, 0.05, 0.1, 0.2} plus the per-matrix
best Filter.  Each block reports average iteration and time improvement and
the best / worst time change across the matrix set.
"""

from __future__ import annotations

import numpy as np

from harness import FILTER_VALUES, cases, modeled_time, problem, preconditioner, solve
from repro.analysis import format_table, summarize_improvements
from repro.perfmodel import SKYLAKE

MACHINE = SKYLAKE


def _collect(method: str, dynamic: bool):
    names = [c.name for c in cases()]
    base_iters = np.array([solve(n, method="fsai").iterations for n in names])
    base_times = np.array([modeled_time(n, MACHINE, method="fsai") for n in names])
    blocks = {}
    for f in FILTER_VALUES:
        iters = np.array(
            [solve(n, method=method, filter_value=f, dynamic=dynamic).iterations for n in names]
        )
        times = np.array(
            [modeled_time(n, MACHINE, method=method, filter_value=f, dynamic=dynamic) for n in names]
        )
        blocks[f] = (iters, times)
    # per-matrix best filter by modeled time
    stacked_t = np.stack([blocks[f][1] for f in FILTER_VALUES])
    stacked_i = np.stack([blocks[f][0] for f in FILTER_VALUES])
    best_idx = stacked_t.argmin(axis=0)
    cols = np.arange(len(names))
    blocks["best"] = (stacked_i[best_idx, cols], stacked_t[best_idx, cols])
    return base_iters, base_times, blocks


def _print_block(title: str, base_iters, base_times, blocks):
    rows = []
    for key in list(FILTER_VALUES) + ["best"]:
        iters, times = blocks[key]
        s = summarize_improvements(base_iters, base_times, iters, times)
        rows.append([str(key)] + s.row())
    print()
    print(
        format_table(
            ["Filter", "Avg iter %", "Avg time %", "Highest imp %", "Highest deg %"],
            rows,
            title=title,
        )
    )
    return rows


def test_table3_filter_sweep_skylake(benchmark):
    summaries = {}
    for method in ("fsaie", "comm"):
        for dynamic in (False, True):
            label = f"{'FSAIE-Comm' if method == 'comm' else 'FSAIE'} - " + (
                "Dynamic Filter" if dynamic else "Static Filter"
            )
            base_iters, base_times, blocks = _collect(method, dynamic)
            rows = _print_block(f"Table 3 — {label}", base_iters, base_times, blocks)
            summaries[(method, dynamic)] = {r[0]: [float(v) for v in r[1:]] for r in rows}

    # paper shapes:
    # 1) stronger filters keep fewer entries => smaller iteration gains
    for key, summary in summaries.items():
        assert summary["0.01"][0] >= summary["0.2"][0] - 1.0, key
    # 2) FSAIE-Comm beats FSAIE on average iterations at the best filter
    assert (
        summaries[("comm", True)]["best"][0]
        >= summaries[("fsaie", True)]["best"][0] - 0.5
    )
    # 3) best-filter average time improvement is positive everywhere
    for key, summary in summaries.items():
        assert summary["best"][1] > 0, key

    prob = problem("af_shell7")
    pre = preconditioner("af_shell7", method="comm", filter_value=0.05)
    benchmark(lambda: pre.apply(prob.b))
