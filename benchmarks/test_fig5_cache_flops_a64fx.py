"""Figure 5 — cache-miss and GFLOP/s histograms on A64FX (256 B lines).

Same measurement as Figure 3 but with the A64FX cache geometry: wider lines
admit wider extensions, and misses on ``x`` per nonzero drop more strongly.
"""

from __future__ import annotations

import numpy as np

from harness import DEFAULT_THREADS, cases, precond_misses, preconditioner, problem
from repro.analysis import format_histogram_pair, pct_increase
from repro.perfmodel import A64FX, CostModel

MACHINE = A64FX


def test_fig5_cache_misses_and_gflops_a64fx(benchmark):
    model = CostModel(MACHINE, threads_per_process=DEFAULT_THREADS)
    mf, mc, gf, gc = [], [], [], []
    for case in cases():
        name = case.name
        p_fsai = preconditioner(name, method="fsai")
        p_comm = preconditioner(
            name, method="comm", line_bytes=256, filter_value=0.0, dynamic=False
        )
        m_f = precond_misses(p_fsai, MACHINE, DEFAULT_THREADS)
        m_c = precond_misses(p_comm, MACHINE, DEFAULT_THREADS)
        mf.append(m_f.mean() / p_fsai.g.nnz)
        mc.append(m_c.mean() / p_comm.g.nnz)
        gf.append(model.precond_gflops_per_rank(p_fsai, precond_misses=m_f).mean())
        gc.append(model.precond_gflops_per_rank(p_comm, precond_misses=m_c).mean())
    mf, mc, gf, gc = map(np.array, (mf, mc, gf, gc))

    print()
    print(
        format_histogram_pair(
            "FSAI", mf, "FSAIE-Comm (unfiltered)", mc, bins=8,
            title="Figure 5a — L1 DCM on x per nnz(G), GᵀGx, A64FX",
        )
    )
    print()
    print(
        format_histogram_pair(
            "FSAI", gf, "FSAIE-Comm (unfiltered)", gc, bins=8,
            title="Figure 5b — GFLOP/s per process, GᵀGx, A64FX",
        )
    )
    print(f"\nGFLOP/s change {pct_increase(gf.mean(), gc.mean()):+.1f}% (paper: +7.5%)")

    assert mc.mean() < mf.mean()
    assert gc.mean() >= 0.95 * gf.mean()

    prob = problem("offshore")
    pre = preconditioner("offshore", method="comm", line_bytes=256, filter_value=0.0, dynamic=False)
    benchmark(lambda: pre.apply(prob.b))
