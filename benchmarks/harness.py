"""Shared benchmark harness: cached problems, preconditioners and solves.

Every benchmark file regenerates one table or figure of the paper.  They all
share the caches below so that, e.g., the Skylake filter sweep (Table 3) and
the Zen 2 sweep (Table 6) — identical 64 B cache lines, hence identical
factors and iteration counts — only build and solve each configuration once
per pytest session.

Environment knobs
-----------------
``REPRO_SCALE``
    Multiplies every catalog matrix size (default 1.0 ≈ 10⁴–10⁵ nonzeros,
    minutes for the full suite).  Raise it to push towards paper scale.
``REPRO_SUBSET``
    If set to an integer N, only the first N matrices of each table are
    evaluated (useful for smoke runs).

Timings come from the shared instrumentation registry: every cached build and
solve runs under the harness :data:`TRACER`/:data:`METRICS` pair, and
:func:`recorded_seconds` / :func:`setup_seconds` / :func:`solve_seconds` read
the accumulated span durations back out instead of ad-hoc ``time.time()``
bookkeeping.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.cachesim import precond_x_misses_per_rank
from repro.core import (
    CGResult,
    ExtensionMode,
    ExtensionWorkspace,
    FilterSpec,
    Preconditioner,
    build_fsai,
    pcg,
)
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.instrument import MetricsRegistry, Tracer, tracing
from repro.matgen import (
    PAPER_RTOL,
    MatrixCase,
    default_rank_count,
    paper_rhs,
    table1_cases,
    table2_cases,
)
from repro.perfmodel import CostModel, MachineSpec

FILTER_VALUES = (0.01, 0.05, 0.1, 0.2)
#: The paper's default hybrid configuration (§5.2): 8 threads per process.
DEFAULT_THREADS = 8

_problems: dict = {}
_workspaces: dict = {}
_preconds: dict = {}
_solves: dict = {}
_misses: dict = {}

#: Shared instrumentation sinks for every cached build/solve in the session.
TRACER = Tracer()
METRICS = MetricsRegistry()


def reset_instrumentation() -> None:
    """Drop recorded spans and metrics (caches stay warm)."""
    TRACER.clear()
    METRICS.clear()


def recorded_seconds(prefix: str) -> float:
    """Total seconds spent in spans whose name starts with ``prefix``.

    Only root-level occurrences count: a ``precond.build`` span containing a
    ``precond.factor`` child contributes once under ``"precond."``.
    """
    spans = TRACER.spans
    by_id = {s.span_id: s for s in spans}

    def outermost(span) -> bool:
        parent = by_id.get(span.parent_id)
        while parent is not None:
            if parent.name.startswith(prefix):
                return False
            parent = by_id.get(parent.parent_id)
        return True

    return sum(
        s.duration for s in spans if s.name.startswith(prefix) and outermost(s)
    )


def setup_seconds() -> float:
    """Accumulated preconditioner construction time (pattern → factor)."""
    return recorded_seconds("precond.") + recorded_seconds("spmd.")


def solve_seconds() -> float:
    """Accumulated solver time across every cached solve."""
    return recorded_seconds("pcg.solve")


def iteration_count(name: str = "pcg.iterations") -> int:
    """Total solver iterations recorded in the metrics registry."""
    return int(METRICS.sum_values(name))


def run_report(label: str = "bench-harness"):
    """The session's accumulated instrumentation as a unified RunReport.

    Bundles the flat metrics registry, per-span timer totals and the derived
    harness aggregates (setup/solve seconds, iteration count) into one
    versioned :class:`repro.observe.RunReport` — the artifact benchmark runs
    emit next to their tables instead of ad-hoc dicts.
    """
    from repro.observe import RunReport

    report = RunReport.from_run(TRACER, METRICS, label=label, scale=scale())
    report.add_metric("harness.setup_seconds", setup_seconds())
    report.add_metric("harness.solve_seconds", solve_seconds())
    report.add_metric("harness.iterations", iteration_count())
    return report


def write_run_report(path, label: str = "bench-harness", *, timeline=None):
    """Write :func:`run_report` as JSON; returns the path written.

    With a :class:`repro.observe.Timeline` the report gains its timeline
    section and a ``<stem>.timeline.json`` companion lands next to it, so a
    benchmark run ships the cross-rank reconstruction alongside its tables.
    """
    from pathlib import Path

    report = run_report(label)
    path = Path(path)
    if timeline is not None:
        report.attach_timeline(timeline)
        timeline.save(path.with_suffix(".timeline.json"))
    return report.save(path)


def spmd_timeline(
    name: str,
    *,
    large: bool = False,
    method: str = "comm",
    line_bytes: int = 64,
    filter_value: float = 0.01,
    dynamic: bool = True,
    rtol: float = PAPER_RTOL,
    max_iterations: int = 500,
):
    """Run one SPMD solve under a fresh tracer; returns its Timeline.

    Unlike the cached :func:`solve` (rank-serial ``pcg``), this drives
    :func:`repro.core.spmd_cg` through :mod:`repro.mpisim` threads so the
    trace carries real cross-rank sends, waits and reductions — the input
    :class:`repro.observe.Timeline` needs for critical-path analysis.
    """
    from repro.dist import spmd_cg
    from repro.observe import Timeline

    prob = problem(name, large)
    pre = preconditioner(
        name, large=large, method=method, line_bytes=line_bytes,
        filter_value=filter_value, dynamic=dynamic,
    )
    tracer = Tracer()
    with tracing(tracer, MetricsRegistry()):
        _, iterations = spmd_cg(
            prob.da, prob.b, precond_pair=(pre.g, pre.gt),
            rtol=rtol, max_iterations=max_iterations,
        )
    return Timeline.from_tracer(
        tracer,
        meta={
            "case": name,
            "method": method,
            "ranks": prob.part.nparts,
            "iterations": iterations,
        },
    )


def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def cases(large: bool = False) -> list[MatrixCase]:
    out = table2_cases() if large else table1_cases()
    subset = os.environ.get("REPRO_SUBSET")
    if subset:
        out = out[: int(subset)]
    return out


@dataclass
class Problem:
    case: MatrixCase
    mat: object
    part: RowPartition
    da: DistMatrix
    b: DistVector


def problem(name: str, large: bool = False) -> Problem:
    key = (name, large, scale())
    if key not in _problems:
        from repro.matgen import get_case

        case = get_case(name, large=large)
        mat = case.build(scale())
        if large:
            # the large set runs at high rank counts in the paper (§5.5.1,
            # 16k nnz/CPU); proportionally more ranks here
            ranks = default_rank_count(mat.nnz, target_per_rank=2500, lo=8, hi=24)
        else:
            ranks = default_rank_count(mat.nnz)
        part = RowPartition.from_matrix(mat, ranks, seed=case.case_id)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, seed=case.case_id), part)
        _problems[key] = Problem(case, mat, part, da, b)
    return _problems[key]


def workspace(name: str, large: bool, method: str, line_bytes: int) -> ExtensionWorkspace:
    key = (name, large, method, line_bytes, scale())
    if key not in _workspaces:
        prob = problem(name, large)
        mode = ExtensionMode.LOCAL if method == "fsaie" else ExtensionMode.COMM
        label = "FSAIE" if method == "fsaie" else "FSAIE-Comm"
        with tracing(TRACER, METRICS):
            _workspaces[key] = ExtensionWorkspace(
                label, prob.mat, prob.part, mode, line_bytes=line_bytes
            )
    return _workspaces[key]


def preconditioner(
    name: str,
    *,
    large: bool = False,
    method: str = "comm",
    line_bytes: int = 64,
    filter_value: float = 0.01,
    dynamic: bool = True,
) -> Preconditioner:
    """``method`` ∈ {"fsai", "fsaie", "comm"}; filters ignored for fsai."""
    if method == "fsai":
        key = (name, large, "fsai", scale())
        if key not in _preconds:
            prob = problem(name, large)
            with tracing(TRACER, METRICS):
                _preconds[key] = build_fsai(prob.mat, prob.part)
        return _preconds[key]
    key = (name, large, method, line_bytes, filter_value, dynamic, scale())
    if key not in _preconds:
        ws = workspace(name, large, method, line_bytes)
        with tracing(TRACER, METRICS):
            _preconds[key] = ws.finalize(FilterSpec(filter_value, dynamic=dynamic))
    return _preconds[key]


def solve(
    name: str,
    *,
    large: bool = False,
    method: str = "comm",
    line_bytes: int = 64,
    filter_value: float = 0.01,
    dynamic: bool = True,
) -> CGResult:
    """PCG under the paper's protocol; cached per configuration."""
    key = (name, large, method, line_bytes, filter_value, dynamic, scale())
    if key not in _solves:
        prob = problem(name, large)
        pre = preconditioner(
            name,
            large=large,
            method=method,
            line_bytes=line_bytes,
            filter_value=filter_value,
            dynamic=dynamic,
        )
        with tracing(TRACER, METRICS):
            _solves[key] = pcg(
                prob.da, prob.b, precond=pre, rtol=PAPER_RTOL, max_iterations=50_000
            )
    return _solves[key]


def precond_misses(pre: Preconditioner, machine: MachineSpec, threads: int) -> np.ndarray:
    key = (id(pre), machine.name, threads)
    if key not in _misses:
        _misses[key] = precond_x_misses_per_rank(pre.g, pre.gt, machine.l1.scaled(threads))
    return _misses[key]


def modeled_time(
    name: str,
    machine: MachineSpec,
    *,
    large: bool = False,
    method: str = "comm",
    filter_value: float = 0.01,
    dynamic: bool = True,
    threads: int = DEFAULT_THREADS,
) -> float:
    """Iterations (measured) × modeled iteration time on ``machine``."""
    line_bytes = machine.cache_line_bytes
    prob = problem(name, large)
    pre = preconditioner(
        name,
        large=large,
        method=method,
        line_bytes=line_bytes,
        filter_value=filter_value,
        dynamic=dynamic,
    )
    result = solve(
        name,
        large=large,
        method=method,
        line_bytes=line_bytes,
        filter_value=filter_value,
        dynamic=dynamic,
    )
    model = CostModel(machine, threads_per_process=threads)
    cost = model.iteration_cost(
        prob.da, pre, precond_misses=precond_misses(pre, machine, threads)
    )
    return result.iterations * cost.total


def sweep_times(
    name: str,
    machine: MachineSpec,
    *,
    large: bool = False,
    method: str = "comm",
    dynamic: bool = True,
) -> dict[float, float]:
    """Modeled time per Filter value (the paper's per-matrix sweeps)."""
    return {
        f: modeled_time(
            name, machine, large=large, method=method, filter_value=f, dynamic=dynamic
        )
        for f in FILTER_VALUES
    }


def best_filter_time(
    name: str, machine: MachineSpec, *, large: bool = False, method: str = "comm",
    dynamic: bool = True,
) -> float:
    return min(sweep_times(name, machine, large=large, method=method, dynamic=dynamic).values())
