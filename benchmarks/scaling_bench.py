"""Weak-scaling benchmark on the event-driven SPMD engine: ``BENCH_scaling.json``.

Where ``BENCH_solver.json`` (see :mod:`benchmarks.solver_bench`) tracks the
paper's iteration/nnz tradeoff on the Table 1 catalog, this suite proves the
*runtime* claims at scale: :func:`repro.dist.spmd.spmd_pipelined_pcg` on
``engine="events"`` completes an FSAI-preconditioned solve at 64, 256 and
1024 simulated ranks under weak scaling (a fixed ~64 rows per rank on
growing Poisson grids), with per-edge message coalescing keeping the
:class:`repro.mpisim.CommTracker` byte accounting exact while cutting
message counts.

Per scale the suite records:

* ``iterations`` — pipelined-PCG iterations to the configured tolerance
  (deterministic: the fused allreduce is bitwise identical on all ranks);
* ``messages`` / ``bytes`` — total point-to-point traffic under coalescing
  (deterministic, gated exactly) plus ``reductions`` (collective calls);
* ``modeled_ms`` — analytic solve time from :class:`repro.perfmodel.CostModel`
  with ``reduction_phases=1`` (pipelined PCG's single fused reduction);
* ``max_bsp_wait_ms`` — worst per-rank bulk-synchronous wait from
  :func:`repro.observe.bsp_wait_times` over modeled per-rank busy time;
* ``wall_s`` — wall clock of the simulation itself (recorded, never gated);
* ``invariant`` — the paper's guarantee that FSAIE-Comm exchanges exactly
  the FSAI halos (:func:`repro.core.check_comm_invariance`);
* ``halo_invariant`` — the same guarantee re-proved on the wire: halo
  updates for both preconditioners run on the coalesced event transport and
  their tracker snapshots must match edge-for-edge
  (:func:`repro.observe.compare_snapshots`).

``scripts/check_bench_regression.py --scaling`` gates the deterministic
metrics against ``benchmarks/baselines/scaling_baseline.json``.

Run::

    PYTHONPATH=src python benchmarks/scaling_bench.py            # BENCH_scaling.json
    PYTHONPATH=src python benchmarks/scaling_bench.py --quick    # 64 ranks only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import build_fsai, build_fsaie_comm, check_comm_invariance  # noqa: E402
from repro.dist import (  # noqa: E402
    DistMatrix,
    DistVector,
    RowPartition,
    spmd_halo_update,
    spmd_pipelined_pcg,
)
from repro.matgen import paper_rhs, poisson2d  # noqa: E402
from repro.mpisim import CommTracker  # noqa: E402
from repro.observe import bsp_wait_times, compare_snapshots  # noqa: E402
from repro.perfmodel import MACHINES, CostModel  # noqa: E402

#: Weak-scaling ladder: (ranks, Poisson grid side).  ``n*n / ranks`` stays at
#: 64 rows per rank, so per-rank work is constant and growth in wait/traffic
#: is purely a function of scale.
SCALES = ((64, 64), (256, 128), (1024, 256))
QUICK_SCALES = ((64, 64),)

#: Fixed iteration budget.  Under weak scaling the Poisson condition number
#: grows with the grid, so convergence-to-tolerance would conflate
#: *algorithmic* scaling with the *engine* scaling this suite measures; a
#: fixed budget keeps per-rank work constant across the ladder (the final
#: relative residual is recorded per scale for context).
RTOL = 1e-6
MAX_ITERATIONS = 40
RHS_SEED = 9
MODEL_MACHINE = "skylake"
ENGINE = "events"


def _halo_invariance(pre, pre_comm, b: DistVector, *, timeout: float) -> bool:
    """Prove comm-invariance on the wire: run both preconditioners' halo
    updates (G and Gᵀ) on the coalesced event transport and require
    edge-identical tracker snapshots."""
    trackers = []
    for pre_k in (pre, pre_comm):
        tr = CommTracker()
        for g in (pre_k.g, pre_k.gt):
            spmd_halo_update(g, b, tr, engine=ENGINE)
        trackers.append(tr)
    verdict = compare_snapshots(
        trackers[0].snapshot(),
        trackers[1].snapshot(),
        base_label=pre.name,
        other_label=pre_comm.name,
        check_collectives=False,
    )
    return bool(verdict.invariant)


def run_scale(ranks: int, n: int, *, machine_name: str = MODEL_MACHINE) -> dict:
    """Solve one weak-scaling configuration; returns its result entry."""
    machine = MACHINES[machine_name]
    mat = poisson2d(n)
    part = RowPartition.from_matrix(mat, ranks, seed=ranks)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=RHS_SEED), part)

    pre = build_fsai(mat, part)
    pre_comm = build_fsaie_comm(mat, part)
    invariant = check_comm_invariance(pre, pre_comm)
    timeout = max(120.0, 0.6 * ranks)
    halo_invariant = _halo_invariance(pre, pre_comm, b, timeout=timeout)

    tracker = CommTracker()
    t0 = time.perf_counter()
    x, iterations = spmd_pipelined_pcg(
        da,
        b,
        rtol=RTOL,
        max_iterations=MAX_ITERATIONS,
        precond_pair=(pre.g, pre.gt),
        tracker=tracker,
        engine=ENGINE,
        timeout=timeout,
    )
    wall = time.perf_counter() - t0

    residual = b.to_global() - mat.spmv(x.to_global())
    rel_residual = float(
        np.linalg.norm(residual) / np.linalg.norm(b.to_global())
    )

    model = CostModel(machine, threads_per_process=1)
    per_iter = model.iteration_cost(da, pre, reduction_phases=1).total
    busy = [
        (a + g + gt) / machine.core_flops
        for a, g, gt in zip(
            da.flops_per_rank(), pre.g.flops_per_rank(), pre.gt.flops_per_rank()
        )
    ]
    return {
        "ranks": ranks,
        "grid": n,
        "rows": int(mat.nrows),
        "rows_per_rank": mat.nrows // ranks,
        "iterations": int(iterations),
        "converged": rel_residual <= RTOL,
        "rel_residual": rel_residual,
        "messages": int(tracker.total_messages),
        "bytes": int(tracker.total_bytes),
        "modeled_ms": float(per_iter * iterations * 1e3),
        "max_bsp_wait_ms": float(max(bsp_wait_times(busy)) * iterations * 1e3),
        "wall_s": float(wall),
        "invariant": bool(invariant),
        "halo_invariant": bool(halo_invariant),
    }


def run_scaling_suite(*, quick: bool = False) -> dict:
    """Run the weak-scaling ladder; returns the suite document.

    The ``summary`` mapping is the flat comparable surface (consumed by
    :meth:`repro.observe.RunReport.from_scaling_bench`): per-scale iteration
    counts, exact message/byte totals, modeled milliseconds, max BSP wait
    and the two invariance flags.  ``wall_s`` is recorded for context but
    never gated — it is the only machine-dependent number here.
    """
    scales = QUICK_SCALES if quick else SCALES
    scaling: dict = {}
    summary: dict = {}
    for ranks, n in scales:
        entry = run_scale(ranks, n)
        key = f"r{ranks}"
        scaling[key] = entry
        for metric in (
            "iterations",
            "messages",
            "bytes",
            "modeled_ms",
            "max_bsp_wait_ms",
            "wall_s",
        ):
            summary[f"{key}.{metric}"] = entry[metric]
        summary[f"{key}.invariant"] = int(entry["invariant"])
        summary[f"{key}.halo_invariant"] = int(entry["halo_invariant"])
    return {
        "suite": "scaling",
        "config": {
            "scales": [list(s) for s in scales],
            "rows_per_rank": 64,
            "rtol": RTOL,
            "max_iterations": MAX_ITERATIONS,
            "rhs_seed": RHS_SEED,
            "engine": ENGINE,
            "machine": MODEL_MACHINE,
        },
        "scaling": scaling,
        "summary": summary,
    }


def write_scaling_suite(result: dict, path, *, report: bool = True) -> Path:
    """Write the suite JSON (and its ``.report.json`` companion)."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if report:
        from repro.observe import RunReport

        RunReport.from_scaling_bench(result, label=path.stem).save(
            path.with_suffix(".report.json")
        )
    return path


def format_summary(result: dict) -> str:
    lines = [
        "weak scaling on engine=%s (modeled on %s)"
        % (result["config"]["engine"], result["config"]["machine"]),
        "",
    ]
    header = (
        f"{'ranks':>6} {'rows':>7} {'iters':>6} {'msgs':>8} {'KiB':>8} "
        f"{'model ms':>9} {'wait ms':>8} {'wall s':>7} {'inv':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key in sorted(result["scaling"], key=lambda k: int(k[1:])):
        e = result["scaling"][key]
        inv = "ok" if e["invariant"] and e["halo_invariant"] else "FAIL"
        lines.append(
            f"{e['ranks']:>6} {e['rows']:>7} {e['iterations']:>6} "
            f"{e['messages']:>8} {e['bytes'] / 1024:>8.1f} "
            f"{e['modeled_ms']:>9.3f} {e['max_bsp_wait_ms']:>8.3f} "
            f"{e['wall_s']:>7.2f} {inv:>4}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_scaling.json")
    parser.add_argument("--quick", action="store_true", help="64-rank scale only")
    args = parser.parse_args(argv)
    result = run_scaling_suite(quick=args.quick)
    print(format_summary(result))
    path = write_scaling_suite(result, args.output)
    print(f"\nwritten: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
