"""Table 4 — hybrid MPI+threads configurations on Skylake.

For threads-per-process ∈ {1, 2, 4, 8, 48} the paper reports average
iteration decrease, time decrease and preconditioning-SpMV FLOP/s increase
of FSAIE / FSAIE-Comm vs FSAI (best dynamic Filter; FLOP/s measured without
filtering).  More threads per process aggregate more L1, so cache-aware
extensions gain more; fewer threads mean more MPI processes and bigger
halos, where FSAIE-Comm's advantage over FSAIE is largest.
"""

from __future__ import annotations

import numpy as np

from harness import (
    FILTER_VALUES,
    cases,
    modeled_time,
    precond_misses,
    preconditioner,
    problem,
    solve,
)
from repro.analysis import format_table, pct_decrease, pct_increase
from repro.perfmodel import SKYLAKE, CostModel

THREADS = (1, 2, 4, 8, 48)


def _best_dynamic(name: str, method: str, threads: int):
    """(iterations, modeled time) at the per-matrix best dynamic filter."""
    options = [
        (
            solve(name, method=method, filter_value=f, dynamic=True).iterations,
            modeled_time(name, SKYLAKE, method=method, filter_value=f, dynamic=True, threads=threads),
        )
        for f in FILTER_VALUES
    ]
    return min(options, key=lambda p: p[1])


def _gflops(name: str, method: str, threads: int) -> float:
    """Mean per-process GFLOP/s of Gᵀ(Gx) without filtering."""
    if method == "fsai":
        pre = preconditioner(name, method="fsai")
    else:
        pre = preconditioner(name, method=method, filter_value=0.0, dynamic=False)
    model = CostModel(SKYLAKE, threads_per_process=threads)
    return float(
        model.precond_gflops_per_rank(
            pre, precond_misses=precond_misses(pre, SKYLAKE, threads)
        ).mean()
    )


def test_table4_hybrid_configurations(benchmark):
    names = [c.name for c in cases()]
    rows = []
    stats = {}
    for threads in THREADS:
        iter_dec = {"fsaie": [], "comm": []}
        time_dec = {"fsaie": [], "comm": []}
        flops_inc = {"fsaie": [], "comm": []}
        for name in names:
            it_f = solve(name, method="fsai").iterations
            t_f = modeled_time(name, SKYLAKE, method="fsai", threads=threads)
            gf_f = _gflops(name, "fsai", threads)
            for method in ("fsaie", "comm"):
                it, t = _best_dynamic(name, method, threads)
                iter_dec[method].append(pct_decrease(it_f, it))
                time_dec[method].append(pct_decrease(t_f, t))
                flops_inc[method].append(pct_increase(gf_f, _gflops(name, method, threads)))
        stats[threads] = {
            m: (
                float(np.mean(iter_dec[m])),
                float(np.mean(time_dec[m])),
                float(np.mean(flops_inc[m])),
            )
            for m in ("fsaie", "comm")
        }
        rows.append(
            [
                threads,
                f"{stats[threads]['fsaie'][0]:.2f}/{stats[threads]['comm'][0]:.2f}",
                f"{stats[threads]['fsaie'][1]:.2f}/{stats[threads]['comm'][1]:.2f}",
                f"{stats[threads]['fsaie'][2]:.2f}/{stats[threads]['comm'][2]:.2f}",
            ]
        )

    print()
    print(
        format_table(
            ["CPU/Process", "Iter dec (FSAIE/Comm)", "Time dec", "FLOPs inc"],
            rows,
            title="Table 4 — hybrid configurations, Skylake, best dynamic Filter",
        )
    )

    # paper shapes
    # 1) FSAIE-Comm iteration gains track or beat FSAIE gains at every
    #    configuration (small slack: "best filter" is picked by modeled
    #    time, so the chosen iteration counts can differ slightly)
    for threads in THREADS:
        assert stats[threads]["comm"][0] >= stats[threads]["fsaie"][0] - 1.5
    # 2) the modeled time advantage of Comm over FSAIE is largest at
    #    1 thread/process (halo-dominated regime) — non-strict at this scale
    gap1 = stats[1]["comm"][1] - stats[1]["fsaie"][1]
    gap48 = stats[48]["comm"][1] - stats[48]["fsaie"][1]
    assert gap1 >= gap48 - 1.0
    # 3) GFLOP/s of the extended preconditioners does not collapse
    for threads in THREADS:
        assert stats[threads]["comm"][2] > -15.0

    prob = problem("hood")
    pre = preconditioner("hood", method="comm", filter_value=0.0, dynamic=False)
    benchmark(lambda: pre.apply(prob.b))
