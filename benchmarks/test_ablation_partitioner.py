"""Ablation — partition quality.

FSAIE-Comm's premise (§3): "partitions typically minimise the amount of
communication and, therefore, reduce the number of halo entries as much as
possible", so halo extensions stay small relative to local ones.  Compare
the built-in multilevel partitioner against naive contiguous strips:

* the multilevel partition must produce smaller halos,
* with smaller halos, the halo share of FSAIE-Comm's additions shrinks,
* the solver's communication volume per iteration drops.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import ExtensionMode, extend_dist_pattern, fsai_pattern, pcg, build_fsaie_comm
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.matgen import PAPER_RTOL, get_case, paper_rhs
from repro.mpisim import CommTracker

CASES = ["thermal2", "ecology2", "tmt_sym", "PFlow_742"]
RANKS = 6


def _study(name: str):
    case = get_case(name)
    mat = case.build()
    out = {}
    for label, part in (
        ("strips", RowPartition.contiguous(mat.nrows, RANKS)),
        ("multilevel", RowPartition.from_matrix(mat, RANKS, seed=case.case_id)),
    ):
        da = DistMatrix.from_global(mat, part)
        halo = da.schedule.total_halo_values()
        base = fsai_pattern(mat)
        dist_pat = DistMatrix.from_global(base.to_csr(), part)
        exts = extend_dist_pattern(dist_pat, 64, ExtensionMode.COMM)
        halo_added = sum(e.n_halo_added for e in exts)
        local_added = sum(e.n_local_added for e in exts)
        pre = build_fsaie_comm(mat, part)
        b = DistVector.from_global(paper_rhs(mat, 1), part)
        tracker = CommTracker()
        res = pcg(da, b, precond=pre.apply, rtol=PAPER_RTOL, tracker=tracker)
        out[label] = {
            "halo": halo,
            "halo_added": halo_added,
            "local_added": local_added,
            "bytes_per_iter": tracker.total_bytes / max(res.iterations, 1),
        }
    return out


def test_ablation_partition_quality(benchmark):
    rows = []
    wins_halo = 0
    wins_bytes = 0
    for name in CASES:
        study = _study(name)
        s, m = study["strips"], study["multilevel"]
        rows.append(
            [
                name,
                s["halo"],
                m["halo"],
                f"{s['halo_added']}/{s['local_added']}",
                f"{m['halo_added']}/{m['local_added']}",
                f"{s['bytes_per_iter']:,.0f}",
                f"{m['bytes_per_iter']:,.0f}",
            ]
        )
        wins_halo += m["halo"] <= s["halo"]
        wins_bytes += m["bytes_per_iter"] <= s["bytes_per_iter"]

    print()
    print(
        format_table(
            ["Matrix", "halo(strip)", "halo(ML)", "added h/l (strip)",
             "added h/l (ML)", "B/iter (strip)", "B/iter (ML)"],
            rows,
            title=f"Ablation — partitioner quality ({RANKS} ranks, FSAIE-Comm)",
        )
    )

    # the multilevel partitioner should win on most matrices
    assert wins_halo >= len(CASES) - 1
    assert wins_bytes >= len(CASES) - 1

    case = get_case(CASES[0])
    mat = case.build()
    part = RowPartition.from_matrix(mat, RANKS, seed=case.case_id)
    pre = build_fsaie_comm(mat, part)
    b = DistVector.from_global(paper_rhs(mat, 1), part)
    benchmark(lambda: pre.apply(b))
