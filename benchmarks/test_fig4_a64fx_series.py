"""Figure 4 — per-matrix time decrease series on A64FX (best & Filter 0.05).

The paper: "the performance boost achieved is notably higher for most
matrices compared to Intel Skylake" thanks to 256 B cache lines.
"""

from __future__ import annotations

import numpy as np

from harness import preconditioner, problem
from repro.perfmodel import A64FX, SKYLAKE
from sweep_common import print_series, time_decrease_series


def test_fig4_time_decrease_series_a64fx(benchmark):
    names, best, fixed = time_decrease_series(A64FX, 0.05)
    print_series("Figure 4 — A64FX time decrease (FSAIE-Comm vs FSAI)", names, best, fixed, "0.05")
    print(f"\nmean(best)={best.mean():+.2f}%  mean(0.05)={fixed.mean():+.2f}%")

    assert np.all(best >= fixed - 1e-9)
    assert best.mean() > 0

    # cross-machine shape: A64FX average gain ≥ Skylake average gain
    _, best_skl, _ = time_decrease_series(SKYLAKE, 0.05)
    assert best.mean() >= best_skl.mean() - 1.0

    prob = problem("thermal2")
    pre = preconditioner("thermal2", method="comm", line_bytes=256, filter_value=0.05)
    benchmark(lambda: pre.apply(prob.b))
