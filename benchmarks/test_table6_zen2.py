"""Table 6 — FSAIE-Comm dynamic-filter sweep on Zen 2.

Zen 2 shares Skylake's 64 B cache lines, so factors and iteration counts
coincide with the Skylake sweep and only the machine model differs — the
paper notes the Zen 2 averages are "close to Skylake results since both
systems feature the same cache line size".
"""

from __future__ import annotations

from harness import preconditioner, problem
from repro.perfmodel import ZEN2
from sweep_common import dynamic_sweep_table


def test_table6_zen2_sweep(benchmark):
    summaries = dynamic_sweep_table(
        ZEN2, title="Table 6 — FSAIE-Comm, dynamic Filter, Zen 2"
    )

    assert summaries["best"].avg_iterations > 0
    assert summaries["best"].avg_time > 0
    assert summaries[0.01].avg_iterations >= summaries[0.2].avg_iterations - 1.0

    prob = problem("ecology2")
    pre = preconditioner("ecology2", method="comm", filter_value=0.01)
    benchmark(lambda: pre.apply(prob.b))
