"""§5.3.3 — the dynamic filtering load-balance case study.

The paper studies matrix 17 (consph): an imbalanced partition whose
FSAIE-Comm extension drops the factor's imbalance index from 0.88 to 0.75,
and dynamic filtering recovers it to 0.82.  Here the same experiment runs on
the catalog analog: measure the imbalance index of G's per-rank nonzeros for
(a) the base FSAI pattern, (b) the statically filtered extension and (c) the
dynamically filtered extension, and verify dynamic filtering recovers
balance without losing the iteration gains.
"""

from __future__ import annotations

import numpy as np

from harness import preconditioner, problem, solve
from repro.analysis import format_table
from repro.core import imbalance_index

CASES = ["consph", "thermal2", "cfd2", "G3_circuit", "ecology2", "parabolic_fem"]


def test_dynamic_filter_restores_balance(benchmark):
    rows = []
    improved = []
    for name in CASES:
        base = preconditioner(name, method="fsai")
        static = preconditioner(name, method="comm", filter_value=0.01, dynamic=False)
        dynamic = preconditioner(name, method="comm", filter_value=0.01, dynamic=True)
        ii = {
            "base": imbalance_index(base.nnz_per_rank()),
            "static": imbalance_index(static.nnz_per_rank()),
            "dynamic": imbalance_index(dynamic.nnz_per_rank()),
        }
        it_static = solve(name, method="comm", filter_value=0.01, dynamic=False).iterations
        it_dynamic = solve(name, method="comm", filter_value=0.01, dynamic=True).iterations
        rows.append(
            [
                name,
                f"{ii['base']:.3f}",
                f"{ii['static']:.3f}",
                f"{ii['dynamic']:.3f}",
                it_static,
                it_dynamic,
            ]
        )
        improved.append(ii["dynamic"] - ii["static"])
        # dynamic filtering never makes the imbalance index worse
        assert ii["dynamic"] >= ii["static"] - 1e-9, name
        # and the iteration cost of rebalancing stays small
        assert it_dynamic <= it_static * 1.10 + 2, name

    print()
    print(
        format_table(
            ["Matrix", "imb(FSAI)", "imb(static)", "imb(dynamic)",
             "iters static", "iters dynamic"],
            rows,
            title="§5.3.3 — imbalance index of G (mean/max of per-rank nnz)",
        )
    )
    print(f"\nmean imbalance-index recovery by dynamic filter: {np.mean(improved):+.4f}")

    prob = problem("consph")
    pre = preconditioner("consph", method="comm", filter_value=0.01, dynamic=True)
    benchmark(lambda: pre.apply(prob.b))
