"""Table 2 — the large matrix set on Zen 2 (Filter 0.01).

The paper runs these on up to 32 768 cores; here the synthetic analogs run
on proportionally scaled rank counts and times come from the Zen 2 machine
model.  FSAIE-Comm must improve on FSAIE, which must not lose to FSAI on
average (Table 2's shape).
"""

from __future__ import annotations

import numpy as np

from harness import cases, modeled_time, preconditioner, problem, solve
from repro.analysis import format_kv, format_table, pct_decrease
from repro.perfmodel import ZEN2

MACHINE = ZEN2


def test_table2_large_zen2(benchmark):
    rows = []
    for case in cases(large=True):
        name = case.name
        r = {"name": name, "paper": case.paper}
        for method in ("fsai", "fsaie", "comm"):
            res = solve(name, large=True, method=method)
            pre = preconditioner(name, large=True, method=method)
            t = modeled_time(name, MACHINE, large=True, method=method)
            r[method] = (t, res.iterations, pre.nnz_increase_percent)
        rows.append(r)

    table = [
        [
            r["name"],
            f"{r['fsai'][0]:.3e}",
            r["fsai"][1],
            f"{r['fsaie'][0]:.3e}",
            r["fsaie"][1],
            f"{r['fsaie'][2]:.1f}",
            f"{r['comm'][0]:.3e}",
            r["comm"][1],
            f"{r['comm'][2]:.1f}",
            f"{pct_decrease(r['fsai'][0], r['comm'][0]):+.1f}",
            f"{pct_decrease(r['paper'].fsai_time, r['paper'].comm_time):+.1f}",
        ]
        for r in rows
    ]
    print()
    print(
        format_table(
            ["Matrix", "FSAI t(s)", "it", "FSAIE t(s)", "it", "%NNZ",
             "Comm t(s)", "it", "%NNZ", "Δt% (ours)", "Δt% (paper)"],
            table,
            title="Table 2 — large set, Zen 2, dynamic Filter 0.01",
        )
    )

    comm_vs_fsaie = [r["fsaie"][1] - r["comm"][1] for r in rows]
    time_dec = [pct_decrease(r["fsai"][0], r["comm"][0]) for r in rows]
    print()
    print(format_kv({
        "avg modeled time decrease (Comm vs FSAI)": f"{np.mean(time_dec):.2f}%",
        "FSAIE-Comm iteration wins vs FSAIE": f"{sum(d >= 0 for d in comm_vs_fsaie)}/{len(rows)}",
        "paper": "Comm outperforms FSAIE on average by 3 points (Table 2)",
    }, title="Summary"))

    # Table 2's shape: Comm never does worse than FSAIE on iterations
    assert np.mean(comm_vs_fsaie) >= 0
    # the aggregate time claim is about the set average; individual
    # well-conditioned cases may tie (they do in the paper's Table 2 as well)
    if len(rows) >= 6:
        assert np.mean(time_dec) > 0

    prob = problem(cases(large=True)[0].name, large=True)
    pre = preconditioner(cases(large=True)[0].name, large=True, method="comm")
    benchmark(lambda: pre.apply(prob.b))
