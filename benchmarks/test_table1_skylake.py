"""Table 1 — per-matrix results on Skylake (dynamic Filter 0.01).

Regenerates the paper's Table 1 rows for the synthetic catalog: solver time
(modeled, seconds), iterations-to-convergence and %NNZ pattern increase for
FSAI, FSAIE and FSAIE-Comm.  Paper reference iterations are printed alongside
for the EXPERIMENTS.md comparison.
"""

from __future__ import annotations

import numpy as np

from harness import cases, modeled_time, preconditioner, problem, solve
from repro.analysis import format_kv, format_table, pct_decrease
from repro.perfmodel import SKYLAKE

MACHINE = SKYLAKE


def _row(case):
    name = case.name
    r_fsai = solve(name, method="fsai")
    r_e = solve(name, method="fsaie")
    r_c = solve(name, method="comm")
    p_e = preconditioner(name, method="fsaie")
    p_c = preconditioner(name, method="comm")
    t_fsai = modeled_time(name, MACHINE, method="fsai")
    t_e = modeled_time(name, MACHINE, method="fsaie")
    t_c = modeled_time(name, MACHINE, method="comm")
    return {
        "id": case.case_id,
        "name": name,
        "fsai": (t_fsai, r_fsai.iterations),
        "fsaie": (t_e, r_e.iterations, p_e.nnz_increase_percent),
        "comm": (t_c, r_c.iterations, p_c.nnz_increase_percent),
        "paper": case.paper,
    }


def test_table1_skylake(benchmark):
    rows = [_row(case) for case in cases()]

    table = []
    for r in rows:
        table.append(
            [
                r["name"],
                f"{r['fsai'][0]:.3e}",
                r["fsai"][1],
                f"{r['fsaie'][0]:.3e}",
                r["fsaie"][1],
                f"{r['fsaie'][2]:.1f}",
                f"{r['comm'][0]:.3e}",
                r["comm"][1],
                f"{r['comm'][2]:.1f}",
                f"{pct_decrease(r['fsai'][0], r['comm'][0]):+.1f}",
                f"{pct_decrease(r['paper'].fsai_time, r['paper'].comm_time):+.1f}",
            ]
        )
    print()
    print(
        format_table(
            [
                "Matrix",
                "FSAI t(s)",
                "it",
                "FSAIE t(s)",
                "it",
                "%NNZ",
                "Comm t(s)",
                "it",
                "%NNZ",
                "Δt% (ours)",
                "Δt% (paper)",
            ],
            table,
            title="Table 1 — Skylake, dynamic Filter 0.01 (modeled times, measured iterations)",
        )
    )

    iter_dec = [
        pct_decrease(r["fsai"][1], r["comm"][1]) for r in rows
    ]
    time_dec = [pct_decrease(r["fsai"][0], r["comm"][0]) for r in rows]
    print()
    print(
        format_kv(
            {
                "matrices": len(rows),
                "avg iteration decrease (FSAIE-Comm vs FSAI)": f"{np.mean(iter_dec):.2f}%",
                "avg modeled time decrease": f"{np.mean(time_dec):.2f}%",
                "paper (avg over its set, this filter)": "22.04% iters / 16.64% time",
            },
            title="Summary",
        )
    )

    # the headline claim must hold in aggregate
    assert np.mean(iter_dec) > 0
    assert np.mean(time_dec) > 0
    # all solves converged
    for r in rows:
        assert r["comm"][1] > 0

    # benchmarked kernel: the preconditioner application of a mid-size case
    prob = problem("thermal2")
    pre = preconditioner("thermal2", method="comm")
    benchmark(lambda: pre.apply(prob.b))
