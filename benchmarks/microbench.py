#!/usr/bin/env python
"""Kernel microbenchmark runner — emits ``BENCH_kernels.json``.

Thin wrapper over :mod:`repro.kernels.bench` so the perf trajectory can be
recorded from the repo root without going through the CLI::

    PYTHONPATH=src python benchmarks/microbench.py [--quick] [--output PATH]

``repro bench`` is the equivalent CLI spelling.  See docs/PERFORMANCE.md for
how to read the output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.kernels.bench import (  # noqa: E402
    DEFAULT_REPS,
    DEFAULT_SIZES,
    format_summary,
    run_suite,
    write_suite,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_kernels.json")
    parser.add_argument("--sizes", help="comma-separated 2-D grid sizes")
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--backend", default=None, choices=("numpy", "cupy", "auto"),
        help="array backend (unavailable backends fall back to numpy)",
    )
    args = parser.parse_args(argv)
    sizes = (
        tuple(int(s) for s in args.sizes.split(",")) if args.sizes else DEFAULT_SIZES
    )
    result = run_suite(
        sizes=sizes, reps=args.reps, quick=args.quick, backend=args.backend
    )
    path = write_suite(result, args.output)
    print(format_summary(result))
    print(f"\nwritten: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
