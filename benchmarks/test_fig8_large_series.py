"""Figure 8 — per-matrix time decrease on the large set, Zen 2 (best & 0.01)."""

from __future__ import annotations

import numpy as np

from harness import preconditioner, problem
from repro.perfmodel import ZEN2
from sweep_common import print_series, time_decrease_series


def test_fig8_time_decrease_series_large(benchmark):
    names, best, fixed = time_decrease_series(ZEN2, 0.01, large=True)
    print_series(
        "Figure 8 — large set, Zen 2 time decrease (FSAIE-Comm vs FSAI)",
        names, best, fixed, "0.01",
    )
    print(f"\nmean(best)={best.mean():+.2f}%  mean(0.01)={fixed.mean():+.2f}%")

    assert np.all(best >= fixed - 1e-9)
    assert best.mean() > 0
    # paper: best-filter results are close to the 0.01 results on this set
    assert abs(best.mean() - fixed.mean()) < 10.0

    prob = problem("ldoor", large=True)
    pre = preconditioner("ldoor", large=True, method="comm", filter_value=0.01)
    benchmark(lambda: pre.apply(prob.b))
