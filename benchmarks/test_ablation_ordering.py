"""Ablation — matrix ordering and cache-friendly extension quality.

The extension harvests entries from cache lines the base pattern already
touches; a low-bandwidth ordering packs each row's operands into few lines,
a scrambled ordering scatters them.  Compare three orderings of the same
system — natural, random-shuffled, and RCM-recovered — and measure the
baseline x-gather misses and the extension's effect on them.

Expected shape: shuffling explodes misses per nonzero; RCM restores them;
and in every ordering the FSAIE-Comm extension does not increase misses
per nonzero (the Figure 3a property is ordering-robust).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.cachesim import CacheConfig, precond_x_misses_per_rank
from repro.core import FilterSpec, PrecondOptions, build_fsai, build_fsaie_comm
from repro.dist import RowPartition
from repro.matgen import get_case
from repro.order import bandwidth, permute_symmetric, rcm_ordering

UNFILTERED = PrecondOptions(filter=FilterSpec(0.0, dynamic=False))

# The catalog matrices are ~500x smaller than the paper's, so a full 32 KiB
# L1 holds the whole multiplying vector and hides capacity effects.  Scale
# the cache down proportionally (same 64 B lines, same associativity) so the
# vector:cache ratio matches the paper's regime.
SCALED_L1 = CacheConfig(size_bytes=2 * 1024, line_bytes=64, associativity=8)


def _miss_rate(pre) -> float:
    misses = precond_x_misses_per_rank(pre.g, pre.gt, SCALED_L1)
    return float(misses.mean() / pre.g.nnz)


def test_ablation_ordering(benchmark):
    case = get_case("ecology2")
    natural = case.build()
    rng = np.random.default_rng(0)
    shuffled = permute_symmetric(natural, rng.permutation(natural.nrows))
    rcm = permute_symmetric(shuffled, rcm_ordering(shuffled))

    rows = []
    rates = {}
    for label, mat in (("natural", natural), ("shuffled", shuffled), ("rcm", rcm)):
        part = RowPartition.from_matrix(mat, 4, seed=1)
        base = build_fsai(mat, part, UNFILTERED)
        ext = build_fsaie_comm(mat, part, UNFILTERED)
        rates[label] = (_miss_rate(base), _miss_rate(ext))
        rows.append(
            [
                label,
                bandwidth(mat),
                f"{rates[label][0]:.4f}",
                f"{rates[label][1]:.4f}",
                f"{ext.nnz_increase_percent:.1f}",
            ]
        )

    print()
    print(
        format_table(
            ["ordering", "bandwidth", "miss/nnz FSAI", "miss/nnz Comm", "%NNZ added"],
            rows,
            title="Ablation — ordering vs x-gather locality (ecology2 analog, scaled L1)",
        )
    )

    # shuffling destroys locality; RCM restores most of it
    assert rates["shuffled"][0] > 1.5 * rates["natural"][0]
    assert rates["rcm"][0] < rates["shuffled"][0]
    # the extension never worsens misses per stored entry, in any ordering
    for label in rates:
        assert rates[label][1] <= rates[label][0] * 1.02, label
    # and the harvestable extension collapses when locality is destroyed:
    # a scrambled ordering leaves almost no same-line neighbours to add
    pct = {row[0]: float(row[4]) for row in rows}
    assert pct["shuffled"] < pct["natural"] / 5
    assert pct["rcm"] > pct["shuffled"] * 2

    part = RowPartition.from_matrix(rcm, 4, seed=1)
    pre = build_fsaie_comm(rcm, part, UNFILTERED)
    from repro.dist import DistVector
    from repro.matgen import paper_rhs

    b = DistVector.from_global(paper_rhs(rcm, 0), part)
    benchmark(lambda: pre.apply(b))
